#!/usr/bin/env sh
# Offline verify pipeline. The workspace is hermetic (zero external
# dependencies, see DESIGN.md "Hermetic build policy"), so every step runs
# with --offline: a network dependency creeping into any Cargo.toml fails
# this script at the first build.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test -q --workspace --offline

echo "==> experiments --smoke"
SPARK_BENCH_QUICK=1 cargo run --release --offline -p spark-bench --bin experiments -- --smoke

echo "==> ci.sh OK"
