#!/usr/bin/env sh
# Offline verify pipeline. The workspace is hermetic (zero external
# dependencies, see DESIGN.md "Hermetic build policy"), so every step runs
# with --offline: a network dependency creeping into any Cargo.toml fails
# this script at the first build.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline (full suite, SPARK_SLOW_TESTS=1)"
SPARK_SLOW_TESTS=1 cargo test -q --workspace --offline

echo "==> bulk-vs-FSM decode differential suite (every dispatch variant)"
cargo test -q --offline -p spark-codec --test bulk_differential

echo "==> codec decode bench -> BENCH_codec.json"
# Full timing windows: speedup_bulk_over_fsm is a gate (the bit-parallel
# bulk engine must hold >=3x over the scalar FSM reference under the
# host's detected dispatch variant).
SPARK_BENCH_JSON="$PWD/BENCH_codec.json" \
    cargo bench --offline -p spark-bench --bench codec
grep -Eq '"fsm_mean_ns": *[0-9]' BENCH_codec.json || {
    echo "BENCH_codec.json missing a numeric fsm_mean_ns" >&2
    exit 1
}
grep -Eq '"speedup_bulk_over_fsm": *[0-9]' BENCH_codec.json || {
    echo "BENCH_codec.json missing a numeric speedup_bulk_over_fsm" >&2
    exit 1
}
awk '/"speedup_bulk_over_fsm"/ {
    gsub(/[",]/, ""); if ($2 + 0 < 3.0) { exit 1 } else { found = 1 }
} END { exit found ? 0 : 1 }' BENCH_codec.json || {
    echo "BENCH_codec.json: bulk decode is not >=3x the scalar FSM" >&2
    exit 1
}

echo "==> simulator bench (quick) -> BENCH_sim.json"
# Absolute path: cargo runs the bench with its CWD at the package root.
SPARK_BENCH_QUICK=1 SPARK_BENCH_JSON="$PWD/BENCH_sim.json" \
    cargo bench --offline -p spark-bench --bench simulator
grep -Eq '"cycles_per_sec": *[0-9]' BENCH_sim.json || {
    echo "BENCH_sim.json missing a numeric cycles_per_sec" >&2
    exit 1
}

echo "==> turbo GEMM bench -> BENCH_gemm.json"
# Full timing windows (no SPARK_BENCH_QUICK): the recorded speedup is a
# gate, and 10 ms windows are too noisy to hold it steady on shared hosts.
SPARK_BENCH_JSON="$PWD/BENCH_gemm.json" \
    cargo bench --offline -p spark-bench --bench gemm
grep -Eq '"gflops": *[0-9]' BENCH_gemm.json || {
    echo "BENCH_gemm.json missing a numeric gflops" >&2
    exit 1
}

echo "==> cross-engine differential suite (fused vs decode-then vs reference)"
cargo test -q --offline -p spark-tensor --test fused_properties

echo "==> decode-fused GEMM bench -> BENCH_fused.json"
# Full timing windows: fused_over_decode_then and weight_bytes_ratio are
# gates (fused must keep >=0.8x of decode-then-GEMM throughput while the
# resident weights shrink >=1.8x, i.e. ratio <= 0.55).
SPARK_BENCH_JSON="$PWD/BENCH_fused.json" \
    cargo bench --offline -p spark-bench --bench fused
grep -Eq '"fused_gflops": *[0-9]' BENCH_fused.json || {
    echo "BENCH_fused.json missing a numeric fused_gflops" >&2
    exit 1
}
awk '/"weight_bytes_ratio"/ {
    gsub(/[",]/, ""); if ($2 + 0 > 0.55) { exit 1 } else { found = 1 }
} END { exit found ? 0 : 1 }' BENCH_fused.json || {
    echo "BENCH_fused.json: resident encoded weights are not <=0.55x of dense f32" >&2
    exit 1
}
awk '/"fused_over_decode_then"/ {
    gsub(/[",]/, ""); if ($2 + 0 < 0.8) { exit 1 } else { found = 1 }
} END { exit found ? 0 : 1 }' BENCH_fused.json || {
    echo "BENCH_fused.json: fused GEMM is not >=0.8x of decode-then-GEMM" >&2
    exit 1
}

echo "==> serve smoke (boots an ephemeral server, hits every endpoint)"
cargo run --release --offline -p spark-cli --bin spark -- serve --smoke

echo "==> serve bench -> BENCH_serve.json"
# Full timing windows: speedup_batched_over_unbatched is a gate.
SPARK_BENCH_JSON="$PWD/BENCH_serve.json" \
    cargo bench --offline -p spark-bench --bench serve
grep -Eq '"batched_encode_rps": *[0-9]' BENCH_serve.json || {
    echo "BENCH_serve.json missing a numeric batched_encode_rps" >&2
    exit 1
}
grep -Eq '"requests_per_sec": *[0-9]' BENCH_serve.json || {
    echo "BENCH_serve.json missing a numeric requests_per_sec" >&2
    exit 1
}
awk '/"speedup_batched_over_unbatched"/ {
    gsub(/[",]/, ""); if ($2 + 0 < 2.0) { exit 1 } else { found = 1 }
} END { exit found ? 0 : 1 }' BENCH_serve.json || {
    echo "BENCH_serve.json: batched encode is not >=2x unbatched" >&2
    exit 1
}

echo "==> open-loop load schedules: two dumps, byte-identical"
cargo run --release --offline -p spark-cli --bin spark -- \
    load --smoke --schedule-only --out "$PWD/SCHEDULE_a.txt"
cargo run --release --offline -p spark-cli --bin spark -- \
    load --smoke --schedule-only --out "$PWD/SCHEDULE_b.txt"
cmp SCHEDULE_a.txt SCHEDULE_b.txt || {
    echo "load schedule is not deterministic across runs" >&2
    exit 1
}
rm -f SCHEDULE_a.txt SCHEDULE_b.txt

echo "==> spark load --smoke -> BENCH_load.json (open-loop tail-latency gate)"
# Ephemeral sharded server + seeded open-loop run: a simulate-flooding
# noisy neighbor against 64 cold tenants. Gates: the cold tenants' p99
# (measured from intended send time) stays under a generous bound, the
# cost-weighted quota actually shed the flood, no handler panicked, and
# every scheduled event got an HTTP answer.
cargo run --release --offline -p spark-cli --bin spark -- \
    load --smoke --out "$PWD/BENCH_load.json"
awk '/"cold_p99_us"/ {
    gsub(/[",]/, ""); if ($2 + 0 > 150000) { exit 1 } else { found = 1 }
} END { exit found ? 0 : 1 }' BENCH_load.json || {
    echo "BENCH_load.json: cold-tenant p99 above 150 ms under the smoke load" >&2
    exit 1
}
awk '/"rejected_429"/ {
    gsub(/[",]/, ""); if ($2 + 0 < 1) { exit 1 } else { found = 1 }
} END { exit found ? 0 : 1 }' BENCH_load.json || {
    echo "BENCH_load.json: quota never shed the flooding tenant" >&2
    exit 1
}
awk '/"transport_errors"/ {
    gsub(/[",]/, ""); if ($2 + 0 != 0) { exit 1 } else { found = 1 }
} END { exit found ? 0 : 1 }' BENCH_load.json || {
    echo "BENCH_load.json: scheduled events lost at the transport layer" >&2
    exit 1
}
awk '/"panics_total"/ {
    gsub(/[",]/, ""); if ($2 + 0 != 0) { exit 1 } else { found = 1 }
} END { exit found ? 0 : 1 }' BENCH_load.json || {
    echo "BENCH_load.json: server recorded handler panics under load" >&2
    exit 1
}

echo "==> sharded saturation ladder -> BENCH_load_saturation.json"
# Single-pool vs sharded under the same noisy-neighbor flood. Gate: the
# sharded server (cost-weighted quotas + shard isolation) sustains >=2x
# the offered rate the single shared pool sustains before the cold
# tenants' p99 or delivery collapses. Typical on this host is 4x; 2x is
# the floor with rung-granularity margin.
SPARK_BENCH_JSON="$PWD/BENCH_load_saturation.json" \
    cargo bench --offline -p spark-bench --bench load
grep -Eq '"sharded_saturation_rps": *[0-9]' BENCH_load_saturation.json || {
    echo "BENCH_load_saturation.json missing a numeric sharded_saturation_rps" >&2
    exit 1
}
awk '/"saturation_ratio"/ {
    gsub(/[",]/, ""); if ($2 + 0 < 2.0) { exit 1 } else { found = 1 }
} END { exit found ? 0 : 1 }' BENCH_load_saturation.json || {
    echo "BENCH_load_saturation.json: sharded saturation is not >=2x single-pool" >&2
    exit 1
}

echo "==> blockstore: ingest frozen model, recover twice, byte-identical"
# spark-store round trip through the CLI: persist the serving model's
# encoded weights, then run recovery+verify twice on the same directory.
# The verify report is a pure function of the directory contents (no
# paths, no wall-clock), so the two runs must be byte-identical.
STORE_DIR="$PWD/target/ci-store"
rm -rf "$STORE_DIR"
cargo run --release --offline -p spark-cli --bin spark -- \
    store put "$STORE_DIR" --infer-model
cargo run --release --offline -p spark-cli --bin spark -- \
    store verify "$STORE_DIR" > STORE_VERIFY_a.json
cargo run --release --offline -p spark-cli --bin spark -- \
    store verify "$STORE_DIR" > STORE_VERIFY_b.json
cmp STORE_VERIFY_a.json STORE_VERIFY_b.json || {
    echo "store recovery report is not deterministic across runs" >&2
    exit 1
}
grep -Eq '"entries_verified": *2' STORE_VERIFY_a.json || {
    echo "store verify did not checksum both model matrices" >&2
    exit 1
}
grep -Eq '"torn_tail": *null' STORE_VERIFY_a.json || {
    echo "store verify diagnosed a torn tail on a cleanly closed store" >&2
    exit 1
}
rm -f STORE_VERIFY_a.json STORE_VERIFY_b.json
rm -rf "$STORE_DIR"

echo "==> blockstore bench -> BENCH_store.json"
# Full timing windows: cold_load_speedup is a gate (opening the store and
# pread-ing the encoded panels back must beat re-encoding the matrix from
# dense f32 by >=3x, or persistence isn't paying rent).
SPARK_BENCH_JSON="$PWD/BENCH_store.json" \
    cargo bench --offline -p spark-bench --bench store
grep -Eq '"cold_load_mean_ns": *[0-9]' BENCH_store.json || {
    echo "BENCH_store.json missing a numeric cold_load_mean_ns" >&2
    exit 1
}
awk '/"cold_load_speedup"/ {
    gsub(/[",]/, ""); if ($2 + 0 < 3.0) { exit 1 } else { found = 1 }
} END { exit found ? 0 : 1 }' BENCH_store.json || {
    echo "BENCH_store.json: store cold-load is not >=3x re-encoding from dense" >&2
    exit 1
}

echo "==> fleet router kill drill -> BENCH_router.json"
# Snapshot-provisions three backend stores from one seed store (spark
# store snapshot), boots three real `spark serve` child processes behind
# the fleet router, drives a seeded open-loop load through the router,
# kill -9s one backend mid-run, and restarts it. Gates: availability
# >= 0.99 while a replica is down, zero wrong bodies from the
# cross-replica byte-identity oracle on /v1/infer, zero handler or
# router panics, and the killed backend re-admitted through half-open
# probes. SPARK_BIN pins the child-process binary to the release build
# from the top of this script; the timeout bounds the whole drill
# (load + restart + re-admission polling) in wall-clock time.
SPARK_BIN="$PWD/target/release/spark" timeout 180 \
    "$PWD/target/release/spark" \
    router --bench-kill --seed 7 --out "$PWD/BENCH_router.json"
awk '/"availability"/ {
    gsub(/[",]/, ""); if ($2 + 0 < 0.99) { exit 1 } else { found = 1 }
} END { exit found ? 0 : 1 }' BENCH_router.json || {
    echo "BENCH_router.json: fleet availability below 0.99 under kill -9" >&2
    exit 1
}
awk '/"wrong_bodies"/ {
    gsub(/[",]/, ""); if ($2 + 0 != 0) { exit 1 } else { found = 1 }
} END { exit found ? 0 : 1 }' BENCH_router.json || {
    echo "BENCH_router.json: byte-identity oracle saw a divergent /v1/infer body" >&2
    exit 1
}
awk '/"panics_total"/ {
    gsub(/[",]/, ""); if ($2 + 0 != 0) { exit 1 } else { found = 1 }
} END { exit found ? 0 : 1 }' BENCH_router.json || {
    echo "BENCH_router.json: a router worker or backend handler panicked" >&2
    exit 1
}
grep -Eq '"victim_restarted": *true' BENCH_router.json || {
    echo "BENCH_router.json: killed backend was never restarted" >&2
    exit 1
}
grep -Eq '"victim_readmitted": *true' BENCH_router.json || {
    echo "BENCH_router.json: restarted backend never re-admitted via half-open probes" >&2
    exit 1
}

echo "==> experiments --smoke"
SPARK_BENCH_QUICK=1 cargo run --release --offline -p spark-bench --bin experiments -- --smoke

echo "==> chaos: seeded fault-injection sweep, run twice, byte-identical"
# >=10k corrupted streams through the codec plus the hardware and serve
# fault planes. The report must be a pure function of (seed, streams):
# any panic, any nondeterminism, or any broken resilience contract fails
# here (run_chaos exits nonzero on a contract violation).
cargo run --release --offline -p spark-cli --bin spark -- \
    chaos --seed 7 --streams 10000 > CHAOS_a.json
cargo run --release --offline -p spark-cli --bin spark -- \
    chaos --seed 7 --streams 10000 > CHAOS_b.json
cmp CHAOS_a.json CHAOS_b.json || {
    echo "chaos report is not deterministic across runs" >&2
    exit 1
}
grep -Eq '"panics": *0' CHAOS_a.json || {
    echo "chaos sweep recorded decoder panics" >&2
    exit 1
}
grep -Eq '"bulk_divergence": *0' CHAOS_a.json || {
    echo "chaos sweep: bulk decoder diverged from the FSM on corruption" >&2
    exit 1
}
# The crash plane (blockstore power-cut sweep) reports its own counters;
# no plane anywhere in the combined report may record a panic.
if grep -Eq '"panics": *[1-9]' CHAOS_a.json; then
    echo "chaos sweep: a fault plane recorded panics" >&2
    exit 1
fi
grep -Eq '"compaction_mismatches": *0' CHAOS_a.json || {
    echo "chaos sweep: blockstore crash plane missing or diverged" >&2
    exit 1
}
mv CHAOS_a.json CHAOS.json
rm -f CHAOS_b.json

echo "==> robustness grep gate (no unwrap()/panic! in serve/codec/store non-test code)"
# Non-test code in the trust-boundary crates must use typed errors. The
# awk body stops scanning each file at its #[cfg(test)] marker (test
# modules sit at the bottom of every file in this repo). expect() with an
# infallibility comment is allowed; .unwrap() and panic!() are not.
violations=$(awk '
    FNR == 1 { in_tests = 0 }
    /#\[cfg\(test\)\]/ { in_tests = 1 }
    in_tests { next }
    /^[[:space:]]*\/\// { next }
    /\.unwrap\(\)|panic!\(/ { print FILENAME ":" FNR ": " $0 }
' crates/serve/src/*.rs crates/codec/src/*.rs crates/store/src/*.rs)
if [ -n "$violations" ]; then
    echo "grep gate: forbidden unwrap()/panic!() in non-test code:" >&2
    echo "$violations" >&2
    exit 1
fi

echo "==> ci.sh OK"
