//! Quickstart: quantize a tensor, SPARK-encode it, decode it back, and look
//! at the error bound, compression ratio and code statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use spark::codec::{decode_stream, encode_tensor, MAX_ENCODING_ERROR};
use spark::quant::{Codec, MagnitudeQuantizer, SparkCodec};
use spark::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A long-tailed tensor: the weight-like shape SPARK is designed for —
    // dense body near zero, a few large outliers stretching the range.
    let data: Vec<f32> = (0..4096)
        .map(|i| {
            let body = (((i * 2654435761usize) % 1000) as f32 / 1000.0 - 0.5) * 0.1;
            if i % 128 == 0 {
                body * 40.0
            } else {
                body
            }
        })
        .collect();
    let tensor = Tensor::from_vec(data, &[64, 64])?;

    // 1) Quantize to per-tensor INT8 magnitudes (the paper's front-end).
    let quantizer = MagnitudeQuantizer::new(8)?;
    let codes = quantizer.quantize(&tensor)?;
    println!("quantized {} values, scale = {:.4}", codes.codes.len(), codes.scale);

    // 2) SPARK-encode into the aligned nibble stream.
    let encoded = encode_tensor(&codes.codes);
    println!(
        "encoded: {} values -> {} bytes ({:.2} bits/value, {:.2}x compression)",
        encoded.elements,
        encoded.stream.byte_len(),
        encoded.stats.avg_bits(),
        encoded.compression_ratio()
    );
    println!(
        "short codes: {:.1}%, lossless: {:.1}%, max error: {}",
        encoded.stats.short_fraction() * 100.0,
        encoded.stats.lossless_fraction() * 100.0,
        encoded.stats.max_error()
    );

    // 3) Decode and verify the paper's error bound (<= 16 code units).
    let decoded = decode_stream(&encoded.stream)?;
    assert_eq!(decoded.len(), codes.codes.len());
    for (orig, dec) in codes.codes.iter().zip(&decoded) {
        assert!((i16::from(*orig) - i16::from(*dec)).unsigned_abs() <= u16::from(MAX_ENCODING_ERROR));
    }
    println!("round trip OK: every value within the paper's error bound");

    // 4) Or do all of it in one call through the Codec interface.
    let result = SparkCodec::default().compress(&tensor)?;
    println!(
        "end-to-end: {:.2} bits/value, SQNR {:.1} dB vs FP32",
        result.avg_bits,
        result.sqnr_db(&tensor)
    );
    Ok(())
}
