//! Train a small CNN on a synthetic vision task, then evaluate FP32 vs INT8
//! vs SPARK vs low-bit codecs end to end — the mechanics behind Table III.
//!
//! ```sh
//! cargo run --release --example train_quantized
//! ```

use spark::data::Dataset;
use spark::nn::{proxy, train};
use spark::quant::{AntCodec, Codec, SparkCodec, UniformQuantizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A noisy bar-orientation task: hard enough that quantization damage
    // shows up in test accuracy.
    let data = Dataset::bars_noisy(1600, 8, 16, 0.7, 7);
    let (train_set, test_set) = data.split(0.8);
    println!(
        "dataset: {} train / {} test, {} classes",
        train_set.len(),
        test_set.len(),
        data.classes
    );

    let mut model = proxy::tiny_cnn(8, 6, 48, 16, 99);
    println!("model: {} parameters", model.param_count());
    let cfg = train::TrainConfig {
        epochs: 16,
        lr: 0.25,
        batch: 16,
        seed: 7,
    };
    let loss = train::train(&mut model, &train_set, &cfg);
    let fp32 = train::evaluate(&mut model, &test_set);
    println!("trained: final loss {loss:.4}, FP32 test accuracy {:.2}%\n", fp32 * 100.0);

    let codecs: Vec<Box<dyn Codec>> = vec![
        Box::new(UniformQuantizer::symmetric(8)),
        Box::new(SparkCodec::default()),
        Box::new(SparkCodec::default().without_compensation()),
        Box::new(AntCodec::new(4)?),
        Box::new(UniformQuantizer::symmetric(4)),
        Box::new(UniformQuantizer::symmetric(2)),
    ];
    println!("{:<14} {:>9} {:>11} {:>9}", "codec", "bits/val", "accuracy %", "loss pp");
    for codec in &codecs {
        // Retrain an identical model so each codec starts from the same
        // trained weights (training is deterministic per seed).
        let mut m = proxy::tiny_cnn(8, 6, 48, 16, 99);
        train::train(&mut m, &train_set, &cfg);
        let bits = train::compress_weights(&mut m, codec.as_ref())?;
        let acc = train::evaluate(&mut m, &test_set);
        println!(
            "{:<14} {:>9.2} {:>11.2} {:>9.2}",
            codec.name(),
            bits,
            acc * 100.0,
            (fp32 - acc) * 100.0
        );
    }
    Ok(())
}
