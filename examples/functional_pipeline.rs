//! Drive one layer through the complete *functional* SPARK PE page —
//! quantize, encode to the DRAM nibble stream, decode at the array borders,
//! compute on the mixed-precision MAC grid, and re-encode the outputs —
//! then compare the numbers against a plain FP32 matmul.
//!
//! ```sh
//! cargo run --release --example functional_pipeline
//! ```

use spark::data::ModelProfile;
use spark::sim::functional::{run_layer, FunctionalArray};
use spark::tensor::{ops, stats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A BERT-shaped layer slice: 32 tokens x 128 features -> 64 outputs.
    let profile = ModelProfile::bert();
    let acts_flat = profile.sample_activations(32 * 128, 5);
    let weights_flat = profile.sample_tensor(128 * 64, 6);
    let activations = acts_flat.reshape(&[32, 128])?;
    let weights = weights_flat.reshape(&[128, 64])?;

    let array = FunctionalArray::new(64, 64);
    let result = run_layer(&array, &activations, &weights)?;
    let reference = ops::matmul(&activations, &weights)?;

    println!("functional PE page: 32x128 . 128x64 GEMM");
    println!(
        "  decoded {} operand values, executed {} MACs in {} busy cycles",
        result.stats.values_decoded, result.stats.macs, result.stats.busy_cycles
    );
    println!(
        "  effective cycles/MAC: {:.2} (1.0 = pure INT4, 4.0 = pure INT8)",
        result.stats.busy_cycles as f64 / result.stats.macs as f64
    );
    println!(
        "  output SQNR vs FP32 matmul: {:.1} dB",
        stats::sqnr_db(&reference, &result.output)
    );
    println!(
        "  output stream: {} values re-encoded at {:.2} bits/value ({:.1}% short)",
        result.stats.values_encoded,
        result.encoded_output.stats.avg_bits(),
        result.encoded_output.stats.short_fraction() * 100.0
    );

    // Show a few entries side by side.
    println!("\n  first outputs (FP32 reference vs pipeline):");
    for j in 0..4 {
        println!(
            "    [{j}] {:>9.5} vs {:>9.5}",
            reference.get(&[0, j]).expect("in range"),
            result.output.get(&[0, j]).expect("in range")
        );
    }

    // The integer datapath is exact: re-running yields identical results.
    let again = run_layer(&array, &activations, &weights)?;
    assert_eq!(again.output, result.output);
    println!("\n  deterministic: second run bit-identical");
    Ok(())
}
