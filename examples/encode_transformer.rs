//! Codec shoot-out on a BERT-style tensor profile: SPARK vs every baseline
//! the paper compares against, on reconstruction fidelity and storage bits —
//! the per-tensor view behind Tables IV and V.
//!
//! ```sh
//! cargo run --release --example encode_transformer
//! ```

use spark::data::ModelProfile;
use spark::quant::{
    AdaptiveFloatCodec, AntCodec, BiScaledCodec, Codec, GoboCodec, OlAccelCodec, OliveCodec,
    OutlierSuppressionCodec, SparkCodec, UniformQuantizer,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = ModelProfile::bert();
    let tensor = profile.sample_tensor(100_000, 42);
    println!(
        "BERT-calibrated tensor: {} values (Gaussian body + outlier tail)\n",
        tensor.len()
    );

    let codecs: Vec<Box<dyn Codec>> = vec![
        Box::new(SparkCodec::default()),
        Box::new(SparkCodec::default().without_compensation()),
        Box::new(AntCodec::new(4)?),
        Box::new(AntCodec::new(6)?),
        Box::new(BiScaledCodec::new(6)?),
        Box::new(OliveCodec::new()),
        Box::new(OlAccelCodec::new()),
        Box::new(GoboCodec::new()),
        Box::new(OutlierSuppressionCodec::new(6)?),
        Box::new(AdaptiveFloatCodec::adafloat8()),
        Box::new(UniformQuantizer::symmetric(8)),
        Box::new(UniformQuantizer::symmetric(4)),
    ];

    println!(
        "{:<14} {:>9} {:>11} {:>12}",
        "codec", "bits/val", "SQNR (dB)", "low-prec %"
    );
    let mut results: Vec<(String, f64, f64, f64)> = codecs
        .iter()
        .map(|c| {
            let r = c.compress(&tensor).expect("finite tensor");
            (
                c.name(),
                r.avg_bits,
                r.sqnr_db(&tensor),
                r.low_precision_fraction * 100.0,
            )
        })
        .collect();
    // Sort by fidelity-per-bit story: ascending bits, then descending SQNR.
    results.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.2.partial_cmp(&a.2).unwrap()));
    for (name, bits, sqnr, lp) in &results {
        println!("{name:<14} {bits:>9.2} {sqnr:>11.1} {lp:>12.1}");
    }

    let spark = results.iter().find(|r| r.0 == "SPARK").expect("SPARK ran");
    let ant4 = results.iter().find(|r| r.0 == "ANT4").expect("ANT4 ran");
    println!(
        "\nSPARK at {:.2} bits reaches {:.1} dB; ANT at 4 bits reaches {:.1} dB — \
         the bit-level adaptivity buys {:.1} dB at +{:.2} bits.",
        spark.1,
        spark.2,
        ant4.2,
        spark.2 - ant4.2,
        spark.1 - 4.0
    );
    Ok(())
}
