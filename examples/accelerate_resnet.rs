//! Run the ResNet-50 workload through the SPARK accelerator and the
//! baselines, printing speedups and the energy decomposition — a one-model
//! slice of Figs 11 and 12.
//!
//! ```sh
//! cargo run --release --example accelerate_resnet
//! ```

use spark::data::ModelProfile;
use spark::nn::ModelWorkload;
use spark::sim::{Accelerator, AcceleratorKind, PrecisionProfile, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = ModelProfile::resnet50();
    let workload = ModelWorkload::resnet50();
    println!(
        "{}: {:.2} GMACs, {:.1}M GEMM weights",
        workload.name,
        workload.total_macs() as f64 / 1e9,
        workload.total_weights() as f64 / 1e6
    );

    // Measure the SPARK precision statistics on calibrated tensors.
    let weights = profile.sample_tensor(40_000, 1);
    let acts = profile.sample_activations(40_000, 2);
    let precision = PrecisionProfile::from_tensors(&weights, &acts)?;
    println!(
        "measured: {:.1}% short weights, {:.1}% short activations, {:.2}/{:.2} bits",
        precision.short_frac_w * 100.0,
        precision.short_frac_a * 100.0,
        precision.spark_bits_w,
        precision.spark_bits_a
    );

    let config = SimConfig::default();
    let spark = Accelerator::new(AcceleratorKind::Spark).run(&workload, &precision, &config);
    println!("\n{:<10} {:>12} {:>9} {:>10} {:>22}", "design", "cycles", "ms", "speedup", "energy dram/buf/core %");
    for kind in AcceleratorKind::ALL {
        let acc = Accelerator::new(kind);
        let r = acc.run(&workload, &precision, &config);
        let e = &r.energy;
        let total = e.total();
        println!(
            "{:<10} {:>12.3e} {:>9.2} {:>9.2}x {:>7.1}/{:>4.1}/{:>5.1}",
            kind.name(),
            r.total_cycles,
            r.latency_ms(&config),
            spark.speedup_vs(&r),
            e.dram_pj / total * 100.0,
            e.buffer_pj / total * 100.0,
            e.core_pj / total * 100.0
        );
    }
    println!(
        "\nSPARK vs Eyeriss: {:.2}x faster, {:.1}% less energy",
        spark.speedup_vs(
            &Accelerator::new(AcceleratorKind::Eyeriss).run(&workload, &precision, &config)
        ),
        spark.energy_reduction_vs(
            &Accelerator::new(AcceleratorKind::Eyeriss).run(&workload, &precision, &config)
        ) * 100.0
    );
    Ok(())
}
