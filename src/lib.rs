//! # SPARK — Scalable and Precision-Aware Acceleration of Neural Networks
//!
//! Umbrella crate for the SPARK reproduction (HPCA 2024). It re-exports the
//! workspace crates so downstream users can depend on a single package:
//!
//! - [`codec`] — the SPARK variable-length encoding (the paper's core
//!   contribution): encoder, decoder, nibble streams, compensation mechanism.
//! - [`quant`] — quantization substrate plus every baseline codec the paper
//!   compares against (ANT, BiScaled, OLAccel, GOBO, Olive, outlier
//!   suppression, AdaptiveFloat).
//! - [`tensor`] — dense tensor substrate (matmul, im2col, statistics).
//! - [`nn`] — layers, model workloads (VGG/ResNet/BERT/ViT/GPT-2/BART) and
//!   tiny trainable models for accuracy experiments.
//! - [`data`] — calibrated synthetic parameter distributions, datasets and
//!   DBB structured pruning.
//! - [`sim`] — the cycle-accurate systolic-array simulator with energy and
//!   area models and iso-area baseline accelerator configurations.
//!
//! # Quickstart
//!
//! ```
//! use spark::codec::{encode_tensor, decode_stream};
//!
//! let codes: Vec<u8> = (0u16..=255).map(|v| v as u8).collect();
//! let encoded = encode_tensor(&codes);
//! let decoded = decode_stream(&encoded.stream).expect("well-formed stream");
//! for (orig, dec) in codes.iter().zip(&decoded) {
//!     assert!((*orig as i16 - *dec as i16).abs() <= 16);
//! }
//! ```

pub use spark_codec as codec;
pub use spark_data as data;
pub use spark_nn as nn;
pub use spark_quant as quant;
pub use spark_sim as sim;
pub use spark_tensor as tensor;

/// Commonly used items, importable with `use spark::prelude::*;`.
pub mod prelude {
    pub use spark_codec::{
        decode_stream, encode_tensor, SparkCode, SparkDecoder, SparkEncoder, SparkFormat,
    };
    pub use spark_data::{Dataset, ModelProfile};
    pub use spark_nn::{ModelWorkload, Sequential};
    pub use spark_quant::{Codec, QuantParams, SparkCodec, UniformQuantizer};
    pub use spark_sim::{
        Accelerator, AcceleratorKind, FunctionalArray, PrecisionProfile, SimConfig,
    };
    pub use spark_tensor::{QuantTensor, Shape, Tensor};
}
