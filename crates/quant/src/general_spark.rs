//! The generalized SPARK family as a [`Codec`]: quantize to `base_bits`
//! magnitudes, encode with any `(base, short)` [`SparkFormat`].
//!
//! This exposes the scalability axis of the paper: SPARK-16/8 for INT16
//! models, SPARK-6/3 for aggressive quantization, and anything in between.
//! The format-sweep ablation bench uses it to show where the 8/4 point the
//! paper chose sits on the bits-vs-error frontier.
//!
//! **Choosing a format:** the check-bit rounding error is bounded in
//! *absolute* code units (`2^(base-short)`), so it is only benign when the
//! distribution body sits inside the short-code range. A body that lands
//! just above `2^(short-1)` falls in the lossy band where the *relative*
//! error can be large — widening the base without widening the short code
//! can therefore hurt. The paper's 8/4 point works because INT8 DNN
//! tensors concentrate their body in `[0, 7]`; the tests below pin this
//! behaviour.

use spark_codec::SparkFormat;
use spark_tensor::{stats, Tensor};

use crate::codec::{check_finite, Codec, CodecResult, QuantError};

/// Generalized SPARK codec at an arbitrary `(base, short)` format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneralSparkCodec {
    format: SparkFormat,
}

impl GeneralSparkCodec {
    /// Creates a codec for the given format widths.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadConfig`] for invalid width pairs.
    pub fn new(base_bits: u8, short_bits: u8) -> Result<Self, QuantError> {
        let format = SparkFormat::new(base_bits, short_bits)
            .map_err(|e| QuantError::BadConfig(e.to_string()))?;
        Ok(Self { format })
    }

    /// The underlying format.
    pub fn format(&self) -> SparkFormat {
        self.format
    }
}

impl Codec for GeneralSparkCodec {
    fn name(&self) -> String {
        self.format.to_string()
    }

    fn compress(&self, tensor: &Tensor) -> Result<CodecResult, QuantError> {
        check_finite(tensor)?;
        let alpha = stats::abs_max(tensor);
        let alpha = if alpha == 0.0 { 1.0 } else { alpha };
        let qmax = f64::from(self.format.max_value());
        let mut short = 0usize;
        let mut total_bits = 0u64;
        let data: Vec<f32> = tensor
            .as_slice()
            .iter()
            .map(|&x| {
                let code = ((f64::from(x.abs()) / f64::from(alpha)) * qmax).round() as u16;
                let code = code.min(self.format.max_value());
                let enc = self.format.encode(code);
                total_bits += u64::from(enc.bits(&self.format));
                if matches!(enc, spark_codec::GeneralCode::Short(_)) {
                    short += 1;
                }
                let rec = self.format.decode(enc);
                let mag = (f64::from(rec) / qmax * f64::from(alpha)) as f32;
                if x < 0.0 {
                    -mag
                } else {
                    mag
                }
            })
            .collect();
        let n = tensor.len().max(1);
        Ok(CodecResult {
            reconstructed: Tensor::from_vec(data, tensor.dims())
                .map_err(|e| QuantError::BadConfig(e.to_string()))?,
            avg_bits: total_bits as f64 / n as f64,
            low_precision_fraction: short as f64 / n as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spark::SparkCodec;

    fn long_tail(n: usize) -> Tensor {
        Tensor::from_fn(&[n], |i| {
            let u = ((i * 2654435761) % 1000) as f32 / 1000.0 - 0.5;
            if i % 97 == 0 {
                u * 30.0
            } else {
                u * 0.2
            }
        })
    }

    #[test]
    fn config_validation() {
        assert!(GeneralSparkCodec::new(8, 4).is_ok());
        assert!(GeneralSparkCodec::new(16, 8).is_ok());
        assert!(GeneralSparkCodec::new(8, 8).is_err());
        assert!(GeneralSparkCodec::new(17, 8).is_err());
    }

    #[test]
    fn paper_format_close_to_specialized_codec() {
        // Same front-end assumptions except bias correction; fidelity and
        // bits should be nearly identical.
        let t = long_tail(4000);
        let gen = GeneralSparkCodec::new(8, 4).unwrap().compress(&t).unwrap();
        let spec = SparkCodec::default()
            .without_bias_correction()
            .compress(&t)
            .unwrap();
        assert!((gen.avg_bits - spec.avg_bits).abs() < 0.05);
        assert!((gen.sqnr_db(&t) - spec.sqnr_db(&t)).abs() < 1.5);
    }

    /// An extreme-dynamic-range tensor: tiny body (around `alpha/2^11`)
    /// plus full-scale outliers. Narrow formats zero the body entirely;
    /// wide formats resolve it inside their short range.
    fn extreme_range(n: usize) -> Tensor {
        Tensor::from_fn(&[n], |i| {
            let u = 0.5 + ((i * 2654435761) % 1000) as f32 / 1000.0 * 1.5; // [0.5, 2]
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            if i % 97 == 0 {
                sign // the outlier sets alpha = 1
            } else {
                sign * u * (2.0f32).powi(-11)
            }
        })
    }

    #[test]
    fn wider_base_improves_fidelity_on_matched_data() {
        // When the body fits inside every format's short range relative to
        // alpha, more base bits monotonically improve fidelity.
        let t = extreme_range(4000);
        let s8 = GeneralSparkCodec::new(8, 4).unwrap().compress(&t).unwrap();
        let s12 = GeneralSparkCodec::new(12, 6).unwrap().compress(&t).unwrap();
        let s16 = GeneralSparkCodec::new(16, 8).unwrap().compress(&t).unwrap();
        assert!(s12.sqnr_db(&t) > s8.sqnr_db(&t), "{} vs {}", s12.sqnr_db(&t), s8.sqnr_db(&t));
        assert!(s16.sqnr_db(&t) > s12.sqnr_db(&t), "{} vs {}", s16.sqnr_db(&t), s12.sqnr_db(&t));
    }

    #[test]
    fn format_must_match_distribution_body() {
        // On INT8-scale long tails the paper's 8/4 format keeps the body in
        // short codes, while 16/8 pushes it into the lossy band just above
        // the short range — the wider base does NOT help there. This is the
        // documented format-selection rule.
        let t = long_tail(4000);
        let s8 = GeneralSparkCodec::new(8, 4).unwrap().compress(&t).unwrap();
        let s16 = GeneralSparkCodec::new(16, 8).unwrap().compress(&t).unwrap();
        assert!(s8.low_precision_fraction > 2.0 * s16.low_precision_fraction);
        assert!(s8.avg_bits < s16.avg_bits);
    }

    #[test]
    fn half_width_short_codes_dominate_on_matched_long_tails() {
        let t = long_tail(4000);
        let r = GeneralSparkCodec::new(8, 4).unwrap().compress(&t).unwrap();
        assert!(r.low_precision_fraction > 0.4, "{}", r.low_precision_fraction);
        assert!(r.avg_bits < 8.0);
    }

    #[test]
    fn name_is_format_name() {
        assert_eq!(GeneralSparkCodec::new(16, 8).unwrap().name(), "SPARK-16/8");
    }

    #[test]
    fn zero_tensor_all_short() {
        let t = Tensor::zeros(&[32]);
        let r = GeneralSparkCodec::new(8, 4).unwrap().compress(&t).unwrap();
        assert_eq!(r.low_precision_fraction, 1.0);
        assert_eq!(r.mse(&t), 0.0);
    }
}
