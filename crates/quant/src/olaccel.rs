//! OLAccel (ISCA '18): outlier-aware low-precision computation.
//!
//! OLAccel keeps ~97 % of values at 4 bits and routes the top few percent by
//! magnitude (the outliers) through 16-bit datapaths, recording their
//! positions in a coordinate list. The coordinate list is the scheme's
//! storage overhead; the accuracy cost is the 4-bit body.

use spark_tensor::Tensor;

use crate::codec::{check_finite, Codec, CodecResult, QuantError};

/// The OLAccel codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OlAccelCodec {
    /// Bit-width of the dense body (the paper uses 4).
    pub body_bits: u8,
    /// Bit-width of outliers (the paper uses 16).
    pub outlier_bits: u8,
    /// Fraction of values treated as outliers (paper: ~3 %).
    pub outlier_fraction: f32,
    /// Bits per coordinate-list entry.
    pub coord_bits: u8,
}

impl Default for OlAccelCodec {
    fn default() -> Self {
        Self {
            body_bits: 4,
            outlier_bits: 16,
            outlier_fraction: 0.03,
            coord_bits: 16,
        }
    }
}

impl OlAccelCodec {
    /// The paper's configuration (4-bit body, 16-bit outliers, 3 %).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the outlier fraction.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadConfig`] outside `[0, 0.5]`.
    pub fn with_outlier_fraction(mut self, f: f32) -> Result<Self, QuantError> {
        if !(0.0..=0.5).contains(&f) {
            return Err(QuantError::BadConfig(format!(
                "outlier fraction {f} outside [0, 0.5]"
            )));
        }
        self.outlier_fraction = f;
        Ok(self)
    }
}

impl Codec for OlAccelCodec {
    fn name(&self) -> String {
        "OLAccel".to_string()
    }

    fn compress(&self, tensor: &Tensor) -> Result<CodecResult, QuantError> {
        check_finite(tensor)?;
        let n = tensor.len();
        if n == 0 {
            return Ok(CodecResult {
                reconstructed: tensor.clone(),
                avg_bits: f64::from(self.body_bits),
                low_precision_fraction: 1.0,
            });
        }
        // Threshold: the magnitude above which a value is an outlier.
        let mut mags: Vec<f32> = tensor.as_slice().iter().map(|x| x.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let cutoff_idx = ((n as f32) * (1.0 - self.outlier_fraction)) as usize;
        let threshold = mags[cutoff_idx.min(n - 1)];
        let body_alpha = if threshold == 0.0 { 1.0 } else { threshold };
        let full_alpha = *mags.last().expect("nonempty");
        let full_alpha = if full_alpha == 0.0 { 1.0 } else { full_alpha };

        let body_qmax = ((1u32 << (self.body_bits - 1)) - 1) as f32;
        let out_qmax = ((1u32 << (self.outlier_bits - 1)) - 1) as f32;
        let body_step = body_alpha / body_qmax;
        let out_step = full_alpha / out_qmax;
        let mut outliers = 0usize;
        let data: Vec<f32> = tensor
            .as_slice()
            .iter()
            .map(|&x| {
                if x.abs() <= body_alpha {
                    (x / body_step).round().clamp(-body_qmax, body_qmax) * body_step
                } else {
                    outliers += 1;
                    (x / out_step).round().clamp(-out_qmax, out_qmax) * out_step
                }
            })
            .collect();
        let of = outliers as f64 / n as f64;
        let avg_bits = f64::from(self.body_bits)
            + of * f64::from(self.outlier_bits - self.body_bits).max(0.0)
            + of * f64::from(self.coord_bits);
        Ok(CodecResult {
            reconstructed: Tensor::from_vec(data, tensor.dims())
                .map_err(|e| QuantError::BadConfig(e.to_string()))?,
            avg_bits,
            low_precision_fraction: 1.0 - of,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformQuantizer;

    fn long_tail(n: usize) -> Tensor {
        let data: Vec<f32> = (0..n)
            .map(|i| {
                let u = ((i * 2654435761) % 1000) as f32 / 1000.0 - 0.5;
                if i % 53 == 0 {
                    u * 30.0
                } else {
                    u * 0.3
                }
            })
            .collect();
        Tensor::from_vec(data, &[n]).unwrap()
    }

    #[test]
    fn beats_plain_int4_on_outlier_data() {
        let x = long_tail(2000);
        let ol = OlAccelCodec::new().compress(&x).unwrap();
        let int4 = UniformQuantizer::symmetric(4).compress(&x).unwrap();
        assert!(ol.mse(&x) < int4.mse(&x));
    }

    #[test]
    fn coordinate_overhead_charged() {
        let x = long_tail(2000);
        let r = OlAccelCodec::new().compress(&x).unwrap();
        assert!(r.avg_bits > 4.0);
        // 3 % outliers with 12 extra data bits + 16 coord bits ≈ 0.84 extra.
        assert!(r.avg_bits < 6.0, "avg_bits {}", r.avg_bits);
    }

    #[test]
    fn outlier_fraction_tracked() {
        let x = long_tail(2000);
        let r = OlAccelCodec::new().compress(&x).unwrap();
        assert!(r.low_precision_fraction >= 0.95);
        assert!(r.low_precision_fraction < 1.0);
    }

    #[test]
    fn zero_fraction_degenerates_to_int4() {
        let x = long_tail(500);
        let ol = OlAccelCodec::new()
            .with_outlier_fraction(0.0)
            .unwrap()
            .compress(&x)
            .unwrap();
        // With no outliers everything is 4-bit over the max range... except
        // threshold = max, so the body covers everything.
        assert_eq!(ol.low_precision_fraction, 1.0);
    }

    #[test]
    fn config_validation() {
        assert!(OlAccelCodec::new().with_outlier_fraction(0.6).is_err());
        assert!(OlAccelCodec::new().with_outlier_fraction(-0.1).is_err());
    }

    #[test]
    fn empty_tensor_ok() {
        let x = Tensor::zeros(&[0]);
        let r = OlAccelCodec::new().compress(&x).unwrap();
        assert_eq!(r.avg_bits, 4.0);
    }

    #[test]
    fn outliers_kept_at_high_precision() {
        let x = long_tail(2000);
        let r = OlAccelCodec::new().compress(&x).unwrap();
        // The largest value must be reconstructed nearly exactly (16-bit).
        let (idx, &max) = x
            .as_slice()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        let rec = r.reconstructed.as_slice()[idx];
        assert!(((max - rec) / max).abs() < 1e-3, "{max} vs {rec}");
    }
}
