//! Outlier Suppression (NeurIPS '22): shrink the calibration range before
//! uniform quantization.
//!
//! The original method migrates the outlier "gamma" out of LayerNorm and
//! clips the remaining distribution; the effect at the tensor level is
//! quantile clipping followed by uniform quantization, which is what this
//! codec implements (the "OS" column of the paper's Table V).

use spark_tensor::Tensor;

use crate::codec::{Codec, CodecResult, QuantError};
use crate::uniform::UniformQuantizer;

/// The Outlier Suppression codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierSuppressionCodec {
    bits: u8,
    clip_quantile: f32,
}

impl OutlierSuppressionCodec {
    /// Creates the codec with the given bit-width and a 99.9 % clip, the
    /// token-wise clipping strength the OS paper reports for BERT.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBits`] for widths outside `2..=16`.
    pub fn new(bits: u8) -> Result<Self, QuantError> {
        if !(2..=16).contains(&bits) {
            return Err(QuantError::UnsupportedBits(bits));
        }
        Ok(Self {
            bits,
            clip_quantile: 0.999,
        })
    }

    /// Overrides the clipping quantile.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadConfig`] outside `(0, 1]`.
    pub fn with_clip_quantile(mut self, q: f32) -> Result<Self, QuantError> {
        if !(q > 0.0 && q <= 1.0) {
            return Err(QuantError::BadConfig(format!(
                "clip quantile {q} outside (0, 1]"
            )));
        }
        self.clip_quantile = q;
        Ok(self)
    }
}

impl Codec for OutlierSuppressionCodec {
    fn name(&self) -> String {
        format!("OS{}", self.bits)
    }

    fn compress(&self, tensor: &Tensor) -> Result<CodecResult, QuantError> {
        UniformQuantizer::symmetric(self.bits)
            .with_clip_quantile(self.clip_quantile)
            .compress(tensor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outlier_tensor(n: usize) -> Tensor {
        let data: Vec<f32> = (0..n)
            .map(|i| {
                let u = ((i * 2654435761) % 1000) as f32 / 1000.0 - 0.5;
                if i == 0 {
                    10.0
                } else {
                    u
                }
            })
            .collect();
        Tensor::from_vec(data, &[n]).unwrap()
    }

    #[test]
    fn clipping_beats_plain_uniform() {
        // At 4 bits the body step without clipping is 10/7 ≈ 1.4, so the
        // whole body collapses to zero; suppressing the rare outlier wins
        // even though the outlier itself saturates.
        let x = outlier_tensor(2000);
        let os = OutlierSuppressionCodec::new(4).unwrap().compress(&x).unwrap();
        let plain = UniformQuantizer::symmetric(4).compress(&x).unwrap();
        assert!(
            os.mse(&x) < plain.mse(&x),
            "os {} vs plain {}",
            os.mse(&x),
            plain.mse(&x)
        );
    }

    #[test]
    fn config_validation() {
        assert!(OutlierSuppressionCodec::new(1).is_err());
        assert!(OutlierSuppressionCodec::new(6)
            .unwrap()
            .with_clip_quantile(0.0)
            .is_err());
    }

    #[test]
    fn name_includes_bits() {
        assert_eq!(OutlierSuppressionCodec::new(6).unwrap().name(), "OS6");
    }
}
