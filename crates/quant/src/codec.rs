//! The [`Codec`] trait every compression scheme implements, and the shared
//! error type.

use spark_tensor::{stats, Tensor};
use std::error::Error;
use std::fmt;

/// Error produced by quantizers and codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// Requested bit-width outside the supported range.
    UnsupportedBits(u8),
    /// Input contained NaN or infinity.
    NonFiniteInput,
    /// Configuration parameter out of range.
    BadConfig(String),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::UnsupportedBits(b) => write!(f, "unsupported bit-width {b}"),
            QuantError::NonFiniteInput => write!(f, "input tensor contains non-finite values"),
            QuantError::BadConfig(msg) => write!(f, "bad codec configuration: {msg}"),
        }
    }
}

impl Error for QuantError {}

/// Output of compressing a tensor with a [`Codec`].
#[derive(Debug, Clone, PartialEq)]
pub struct CodecResult {
    /// The values the accelerator would actually compute with.
    pub reconstructed: Tensor,
    /// Storage cost in bits per element, including all index/metadata
    /// overhead the scheme needs.
    pub avg_bits: f64,
    /// Fraction of elements held in the scheme's low-precision form
    /// (1.0 for fixed-width schemes at their base width).
    pub low_precision_fraction: f64,
}

impl CodecResult {
    /// Mean squared reconstruction error against the original.
    ///
    /// # Panics
    ///
    /// Panics when `original` has a different length (caller bug).
    pub fn mse(&self, original: &Tensor) -> f64 {
        stats::mse(original, &self.reconstructed)
    }

    /// Signal-to-quantization-noise ratio in dB against the original.
    pub fn sqnr_db(&self, original: &Tensor) -> f64 {
        stats::sqnr_db(original, &self.reconstructed)
    }
}

/// A lossy tensor compression scheme.
///
/// Implementations quantize/encode an FP32 tensor with their own internal
/// representation and return the dequantized reconstruction plus its storage
/// cost. This is the single interface the accuracy experiments (Tables III,
/// IV, V; Fig 13) sweep over.
pub trait Codec {
    /// Human-readable scheme name (used in experiment tables).
    fn name(&self) -> String;

    /// Compresses a tensor and reports the reconstruction and storage cost.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::NonFiniteInput`] when the tensor contains NaN
    /// or infinite values, or a scheme-specific configuration error.
    fn compress(&self, tensor: &Tensor) -> Result<CodecResult, QuantError>;
}

/// Validates that every element is finite; shared by all codecs.
pub(crate) fn check_finite(t: &Tensor) -> Result<(), QuantError> {
    if t.as_slice().iter().all(|x| x.is_finite()) {
        Ok(())
    } else {
        Err(QuantError::NonFiniteInput)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(QuantError::UnsupportedBits(3).to_string().contains('3'));
        assert!(QuantError::NonFiniteInput.to_string().contains("non-finite"));
        assert!(QuantError::BadConfig("x".into()).to_string().contains('x'));
    }

    #[test]
    fn check_finite_detects_nan_and_inf() {
        let ok = Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap();
        assert!(check_finite(&ok).is_ok());
        let nan = Tensor::from_vec(vec![f32::NAN], &[1]).unwrap();
        assert!(check_finite(&nan).is_err());
        let inf = Tensor::from_vec(vec![f32::INFINITY], &[1]).unwrap();
        assert!(check_finite(&inf).is_err());
    }

    #[test]
    fn codec_result_metrics() {
        let orig = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let r = CodecResult {
            reconstructed: orig.clone(),
            avg_bits: 8.0,
            low_precision_fraction: 1.0,
        };
        assert_eq!(r.mse(&orig), 0.0);
        assert_eq!(r.sqnr_db(&orig), f64::INFINITY);
    }
}
