//! SPARK as a [`Codec`]: the INT8 sign-magnitude front-end followed by the
//! variable-length encoding from `spark-codec`.

use spark_codec::{CodeStats, EncodeMode};
use spark_tensor::Tensor;

use crate::codec::{Codec, CodecResult, QuantError};
use crate::params::MagnitudeQuantizer;

/// The paper's scheme end to end: per-tensor INT8 quantization, SPARK
/// encoding with the compensation mechanism, optional tensor-level bias
/// correction.
///
/// ```
/// use spark_quant::{Codec, SparkCodec};
/// use spark_tensor::Tensor;
/// // A long-tailed tensor: body near zero, a few large outliers.
/// let data: Vec<f32> = (0..256).map(|i| if i % 64 == 0 { 1.0 } else { 0.002 * (i % 8) as f32 }).collect();
/// let t = Tensor::from_vec(data, &[256])?;
/// let r = SparkCodec::default().compress(&t)?;
/// assert!(r.avg_bits < 6.0); // the body takes 4-bit short codes
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparkCodec {
    /// Encoding mode (compensated = the paper's default; truncated = the
    /// Fig 13 "w/o CM" ablation arm).
    pub mode: EncodeMode,
    /// Apply tensor-level bias correction to the reconstruction.
    pub bias_correct: bool,
    /// Bit-width of the quantization front-end (the paper uses 8).
    pub base_bits: u8,
}

impl Default for SparkCodec {
    fn default() -> Self {
        Self {
            mode: EncodeMode::Compensated,
            bias_correct: true,
            base_bits: 8,
        }
    }
}

impl SparkCodec {
    /// The paper's configuration (compensated, bias-corrected, INT8 base).
    pub fn new() -> Self {
        Self::default()
    }

    /// Disables the compensation mechanism (Fig 13 ablation).
    pub fn without_compensation(mut self) -> Self {
        self.mode = EncodeMode::Truncated;
        self
    }

    /// Disables the tensor-level bias correction.
    pub fn without_bias_correction(mut self) -> Self {
        self.bias_correct = false;
        self
    }

    /// Encodes a tensor and additionally returns the code statistics
    /// (short/lossless fractions) the characterization figures need.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::compress`].
    pub fn compress_with_stats(
        &self,
        tensor: &Tensor,
    ) -> Result<(CodecResult, CodeStats), QuantError> {
        let quantizer = MagnitudeQuantizer::new(self.base_bits)?;
        let codes = quantizer.quantize(tensor)?;
        let mut stats = CodeStats::new();
        let decoded: Vec<u8> = codes
            .codes
            .iter()
            .map(|&c| {
                let code = self.mode.encode(c);
                stats.record(c, code);
                code.decode()
            })
            .collect();
        let mut reconstructed = codes.dequantize_codes(&decoded, tensor.dims())?;
        if self.bias_correct && !tensor.is_empty() {
            // End-to-end magnitude shift (quantization + encoding): a single
            // per-tensor scalar, folded into the dequantization scale in
            // hardware. Computed offline for weights, from calibration for
            // activations.
            let shift = tensor
                .as_slice()
                .iter()
                .zip(reconstructed.as_slice())
                .map(|(&a, &b)| (a.abs() - b.abs()) as f64)
                .sum::<f64>() as f32
                / tensor.len() as f32;
            let signs = &codes.signs;
            let data = reconstructed.as_mut_slice();
            for (v, &neg) in data.iter_mut().zip(signs) {
                if neg {
                    *v -= shift;
                } else {
                    *v += shift;
                }
            }
        }
        let result = CodecResult {
            reconstructed,
            avg_bits: stats.avg_bits(),
            low_precision_fraction: stats.short_fraction(),
        };
        Ok((result, stats))
    }

    /// Computes the code statistics alone — same counts as
    /// [`Self::compress_with_stats`], but without materializing the code
    /// words, the decoded stream, or the reconstructed tensor. This is the
    /// pass the perf model uses to measure precision profiles, where only
    /// the short/long fractions matter.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::compress`].
    pub fn code_stats(&self, tensor: &Tensor) -> Result<CodeStats, QuantError> {
        let quantizer = MagnitudeQuantizer::new(self.base_bits)?;
        let mut stats = CodeStats::new();
        quantizer.for_each_code(tensor, |c| stats.record(c, self.mode.encode(c)))?;
        Ok(stats)
    }
}

impl Codec for SparkCodec {
    fn name(&self) -> String {
        match (self.mode, self.bias_correct) {
            (EncodeMode::Compensated, true) => "SPARK".to_string(),
            (EncodeMode::Compensated, false) => "SPARK-noBC".to_string(),
            (EncodeMode::Truncated, _) => "SPARK-noCM".to_string(),
        }
    }

    fn compress(&self, tensor: &Tensor) -> Result<CodecResult, QuantError> {
        self.compress_with_stats(tensor).map(|(r, _)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformQuantizer;

    /// A long-tailed test tensor: dense Gaussian-ish body + sparse outliers,
    /// the shape the paper observes in DNN layers.
    fn long_tail_tensor(n: usize) -> Tensor {
        let data: Vec<f32> = (0..n)
            .map(|i| {
                // deterministic pseudo-random body in [-0.1, 0.1]
                let x = ((i * 2654435761) % 1000) as f32 / 1000.0 - 0.5;
                let body = x * 0.2;
                if i % 97 == 0 {
                    body * 30.0 // outlier
                } else {
                    body
                }
            })
            .collect();
        Tensor::from_vec(data, &[n]).unwrap()
    }

    #[test]
    fn spark_beats_int4_on_long_tails() {
        let t = long_tail_tensor(2000);
        let spark = SparkCodec::default().compress(&t).unwrap();
        let int4 = UniformQuantizer::symmetric(4).compress(&t).unwrap();
        assert!(
            spark.mse(&t) < int4.mse(&t),
            "SPARK {} should beat INT4 {}",
            spark.mse(&t),
            int4.mse(&t)
        );
        assert!(spark.avg_bits < 8.0);
    }

    #[test]
    fn spark_close_to_int8_accuracy() {
        let t = long_tail_tensor(2000);
        let spark = SparkCodec::default().compress(&t).unwrap();
        let int8 = UniformQuantizer::symmetric(8).compress(&t).unwrap();
        // SPARK pays a little accuracy for ~40% fewer bits.
        assert!(spark.sqnr_db(&t) > int8.sqnr_db(&t) - 12.0);
        assert!(spark.avg_bits < int8.avg_bits);
    }

    #[test]
    fn compensation_beats_truncation() {
        let t = long_tail_tensor(2000);
        let cm = SparkCodec::default().compress(&t).unwrap();
        let trunc = SparkCodec::default()
            .without_compensation()
            .compress(&t)
            .unwrap();
        assert!(cm.mse(&t) <= trunc.mse(&t));
    }

    #[test]
    fn stats_report_short_fraction() {
        let t = long_tail_tensor(2000);
        let (_, stats) = SparkCodec::default().compress_with_stats(&t).unwrap();
        assert!(stats.short_fraction() > 0.2);
        assert!(stats.lossless_fraction() > 0.5);
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(SparkCodec::default().name(), "SPARK");
        assert_eq!(
            SparkCodec::default().without_compensation().name(),
            "SPARK-noCM"
        );
        assert_eq!(
            SparkCodec::default().without_bias_correction().name(),
            "SPARK-noBC"
        );
    }

    #[test]
    fn bias_correction_reduces_mean_shift() {
        let t = long_tail_tensor(4000);
        let with_bc = SparkCodec::default().compress(&t).unwrap();
        let without = SparkCodec::default()
            .without_bias_correction()
            .compress(&t)
            .unwrap();
        let mean_err = |r: &CodecResult| {
            let diff: f32 = t
                .as_slice()
                .iter()
                .zip(r.reconstructed.as_slice())
                .map(|(&a, &b)| a.abs() - b.abs())
                .sum();
            (diff / t.len() as f32).abs()
        };
        assert!(mean_err(&with_bc) <= mean_err(&without) + 1e-6);
    }

    #[test]
    fn code_stats_matches_full_compression_pass() {
        // The stats-only pass must count exactly what compress_with_stats
        // counts, for every codec variant.
        let t = long_tail_tensor(3000);
        for codec in [
            SparkCodec::default(),
            SparkCodec::default().without_compensation(),
        ] {
            let (_, full) = codec.compress_with_stats(&t).unwrap();
            let only = codec.code_stats(&t).unwrap();
            assert_eq!(only, full, "{}", codec.name());
        }
        // Degenerate inputs agree too.
        let zero = Tensor::zeros(&[32]);
        let (_, full) = SparkCodec::default().compress_with_stats(&zero).unwrap();
        assert_eq!(SparkCodec::default().code_stats(&zero).unwrap(), full);
    }

    #[test]
    fn code_stats_rejects_non_finite() {
        let t = Tensor::from_vec(vec![f32::NAN], &[1]).unwrap();
        assert!(SparkCodec::default().code_stats(&t).is_err());
    }

    #[test]
    fn zero_tensor_is_all_short_codes() {
        let t = Tensor::zeros(&[64]);
        let (r, stats) = SparkCodec::default().compress_with_stats(&t).unwrap();
        assert_eq!(stats.short_fraction(), 1.0);
        assert_eq!(r.avg_bits, 4.0);
    }
}
