//! GOBO (MICRO '20): dictionary quantization for attention-model weights.
//!
//! GOBO splits a weight tensor into a Gaussian body, represented by a small
//! centroid dictionary (3-bit indices), and the few outliers that do not fit
//! the Gaussian, stored at full precision with their coordinates. Only
//! weights are compressed (activations stay FP), which the paper's Table I
//! notes as GOBO's limitation.

use spark_tensor::{stats, Tensor};

use crate::codec::{check_finite, Codec, CodecResult, QuantError};

/// The GOBO codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoboCodec {
    /// Dictionary index width (paper: 3 bits, 8 centroids).
    pub index_bits: u8,
    /// Values beyond `outlier_sigma` standard deviations are outliers.
    pub outlier_sigma: f32,
    /// Bits to store one outlier (FP32 value + coordinate).
    pub outlier_bits: u8,
    /// K-means refinement iterations for the dictionary.
    pub kmeans_iters: usize,
}

impl Default for GoboCodec {
    fn default() -> Self {
        Self {
            index_bits: 3,
            outlier_sigma: 3.0,
            outlier_bits: 64,
            kmeans_iters: 8,
        }
    }
}

impl GoboCodec {
    /// The paper's configuration.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Codec for GoboCodec {
    fn name(&self) -> String {
        "GOBO".to_string()
    }

    fn compress(&self, tensor: &Tensor) -> Result<CodecResult, QuantError> {
        check_finite(tensor)?;
        let n = tensor.len();
        if n == 0 {
            return Ok(CodecResult {
                reconstructed: tensor.clone(),
                avg_bits: f64::from(self.index_bits),
                low_precision_fraction: 1.0,
            });
        }
        let summary = stats::summarize(tensor);
        let cut = self.outlier_sigma * summary.std;
        let is_outlier =
            |x: f32| summary.std > 0.0 && (x - summary.mean).abs() > cut;

        // Collect the Gaussian body and fit centroids with 1-D k-means,
        // deterministically seeded on evenly spaced quantiles.
        let body: Vec<f32> = tensor
            .as_slice()
            .iter()
            .copied()
            .filter(|&x| !is_outlier(x))
            .collect();
        let k = 1usize << self.index_bits;
        let centroids = kmeans_1d(&body, k, self.kmeans_iters);
        let mut outliers = 0usize;
        let data: Vec<f32> = tensor
            .as_slice()
            .iter()
            .map(|&x| {
                if is_outlier(x) {
                    outliers += 1;
                    x // stored exactly
                } else {
                    nearest(&centroids, x)
                }
            })
            .collect();
        let of = outliers as f64 / n as f64;
        let dict_bits = (k as f64 * 32.0) / n as f64; // the dictionary itself
        let avg_bits =
            f64::from(self.index_bits) + of * f64::from(self.outlier_bits) + dict_bits;
        Ok(CodecResult {
            reconstructed: Tensor::from_vec(data, tensor.dims())
                .map_err(|e| QuantError::BadConfig(e.to_string()))?,
            avg_bits,
            low_precision_fraction: 1.0 - of,
        })
    }
}

/// Deterministic 1-D k-means: quantile init, `iters` Lloyd steps.
fn kmeans_1d(values: &[f32], k: usize, iters: usize) -> Vec<f32> {
    if values.is_empty() {
        return vec![0.0; k.max(1)];
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut centroids: Vec<f32> = (0..k)
        .map(|i| {
            let idx = (i * (sorted.len() - 1)) / (k - 1).max(1);
            sorted[idx]
        })
        .collect();
    centroids.dedup();
    for _ in 0..iters {
        let mut sums = vec![0.0f64; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for &v in values {
            let i = nearest_index(&centroids, v);
            sums[i] += v as f64;
            counts[i] += 1;
        }
        for i in 0..centroids.len() {
            if counts[i] > 0 {
                centroids[i] = (sums[i] / counts[i] as f64) as f32;
            }
        }
    }
    centroids
}

fn nearest_index(centroids: &[f32], x: f32) -> usize {
    let mut best = 0;
    let mut best_d = f32::INFINITY;
    for (i, &c) in centroids.iter().enumerate() {
        let d = (x - c).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

fn nearest(centroids: &[f32], x: f32) -> f32 {
    centroids[nearest_index(centroids, x)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_with_outliers(n: usize) -> Tensor {
        let data: Vec<f32> = (0..n)
            .map(|i| {
                // sum of uniforms approximates a Gaussian
                let a = ((i * 2654435761) % 1000) as f32 / 1000.0;
                let b = ((i * 40503 + 17) % 1000) as f32 / 1000.0;
                let c = ((i * 69069 + 5) % 1000) as f32 / 1000.0;
                let g = (a + b + c - 1.5) * 0.2;
                if i % 211 == 0 {
                    g + 3.0
                } else {
                    g
                }
            })
            .collect();
        Tensor::from_vec(data, &[n]).unwrap()
    }

    #[test]
    fn outliers_exact_body_clustered() {
        let x = gaussian_with_outliers(2000);
        let r = GoboCodec::new().compress(&x).unwrap();
        // Find an outlier and check exact reconstruction.
        let s = stats::summarize(&x);
        for (i, &v) in x.as_slice().iter().enumerate() {
            if (v - s.mean).abs() > 3.0 * s.std {
                assert_eq!(r.reconstructed.as_slice()[i], v);
            }
        }
        assert!(r.low_precision_fraction > 0.98);
    }

    #[test]
    fn dictionary_fits_gaussian_body_well() {
        let x = gaussian_with_outliers(2000);
        let r = GoboCodec::new().compress(&x).unwrap();
        // 8 centroids on a near-Gaussian body: SQNR should be decent.
        assert!(r.sqnr_db(&x) > 10.0, "sqnr {}", r.sqnr_db(&x));
    }

    #[test]
    fn avg_bits_near_index_bits() {
        let x = gaussian_with_outliers(2000);
        let r = GoboCodec::new().compress(&x).unwrap();
        assert!(r.avg_bits > 3.0);
        assert!(r.avg_bits < 4.5, "avg_bits {}", r.avg_bits);
    }

    #[test]
    fn kmeans_handles_degenerate_inputs() {
        assert_eq!(kmeans_1d(&[], 8, 4), vec![0.0; 8]);
        let c = kmeans_1d(&[1.0, 1.0, 1.0], 8, 4);
        assert!(c.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn constant_tensor_reconstructs_exactly() {
        let x = Tensor::full(&[64], 0.7);
        let r = GoboCodec::new().compress(&x).unwrap();
        assert_eq!(r.mse(&x), 0.0);
    }

    #[test]
    fn empty_tensor_ok() {
        let r = GoboCodec::new().compress(&Tensor::zeros(&[0])).unwrap();
        assert_eq!(r.avg_bits, 3.0);
    }
}
