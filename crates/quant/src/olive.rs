//! OliVe (ISCA '23): outlier–victim pair quantization.
//!
//! OliVe keeps a uniform low bit-width everywhere but, wherever an outlier
//! appears, sacrifices ("prunes") its adjacent value — the *victim* — and
//! reuses the victim's bit budget to give the outlier extended range. The
//! result stays perfectly aligned in memory (no index structures), at the
//! accuracy cost of the zeroed victims.

use spark_tensor::{stats, Tensor};

use crate::codec::{check_finite, Codec, CodecResult, QuantError};

/// The OliVe codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OliveCodec {
    /// Base bit-width (paper: 4).
    pub bits: u8,
    /// Quantile of `|x|` covered by the normal-value range; values above it
    /// become outliers (paper: a small percentage).
    pub normal_quantile: f32,
}

impl Default for OliveCodec {
    fn default() -> Self {
        Self {
            bits: 4,
            normal_quantile: 0.99,
        }
    }
}

impl OliveCodec {
    /// The paper's 4-bit configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an OliVe codec at a custom base bit-width (3..=8).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBits`] outside that range.
    pub fn with_bits(bits: u8) -> Result<Self, QuantError> {
        if !(3..=8).contains(&bits) {
            return Err(QuantError::UnsupportedBits(bits));
        }
        Ok(Self {
            bits,
            normal_quantile: 0.99,
        })
    }
}

impl Codec for OliveCodec {
    fn name(&self) -> String {
        "OliVe".to_string()
    }

    fn compress(&self, tensor: &Tensor) -> Result<CodecResult, QuantError> {
        check_finite(tensor)?;
        let n = tensor.len();
        if n == 0 {
            return Ok(CodecResult {
                reconstructed: tensor.clone(),
                avg_bits: f64::from(self.bits),
                low_precision_fraction: 1.0,
            });
        }
        let normal_alpha = stats::abs_quantile(tensor, self.normal_quantile);
        let normal_alpha = if normal_alpha == 0.0 { 1.0 } else { normal_alpha };
        let full_alpha = stats::abs_max(tensor).max(normal_alpha);
        let qmax = ((1u32 << (self.bits - 1)) - 1) as f32;
        let normal_step = normal_alpha / qmax;
        // Outliers get double the bit budget (their own + the victim's):
        // a 2·bits-wide code covering the full range.
        let out_qmax = ((1u32 << (2 * self.bits - 1)) - 1) as f32;
        let out_step = full_alpha / out_qmax;

        let src = tensor.as_slice();
        let mut data = vec![0.0f32; n];
        let mut outliers = 0usize;
        let mut victims = 0usize;
        let mut i = 0;
        while i < n {
            let x = src[i];
            if x.abs() > normal_alpha {
                outliers += 1;
                data[i] = (x / out_step).round().clamp(-out_qmax, out_qmax) * out_step;
                // The paired neighbour becomes the victim (pruned to zero) —
                // pairs are (even, odd) lanes as in the OliVe memory layout.
                let victim = if i % 2 == 0 { i + 1 } else { i - 1 };
                if victim < n && src[victim].abs() <= normal_alpha {
                    data[victim] = 0.0;
                    victims += 1;
                    if victim > i {
                        i += 2;
                        continue;
                    }
                }
                i += 1;
            } else {
                // May already have been zeroed as a victim of the previous
                // outlier; only write if untouched.
                let victimized = i > 0
                    && i % 2 == 1
                    && src[i - 1].abs() > normal_alpha;
                if !victimized {
                    data[i] =
                        (x / normal_step).round().clamp(-qmax, qmax) * normal_step;
                }
                i += 1;
            }
        }
        let of = outliers as f64 / n as f64;
        let _ = victims;
        Ok(CodecResult {
            reconstructed: Tensor::from_vec(data, tensor.dims())
                .map_err(|e| QuantError::BadConfig(e.to_string()))?,
            // Perfectly aligned: pairs reuse the victim's budget, so the
            // footprint stays at the base width.
            avg_bits: f64::from(self.bits),
            low_precision_fraction: 1.0 - of,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformQuantizer;

    fn long_tail(n: usize) -> Tensor {
        let data: Vec<f32> = (0..n)
            .map(|i| {
                let u = ((i * 2654435761) % 1000) as f32 / 1000.0 - 0.5;
                if i % 67 == 0 {
                    u * 40.0
                } else {
                    u * 0.4
                }
            })
            .collect();
        Tensor::from_vec(data, &[n]).unwrap()
    }

    #[test]
    fn beats_plain_int4_on_long_tails() {
        let x = long_tail(2000);
        let olive = OliveCodec::new().compress(&x).unwrap();
        let int4 = UniformQuantizer::symmetric(4).compress(&x).unwrap();
        assert!(olive.mse(&x) < int4.mse(&x));
    }

    #[test]
    fn storage_stays_at_base_width() {
        let x = long_tail(2000);
        let r = OliveCodec::new().compress(&x).unwrap();
        assert_eq!(r.avg_bits, 4.0);
    }

    #[test]
    fn victims_are_zeroed() {
        // Construct: index 0 outlier, index 1 small victim.
        let x = Tensor::from_vec(
            vec![100.0, 0.01, 0.02, -0.01, 0.03, 0.01, -0.02, 0.01],
            &[8],
        )
        .unwrap();
        let r = OliveCodec::new().compress(&x).unwrap();
        assert_eq!(r.reconstructed.as_slice()[1], 0.0);
        // The outlier is preserved with extended precision.
        assert!((r.reconstructed.as_slice()[0] - 100.0).abs() / 100.0 < 0.01);
    }

    #[test]
    fn no_outliers_means_plain_quantization() {
        let x = Tensor::from_vec((1..=64).map(|i| i as f32 / 64.0).collect(), &[64]).unwrap();
        let r = OliveCodec::new().compress(&x).unwrap();
        assert!(r.low_precision_fraction > 0.98);
    }

    #[test]
    fn bits_validated() {
        assert!(OliveCodec::with_bits(2).is_err());
        assert!(OliveCodec::with_bits(9).is_err());
        assert!(OliveCodec::with_bits(4).is_ok());
    }

    #[test]
    fn empty_tensor_ok() {
        let r = OliveCodec::new().compress(&Tensor::zeros(&[0])).unwrap();
        assert_eq!(r.avg_bits, 4.0);
    }
}
