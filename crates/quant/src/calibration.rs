//! Calibration-based scale selection.
//!
//! Abs-max calibration (the default everywhere in this repo, matching the
//! paper) is what creates the bit sparsity SPARK exploits: the
//! outlier-stretched range pushes the body into small codes. For plain
//! uniform quantization, however, clipping the range recovers accuracy at
//! low bit-widths. TensorRT (cited by the paper for its quantization setup)
//! popularized entropy calibration; this module implements the closely
//! related — and better-defined — **MSE-optimal clip search**: sweep
//! candidate clip thresholds over the magnitude histogram and keep the one
//! minimizing the reconstruction error, accounting for both the saturation
//! error of clipped values and the rounding error of retained ones.

use spark_tensor::{stats, Tensor};

use crate::codec::{check_finite, Codec, CodecResult, QuantError};
use crate::params::QuantParams;

/// Number of histogram bins used for calibration.
const BINS: usize = 2048;

/// Expected squared error of symmetric `bits`-wide quantization with clip
/// threshold `alpha`, evaluated on a magnitude histogram with bin width
/// `bin_width` (bin centers at `(b + 0.5) * bin_width`).
fn clip_mse(hist: &[f64], bin_width: f64, alpha: f64, bits: u8) -> f64 {
    let qmax = f64::from((1u32 << (bits - 1)) - 1);
    let step = alpha / qmax;
    let mut mse = 0.0;
    for (b, &count) in hist.iter().enumerate() {
        if count == 0.0 {
            continue;
        }
        let x = (b as f64 + 0.5) * bin_width;
        let err = if x > alpha {
            x - alpha // saturation
        } else {
            // Exact rounding error of the bin center on the uniform grid.
            x - (x / step).round() * step
        };
        mse += count * err * err;
    }
    mse
}

/// Chooses the clip threshold (absolute magnitude) minimizing the expected
/// quantization MSE for `bits`-wide symmetric quantization.
///
/// Returns the abs-max for empty/tiny/constant tensors.
pub fn mse_calibrate(tensor: &Tensor, bits: u8) -> f32 {
    let abs_max = stats::abs_max(tensor);
    if abs_max == 0.0 || tensor.len() < 64 {
        return abs_max.max(f32::MIN_POSITIVE);
    }
    let mut hist = vec![0.0f64; BINS];
    let scale = (BINS - 1) as f32 / abs_max;
    for &x in tensor.as_slice() {
        let b = ((x.abs() * scale) as usize).min(BINS - 1);
        hist[b] += 1.0;
    }
    let bin_width = f64::from(abs_max) / BINS as f64;
    let mut best_alpha = f64::from(abs_max);
    let mut best_mse = f64::INFINITY;
    // Sweep 64 candidate thresholds from 1/64 of the range to the full
    // range.
    for i in 1..=64 {
        let alpha = f64::from(abs_max) * i as f64 / 64.0;
        let mse = clip_mse(&hist, bin_width, alpha, bits);
        if mse < best_mse {
            best_mse = mse;
            best_alpha = alpha;
        }
    }
    best_alpha as f32
}

/// Uniform symmetric quantizer with MSE-calibrated clipping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MseCalibratedQuantizer {
    bits: u8,
}

impl MseCalibratedQuantizer {
    /// Creates an MSE-calibrated quantizer at `bits` (2..=16).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBits`] outside that range.
    pub fn new(bits: u8) -> Result<Self, QuantError> {
        if !(2..=16).contains(&bits) {
            return Err(QuantError::UnsupportedBits(bits));
        }
        Ok(Self { bits })
    }
}

impl Codec for MseCalibratedQuantizer {
    fn name(&self) -> String {
        format!("INT{}-mse", self.bits)
    }

    fn compress(&self, tensor: &Tensor) -> Result<CodecResult, QuantError> {
        check_finite(tensor)?;
        let alpha = mse_calibrate(tensor, self.bits);
        let p = QuantParams::symmetric(alpha, self.bits);
        let qmax = ((1u32 << (self.bits - 1)) - 1) as f32;
        let reconstructed = tensor.map(|x| p.dequantize(p.quantize(x, -qmax, qmax)));
        Ok(CodecResult {
            reconstructed,
            avg_bits: f64::from(self.bits),
            low_precision_fraction: 1.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformQuantizer;

    /// A dense body in [-1, 1] with one rare moderate outlier per ~2000
    /// values: the regime where clipping genuinely lowers the MSE (rare
    /// enough that saturation cost loses to the body's resolution gain).
    fn heavy_tail(n: usize) -> Tensor {
        Tensor::from_fn(&[n], |i| {
            let u = (((i * 2654435761) % 2000) as f32 / 1000.0) - 1.0;
            if i % 1999 == 0 {
                10.0 * u.signum().max(0.5)
            } else {
                u
            }
        })
    }

    #[test]
    fn calibration_clips_heavy_tails() {
        let t = heavy_tail(8000);
        let alpha = mse_calibrate(&t, 4);
        let abs_max = stats::abs_max(&t);
        assert!(alpha < abs_max, "alpha {alpha} vs max {abs_max}");
        assert!(alpha > 0.0);
    }

    #[test]
    fn calibration_beats_absmax_at_low_bits_on_heavy_tails() {
        let t = heavy_tail(8000);
        let cal = MseCalibratedQuantizer::new(4).unwrap().compress(&t).unwrap();
        let plain = UniformQuantizer::symmetric(4).compress(&t).unwrap();
        assert!(
            cal.mse(&t) < plain.mse(&t),
            "calibrated {} vs absmax {}",
            cal.mse(&t),
            plain.mse(&t)
        );
    }

    #[test]
    fn calibration_harmless_on_well_behaved_data() {
        // Uniform data without a tail: the optimum stays near the full
        // range and matches plain quantization closely.
        let t = Tensor::from_fn(&[4000], |i| ((i % 200) as f32 / 100.0) - 1.0);
        let cal = MseCalibratedQuantizer::new(8).unwrap().compress(&t).unwrap();
        let plain = UniformQuantizer::symmetric(8).compress(&t).unwrap();
        assert!(cal.mse(&t) < plain.mse(&t) * 4.0 + 1e-12);
    }

    #[test]
    fn more_bits_clip_less() {
        // With more codes, retaining range is cheap: the chosen threshold
        // grows (or stays) with the bit-width.
        let t = heavy_tail(8000);
        let a4 = mse_calibrate(&t, 4);
        let a8 = mse_calibrate(&t, 8);
        assert!(a8 >= a4, "a4 {a4} vs a8 {a8}");
    }

    #[test]
    fn small_or_constant_tensors_fall_back_to_absmax() {
        let tiny = Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap();
        assert_eq!(mse_calibrate(&tiny, 8), 2.0);
        let zeros = Tensor::zeros(&[256]);
        assert!(mse_calibrate(&zeros, 8) > 0.0);
    }

    #[test]
    fn bits_validated() {
        assert!(MseCalibratedQuantizer::new(1).is_err());
        assert!(MseCalibratedQuantizer::new(17).is_err());
        assert_eq!(MseCalibratedQuantizer::new(4).unwrap().name(), "INT4-mse");
    }
}
