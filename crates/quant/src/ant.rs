//! ANT (MICRO '22): per-tensor adaptive numerical data type.
//!
//! ANT picks, per tensor, the fixed-width data type — plain integer,
//! power-of-two, or the hybrid *flint* — that best fits the value
//! distribution, then quantizes every element with it. We reproduce that
//! selection by trying each type and keeping the one with the lowest MSE,
//! exactly the adaptive step the original framework performs offline.

use spark_tensor::{stats, Tensor};

use crate::codec::{check_finite, Codec, CodecResult, QuantError};

/// The data types ANT chooses between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AntType {
    /// Plain two's-complement integer grid.
    Int,
    /// Power-of-two levels (`± alpha · 2^-k`), good for peaked
    /// distributions.
    PowerOfTwo,
    /// Flint: float-int hybrid — power-of-two spacing for small magnitudes,
    /// integer spacing near full scale.
    Flint,
}

impl AntType {
    /// All selectable types in evaluation order.
    pub const ALL: [AntType; 3] = [AntType::Int, AntType::PowerOfTwo, AntType::Flint];
}

/// The ANT codec at a fixed bit-width.
///
/// The paper's Table IV uses 6-bit ANT, Table V 4-bit ANT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AntCodec {
    bits: u8,
}

impl AntCodec {
    /// Creates an ANT codec with `bits`-wide codes (3..=8).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBits`] outside that range.
    pub fn new(bits: u8) -> Result<Self, QuantError> {
        if !(3..=8).contains(&bits) {
            return Err(QuantError::UnsupportedBits(bits));
        }
        Ok(Self { bits })
    }

    /// The configured bit-width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Quantizes with a specific type (no adaptive selection); used by the
    /// tests and the type-ratio analysis.
    pub fn compress_as(&self, tensor: &Tensor, ty: AntType) -> Result<CodecResult, QuantError> {
        check_finite(tensor)?;
        let alpha = stats::abs_max(tensor);
        let reconstructed = if alpha == 0.0 {
            tensor.clone()
        } else {
            match ty {
                AntType::Int => quantize_int(tensor, alpha, self.bits),
                AntType::PowerOfTwo => quantize_po2(tensor, alpha, self.bits),
                AntType::Flint => quantize_flint(tensor, alpha, self.bits),
            }
        };
        Ok(CodecResult {
            reconstructed,
            avg_bits: f64::from(self.bits),
            low_precision_fraction: 1.0,
        })
    }

    /// Runs the adaptive selection and reports which type won.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::compress`].
    pub fn compress_adaptive(
        &self,
        tensor: &Tensor,
    ) -> Result<(CodecResult, AntType), QuantError> {
        let mut best: Option<(CodecResult, AntType, f64)> = None;
        for ty in AntType::ALL {
            let r = self.compress_as(tensor, ty)?;
            let e = r.mse(tensor);
            match &best {
                Some((_, _, be)) if *be <= e => {}
                _ => best = Some((r, ty, e)),
            }
        }
        let (r, ty, _) = best.expect("ALL is nonempty");
        Ok((r, ty))
    }
}

impl Codec for AntCodec {
    fn name(&self) -> String {
        format!("ANT{}", self.bits)
    }

    fn compress(&self, tensor: &Tensor) -> Result<CodecResult, QuantError> {
        self.compress_adaptive(tensor).map(|(r, _)| r)
    }
}

fn quantize_int(t: &Tensor, alpha: f32, bits: u8) -> Tensor {
    let qmax = ((1u32 << (bits - 1)) - 1) as f32;
    let step = alpha / qmax;
    t.map(|x| (x / step).round().clamp(-qmax, qmax) * step)
}

fn quantize_po2(t: &Tensor, alpha: f32, bits: u8) -> Tensor {
    // One sign bit; remaining bits select an exponent level alpha * 2^-k,
    // k in 0 .. 2^(bits-1) - 1, plus an explicit zero level.
    let levels = (1u32 << (bits - 1)) - 1;
    t.map(|x| {
        if x == 0.0 {
            return 0.0;
        }
        let sign = x.signum();
        let mag = x.abs().min(alpha);
        // nearest exponent in log space
        let k = (mag / alpha).log2();
        let k_round = (-k).round().clamp(0.0, levels as f32);
        let q = alpha * (2.0f32).powf(-k_round);
        // values more than half a level below the smallest code flush to 0
        let smallest = alpha * (2.0f32).powi(-(levels as i32));
        if mag < smallest * 0.75 {
            0.0
        } else {
            sign * q
        }
    })
}

fn quantize_flint(t: &Tensor, alpha: f32, bits: u8) -> Tensor {
    // Flint splits the range at alpha/4: below it, power-of-two spacing
    // (captures the dense body); above it, integer spacing (captures the
    // tail without exponential gaps).
    let threshold = alpha / 4.0;
    let int_qmax = ((1u32 << (bits - 2)) - 1) as f32;
    let step = (alpha - threshold) / int_qmax;
    let levels = (1u32 << (bits - 2)) - 1;
    t.map(|x| {
        if x == 0.0 {
            return 0.0;
        }
        let sign = x.signum();
        let mag = x.abs().min(alpha);
        if mag >= threshold {
            let q = ((mag - threshold) / step).round().clamp(0.0, int_qmax);
            sign * (threshold + q * step)
        } else {
            let k = (mag / threshold).log2();
            let k_round = (-k).round().clamp(0.0, levels as f32);
            let smallest = threshold * (2.0f32).powi(-(levels as i32));
            if mag < smallest * 0.75 {
                0.0
            } else {
                sign * threshold * (2.0f32).powf(-k_round)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32]) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[data.len()]).unwrap()
    }

    /// Peaked, Gaussian-like data (most mass near zero).
    fn peaked(n: usize) -> Tensor {
        let data: Vec<f32> = (0..n)
            .map(|i| {
                let u = ((i * 2654435761) % 10000) as f32 / 10000.0 - 0.5;
                u * u * u * 8.0 // cubing concentrates mass near 0
            })
            .collect();
        Tensor::from_vec(data, &[n]).unwrap()
    }

    #[test]
    fn bits_validated() {
        assert!(AntCodec::new(2).is_err());
        assert!(AntCodec::new(9).is_err());
        assert!(AntCodec::new(6).is_ok());
    }

    /// Log-uniform magnitudes spanning several octaves with alternating
    /// signs — the wide-dynamic-range shape power-of-two levels fit best.
    fn log_uniform(n: usize) -> Tensor {
        let data: Vec<f32> = (0..n)
            .map(|i| {
                let u = ((i * 2654435761) % 1000) as f32 / 1000.0; // [0, 1)
                let mag = (2.0f32).powf(-6.0 * u); // spans [2^-6, 1]
                if i % 2 == 0 {
                    mag
                } else {
                    -mag
                }
            })
            .collect();
        Tensor::from_vec(data, &[n]).unwrap()
    }

    #[test]
    fn po2_fits_wide_dynamic_range_better_than_int_at_low_bits() {
        // At 3 bits the integer grid has only 3 positive levels and loses
        // everything below alpha/6; power-of-two levels track the octaves.
        let x = log_uniform(1000);
        let ant = AntCodec::new(3).unwrap();
        let int = ant.compress_as(&x, AntType::Int).unwrap().mse(&x);
        let po2 = ant.compress_as(&x, AntType::PowerOfTwo).unwrap().mse(&x);
        assert!(po2 < int, "po2 {po2} should beat int {int} on log-uniform data");
    }

    #[test]
    fn int_fits_uniform_better_than_po2() {
        let x = t(&(1..=100).map(|i| i as f32 / 100.0).collect::<Vec<_>>());
        let ant = AntCodec::new(4).unwrap();
        let int = ant.compress_as(&x, AntType::Int).unwrap().mse(&x);
        let po2 = ant.compress_as(&x, AntType::PowerOfTwo).unwrap().mse(&x);
        assert!(int < po2, "int {int} should beat po2 {po2} on uniform data");
    }

    #[test]
    fn adaptive_selection_is_at_least_as_good_as_every_type() {
        for x in [peaked(500), t(&(1..=64).map(|i| i as f32).collect::<Vec<_>>())] {
            let ant = AntCodec::new(5).unwrap();
            let (best, _) = ant.compress_adaptive(&x).unwrap();
            for ty in AntType::ALL {
                let r = ant.compress_as(&x, ty).unwrap();
                assert!(best.mse(&x) <= r.mse(&x) + 1e-12);
            }
        }
    }

    #[test]
    fn more_bits_help() {
        let x = peaked(1000);
        let e4 = AntCodec::new(4).unwrap().compress(&x).unwrap().mse(&x);
        let e6 = AntCodec::new(6).unwrap().compress(&x).unwrap().mse(&x);
        assert!(e6 <= e4);
    }

    #[test]
    fn po2_represents_exact_levels() {
        let x = t(&[1.0, 0.5, 0.25, -0.125]);
        let ant = AntCodec::new(4).unwrap();
        let r = ant.compress_as(&x, AntType::PowerOfTwo).unwrap();
        assert_eq!(r.reconstructed.as_slice(), x.as_slice());
    }

    #[test]
    fn zero_tensor_ok() {
        let x = Tensor::zeros(&[8]);
        let r = AntCodec::new(4).unwrap().compress(&x).unwrap();
        assert_eq!(r.mse(&x), 0.0);
    }

    #[test]
    fn name_includes_bits() {
        assert_eq!(AntCodec::new(6).unwrap().name(), "ANT6");
    }
}
