//! BiScaled-DNN (DAC '19): one bit-width, two scale factors.
//!
//! BiScaled quantizes every value with the same number of bits but chooses
//! between a *fine* scale (covering the dense long-tail body) and a *coarse*
//! scale (covering the rare large values). Which values use the coarse scale
//! is recorded in a block-sparse index, whose storage cost we charge to
//! `avg_bits`.

use spark_tensor::{stats, Tensor};

use crate::codec::{check_finite, Codec, CodecResult, QuantError};

/// The BiScaled codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiScaledCodec {
    bits: u8,
    /// Quantile of `|x|` that the fine scale covers (the paper tunes this
    /// split offline; 0.99 reproduces their "few values are big" setting).
    split_quantile: f32,
    /// Block size of the sparse index.
    block: usize,
}

impl BiScaledCodec {
    /// Creates a BiScaled codec with `bits`-wide codes (3..=8), a 99 %
    /// fine-range split and 8-element index blocks.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBits`] outside `3..=8`.
    pub fn new(bits: u8) -> Result<Self, QuantError> {
        if !(3..=8).contains(&bits) {
            return Err(QuantError::UnsupportedBits(bits));
        }
        Ok(Self {
            bits,
            split_quantile: 0.99,
            block: 8,
        })
    }

    /// Overrides the fine-range quantile.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadConfig`] outside `(0, 1)`.
    pub fn with_split_quantile(mut self, q: f32) -> Result<Self, QuantError> {
        if !(q > 0.0 && q < 1.0) {
            return Err(QuantError::BadConfig(format!(
                "split quantile {q} outside (0, 1)"
            )));
        }
        self.split_quantile = q;
        Ok(self)
    }

    /// The configured bit-width (excluding index overhead).
    pub fn bits(&self) -> u8 {
        self.bits
    }
}

impl Codec for BiScaledCodec {
    fn name(&self) -> String {
        format!("BiScaled{}", self.bits)
    }

    fn compress(&self, tensor: &Tensor) -> Result<CodecResult, QuantError> {
        check_finite(tensor)?;
        let fine_alpha = stats::abs_quantile(tensor, self.split_quantile);
        let coarse_alpha = stats::abs_max(tensor);
        let qmax = ((1u32 << (self.bits - 1)) - 1) as f32;
        let fine_alpha = if fine_alpha == 0.0 { 1.0 } else { fine_alpha };
        let coarse_alpha = if coarse_alpha == 0.0 { 1.0 } else { coarse_alpha };
        let fine_step = fine_alpha / qmax;
        let coarse_step = coarse_alpha / qmax;
        let mut coarse_count = 0usize;
        let data: Vec<f32> = tensor
            .as_slice()
            .iter()
            .map(|&x| {
                if x.abs() <= fine_alpha {
                    (x / fine_step).round().clamp(-qmax, qmax) * fine_step
                } else {
                    coarse_count += 1;
                    (x / coarse_step).round().clamp(-qmax, qmax) * coarse_step
                }
            })
            .collect();
        let n = tensor.len().max(1);
        // Block sparse index: per block a presence bit, plus per coarse
        // value an offset within its block (log2(block) bits).
        let blocks = n.div_ceil(self.block);
        let index_bits =
            blocks as f64 + coarse_count as f64 * (self.block as f64).log2().ceil();
        let avg_bits = f64::from(self.bits) + index_bits / n as f64;
        Ok(CodecResult {
            reconstructed: Tensor::from_vec(data, tensor.dims())
                .map_err(|e| QuantError::BadConfig(e.to_string()))?,
            avg_bits,
            low_precision_fraction: 1.0 - coarse_count as f64 / n as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformQuantizer;

    fn long_tail(n: usize) -> Tensor {
        let data: Vec<f32> = (0..n)
            .map(|i| {
                let u = ((i * 2654435761) % 1000) as f32 / 1000.0 - 0.5;
                if i % 101 == 0 {
                    u * 20.0
                } else {
                    u * 0.2
                }
            })
            .collect();
        Tensor::from_vec(data, &[n]).unwrap()
    }

    #[test]
    fn two_scales_beat_one_on_long_tails() {
        let x = long_tail(2000);
        let bi = BiScaledCodec::new(6).unwrap().compress(&x).unwrap();
        let uni = UniformQuantizer::symmetric(6).compress(&x).unwrap();
        assert!(
            bi.mse(&x) < uni.mse(&x),
            "BiScaled {} should beat uniform {}",
            bi.mse(&x),
            uni.mse(&x)
        );
    }

    #[test]
    fn index_overhead_charged() {
        let x = long_tail(2000);
        let r = BiScaledCodec::new(6).unwrap().compress(&x).unwrap();
        assert!(r.avg_bits > 6.0, "index overhead must appear: {}", r.avg_bits);
        assert!(r.avg_bits < 7.5);
    }

    #[test]
    fn low_precision_fraction_counts_fine_values() {
        let x = long_tail(2000);
        let r = BiScaledCodec::new(6).unwrap().compress(&x).unwrap();
        assert!(r.low_precision_fraction > 0.95);
    }

    #[test]
    fn config_validation() {
        assert!(BiScaledCodec::new(2).is_err());
        assert!(BiScaledCodec::new(6)
            .unwrap()
            .with_split_quantile(1.0)
            .is_err());
        assert!(BiScaledCodec::new(6)
            .unwrap()
            .with_split_quantile(0.9)
            .is_ok());
    }

    #[test]
    fn uniform_data_degenerates_gracefully() {
        // No tail: almost everything fine-scaled, error close to uniform.
        let x = Tensor::from_vec((1..=100).map(|i| i as f32 / 100.0).collect(), &[100]).unwrap();
        let bi = BiScaledCodec::new(6).unwrap().compress(&x).unwrap();
        let uni = UniformQuantizer::symmetric(6).compress(&x).unwrap();
        assert!(bi.mse(&x) <= uni.mse(&x) * 2.0 + 1e-9);
    }

    #[test]
    fn zero_tensor_ok() {
        let x = Tensor::zeros(&[16]);
        let r = BiScaledCodec::new(6).unwrap().compress(&x).unwrap();
        assert_eq!(r.mse(&x), 0.0);
    }
}
