//! Quantization parameters and the sign-magnitude INT8 front-end SPARK
//! consumes.
//!
//! The paper assumes "unsigned values that have been scaled with the
//! per-layer granularity" — i.e. the codec sees unsigned 8-bit magnitudes
//! whose sign rides with the MAC datapath (standard sign-magnitude
//! arithmetic in outlier-aware accelerators). [`MagnitudeQuantizer`]
//! implements exactly that front-end: per-tensor scale from the absolute
//! maximum (optionally a clipping quantile), magnitudes in `0..=2^bits - 1`,
//! signs kept as a separate bit vector.

use spark_tensor::{stats, Tensor};

use crate::codec::{check_finite, QuantError};

/// Affine quantization parameters: `value ≈ scale * (code - zero_point)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Step size between adjacent quantization levels.
    pub scale: f32,
    /// Code word that represents zero.
    pub zero_point: f32,
}

impl QuantParams {
    /// Symmetric parameters for `bits`-wide signed codes covering
    /// `[-alpha, alpha]`.
    pub fn symmetric(alpha: f32, bits: u8) -> Self {
        let qmax = ((1u32 << (bits - 1)) - 1) as f32;
        QuantParams {
            scale: if alpha == 0.0 { 1.0 } else { alpha / qmax },
            zero_point: 0.0,
        }
    }

    /// Asymmetric parameters mapping `[min, max]` onto `0..=2^bits - 1`.
    pub fn asymmetric(min: f32, max: f32, bits: u8) -> Self {
        let qmax = ((1u64 << bits) - 1) as f32;
        let range = (max - min).max(f32::MIN_POSITIVE);
        let scale = range / qmax;
        QuantParams {
            scale,
            zero_point: -min / scale,
        }
    }

    /// Quantizes one value to the nearest code in `[lo, hi]`.
    pub fn quantize(&self, x: f32, lo: f32, hi: f32) -> f32 {
        (x / self.scale + self.zero_point).round().clamp(lo, hi)
    }

    /// Dequantizes a code word.
    pub fn dequantize(&self, code: f32) -> f32 {
        (code - self.zero_point) * self.scale
    }
}

/// Sign-magnitude quantization of an FP32 tensor to unsigned codes.
#[derive(Debug, Clone, PartialEq)]
pub struct MagnitudeCodes {
    /// Unsigned magnitudes, one per element, in `0..=2^bits - 1`.
    pub codes: Vec<u8>,
    /// True where the original value was negative.
    pub signs: Vec<bool>,
    /// Magnitude represented by the full-scale code.
    pub scale: f32,
    /// Bit-width the codes were quantized to.
    pub bits: u8,
}

impl MagnitudeCodes {
    /// Reconstructs the FP32 tensor from codes and signs.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadConfig`] when `dims` does not match the
    /// element count.
    pub fn dequantize(&self, dims: &[usize]) -> Result<Tensor, QuantError> {
        let qmax = ((1u64 << self.bits) - 1) as f32;
        let step = self.scale / qmax;
        let data: Vec<f32> = self
            .codes
            .iter()
            .zip(&self.signs)
            .map(|(&c, &neg)| {
                let mag = c as f32 * step;
                if neg {
                    -mag
                } else {
                    mag
                }
            })
            .collect();
        Tensor::from_vec(data, dims).map_err(|e| QuantError::BadConfig(e.to_string()))
    }

    /// Reconstructs using externally modified codes (e.g. after a lossy
    /// encoding pass) but this tensor's signs and scale.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadConfig`] when lengths or dims mismatch.
    pub fn dequantize_codes(&self, codes: &[u8], dims: &[usize]) -> Result<Tensor, QuantError> {
        if codes.len() != self.signs.len() {
            return Err(QuantError::BadConfig(format!(
                "code count {} != sign count {}",
                codes.len(),
                self.signs.len()
            )));
        }
        let replaced = MagnitudeCodes {
            codes: codes.to_vec(),
            signs: self.signs.clone(),
            scale: self.scale,
            bits: self.bits,
        };
        replaced.dequantize(dims)
    }
}

/// The sign-magnitude INT front-end: per-tensor scale, unsigned codes.
///
/// ```
/// use spark_quant::MagnitudeQuantizer;
/// use spark_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![0.5, -1.0, 0.25], &[3])?;
/// let q = MagnitudeQuantizer::new(8)?;
/// let codes = q.quantize(&t)?;
/// assert_eq!(codes.codes, vec![128, 255, 64]); // scaled by 1.0 (abs max)
/// assert_eq!(codes.signs, vec![false, true, false]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MagnitudeQuantizer {
    bits: u8,
    clip_quantile: Option<f32>,
}

impl MagnitudeQuantizer {
    /// Creates a quantizer producing `bits`-wide magnitudes (1..=8).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBits`] outside `1..=8`.
    pub fn new(bits: u8) -> Result<Self, QuantError> {
        if !(1..=8).contains(&bits) {
            return Err(QuantError::UnsupportedBits(bits));
        }
        Ok(Self {
            bits,
            clip_quantile: None,
        })
    }

    /// Sets a clipping quantile in `(0, 1]`: the scale is taken from that
    /// quantile of the absolute values instead of the maximum, saturating
    /// the tail.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadConfig`] when `q` is outside `(0, 1]`.
    pub fn with_clip_quantile(mut self, q: f32) -> Result<Self, QuantError> {
        if !(q > 0.0 && q <= 1.0) {
            return Err(QuantError::BadConfig(format!(
                "clip quantile {q} outside (0, 1]"
            )));
        }
        self.clip_quantile = Some(q);
        Ok(self)
    }

    /// The configured bit-width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Quantizes a tensor to sign-magnitude codes.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::NonFiniteInput`] for NaN/infinite input.
    pub fn quantize(&self, t: &Tensor) -> Result<MagnitudeCodes, QuantError> {
        check_finite(t)?;
        let alpha = match self.clip_quantile {
            Some(q) => stats::abs_quantile(t, q),
            None => stats::abs_max(t),
        };
        let alpha = if alpha == 0.0 { 1.0 } else { alpha };
        let qmax = ((1u64 << self.bits) - 1) as f32;
        let mut codes = Vec::with_capacity(t.len());
        let mut signs = Vec::with_capacity(t.len());
        for &x in t.as_slice() {
            signs.push(x < 0.0);
            let code = (x.abs() / alpha * qmax).round().min(qmax);
            codes.push(code as u8);
        }
        Ok(MagnitudeCodes {
            codes,
            signs,
            scale: alpha,
            bits: self.bits,
        })
    }

    /// Streams the unsigned magnitude codes of `t` to `f` without
    /// materializing a [`MagnitudeCodes`] — the zero-allocation pass behind
    /// stats-only consumers such as `SparkCodec::code_stats`. Produces
    /// exactly the code stream [`Self::quantize`] would.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::NonFiniteInput`] for NaN/infinite input.
    pub fn for_each_code(&self, t: &Tensor, mut f: impl FnMut(u8)) -> Result<(), QuantError> {
        check_finite(t)?;
        let alpha = match self.clip_quantile {
            Some(q) => stats::abs_quantile(t, q),
            None => stats::abs_max(t),
        };
        let alpha = if alpha == 0.0 { 1.0 } else { alpha };
        let qmax = ((1u64 << self.bits) - 1) as f32;
        for &x in t.as_slice() {
            f((x.abs() / alpha * qmax).round().min(qmax) as u8);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32]) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[data.len()]).unwrap()
    }

    #[test]
    fn symmetric_params_cover_alpha() {
        let p = QuantParams::symmetric(1.0, 8);
        assert!((p.quantize(1.0, -127.0, 127.0) - 127.0).abs() < 1e-6);
        assert!((p.dequantize(127.0) - 1.0).abs() < 1e-6);
        assert_eq!(p.zero_point, 0.0);
    }

    #[test]
    fn asymmetric_params_cover_range() {
        let p = QuantParams::asymmetric(-1.0, 3.0, 8);
        let q_min = p.quantize(-1.0, 0.0, 255.0);
        let q_max = p.quantize(3.0, 0.0, 255.0);
        assert_eq!(q_min, 0.0);
        assert_eq!(q_max, 255.0);
        assert!((p.dequantize(q_min) + 1.0).abs() < 1e-4);
        assert!((p.dequantize(q_max) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn zero_alpha_does_not_divide_by_zero() {
        let p = QuantParams::symmetric(0.0, 8);
        assert_eq!(p.quantize(0.0, -127.0, 127.0), 0.0);
    }

    #[test]
    fn magnitude_round_trip_error_bounded() {
        let x = t(&[0.9, -0.5, 0.1, -0.001, 0.0]);
        let q = MagnitudeQuantizer::new(8).unwrap();
        let codes = q.quantize(&x).unwrap();
        let back = codes.dequantize(&[5]).unwrap();
        let step = codes.scale / 255.0;
        for (&a, &b) in x.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= step / 2.0 + 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn signs_recorded() {
        let x = t(&[-1.0, 1.0, 0.0]);
        let q = MagnitudeQuantizer::new(8).unwrap();
        let codes = q.quantize(&x).unwrap();
        assert_eq!(codes.signs, vec![true, false, false]);
    }

    #[test]
    fn clipping_saturates_tail() {
        // One huge outlier; clipping at the 80th percentile keeps the body
        // resolution high and saturates the outlier.
        let mut data = vec![0.1f32; 99];
        data.push(100.0);
        let x = t(&data);
        let q = MagnitudeQuantizer::new(8)
            .unwrap()
            .with_clip_quantile(0.8)
            .unwrap();
        let codes = q.quantize(&x).unwrap();
        assert_eq!(*codes.codes.last().unwrap(), 255); // saturated outlier
        assert!(codes.scale < 1.0); // scale from the body, not the outlier
    }

    #[test]
    fn bits_validation() {
        assert!(MagnitudeQuantizer::new(0).is_err());
        assert!(MagnitudeQuantizer::new(9).is_err());
        assert!(MagnitudeQuantizer::new(4).is_ok());
        assert!(MagnitudeQuantizer::new(8)
            .unwrap()
            .with_clip_quantile(0.0)
            .is_err());
    }

    #[test]
    fn low_bit_quantization() {
        let x = t(&[1.0, 0.5, 0.25]);
        let q = MagnitudeQuantizer::new(4).unwrap();
        let codes = q.quantize(&x).unwrap();
        assert_eq!(codes.codes[0], 15);
        assert_eq!(codes.codes[1], 8);
    }

    #[test]
    fn dequantize_codes_validates_length() {
        let x = t(&[1.0, -1.0]);
        let q = MagnitudeQuantizer::new(8).unwrap();
        let codes = q.quantize(&x).unwrap();
        assert!(codes.dequantize_codes(&[1], &[2]).is_err());
        let back = codes.dequantize_codes(&[255, 255], &[2]).unwrap();
        assert_eq!(back.as_slice(), &[1.0, -1.0]);
    }

    #[test]
    fn non_finite_rejected() {
        let x = t(&[f32::NAN]);
        assert!(MagnitudeQuantizer::new(8).unwrap().quantize(&x).is_err());
    }
}
