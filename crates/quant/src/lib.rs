//! # spark-quant — quantization substrate and baseline codecs
//!
//! Everything the SPARK paper compares against lives here, behind one
//! [`Codec`] trait: give it an FP32 tensor, get back the reconstruction the
//! scheme would compute with plus the storage cost in bits per element
//! (including index/metadata overheads, which is where schemes like OLAccel
//! and BiScaled pay).
//!
//! ## Implemented schemes
//!
//! | Module | Scheme | Paper baseline |
//! |---|---|---|
//! | [`uniform`] | uniform INT-m (symmetric/asymmetric, optional clipping) | Q8BERT, Eyeriss INT16, BitFusion |
//! | [`spark`] | SPARK variable-length encoding on INT8 codes | the paper's contribution |
//! | [`ant`] | per-tensor adaptive data type (int / power-of-two / flint) | ANT (MICRO '22) |
//! | [`biscaled`] | two scale factors + block sparse index | BiScaled-DNN (DAC '19) |
//! | [`olaccel`] | outlier-aware 4-bit with 16-bit outliers + coordinate list | OLAccel (ISCA '18) |
//! | [`gobo`] | centroid dictionary (3-bit) + FP32 outliers, weights only | GOBO (MICRO '20) |
//! | [`olive`] | outlier–victim pair encoding | OliVe (ISCA '23) |
//! | [`outlier_suppression`] | quantile clipping before uniform quantization | Outlier Suppression (NeurIPS '22) |
//! | [`adafloat`] | per-tensor exponent-bias floating point | AdaptiveFloat (DAC '20) |
//!
//! ## Example
//!
//! ```
//! use spark_quant::{Codec, SparkCodec, UniformQuantizer};
//! use spark_tensor::Tensor;
//!
//! let t = Tensor::from_vec(vec![0.01, -0.02, 0.5, -1.0, 0.003], &[5])?;
//! let spark = SparkCodec::default();
//! let int8 = UniformQuantizer::symmetric(8);
//! let r_spark = spark.compress(&t)?;
//! let r_int8 = int8.compress(&t)?;
//! assert!(r_spark.avg_bits < r_int8.avg_bits); // SPARK stores the same tensor in fewer bits
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod adafloat;
pub mod ant;
pub mod biscaled;
pub mod calibration;
pub mod codec;
pub mod general_spark;
pub mod gobo;
pub mod olaccel;
pub mod olive;
pub mod outlier_suppression;
pub mod params;
pub mod per_channel;
pub mod spark;
pub mod uniform;

pub use adafloat::AdaptiveFloatCodec;
pub use ant::{AntCodec, AntType};
pub use biscaled::BiScaledCodec;
pub use calibration::{mse_calibrate, MseCalibratedQuantizer};
pub use codec::{Codec, CodecResult, QuantError};
pub use general_spark::GeneralSparkCodec;
pub use gobo::GoboCodec;
pub use olaccel::OlAccelCodec;
pub use olive::OliveCodec;
pub use outlier_suppression::OutlierSuppressionCodec;
pub use params::{MagnitudeCodes, MagnitudeQuantizer, QuantParams};
pub use per_channel::PerChannel;
pub use spark::SparkCodec;
pub use uniform::UniformQuantizer;
