//! AdaptiveFloat (DAC '20): floating-point quantization with a per-tensor
//! exponent bias chosen from the dynamic range.

use spark_tensor::{stats, Tensor};

use crate::codec::{check_finite, Codec, CodecResult, QuantError};

/// AdaptiveFloat codec: `sign + exponent + mantissa` with the exponent bias
/// fitted to the tensor's absolute maximum.
///
/// The paper's AdaFloat baseline uses 8 total bits to hold original model
/// accuracy; [`AdaptiveFloatCodec::new(8, 3)`] reproduces that
/// configuration (1 sign, 4 exponent, 3 mantissa bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveFloatCodec {
    total_bits: u8,
    mantissa_bits: u8,
}

impl AdaptiveFloatCodec {
    /// Creates an AdaptiveFloat codec with `total_bits` overall and
    /// `mantissa_bits` of mantissa (the rest, minus the sign, is exponent).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadConfig`] when the split leaves no exponent
    /// bits or exceeds 16 total.
    pub fn new(total_bits: u8, mantissa_bits: u8) -> Result<Self, QuantError> {
        if !(3..=16).contains(&total_bits) {
            return Err(QuantError::UnsupportedBits(total_bits));
        }
        if mantissa_bits + 2 > total_bits {
            return Err(QuantError::BadConfig(format!(
                "{mantissa_bits} mantissa bits leave no exponent in {total_bits} total"
            )));
        }
        Ok(Self {
            total_bits,
            mantissa_bits,
        })
    }

    /// The paper's 8-bit AdaFloat configuration.
    pub fn adafloat8() -> Self {
        Self {
            total_bits: 8,
            mantissa_bits: 3,
        }
    }

    fn exponent_bits(&self) -> u8 {
        self.total_bits - 1 - self.mantissa_bits
    }
}

impl Codec for AdaptiveFloatCodec {
    fn name(&self) -> String {
        format!("AdaFloat{}", self.total_bits)
    }

    fn compress(&self, tensor: &Tensor) -> Result<CodecResult, QuantError> {
        check_finite(tensor)?;
        let abs_max = stats::abs_max(tensor);
        if abs_max == 0.0 {
            return Ok(CodecResult {
                reconstructed: tensor.clone(),
                avg_bits: f64::from(self.total_bits),
                low_precision_fraction: 1.0,
            });
        }
        // Choose the exponent bias so the largest exponent exactly covers
        // abs_max, as AdaptiveFloat does.
        let e_max = abs_max.log2().floor() as i32;
        let e_levels = 1i32 << self.exponent_bits();
        let e_min = e_max - (e_levels - 1);
        let m_levels = (1u32 << self.mantissa_bits) as f32;
        let reconstructed = tensor.map(|x| {
            if x == 0.0 {
                return 0.0;
            }
            let sign = x.signum();
            let mag = x.abs();
            let mut e = mag.log2().floor() as i32;
            if e < e_min {
                // Below the representable range: flush toward zero or the
                // smallest denormal step, whichever is nearer.
                let min_val = (2.0f32).powi(e_min);
                return if mag >= min_val / 2.0 { sign * min_val } else { 0.0 };
            }
            e = e.min(e_max);
            let base = (2.0f32).powi(e);
            let frac = (mag / base - 1.0).clamp(0.0, 1.0);
            let m = (frac * m_levels).round().min(m_levels - 1.0);
            sign * base * (1.0 + m / m_levels)
        });
        Ok(CodecResult {
            reconstructed,
            avg_bits: f64::from(self.total_bits),
            low_precision_fraction: 1.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32]) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[data.len()]).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(AdaptiveFloatCodec::new(8, 3).is_ok());
        assert!(AdaptiveFloatCodec::new(8, 7).is_err());
        assert!(AdaptiveFloatCodec::new(2, 0).is_err());
        assert!(AdaptiveFloatCodec::new(17, 3).is_err());
    }

    #[test]
    fn exact_powers_of_two_lossless() {
        let x = t(&[1.0, 0.5, -2.0, 4.0]);
        let r = AdaptiveFloatCodec::adafloat8().compress(&x).unwrap();
        assert_eq!(r.reconstructed.as_slice(), x.as_slice());
    }

    #[test]
    fn relative_error_bounded_by_mantissa() {
        let x = t(&[0.9, -0.37, 1.7, 0.0003, -3.9]);
        let r = AdaptiveFloatCodec::adafloat8().compress(&x).unwrap();
        for (&a, &b) in x.as_slice().iter().zip(r.reconstructed.as_slice()) {
            if a.abs() > 1e-3 {
                // 3 mantissa bits -> relative step 1/8
                assert!(((a - b) / a).abs() <= 1.0 / 8.0 + 1e-6, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn handles_wide_dynamic_range_better_than_int() {
        use crate::uniform::UniformQuantizer;
        // Values spanning 5 orders of magnitude: float wins over int8.
        let x = t(&[1e-3, 1e-2, 1e-1, 1.0, 10.0, -1e-3, -5.0]);
        let af = AdaptiveFloatCodec::adafloat8().compress(&x).unwrap();
        let i8 = UniformQuantizer::symmetric(8).compress(&x).unwrap();
        // Compare relative fidelity on the small values.
        let rel = |r: &CodecResult, i: usize| {
            ((x.as_slice()[i] - r.reconstructed.as_slice()[i]) / x.as_slice()[i]).abs()
        };
        assert!(rel(&af, 0) < rel(&i8, 0));
    }

    #[test]
    fn zero_tensor_short_circuit() {
        let x = Tensor::zeros(&[4]);
        let r = AdaptiveFloatCodec::adafloat8().compress(&x).unwrap();
        assert_eq!(r.mse(&x), 0.0);
    }

    #[test]
    fn name_and_bits() {
        let c = AdaptiveFloatCodec::adafloat8();
        assert_eq!(c.name(), "AdaFloat8");
        let r = c.compress(&t(&[1.0])).unwrap();
        assert_eq!(r.avg_bits, 8.0);
    }
}
