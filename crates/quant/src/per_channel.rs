//! Per-channel quantization granularity.
//!
//! The paper quantizes per layer ("the per-layer granularity of the
//! weights"); per-output-channel scaling is the standard refinement used by
//! most deployed INT8 pipelines (TensorRT, MQBench — both cited by the
//! paper). [`PerChannel`] wraps any [`Codec`] and applies it independently
//! to each column of a `rows x channels` weight matrix, which tightens each
//! channel's scale and usually raises the short-code fraction further.

use spark_tensor::{Tensor, ShapeError};

use crate::codec::{Codec, CodecResult, QuantError};

/// Wraps a codec to run per output channel (last dimension).
#[derive(Debug, Clone)]
pub struct PerChannel<C> {
    inner: C,
}

impl<C: Codec> PerChannel<C> {
    /// Creates the per-channel wrapper.
    pub fn new(inner: C) -> Self {
        Self { inner }
    }

    /// The wrapped codec.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    fn split_channels(tensor: &Tensor) -> Result<(usize, usize), ShapeError> {
        tensor.shape().as_matrix()
    }
}

impl<C: Codec> Codec for PerChannel<C> {
    fn name(&self) -> String {
        format!("{}/ch", self.inner.name())
    }

    fn compress(&self, tensor: &Tensor) -> Result<CodecResult, QuantError> {
        let (rows, channels) = Self::split_channels(tensor)
            .map_err(|e| QuantError::BadConfig(e.to_string()))?;
        if channels == 0 || rows == 0 {
            return self.inner.compress(tensor);
        }
        let src = tensor.as_slice();
        let mut out = vec![0.0f32; src.len()];
        let mut total_bits = 0.0f64;
        let mut total_low = 0.0f64;
        for c in 0..channels {
            let column: Vec<f32> = (0..rows).map(|r| src[r * channels + c]).collect();
            let col_tensor = Tensor::from_vec(column, &[rows])
                .map_err(|e| QuantError::BadConfig(e.to_string()))?;
            let r = self.inner.compress(&col_tensor)?;
            for (row, &v) in r.reconstructed.as_slice().iter().enumerate() {
                out[row * channels + c] = v;
            }
            total_bits += r.avg_bits * rows as f64;
            total_low += r.low_precision_fraction * rows as f64;
        }
        let n = (rows * channels) as f64;
        Ok(CodecResult {
            reconstructed: Tensor::from_vec(out, tensor.dims())
                .map_err(|e| QuantError::BadConfig(e.to_string()))?,
            // Per-channel scales add one FP32 scale per channel.
            avg_bits: total_bits / n + 32.0 * channels as f64 / n,
            low_precision_fraction: total_low / n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spark::SparkCodec;
    use crate::uniform::UniformQuantizer;

    /// A matrix whose channels have very different scales: per-tensor
    /// quantization wastes range on the small channels.
    fn scaled_channels(rows: usize, channels: usize) -> Tensor {
        Tensor::from_fn(&[rows, channels], |i| {
            let c = i % channels;
            let u = ((i * 2654435761) % 1000) as f32 / 1000.0 - 0.5;
            u * (10.0f32).powi((c % 4) as i32 - 2) // channel scales 0.01 .. 10
        })
    }

    #[test]
    fn per_channel_beats_per_tensor_on_scaled_channels() {
        let t = scaled_channels(256, 8);
        let per_tensor = UniformQuantizer::symmetric(8).compress(&t).unwrap();
        let per_channel = PerChannel::new(UniformQuantizer::symmetric(8))
            .compress(&t)
            .unwrap();
        assert!(
            per_channel.sqnr_db(&t) > per_tensor.sqnr_db(&t) + 3.0,
            "per-channel {} vs per-tensor {}",
            per_channel.sqnr_db(&t),
            per_tensor.sqnr_db(&t)
        );
    }

    #[test]
    fn per_channel_spark_improves_fidelity() {
        let t = scaled_channels(256, 8);
        let pt = SparkCodec::default().compress(&t).unwrap();
        let pc = PerChannel::new(SparkCodec::default()).compress(&t).unwrap();
        assert!(pc.sqnr_db(&t) > pt.sqnr_db(&t));
    }

    #[test]
    fn scale_overhead_charged() {
        let t = scaled_channels(64, 4);
        let pc = PerChannel::new(UniformQuantizer::symmetric(8))
            .compress(&t)
            .unwrap();
        // 4 channels x 32 bits over 256 values = 0.5 extra bits.
        assert!((pc.avg_bits - 8.5).abs() < 1e-9, "{}", pc.avg_bits);
    }

    #[test]
    fn name_reflects_granularity() {
        let c = PerChannel::new(SparkCodec::default());
        assert_eq!(c.name(), "SPARK/ch");
    }

    #[test]
    fn uniform_channels_no_worse_than_per_tensor() {
        // Same-scale channels: per-channel degenerates to per-tensor
        // behaviour (modulo the scale overhead).
        let t = Tensor::from_fn(&[128, 4], |i| {
            (((i * 2654435761) % 1000) as f32 / 1000.0 - 0.5) * 0.1
        });
        let pt = UniformQuantizer::symmetric(8).compress(&t).unwrap();
        let pc = PerChannel::new(UniformQuantizer::symmetric(8))
            .compress(&t)
            .unwrap();
        assert!(pc.sqnr_db(&t) >= pt.sqnr_db(&t) - 1.0);
    }

    #[test]
    fn rank1_tensor_handled_as_single_row() {
        let t = Tensor::from_fn(&[16], |i| i as f32 * 0.1);
        let pc = PerChannel::new(UniformQuantizer::symmetric(8));
        let r = pc.compress(&t).unwrap();
        assert_eq!(r.reconstructed.dims(), &[16]);
    }
}
