//! Uniform INT-m quantization (Eq 1/2 of the paper), the workhorse baseline.

use spark_tensor::{stats, Tensor};

use crate::codec::{check_finite, Codec, CodecResult, QuantError};
use crate::params::QuantParams;

/// Uniform fixed-width quantizer.
///
/// Covers the paper's INT16 (Eyeriss), INT8 (Q8BERT), and the layer-wise
/// INT-m configurations of BitFusion.
///
/// ```
/// use spark_quant::{Codec, UniformQuantizer};
/// use spark_tensor::Tensor;
/// let t = Tensor::from_vec(vec![1.0, -1.0, 0.5], &[3])?;
/// let q = UniformQuantizer::symmetric(8);
/// let r = q.compress(&t)?;
/// assert_eq!(r.avg_bits, 8.0);
/// assert!(r.mse(&t) < 1e-4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformQuantizer {
    bits: u8,
    symmetric: bool,
    clip_quantile: Option<f32>,
}

impl UniformQuantizer {
    /// Symmetric quantizer: codes cover `[-alpha, alpha]` with
    /// `alpha = max |x|`.
    pub fn symmetric(bits: u8) -> Self {
        Self {
            bits,
            symmetric: true,
            clip_quantile: None,
        }
    }

    /// Asymmetric quantizer: codes cover `[min, max]`.
    pub fn asymmetric(bits: u8) -> Self {
        Self {
            bits,
            symmetric: false,
            clip_quantile: None,
        }
    }

    /// Clips the calibration range at a quantile of `|x|` (symmetric mode
    /// only; asymmetric mode ignores it).
    pub fn with_clip_quantile(mut self, q: f32) -> Self {
        self.clip_quantile = Some(q);
        self
    }

    /// The configured bit-width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    fn validate(&self) -> Result<(), QuantError> {
        if !(2..=16).contains(&self.bits) {
            return Err(QuantError::UnsupportedBits(self.bits));
        }
        if let Some(q) = self.clip_quantile {
            if !(q > 0.0 && q <= 1.0) {
                return Err(QuantError::BadConfig(format!(
                    "clip quantile {q} outside (0, 1]"
                )));
            }
        }
        Ok(())
    }
}

impl Codec for UniformQuantizer {
    fn name(&self) -> String {
        let mode = if self.symmetric { "sym" } else { "asym" };
        format!("INT{}-{mode}", self.bits)
    }

    fn compress(&self, tensor: &Tensor) -> Result<CodecResult, QuantError> {
        self.validate()?;
        check_finite(tensor)?;
        let reconstructed = if self.symmetric {
            let alpha = match self.clip_quantile {
                Some(q) => stats::abs_quantile(tensor, q),
                None => stats::abs_max(tensor),
            };
            let p = QuantParams::symmetric(alpha, self.bits);
            let qmax = ((1u32 << (self.bits - 1)) - 1) as f32;
            tensor.map(|x| p.dequantize(p.quantize(x, -qmax, qmax)))
        } else {
            let s = stats::summarize(tensor);
            let p = QuantParams::asymmetric(s.min, s.max, self.bits);
            let qmax = ((1u64 << self.bits) - 1) as f32;
            tensor.map(|x| p.dequantize(p.quantize(x, 0.0, qmax)))
        };
        Ok(CodecResult {
            reconstructed,
            avg_bits: f64::from(self.bits),
            low_precision_fraction: 1.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32]) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[data.len()]).unwrap()
    }

    #[test]
    fn int8_symmetric_small_error() {
        let x = t(&[1.0, -1.0, 0.37, -0.42, 0.0]);
        let r = UniformQuantizer::symmetric(8).compress(&x).unwrap();
        let step = 1.0 / 127.0;
        for (&a, &b) in x.as_slice().iter().zip(r.reconstructed.as_slice()) {
            assert!((a - b).abs() <= step / 2.0 + 1e-6);
        }
    }

    #[test]
    fn asymmetric_handles_shifted_ranges() {
        let x = t(&[2.0, 2.5, 3.0, 2.25]);
        let r = UniformQuantizer::asymmetric(8).compress(&x).unwrap();
        assert!(r.mse(&x) < 1e-5);
    }

    #[test]
    fn fewer_bits_more_error() {
        let x = t(&(0..100).map(|i| (i as f32 / 17.0).sin()).collect::<Vec<_>>());
        let e8 = UniformQuantizer::symmetric(8).compress(&x).unwrap().mse(&x);
        let e4 = UniformQuantizer::symmetric(4).compress(&x).unwrap().mse(&x);
        let e2 = UniformQuantizer::symmetric(2).compress(&x).unwrap().mse(&x);
        assert!(e8 < e4);
        assert!(e4 < e2);
    }

    #[test]
    fn clipping_improves_outlier_tensors() {
        // A dense uniform body in [-1, 1] plus one rare 10.0 outlier: 4-bit
        // without clipping wastes its coarse grid on the outlier range,
        // while clipping saturates the single outlier and keeps the body
        // sharp. The MSE tradeoff favours clipping because the outlier is
        // rare (1/2000) relative to the squared-step gain on the body.
        let mut data: Vec<f32> = (0..1999)
            .map(|i| ((i * 2654435761usize) % 2000) as f32 / 1000.0 - 1.0)
            .collect();
        data.push(10.0);
        let x = t(&data);
        let plain = UniformQuantizer::symmetric(4).compress(&x).unwrap();
        let clipped = UniformQuantizer::symmetric(4)
            .with_clip_quantile(0.99)
            .compress(&x)
            .unwrap();
        assert!(
            clipped.mse(&x) < plain.mse(&x),
            "clipped {} vs plain {}",
            clipped.mse(&x),
            plain.mse(&x)
        );
    }

    #[test]
    fn bits_validated() {
        assert!(UniformQuantizer::symmetric(1).compress(&t(&[1.0])).is_err());
        assert!(UniformQuantizer::symmetric(17).compress(&t(&[1.0])).is_err());
        assert!(UniformQuantizer::symmetric(8)
            .with_clip_quantile(1.5)
            .compress(&t(&[1.0]))
            .is_err());
    }

    #[test]
    fn name_reflects_config() {
        assert_eq!(UniformQuantizer::symmetric(8).name(), "INT8-sym");
        assert_eq!(UniformQuantizer::asymmetric(6).name(), "INT6-asym");
    }

    #[test]
    fn zero_tensor_reconstructs_exactly() {
        let x = Tensor::zeros(&[16]);
        let r = UniformQuantizer::symmetric(8).compress(&x).unwrap();
        assert_eq!(r.mse(&x), 0.0);
    }

    #[test]
    fn nan_rejected() {
        assert!(UniformQuantizer::symmetric(8)
            .compress(&t(&[f32::NAN]))
            .is_err());
    }
}
