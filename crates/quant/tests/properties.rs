//! Property-based tests across every codec: shared contract checks on
//! arbitrary finite tensors, on the in-tree `spark_util::prop` harness.

use spark_quant::{
    AdaptiveFloatCodec, AntCodec, BiScaledCodec, Codec, GeneralSparkCodec, GoboCodec,
    MseCalibratedQuantizer, OlAccelCodec, OliveCodec, OutlierSuppressionCodec, PerChannel,
    SparkCodec, UniformQuantizer,
};
use spark_tensor::{stats, Tensor};
use spark_util::prop::{check_with, Config};
use spark_util::{prop_assert, Rng};

fn all_codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(SparkCodec::default()),
        Box::new(SparkCodec::default().without_compensation()),
        Box::new(GeneralSparkCodec::new(12, 6).expect("valid format")),
        Box::new(UniformQuantizer::symmetric(8)),
        Box::new(UniformQuantizer::asymmetric(8)),
        Box::new(UniformQuantizer::symmetric(4)),
        Box::new(MseCalibratedQuantizer::new(6).expect("valid bits")),
        Box::new(AntCodec::new(4).expect("valid bits")),
        Box::new(BiScaledCodec::new(6).expect("valid bits")),
        Box::new(OlAccelCodec::new()),
        Box::new(OliveCodec::new()),
        Box::new(GoboCodec::new()),
        Box::new(OutlierSuppressionCodec::new(6).expect("valid bits")),
        Box::new(AdaptiveFloatCodec::adafloat8()),
        Box::new(PerChannel::new(UniformQuantizer::symmetric(8))),
    ]
}

/// Generates raw rank-1 tensor data in (-50, 50). Tensors are built inside
/// the properties so shrinking operates on the plain `Vec<f32>`.
fn tensor_data(rng: &mut Rng) -> Vec<f32> {
    let n = rng.gen_range(8..128);
    (0..n).map(|_| rng.gen_range_f32(-50.0, 50.0)).collect()
}

/// Shrinking may take the vector below the generated minimum; codecs that
/// calibrate need a few elements, so skip degenerate shrunk inputs.
fn as_tensor(data: &[f32]) -> Option<Tensor> {
    if data.len() < 8 {
        return None;
    }
    Some(Tensor::from_vec(data.to_vec(), &[data.len()]).expect("length matches"))
}

/// Every codec's contract: finite reconstruction, same shape, sane storage
/// accounting, bounded range expansion.
#[test]
fn codec_contract_holds() {
    check_with(
        &Config::with_cases(24),
        "codec_contract_holds",
        tensor_data,
        |data| {
            let Some(t) = as_tensor(data) else { return Ok(()) };
            let abs_max = stats::abs_max(&t);
            for codec in all_codecs() {
                let r = codec
                    .compress(&t)
                    .unwrap_or_else(|e| panic!("{}: {e}", codec.name()));
                prop_assert!(r.reconstructed.dims() == t.dims(), "{}", codec.name());
                prop_assert!(
                    r.reconstructed.as_slice().iter().all(|x| x.is_finite()),
                    "{} produced non-finite values",
                    codec.name()
                );
                // Reconstructions never exceed the input range by more than
                // a rounding step of slack.
                let r_max = stats::abs_max(&r.reconstructed);
                prop_assert!(
                    r_max <= abs_max * 1.26 + 1e-6,
                    "{}: |recon| {} vs |input| {}",
                    codec.name(),
                    r_max,
                    abs_max
                );
                prop_assert!(
                    (1.0..=48.0).contains(&r.avg_bits),
                    "{}: avg_bits {}",
                    codec.name(),
                    r.avg_bits
                );
                prop_assert!(
                    (0.0..=1.0).contains(&r.low_precision_fraction),
                    "{}",
                    codec.name()
                );
            }
            Ok(())
        },
    );
}

/// Codecs reject non-finite input rather than propagating it. (The bad
/// values form a small closed set, so this is checked exhaustively.)
#[test]
fn non_finite_rejected() {
    for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
        let t = Tensor::from_vec(vec![1.0, bad, 2.0], &[3]).expect("length matches");
        for codec in all_codecs() {
            assert!(codec.compress(&t).is_err(), "{} accepted {bad}", codec.name());
        }
    }
}

/// SQNR never decreases when a uniform quantizer gets more bits.
#[test]
fn uniform_monotone_in_bits() {
    check_with(
        &Config::with_cases(24),
        "uniform_monotone_in_bits",
        tensor_data,
        |data| {
            let Some(t) = as_tensor(data) else { return Ok(()) };
            if stats::abs_max(&t) == 0.0 {
                return Ok(());
            }
            let mut last = f64::NEG_INFINITY;
            for bits in [2u8, 4, 6, 8, 12] {
                let r = UniformQuantizer::symmetric(bits).compress(&t).expect("finite");
                let s = r.sqnr_db(&t);
                prop_assert!(s + 1e-6 >= last, "bits {bits}: SQNR {s} < previous {last}");
                last = s;
            }
            Ok(())
        },
    );
}

/// SPARK's avg bits always lie in [4, 8] and agree with its short fraction.
#[test]
fn spark_bits_consistent() {
    check_with(
        &Config::with_cases(24),
        "spark_bits_consistent",
        tensor_data,
        |data| {
            let Some(t) = as_tensor(data) else { return Ok(()) };
            let r = SparkCodec::default().compress(&t).expect("finite");
            prop_assert!((4.0..=8.0).contains(&r.avg_bits), "avg {}", r.avg_bits);
            let expect = 8.0 - 4.0 * r.low_precision_fraction;
            prop_assert!((r.avg_bits - expect).abs() < 1e-9, "{} vs {expect}", r.avg_bits);
            Ok(())
        },
    );
}
