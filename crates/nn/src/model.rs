//! Sequential model container with softmax cross-entropy loss.

use spark_tensor::{ops, EncodedError, Tensor};

use crate::layers::Layer;

/// Memory accounting returned by [`Sequential::freeze_encoded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreezeReport {
    /// Bytes of SPARK containers + sign planes now resident for weights.
    pub resident_bytes: usize,
    /// Bytes the same weights would occupy as dense `f32`.
    pub dense_bytes: usize,
}

impl FreezeReport {
    /// `resident_bytes / dense_bytes`; 0.0 when nothing was frozen.
    pub fn ratio(&self) -> f64 {
        if self.dense_bytes == 0 {
            0.0
        } else {
            self.resident_bytes as f64 / self.dense_bytes as f64
        }
    }
}

/// A stack of layers trained with softmax cross-entropy.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    name: String,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("name", &self.name)
            .field("layers", &self.layers.len())
            .field("params", &self.param_count())
            .finish()
    }
}

impl Sequential {
    /// Creates an empty model.
    pub fn new(name: &str) -> Self {
        Self {
            layers: Vec::new(),
            name: name.to_string(),
        }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Forward pass to logits. The final layer's output is interpreted as a
    /// `(1, classes)` (or `(rows, classes)`, pooled by the caller) logit
    /// row.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Forward pass with a hook applied to every intermediate activation
    /// (after each layer except the final logits). Used to simulate
    /// activation quantization/encoding on the datapath: pass a hook that
    /// round-trips the tensor through a codec.
    pub fn forward_with_activation_hook(
        &mut self,
        x: &Tensor,
        hook: &dyn Fn(&Tensor) -> Tensor,
    ) -> Tensor {
        let mut h = x.clone();
        let last = self.layers.len().saturating_sub(1);
        for (i, layer) in self.layers.iter_mut().enumerate() {
            h = layer.forward(&h);
            if i < last {
                h = hook(&h);
            }
        }
        h
    }

    /// Predicted class with an activation hook (see
    /// [`Sequential::forward_with_activation_hook`]).
    pub fn predict_with_activation_hook(
        &mut self,
        x: &Tensor,
        hook: &dyn Fn(&Tensor) -> Tensor,
    ) -> usize {
        let logits = self.forward_with_activation_hook(x, hook);
        let l = logits.as_slice();
        l.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Forward + softmax cross-entropy against `label`; returns the loss and
    /// leaves gradients accumulated in every layer.
    pub fn train_example(&mut self, x: &Tensor, label: usize) -> f32 {
        let logits = self.forward(x);
        let probs = ops::softmax_rows(&logits).expect("logits are rank 2");
        let n = probs.len();
        let p = probs.as_slice();
        let loss = -(p[label.min(n - 1)].max(1e-12)).ln();
        // dL/dlogits = p - onehot(label)
        let mut grad: Vec<f32> = p.to_vec();
        grad[label.min(n - 1)] -= 1.0;
        let mut g = Tensor::from_vec(grad, logits.dims()).expect("same length");
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        loss
    }

    /// Applies accumulated gradients across all layers.
    pub fn step(&mut self, lr: f32, batch: usize) {
        for layer in &mut self.layers {
            layer.step(lr, batch);
        }
    }

    /// Predicted class for one example.
    pub fn predict(&mut self, x: &Tensor) -> usize {
        let logits = self.forward(x);
        let l = logits.as_slice();
        l.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Freezes every layer's weights into SPARK-encoded serving form.
    ///
    /// After this call the forward path runs the decode-fused GEMM over
    /// nibble-stream weights; outputs are bit-identical to the dense forward
    /// over the same (reconstructed) weights. Training (`step`) or mutating
    /// weights un-freezes the affected layers.
    pub fn freeze_encoded(&mut self) -> Result<FreezeReport, EncodedError> {
        let mut report = FreezeReport {
            resident_bytes: 0,
            dense_bytes: 0,
        };
        for layer in &mut self.layers {
            let (resident, dense) = layer.freeze_encoded()?;
            report.resident_bytes += resident;
            report.dense_bytes += dense;
        }
        Ok(report)
    }

    /// The frozen weight matrices of every persistence-capable layer, in
    /// layer order — the export half of the blockstore round-trip. Empty
    /// when the model is not frozen (or has no [`Layer::persists_weight`]
    /// layers).
    pub fn exported_weights(&self) -> Vec<&spark_tensor::EncodedMatrix> {
        self.layers.iter().filter_map(|l| l.exported_weight()).collect()
    }

    /// Installs stored frozen weights into the persistence-capable layers,
    /// in layer order — the cold-load inverse of [`Sequential::freeze_encoded`]
    /// + [`Sequential::exported_weights`]. Skips the quantize-and-encode
    /// pass entirely; after this call the model serves from the given
    /// nibble streams and its forward is bit-identical to the model the
    /// matrices were exported from.
    ///
    /// # Errors
    ///
    /// [`EncodedError::Shape`] when the matrix count does not match the
    /// number of weight-persisting layers or any matrix's dimensions do
    /// not match its layer; decode errors for corrupt container bytes.
    /// Layers before the failing one keep their installed state.
    pub fn import_weights(
        &mut self,
        mats: impl IntoIterator<Item = spark_tensor::EncodedMatrix>,
    ) -> Result<FreezeReport, EncodedError> {
        let mut mats = mats.into_iter();
        let mut report = FreezeReport {
            resident_bytes: 0,
            dense_bytes: 0,
        };
        for layer in &mut self.layers {
            if !layer.persists_weight() {
                continue;
            }
            let Some(em) = mats.next() else {
                return Err(EncodedError::Shape(spark_tensor::ShapeError::new(
                    "fewer stored matrices than weight-persisting layers",
                )));
            };
            let (resident, dense) = layer.import_weight(em)?;
            report.resident_bytes += resident;
            report.dense_bytes += dense;
        }
        if mats.next().is_some() {
            return Err(EncodedError::Shape(spark_tensor::ShapeError::new(
                "more stored matrices than weight-persisting layers",
            )));
        }
        Ok(report)
    }

    /// Mutable access to every weight tensor across layers.
    pub fn weights_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.weights_mut())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};

    fn xor_like_model() -> Sequential {
        Sequential::new("test")
            .push(Dense::new(2, 8, 1))
            .push(Relu::new())
            .push(Dense::new(8, 2, 2))
    }

    #[test]
    fn forward_produces_logits() {
        let mut m = xor_like_model();
        let x = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]).unwrap();
        let y = m.forward(&x);
        assert_eq!(y.dims(), &[1, 2]);
    }

    #[test]
    fn training_reduces_loss() {
        let mut m = xor_like_model();
        // Tiny dataset: class = x0 > x1.
        let examples = [
            (vec![1.0f32, 0.0], 0usize),
            (vec![0.0, 1.0], 1),
            (vec![0.9, 0.1], 0),
            (vec![0.2, 0.8], 1),
        ];
        let loss_of = |m: &mut Sequential| -> f32 {
            examples
                .iter()
                .map(|(x, l)| {
                    let t = Tensor::from_vec(x.clone(), &[1, 2]).unwrap();
                    let logits = m.forward(&t);
                    let p = ops::softmax_rows(&logits).unwrap();
                    -p.as_slice()[*l].max(1e-12).ln()
                })
                .sum()
        };
        let before = loss_of(&mut m);
        for _ in 0..50 {
            for (x, l) in &examples {
                let t = Tensor::from_vec(x.clone(), &[1, 2]).unwrap();
                m.train_example(&t, *l);
            }
            m.step(0.5, examples.len());
        }
        let after = loss_of(&mut m);
        assert!(after < before * 0.5, "loss {before} -> {after}");
    }

    #[test]
    fn predict_returns_argmax() {
        let mut m = xor_like_model();
        let x = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]).unwrap();
        let p = m.predict(&x);
        assert!(p < 2);
    }

    #[test]
    fn weights_mut_exposes_all_dense_weights() {
        let mut m = xor_like_model();
        assert_eq!(m.weights_mut().len(), 2);
    }

    #[test]
    fn param_count_sums_layers() {
        let m = xor_like_model();
        assert_eq!(m.param_count(), (2 * 8 + 8) + (8 * 2 + 2));
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn frozen_forward_is_bit_identical_to_dense_forward() {
        let mut m = Sequential::new("freeze")
            .push(Dense::new(6, 40, 11))
            .push(Relu::new())
            .push(Dense::new(40, 4, 12));
        let x = Tensor::from_vec((0..6).map(|i| (i as f32 - 2.5) * 0.3).collect(), &[1, 6])
            .unwrap();
        let report = m.freeze_encoded().unwrap();
        assert!(report.dense_bytes > 0);
        assert!(
            report.ratio() < 0.55,
            "resident/dense ratio {} not < 0.55",
            report.ratio()
        );
        let frozen = m.forward(&x);
        // weights_mut() drops the frozen state but keeps the reconstructed
        // dense weights, so the dense forward must reproduce the frozen
        // output to the bit.
        let _ = m.weights_mut();
        let dense = m.forward(&x);
        assert_eq!(bits(&frozen), bits(&dense));
    }

    #[test]
    fn export_import_round_trip_is_bit_identical() {
        let mut src = Sequential::new("export")
            .push(Dense::new(6, 40, 21))
            .push(Relu::new())
            .push(Dense::new(40, 4, 22));
        src.freeze_encoded().unwrap();
        let x = Tensor::from_vec((0..6).map(|i| (i as f32 - 2.5) * 0.3).collect(), &[1, 6])
            .unwrap();
        let want = src.forward(&x);
        let mats: Vec<_> = src.exported_weights().into_iter().cloned().collect();
        assert_eq!(mats.len(), 2, "two Dense layers export two matrices");

        // A model with different seeds: importing must overwrite its state
        // with the stored streams, making the forward bit-identical.
        let mut dst = Sequential::new("import")
            .push(Dense::new(6, 40, 91))
            .push(Relu::new())
            .push(Dense::new(40, 4, 92));
        let report = dst.import_weights(mats.clone()).unwrap();
        assert!(report.resident_bytes > 0);
        assert_eq!(bits(&dst.forward(&x)), bits(&want));

        // Count mismatches are typed errors, not partial installs silently
        // accepted.
        let mut short = Sequential::new("short")
            .push(Dense::new(6, 40, 1))
            .push(Relu::new())
            .push(Dense::new(40, 4, 2));
        assert!(short.import_weights(mats[..1].to_vec()).is_err());
        let mut long_mats = mats.clone();
        long_mats.push(mats[0].clone());
        assert!(short.import_weights(long_mats).is_err());
    }

    #[test]
    fn step_unfreezes_and_training_still_converges() {
        let mut m = xor_like_model();
        m.freeze_encoded().unwrap();
        let x = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]).unwrap();
        m.train_example(&x, 0);
        m.step(0.1, 1);
        // After a step the weights changed; forward must reflect the update
        // (i.e. not serve a stale frozen snapshot).
        let before = m.forward(&x);
        m.train_example(&x, 0);
        m.step(0.5, 1);
        let after = m.forward(&x);
        assert_ne!(bits(&before), bits(&after));
    }
}
