//! Trainable layers with manual backpropagation.
//!
//! Each layer processes one example at a time (a matrix whose rows are
//! spatial positions or sequence tokens), caches what its backward pass
//! needs, and accumulates parameter gradients until [`Layer::step`] applies
//! them. Small and explicit beats general here: these layers exist to give
//! the accuracy experiments a real trained network, not to be a framework.

use spark_util::dist::Normal;
use spark_util::Rng;
use spark_tensor::im2col::{col2im, im2col, Conv2dSpec};
use spark_tensor::{ops, EncodedError, EncodedMatrix, Tensor};

/// A trainable layer (single-example forward/backward).
///
/// `Send` is a supertrait so models can move into worker threads (the
/// serving plane holds a frozen [`crate::Sequential`] behind a mutex);
/// every layer here is plain owned data, so the bound costs nothing.
pub trait Layer: Send {
    /// Forward pass; caches activations for backward.
    fn forward(&mut self, x: &Tensor) -> Tensor;

    /// Backward pass: consumes the gradient w.r.t. this layer's output,
    /// accumulates parameter gradients, returns the gradient w.r.t. the
    /// input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Applies accumulated gradients (scaled by `lr / batch`) and clears
    /// them.
    fn step(&mut self, lr: f32, batch: usize);

    /// Mutable access to the layer's weight tensors (for compression).
    fn weights_mut(&mut self) -> Vec<&mut Tensor>;

    /// Number of trainable parameters.
    fn param_count(&self) -> usize;

    /// Freezes the layer's weights into SPARK-encoded serving form.
    ///
    /// Weights are quantized and encoded into resident nibble streams
    /// ([`EncodedMatrix`]); the dense tensors are replaced by the decoded
    /// reconstruction, so every later dense read (backward, compression)
    /// sees exactly what the fused forward multiplies by — which makes the
    /// frozen forward bit-identical to the unfrozen forward over the
    /// reconstructed weights. Training invalidates the frozen state
    /// ([`Layer::step`] and [`Layer::weights_mut`] drop it).
    ///
    /// Returns `(resident_bytes, dense_bytes)` for the layer's weights;
    /// the default for weight-less layers is `(0, 0)`.
    ///
    /// # Errors
    ///
    /// Returns [`EncodedError`] when a weight tensor holds non-finite
    /// values or fails to round-trip through the codec.
    fn freeze_encoded(&mut self) -> Result<(usize, usize), EncodedError> {
        Ok((0, 0))
    }

    /// Whether this layer exports/imports a single frozen weight matrix
    /// through [`Layer::exported_weight`] / [`Layer::import_weight`].
    ///
    /// This is the persistence contract a blockstore walks over a model:
    /// layers answering `true` contribute exactly one [`EncodedMatrix`] to
    /// the stored artifact, in layer order. The default is `false`; only
    /// [`Dense`] participates today (conv/attention layers freeze multiple
    /// matrices and are not yet covered by the store format).
    fn persists_weight(&self) -> bool {
        false
    }

    /// The frozen serving-form weight matrix, when this layer is frozen
    /// and [`Layer::persists_weight`] — the export half of the blockstore
    /// round-trip. Default: `None`.
    fn exported_weight(&self) -> Option<&EncodedMatrix> {
        None
    }

    /// Installs a stored frozen weight matrix as this layer's serving
    /// form — the import half of the blockstore round-trip, skipping the
    /// quantize-and-encode pass. Returns `(resident_bytes, dense_bytes)`.
    ///
    /// # Errors
    ///
    /// The default (any layer with `persists_weight() == false`) rejects
    /// every matrix with [`EncodedError::Shape`]; [`Dense`] rejects
    /// mismatched dimensions and corrupt container bytes.
    fn import_weight(&mut self, em: EncodedMatrix) -> Result<(usize, usize), EncodedError> {
        let _ = em;
        Err(EncodedError::Shape(spark_tensor::ShapeError::new(
            "layer has no installable weight matrix",
        )))
    }
}

/// Encodes one weight matrix for serving and swaps the dense tensor for
/// its decoded reconstruction (see [`Layer::freeze_encoded`]).
fn freeze_weight(w: &mut Tensor) -> Result<EncodedMatrix, EncodedError> {
    let em = EncodedMatrix::encode(w)?;
    *w = em.decode()?;
    Ok(em)
}

fn glorot(rows: usize, cols: usize, seed: u64) -> Tensor {
    let std = (2.0 / (rows + cols) as f32).sqrt();
    let normal = Normal::new(0.0, f64::from(std)).expect("positive std");
    let mut rng = Rng::seed_from_u64(seed);
    Tensor::from_fn(&[rows, cols], |_| normal.sample_f32(&mut rng))
}

/// Fully connected layer `y = x W + b` over row-vectors.
#[derive(Debug, Clone)]
pub struct Dense {
    w: Tensor,
    b: Vec<f32>,
    enc_w: Option<EncodedMatrix>,
    grad_w: Tensor,
    grad_b: Vec<f32>,
    cached_x: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Glorot-initialized weights.
    pub fn new(inputs: usize, outputs: usize, seed: u64) -> Self {
        Self {
            w: glorot(inputs, outputs, seed),
            b: vec![0.0; outputs],
            enc_w: None,
            grad_w: Tensor::zeros(&[inputs, outputs]),
            grad_b: vec![0.0; outputs],
            cached_x: None,
        }
    }

    /// The weight matrix (read-only).
    pub fn weight(&self) -> &Tensor {
        &self.w
    }

    /// True when the layer serves from SPARK-encoded weights.
    pub fn is_frozen(&self) -> bool {
        self.enc_w.is_some()
    }

    /// The frozen serving-form weights, when the layer is frozen — the
    /// export half of the persistence round-trip: a blockstore serializes
    /// these container images byte-for-byte.
    pub fn frozen_weight(&self) -> Option<&EncodedMatrix> {
        self.enc_w.as_ref()
    }

    /// Installs an already-encoded weight matrix (e.g. cold-loaded from a
    /// blockstore) as this layer's frozen serving form, skipping the
    /// quantize-and-encode pass entirely. The dense tensor is replaced by
    /// the decoded reconstruction, exactly as [`Layer::freeze_encoded`]
    /// leaves it — so a layer cold-loaded from the store is
    /// *state-identical* (same container bytes, same dense reconstruction)
    /// to one frozen in process, and its forward is bit-identical.
    ///
    /// Returns `(resident_bytes, dense_bytes)` like the freeze path.
    ///
    /// # Errors
    ///
    /// [`EncodedError::Shape`] when the matrix dimensions do not match the
    /// layer, and any typed decode error for corrupted container bytes
    /// (nothing is installed in that case).
    pub fn install_frozen(&mut self, em: EncodedMatrix) -> Result<(usize, usize), EncodedError> {
        let (inputs, outputs) = self.w.shape().as_matrix()?;
        if em.k() != inputs || em.n() != outputs {
            return Err(EncodedError::Shape(spark_tensor::ShapeError::new(format!(
                "stored matrix is {}x{}, layer expects {inputs}x{outputs}",
                em.k(),
                em.n(),
            ))));
        }
        // Decode before committing anything: corrupted bytes must leave
        // the layer untouched.
        let reconstructed = em.decode()?;
        self.w = reconstructed;
        let bytes = (em.resident_bytes(), em.dense_bytes());
        self.enc_w = Some(em);
        Ok(bytes)
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        // Fused bias epilogue — bit-identical to matmul + add_bias. When
        // frozen, the decode-fused engine multiplies by the resident
        // nibble streams directly; `w` holds their exact reconstruction,
        // so both branches produce the same bits.
        let y = match &self.enc_w {
            Some(em) => ops::matmul_bias_encoded(x, em, &self.b).expect("dense dims"),
            None => ops::matmul_bias(x, &self.w, &self.b).expect("dense dims"),
        };
        self.cached_x = Some(x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_x.as_ref().expect("forward before backward");
        // dW = Xᵀ G and dX = G Wᵀ via the transpose-free layouts.
        let gw = ops::matmul_tn(x, grad_out).expect("grad dims");
        self.grad_w = ops::add(&self.grad_w, &gw).expect("same shape");
        let (m, n) = grad_out.shape().as_matrix().expect("rank 2");
        let g = grad_out.as_slice();
        for i in 0..m {
            for j in 0..n {
                self.grad_b[j] += g[i * n + j];
            }
        }
        ops::matmul_nt(grad_out, &self.w).expect("grad dims")
    }

    fn step(&mut self, lr: f32, batch: usize) {
        let scale = lr / batch.max(1) as f32;
        let update = ops::scale(&self.grad_w, scale);
        self.w = ops::sub(&self.w, &update).expect("same shape");
        self.enc_w = None;
        for (b, g) in self.b.iter_mut().zip(&self.grad_b) {
            *b -= scale * g;
        }
        self.grad_w = Tensor::zeros(self.w.dims());
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    fn weights_mut(&mut self) -> Vec<&mut Tensor> {
        // The caller may rewrite the weights; the frozen streams would no
        // longer match.
        self.enc_w = None;
        vec![&mut self.w]
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn freeze_encoded(&mut self) -> Result<(usize, usize), EncodedError> {
        let em = freeze_weight(&mut self.w)?;
        let bytes = (em.resident_bytes(), em.dense_bytes());
        self.enc_w = Some(em);
        Ok(bytes)
    }

    fn persists_weight(&self) -> bool {
        true
    }

    fn exported_weight(&self) -> Option<&EncodedMatrix> {
        Dense::frozen_weight(self)
    }

    fn import_weight(&mut self, em: EncodedMatrix) -> Result<(usize, usize), EncodedError> {
        Dense::install_frozen(self, em)
    }
}

/// ReLU activation.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cached_x: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cached_x = Some(x.clone());
        ops::relu(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_x.as_ref().expect("forward before backward");
        ops::zip_with(grad_out, x, |g, xi| if xi > 0.0 { g } else { 0.0 })
            .expect("same shape")
    }

    fn step(&mut self, _lr: f32, _batch: usize) {}

    fn weights_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn param_count(&self) -> usize {
        0
    }
}

/// Mean-pool over rows: `(m x n) -> (1 x n)`.
#[derive(Debug, Clone, Default)]
pub struct MeanPoolRows {
    cached_rows: usize,
}

impl MeanPoolRows {
    /// Creates a row mean-pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for MeanPoolRows {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let (m, n) = x.shape().as_matrix().expect("rank 2");
        self.cached_rows = m;
        let xs = x.as_slice();
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for j in 0..n {
                out[j] += xs[i * n + j];
            }
        }
        for v in &mut out {
            *v /= m.max(1) as f32;
        }
        Tensor::from_vec(out, &[1, n]).expect("length matches")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (_, n) = grad_out.shape().as_matrix().expect("rank 2");
        let m = self.cached_rows.max(1);
        let g = grad_out.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = g[j] / m as f32;
            }
        }
        Tensor::from_vec(out, &[m, n]).expect("length matches")
    }

    fn step(&mut self, _lr: f32, _batch: usize) {}

    fn weights_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn param_count(&self) -> usize {
        0
    }
}

/// First-layer 2-D convolution via im2col.
///
/// Input: flattened `C x H x W` image as a `(1, C*H*W)` row; output: the
/// `(out_h*out_w, out_channels)` patch-response matrix. As the first layer
/// it does not propagate gradients to its input.
#[derive(Debug, Clone)]
pub struct ConvFirst {
    spec: Conv2dSpec,
    h: usize,
    w: usize,
    /// Flattened filters: `(C*k*k, out_channels)`.
    filters: Tensor,
    enc_f: Option<EncodedMatrix>,
    grad_f: Tensor,
    cached_patches: Option<Tensor>,
}

impl ConvFirst {
    /// Creates a first-layer convolution.
    pub fn new(spec: Conv2dSpec, h: usize, w: usize, seed: u64) -> Self {
        let k = spec.in_channels * spec.kernel * spec.kernel;
        Self {
            spec,
            h,
            w,
            filters: glorot(k, spec.out_channels, seed),
            enc_f: None,
            grad_f: Tensor::zeros(&[k, spec.out_channels]),
            cached_patches: None,
        }
    }
}

impl Layer for ConvFirst {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let img = x
            .reshape(&[self.spec.in_channels, self.h, self.w])
            .expect("input matches conv geometry");
        let patches = im2col(&img, &self.spec).expect("valid conv");
        let y = match &self.enc_f {
            Some(em) => ops::matmul_encoded(&patches, em).expect("conv dims"),
            None => ops::matmul(&patches, &self.filters).expect("conv dims"),
        };
        self.cached_patches = Some(patches);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let patches = self
            .cached_patches
            .as_ref()
            .expect("forward before backward");
        let gf = ops::matmul_tn(patches, grad_out).expect("grad dims");
        self.grad_f = ops::add(&self.grad_f, &gf).expect("same shape");
        // First layer: input gradient unused.
        Tensor::zeros(&[1, self.spec.in_channels * self.h * self.w])
    }

    fn step(&mut self, lr: f32, batch: usize) {
        let scale = lr / batch.max(1) as f32;
        let update = ops::scale(&self.grad_f, scale);
        self.filters = ops::sub(&self.filters, &update).expect("same shape");
        self.enc_f = None;
        self.grad_f = Tensor::zeros(self.filters.dims());
    }

    fn weights_mut(&mut self) -> Vec<&mut Tensor> {
        self.enc_f = None;
        vec![&mut self.filters]
    }

    fn param_count(&self) -> usize {
        self.filters.len()
    }

    fn freeze_encoded(&mut self) -> Result<(usize, usize), EncodedError> {
        let em = freeze_weight(&mut self.filters)?;
        let bytes = (em.resident_bytes(), em.dense_bytes());
        self.enc_f = Some(em);
        Ok(bytes)
    }
}

/// A full 2-D convolution layer usable anywhere in the network: propagates
/// gradients to its input via `col2im` (the adjoint of the im2col
/// lowering), so conv layers can be stacked.
///
/// Input/output convention: the activation tensor is the `(positions,
/// channels)` matrix a previous conv produced (or a `(1, C*H*W)` row for
/// the network input) — the layer reinterprets it as `C x H x W`.
#[derive(Debug, Clone)]
pub struct Conv2d {
    spec: Conv2dSpec,
    h: usize,
    w: usize,
    /// Flattened filters: `(C*k*k, out_channels)`.
    filters: Tensor,
    enc_f: Option<EncodedMatrix>,
    grad_f: Tensor,
    cached_patches: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution over `h x w` inputs.
    pub fn new(spec: Conv2dSpec, h: usize, w: usize, seed: u64) -> Self {
        let k = spec.in_channels * spec.kernel * spec.kernel;
        Self {
            spec,
            h,
            w,
            filters: glorot(k, spec.out_channels, seed),
            enc_f: None,
            grad_f: Tensor::zeros(&[k, spec.out_channels]),
            cached_patches: None,
        }
    }

    /// Output spatial size.
    pub fn output_hw(&self) -> (usize, usize) {
        self.spec
            .output_hw(self.h, self.w)
            .expect("constructor geometry is valid")
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        // Accept either (1, C*H*W) rows or (H*W, C) matrices from an
        // upstream conv; both flatten to C*H*W elements. Upstream convs
        // produce (positions, channels) which must be transposed to
        // channel-major before the reshape.
        let img = if x.dims().len() == 2 && x.dims()[0] == self.h * self.w {
            ops::transpose(x)
                .expect("rank 2")
                .reshape(&[self.spec.in_channels, self.h, self.w])
                .expect("geometry matches")
        } else {
            x.reshape(&[self.spec.in_channels, self.h, self.w])
                .expect("geometry matches")
        };
        let patches = im2col(&img, &self.spec).expect("valid conv");
        let y = match &self.enc_f {
            Some(em) => ops::matmul_encoded(&patches, em).expect("conv dims"),
            None => ops::matmul(&patches, &self.filters).expect("conv dims"),
        };
        self.cached_patches = Some(patches);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let patches = self
            .cached_patches
            .as_ref()
            .expect("forward before backward");
        let gf = ops::matmul_tn(patches, grad_out).expect("grad dims");
        self.grad_f = ops::add(&self.grad_f, &gf).expect("same shape");
        // Input gradient: dPatches = dY . F^T, scattered back by col2im,
        // then re-expressed in the (positions, channels) layout upstream
        // layers produced.
        let d_patches = ops::matmul_nt(grad_out, &self.filters).expect("grad dims");
        let d_img = col2im(&d_patches, &self.spec, self.h, self.w).expect("geometry");
        let chw = d_img
            .reshape(&[self.spec.in_channels, self.h * self.w])
            .expect("flatten");
        ops::transpose(&chw).expect("rank 2")
    }

    fn step(&mut self, lr: f32, batch: usize) {
        let scale = lr / batch.max(1) as f32;
        let update = ops::scale(&self.grad_f, scale);
        self.filters = ops::sub(&self.filters, &update).expect("same shape");
        self.enc_f = None;
        self.grad_f = Tensor::zeros(self.filters.dims());
    }

    fn weights_mut(&mut self) -> Vec<&mut Tensor> {
        self.enc_f = None;
        vec![&mut self.filters]
    }

    fn param_count(&self) -> usize {
        self.filters.len()
    }

    fn freeze_encoded(&mut self) -> Result<(usize, usize), EncodedError> {
        let em = freeze_weight(&mut self.filters)?;
        let bytes = (em.resident_bytes(), em.dense_bytes());
        self.enc_f = Some(em);
        Ok(bytes)
    }
}

/// Reshape `(m x n)` to `(1, m*n)` (flatten between conv and dense).
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_dims: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cached_dims = x.dims().to_vec();
        x.reshape(&[1, x.len()]).expect("flatten")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.reshape(&self.cached_dims).expect("unflatten")
    }

    fn step(&mut self, _lr: f32, _batch: usize) {}

    fn weights_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn param_count(&self) -> usize {
        0
    }
}

/// Adds a fixed sinusoidal positional encoding to a `(seq, d)` matrix.
///
/// Required by the attention proxy: the `token_patterns` task addresses by
/// position, which content-only attention cannot express.
#[derive(Debug, Clone)]
pub struct PositionalEncoding {
    table: Tensor,
}

impl PositionalEncoding {
    /// Creates the encoding table for `seq` positions of width `d`.
    pub fn new(seq: usize, d: usize) -> Self {
        let mut data = vec![0.0f32; seq * d];
        for pos in 0..seq {
            for i in 0..d {
                let angle = pos as f32 / (10_000f32).powf((2 * (i / 2)) as f32 / d as f32);
                data[pos * d + i] = if i % 2 == 0 { angle.sin() } else { angle.cos() };
            }
        }
        Self {
            table: Tensor::from_vec(data, &[seq, d]).expect("length matches"),
        }
    }
}

impl Layer for PositionalEncoding {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        ops::add(x, &self.table).expect("input matches table shape")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }

    fn step(&mut self, _lr: f32, _batch: usize) {}

    fn weights_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn param_count(&self) -> usize {
        0
    }
}

/// Single-head self-attention: `softmax(QK^T / sqrt(d)) V`, then an output
/// projection. Input and output are `(seq, d)` matrices.
#[derive(Debug, Clone)]
pub struct SelfAttention {
    wq: Tensor,
    wk: Tensor,
    wv: Tensor,
    wo: Tensor,
    /// Frozen serving form of `[wq, wk, wv, wo]`, in that order.
    enc: Option<[EncodedMatrix; 4]>,
    grads: [Tensor; 4],
    cache: Option<AttnCache>,
    d: usize,
}

#[derive(Debug, Clone)]
struct AttnCache {
    x: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    a: Tensor,
    y: Tensor,
}

impl SelfAttention {
    /// Creates a single-head self-attention layer of width `d`.
    pub fn new(d: usize, seed: u64) -> Self {
        Self {
            wq: glorot(d, d, seed),
            wk: glorot(d, d, seed.wrapping_add(1)),
            wv: glorot(d, d, seed.wrapping_add(2)),
            wo: glorot(d, d, seed.wrapping_add(3)),
            grads: [
                Tensor::zeros(&[d, d]),
                Tensor::zeros(&[d, d]),
                Tensor::zeros(&[d, d]),
                Tensor::zeros(&[d, d]),
            ],
            enc: None,
            cache: None,
            d,
        }
    }

    /// True when the projection weights are held as SPARK nibble streams.
    pub fn is_frozen(&self) -> bool {
        self.enc.is_some()
    }
}

impl Layer for SelfAttention {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let (q, k, v) = match &self.enc {
            Some(e) => (
                ops::matmul_encoded(x, &e[0]).expect("attn dims"),
                ops::matmul_encoded(x, &e[1]).expect("attn dims"),
                ops::matmul_encoded(x, &e[2]).expect("attn dims"),
            ),
            None => (
                ops::matmul(x, &self.wq).expect("attn dims"),
                ops::matmul(x, &self.wk).expect("attn dims"),
                ops::matmul(x, &self.wv).expect("attn dims"),
            ),
        };
        let scores = ops::scale(
            &ops::matmul_nt(&q, &k).expect("attn dims"),
            1.0 / (self.d as f32).sqrt(),
        );
        let a = ops::softmax_rows(&scores).expect("rank 2");
        let y = ops::matmul(&a, &v).expect("attn dims");
        let out = match &self.enc {
            Some(e) => ops::matmul_encoded(&y, &e[3]).expect("attn dims"),
            None => ops::matmul(&y, &self.wo).expect("attn dims"),
        };
        self.cache = Some(AttnCache {
            x: x.clone(),
            q,
            k,
            v,
            a,
            y,
        });
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let c = self.cache.as_ref().expect("forward before backward");
        let scale = 1.0 / (self.d as f32).sqrt();
        // out = Y Wo
        let g_wo = ops::matmul_tn(&c.y, grad_out).expect("dims");
        let d_y = ops::matmul_nt(grad_out, &self.wo).expect("dims");
        // Y = A V
        let d_a = ops::matmul_nt(&d_y, &c.v).expect("dims");
        let d_v = ops::matmul_tn(&c.a, &d_y).expect("dims");
        // A = softmax(S): dS = A ⊙ (dA - rowsum(dA ⊙ A))
        let (m, n) = c.a.shape().as_matrix().expect("rank 2");
        let av = c.a.as_slice();
        let dav = d_a.as_slice();
        let mut ds = vec![0.0f32; m * n];
        for i in 0..m {
            let row = i * n;
            let dot: f32 = (0..n).map(|j| dav[row + j] * av[row + j]).sum();
            for j in 0..n {
                ds[row + j] = av[row + j] * (dav[row + j] - dot);
            }
        }
        let d_s = ops::scale(
            &Tensor::from_vec(ds, &[m, n]).expect("length"),
            scale,
        );
        // S = Q K^T
        let d_q = ops::matmul(&d_s, &c.k).expect("dims");
        let d_k = ops::matmul_tn(&d_s, &c.q).expect("dims");
        // Projections.
        let g_wq = ops::matmul_tn(&c.x, &d_q).expect("dims");
        let g_wk = ops::matmul_tn(&c.x, &d_k).expect("dims");
        let g_wv = ops::matmul_tn(&c.x, &d_v).expect("dims");
        for (g, new) in self.grads.iter_mut().zip([g_wq, g_wk, g_wv, g_wo]) {
            *g = ops::add(g, &new).expect("same shape");
        }
        // dX = dQ Wq^T + dK Wk^T + dV Wv^T
        let mut dx = ops::matmul_nt(&d_q, &self.wq).expect("dims");
        dx = ops::add(&dx, &ops::matmul_nt(&d_k, &self.wk).expect("dims")).expect("same shape");
        ops::add(&dx, &ops::matmul_nt(&d_v, &self.wv).expect("dims")).expect("same shape")
    }

    fn step(&mut self, lr: f32, batch: usize) {
        self.enc = None;
        let scale = lr / batch.max(1) as f32;
        for (w, g) in [&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
            .into_iter()
            .zip(self.grads.iter_mut())
        {
            let update = ops::scale(g, scale);
            *w = ops::sub(w, &update).expect("same shape");
            *g = Tensor::zeros(w.dims());
        }
    }

    fn weights_mut(&mut self) -> Vec<&mut Tensor> {
        self.enc = None;
        vec![&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
    }

    fn param_count(&self) -> usize {
        4 * self.d * self.d
    }

    fn freeze_encoded(&mut self) -> Result<(usize, usize), EncodedError> {
        let eq = freeze_weight(&mut self.wq)?;
        let ek = freeze_weight(&mut self.wk)?;
        let ev = freeze_weight(&mut self.wv)?;
        let eo = freeze_weight(&mut self.wo)?;
        let enc = [eq, ek, ev, eo];
        let resident = enc.iter().map(EncodedMatrix::resident_bytes).sum();
        let dense = enc.iter().map(EncodedMatrix::dense_bytes).sum();
        self.enc = Some(enc);
        Ok((resident, dense))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_difference_check<L: Layer>(layer: &mut L, x: &Tensor, eps: f32) -> (f32, f32) {
        // Loss = sum of outputs. Analytic input grad vs finite difference on
        // one input coordinate.
        let y = layer.forward(x);
        let ones = Tensor::full(y.dims(), 1.0);
        let gx = layer.backward(&ones);
        // perturb coordinate 0
        let mut xp = x.clone();
        xp.as_mut_slice()[0] += eps;
        let yp = layer.forward(&xp);
        let f0: f32 = y.as_slice().iter().sum();
        let f1: f32 = yp.as_slice().iter().sum();
        ((f1 - f0) / eps, gx.as_slice()[0])
    }

    #[test]
    fn dense_forward_shape_and_bias() {
        let mut d = Dense::new(3, 2, 1);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let y = d.forward(&x);
        assert_eq!(y.dims(), &[1, 2]);
    }

    #[test]
    fn dense_gradient_matches_finite_difference() {
        let mut d = Dense::new(4, 3, 2);
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1], &[1, 4]).unwrap();
        let (fd, an) = finite_difference_check(&mut d, &x, 1e-3);
        assert!((fd - an).abs() < 1e-2, "fd {fd} vs analytic {an}");
    }

    #[test]
    fn dense_step_reduces_loss() {
        // One step of gradient descent on loss = sum(y) must reduce sum(y).
        let mut d = Dense::new(2, 2, 3);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y0: f32 = d.forward(&x).as_slice().iter().sum();
        let ones = Tensor::full(&[1, 2], 1.0);
        d.backward(&ones);
        d.step(0.1, 1);
        let y1: f32 = d.forward(&x).as_slice().iter().sum();
        assert!(y1 < y0);
    }

    #[test]
    fn relu_gradient_masks() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[1, 2]).unwrap();
        let _ = r.forward(&x);
        let g = r.backward(&Tensor::full(&[1, 2], 1.0));
        assert_eq!(g.as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn meanpool_gradient_spreads() {
        let mut p = MeanPoolRows::new();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let y = p.forward(&x);
        assert_eq!(y.as_slice(), &[2.0, 3.0]);
        let g = p.backward(&Tensor::full(&[1, 2], 1.0));
        assert_eq!(g.as_slice(), &[0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn conv_first_shapes() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 4,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let mut c = ConvFirst::new(spec, 8, 8, 5);
        let x = Tensor::zeros(&[1, 64]);
        let y = c.forward(&x);
        assert_eq!(y.dims(), &[64, 4]);
        assert_eq!(c.param_count(), 9 * 4);
    }

    #[test]
    fn conv_filters_receive_gradient() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 2,
            kernel: 2,
            stride: 1,
            padding: 0,
        };
        let mut c = ConvFirst::new(spec, 3, 3, 6);
        let x = Tensor::from_fn(&[1, 9], |i| i as f32);
        let y = c.forward(&x);
        let before = c.filters.clone();
        c.backward(&Tensor::full(y.dims(), 1.0));
        c.step(0.01, 1);
        assert_ne!(c.filters, before);
    }

    #[test]
    fn flatten_round_trip() {
        let mut f = Flatten::new();
        let x = Tensor::from_fn(&[3, 4], |i| i as f32);
        let y = f.forward(&x);
        assert_eq!(y.dims(), &[1, 12]);
        let g = f.backward(&y);
        assert_eq!(g.dims(), &[3, 4]);
    }

    #[test]
    fn conv2d_stacks_and_propagates_gradients() {
        // Two stacked convs: the first must receive gradient through the
        // second's col2im path.
        let spec1 = Conv2dSpec {
            in_channels: 1,
            out_channels: 3,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let spec2 = Conv2dSpec {
            in_channels: 3,
            out_channels: 2,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let mut c1 = Conv2d::new(spec1, 6, 6, 11);
        let mut c2 = Conv2d::new(spec2, 6, 6, 12);
        let x = Tensor::from_fn(&[1, 36], |i| (i as f32 * 0.1).sin());
        let h = c1.forward(&x);
        assert_eq!(h.dims(), &[36, 3]);
        let y = c2.forward(&h);
        assert_eq!(y.dims(), &[36, 2]);
        let g = c2.backward(&Tensor::full(y.dims(), 1.0));
        assert_eq!(g.dims(), &[36, 3]);
        let f1_before = c1.filters.clone();
        c1.backward(&g);
        c1.step(0.1, 1);
        assert_ne!(c1.filters, f1_before, "first conv got gradient");
    }

    #[test]
    fn conv2d_input_gradient_matches_finite_difference() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 2,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let mut c = Conv2d::new(spec, 4, 4, 13);
        let x = Tensor::from_fn(&[1, 16], |i| (i as f32 * 0.37).cos() * 0.5);
        let (fd, an) = finite_difference_check(&mut c, &x, 1e-3);
        assert!((fd - an).abs() < 0.05 * fd.abs().max(1.0), "fd {fd} vs an {an}");
    }

    #[test]
    fn attention_forward_shapes() {
        let mut a = SelfAttention::new(8, 7);
        let x = Tensor::from_fn(&[5, 8], |i| (i as f32 * 0.1).sin());
        let y = a.forward(&x);
        assert_eq!(y.dims(), &[5, 8]);
    }

    #[test]
    fn attention_gradient_matches_finite_difference() {
        let mut a = SelfAttention::new(4, 8);
        let x = Tensor::from_fn(&[3, 4], |i| (i as f32 * 0.3).cos() * 0.5);
        let (fd, an) = finite_difference_check(&mut a, &x, 1e-3);
        assert!(
            (fd - an).abs() < 0.05 * fd.abs().max(1.0),
            "fd {fd} vs analytic {an}"
        );
    }

    #[test]
    fn attention_step_changes_all_projections() {
        let mut a = SelfAttention::new(4, 9);
        let x = Tensor::from_fn(&[3, 4], |i| (i as f32 * 0.3).sin());
        let before: Vec<Tensor> = vec![a.wq.clone(), a.wk.clone(), a.wv.clone(), a.wo.clone()];
        let y = a.forward(&x);
        a.backward(&Tensor::full(y.dims(), 1.0));
        a.step(0.5, 1);
        let after = [&a.wq, &a.wk, &a.wv, &a.wo];
        for (b, &aft) in before.iter().zip(after.iter()) {
            assert_ne!(b, aft);
        }
    }

    #[test]
    fn param_counts() {
        assert_eq!(Dense::new(3, 4, 0).param_count(), 16);
        assert_eq!(SelfAttention::new(8, 0).param_count(), 256);
        assert_eq!(Relu::new().param_count(), 0);
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn dense_install_frozen_round_trips_the_freeze_state() {
        // Export a frozen layer's matrix, install it into a fresh layer:
        // container bytes, reconstruction, and forward must all match —
        // the invariant the blockstore's cold-load path rests on.
        let mut src = Dense::new(7, 19, 77);
        src.freeze_encoded().unwrap();
        let em = src.frozen_weight().unwrap().clone();
        let mut dst = Dense::new(7, 19, 999); // different seed on purpose
        let (resident, dense) = dst.install_frozen(em.clone()).unwrap();
        assert_eq!(resident, em.resident_bytes());
        assert_eq!(dense, em.dense_bytes());
        assert!(dst.is_frozen());
        assert_eq!(
            dst.weight().as_slice(),
            src.weight().as_slice(),
            "reconstruction must match the freezing layer's"
        );
        let x = Tensor::from_fn(&[2, 7], |i| (i as f32 * 0.31).sin());
        assert_eq!(bits(&src.forward(&x)), bits(&dst.forward(&x)));
        // Dimension mismatch is typed and leaves the layer untouched.
        let mut wrong = Dense::new(8, 19, 1);
        assert!(wrong.install_frozen(em).is_err());
        assert!(!wrong.is_frozen());
    }

    #[test]
    fn dense_frozen_forward_bit_identical_and_step_unfreezes() {
        let mut d = Dense::new(5, 33, 21);
        let x = Tensor::from_fn(&[3, 5], |i| (i as f32 * 0.23).sin());
        let (resident, dense) = d.freeze_encoded().unwrap();
        assert!(d.is_frozen());
        assert!(resident * 2 < dense, "{resident} vs {dense}");
        let frozen = d.forward(&x);
        // weights_mut keeps the reconstructed weights but drops the frozen
        // state: the dense kernel must reproduce the fused output exactly.
        let _ = d.weights_mut();
        assert!(!d.is_frozen());
        assert_eq!(bits(&frozen), bits(&d.forward(&x)));
        d.freeze_encoded().unwrap();
        d.backward(&Tensor::full(&[3, 33], 1.0));
        d.step(0.1, 1);
        assert!(!d.is_frozen(), "step must invalidate the frozen weights");
    }

    #[test]
    fn conv2d_frozen_forward_bit_identical() {
        let spec = Conv2dSpec {
            in_channels: 2,
            out_channels: 5,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let mut c = Conv2d::new(spec, 5, 5, 31);
        let x = Tensor::from_fn(&[25, 2], |i| (i as f32 * 0.17).cos());
        c.freeze_encoded().unwrap();
        let frozen = c.forward(&x);
        let _ = c.weights_mut();
        assert_eq!(bits(&frozen), bits(&c.forward(&x)));
    }

    #[test]
    fn conv_first_frozen_forward_bit_identical() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 4,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let mut c = ConvFirst::new(spec, 6, 6, 41);
        let x = Tensor::from_fn(&[1, 36], |i| (i as f32 * 0.29).sin());
        c.freeze_encoded().unwrap();
        let frozen = c.forward(&x);
        let _ = c.weights_mut();
        assert_eq!(bits(&frozen), bits(&c.forward(&x)));
    }

    #[test]
    fn attention_frozen_forward_bit_identical_and_step_unfreezes() {
        let mut a = SelfAttention::new(8, 51);
        let x = Tensor::from_fn(&[6, 8], |i| (i as f32 * 0.13).sin());
        a.freeze_encoded().unwrap();
        assert!(a.is_frozen());
        let frozen = a.forward(&x);
        let _ = a.weights_mut();
        assert!(!a.is_frozen());
        assert_eq!(bits(&frozen), bits(&a.forward(&x)));
        a.freeze_encoded().unwrap();
        let y = a.forward(&x);
        a.backward(&Tensor::full(y.dims(), 1.0));
        a.step(0.5, 1);
        assert!(!a.is_frozen());
    }
}
