//! The paper's evaluated networks as GEMM workloads.
//!
//! Systolic-array accelerators execute DNN inference as a sequence of matrix
//! multiplications: convolutions through im2col, attention and MLP blocks
//! directly. A [`ModelWorkload`] is that sequence, with enough metadata
//! (layer names, repeat counts) for the simulator to attribute cycles and
//! bytes. Layer lists follow the standard architectures (torchvision /
//! HuggingFace configurations).

use spark_tensor::im2col::Conv2dSpec;
use spark_tensor::Tensor;
use spark_util::Rng;

/// One GEMM: `(m x k) * (k x n)`, executed `repeats` times.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Gemm {
    /// Output rows (im2col patches or sequence length).
    pub m: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Times this GEMM runs per inference (e.g. per transformer layer).
    pub repeats: usize,
    /// Human-readable layer label.
    pub label: String,
}

impl Gemm {
    /// Creates a single-occurrence GEMM.
    pub fn new(label: &str, m: usize, k: usize, n: usize) -> Self {
        Self {
            m,
            k,
            n,
            repeats: 1,
            label: label.to_string(),
        }
    }

    /// Sets the repeat count (builder style).
    pub fn times(mut self, repeats: usize) -> Self {
        self.repeats = repeats;
        self
    }

    /// Multiply-accumulate operations for all repeats.
    pub fn macs(&self) -> u64 {
        (self.m as u64) * (self.k as u64) * (self.n as u64) * (self.repeats as u64)
    }

    /// Weight elements (the `k x n` operand), counted once per repeat —
    /// transformer layers do not share weights across repeats.
    pub fn weight_elements(&self) -> u64 {
        (self.k as u64) * (self.n as u64) * (self.repeats as u64)
    }

    /// Activation elements streamed in (the `m x k` operand).
    pub fn activation_elements(&self) -> u64 {
        (self.m as u64) * (self.k as u64) * (self.repeats as u64)
    }

    /// Output elements produced.
    pub fn output_elements(&self) -> u64 {
        (self.m as u64) * (self.n as u64) * (self.repeats as u64)
    }

    /// Seeded uniform `(-1, 1)` operand tensors (`m x k` activations,
    /// `k x n` weights) for actually executing this layer's GEMM on the
    /// CPU backend — benchmarks and functional-pipeline runs use this to
    /// turn the workload metadata into real work.
    pub fn make_operands(&self, seed: u64) -> (Tensor, Tensor) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut uniform = || (rng.gen_f64() as f32) * 2.0 - 1.0;
        let a = Tensor::from_fn(&[self.m, self.k], |_| uniform());
        let b = Tensor::from_fn(&[self.k, self.n], |_| uniform());
        (a, b)
    }
}

/// A network expressed as its inference GEMM sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelWorkload {
    /// Model name, matching `spark_data::ModelProfile` names.
    pub name: String,
    /// GEMMs in execution order.
    pub gemms: Vec<Gemm>,
}

impl ModelWorkload {
    /// Total MACs per inference.
    pub fn total_macs(&self) -> u64 {
        self.gemms.iter().map(Gemm::macs).sum()
    }

    /// Total weight elements (≈ parameters in the GEMM layers).
    pub fn total_weights(&self) -> u64 {
        self.gemms.iter().map(Gemm::weight_elements).sum()
    }

    /// Total activation elements streamed.
    pub fn total_activations(&self) -> u64 {
        self.gemms.iter().map(Gemm::activation_elements).sum()
    }

    /// Helper: appends a conv layer lowered through im2col.
    fn push_conv(
        gemms: &mut Vec<Gemm>,
        label: &str,
        spec: Conv2dSpec,
        h: usize,
        w: usize,
        repeats: usize,
    ) {
        let (m, k, n) = spec
            .gemm_dims(h, w)
            .expect("workload layer geometry is valid");
        gemms.push(Gemm::new(label, m, k, n).times(repeats));
    }

    /// VGG-16 at 224x224 (13 convs + 3 FC).
    pub fn vgg16() -> Self {
        let mut g = Vec::new();
        let conv = |cin, cout| Conv2dSpec {
            in_channels: cin,
            out_channels: cout,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        // (cin, cout, spatial, repeats) — 13 convolutions total.
        let blocks: &[(usize, usize, usize, usize)] = &[
            (3, 64, 224, 1),
            (64, 64, 224, 1),
            (64, 128, 112, 1),
            (128, 128, 112, 1),
            (128, 256, 56, 1),
            (256, 256, 56, 2),
            (256, 512, 28, 1),
            (512, 512, 28, 2),
            (512, 512, 14, 3),
        ];
        for (i, &(cin, cout, hw, rep)) in blocks.iter().enumerate() {
            Self::push_conv(&mut g, &format!("conv{}", i + 1), conv(cin, cout), hw, hw, rep);
        }
        g.push(Gemm::new("fc1", 1, 25088, 4096));
        g.push(Gemm::new("fc2", 1, 4096, 4096));
        g.push(Gemm::new("fc3", 1, 4096, 1000));
        Self {
            name: "VGG16".to_string(),
            gemms: g,
        }
    }

    /// ResNet-18 at 224x224 (basic blocks 2-2-2-2).
    pub fn resnet18() -> Self {
        let mut g = Vec::new();
        Self::push_conv(
            &mut g,
            "stem",
            Conv2dSpec {
                in_channels: 3,
                out_channels: 64,
                kernel: 7,
                stride: 2,
                padding: 3,
            },
            224,
            224,
            1,
        );
        // (channels, spatial, blocks)
        for (ch, hw, blocks) in [(64usize, 56usize, 2usize), (128, 28, 2), (256, 14, 2), (512, 7, 2)] {
            let spec = Conv2dSpec {
                in_channels: ch,
                out_channels: ch,
                kernel: 3,
                stride: 1,
                padding: 1,
            };
            Self::push_conv(&mut g, &format!("stage{ch}"), spec, hw, hw, blocks * 2);
        }
        g.push(Gemm::new("fc", 1, 512, 1000));
        Self {
            name: "ResNet18".to_string(),
            gemms: g,
        }
    }

    /// ResNet-50 at 224x224 (bottleneck blocks 3-4-6-3).
    pub fn resnet50() -> Self {
        Self::resnet_bottleneck("ResNet50", &[3, 4, 6, 3])
    }

    /// ResNet-152 at 224x224 (bottleneck blocks 3-8-36-3).
    pub fn resnet152() -> Self {
        Self::resnet_bottleneck("ResNet152", &[3, 8, 36, 3])
    }

    fn resnet_bottleneck(name: &str, blocks: &[usize; 4]) -> Self {
        let mut g = Vec::new();
        Self::push_conv(
            &mut g,
            "stem",
            Conv2dSpec {
                in_channels: 3,
                out_channels: 64,
                kernel: 7,
                stride: 2,
                padding: 3,
            },
            224,
            224,
            1,
        );
        let stages = [(64usize, 256usize, 56usize), (128, 512, 28), (256, 1024, 14), (512, 2048, 7)];
        for (si, &(mid, out, hw)) in stages.iter().enumerate() {
            let reps = blocks[si];
            // 1x1 reduce (from `out` except the first block of the stage,
            // approximated at `out` for all — within a few percent of MACs)
            g.push(
                Gemm::new(&format!("s{si}.reduce"), hw * hw, out, mid).times(reps),
            );
            Self::push_conv(
                &mut g,
                &format!("s{si}.conv3"),
                Conv2dSpec {
                    in_channels: mid,
                    out_channels: mid,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
                hw,
                hw,
                reps,
            );
            g.push(
                Gemm::new(&format!("s{si}.expand"), hw * hw, mid, out).times(reps),
            );
        }
        g.push(Gemm::new("fc", 1, 2048, 1000));
        Self {
            name: name.to_string(),
            gemms: g,
        }
    }

    /// Transformer encoder stack: `layers` layers at hidden size `d`, FFN
    /// `4d`, sequence length `seq`.
    fn transformer(name: &str, layers: usize, d: usize, seq: usize, classes: usize) -> Self {
        // Attention scores and context are seq x d_head x seq per head,
        // which summed over heads equals seq x d x seq.
        let g = vec![
            Gemm::new("qkv", seq, d, 3 * d).times(layers),
            Gemm::new("scores", seq, d, seq).times(layers),
            Gemm::new("context", seq, seq, d).times(layers),
            Gemm::new("attn_out", seq, d, d).times(layers),
            Gemm::new("ffn_up", seq, d, 4 * d).times(layers),
            Gemm::new("ffn_down", seq, 4 * d, d).times(layers),
            Gemm::new("head", 1, d, classes),
        ];
        Self {
            name: name.to_string(),
            gemms: g,
        }
    }

    /// BERT-Base (12 layers, d=768) at sequence length 128.
    pub fn bert() -> Self {
        Self::transformer("BERT", 12, 768, 128, 2)
    }

    /// ViT-B/16 (12 layers, d=768) at sequence length 197.
    pub fn vit() -> Self {
        Self::transformer("ViT", 12, 768, 197, 1000)
    }

    /// GPT-2 small (12 layers, d=768) at sequence length 1024.
    pub fn gpt2() -> Self {
        Self::transformer("GPT-2", 12, 768, 1024, 50257)
    }

    /// BART-Base (6 encoder + 6 decoder layers, d=768) at sequence 128.
    pub fn bart() -> Self {
        Self::transformer("BART", 12, 768, 128, 50265)
    }

    /// The six models of the performance figures (Figs 11/12/15), in paper
    /// order.
    pub fn performance_suite() -> Vec<Self> {
        vec![
            Self::vgg16(),
            Self::resnet18(),
            Self::resnet50(),
            Self::vit(),
            Self::bert(),
            Self::gpt2(),
        ]
    }

    /// Looks a workload up by profile name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "VGG16" => Some(Self::vgg16()),
            "ResNet18" => Some(Self::resnet18()),
            "ResNet50" => Some(Self::resnet50()),
            "ResNet152" => Some(Self::resnet152()),
            "BERT" => Some(Self::bert()),
            "ViT" => Some(Self::vit()),
            "GPT-2" => Some(Self::gpt2()),
            "BART" => Some(Self::bart()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_accounting() {
        let g = Gemm::new("x", 2, 3, 4).times(5);
        assert_eq!(g.macs(), 2 * 3 * 4 * 5);
        assert_eq!(g.weight_elements(), 3 * 4 * 5);
        assert_eq!(g.activation_elements(), 2 * 3 * 5);
        assert_eq!(g.output_elements(), 2 * 4 * 5);
    }

    #[test]
    fn vgg16_macs_in_published_ballpark() {
        // VGG-16 is ~15.5 GMACs at 224x224.
        let macs = ModelWorkload::vgg16().total_macs() as f64 / 1e9;
        assert!((13.0..18.0).contains(&macs), "VGG16 {macs} GMACs");
    }

    #[test]
    fn resnet50_macs_in_published_ballpark() {
        // ResNet-50 is ~4.1 GMACs.
        let macs = ModelWorkload::resnet50().total_macs() as f64 / 1e9;
        assert!((3.0..5.5).contains(&macs), "ResNet50 {macs} GMACs");
    }

    #[test]
    fn resnet18_macs_in_published_ballpark() {
        // ResNet-18 is ~1.8 GMACs.
        let macs = ModelWorkload::resnet18().total_macs() as f64 / 1e9;
        assert!((1.2..2.5).contains(&macs), "ResNet18 {macs} GMACs");
    }

    #[test]
    fn bert_weights_in_published_ballpark() {
        // BERT-Base GEMM weights ≈ 85M (of 110M total incl. embeddings).
        let w = ModelWorkload::bert().total_weights() as f64 / 1e6;
        assert!((70.0..100.0).contains(&w), "BERT {w} M weights");
    }

    #[test]
    fn resnet152_deeper_than_resnet50() {
        assert!(
            ModelWorkload::resnet152().total_macs() > 2 * ModelWorkload::resnet50().total_macs()
        );
    }

    #[test]
    fn gpt2_heaviest_attention_model() {
        let gpt2 = ModelWorkload::gpt2().total_macs();
        let bert = ModelWorkload::bert().total_macs();
        assert!(gpt2 > 4 * bert);
    }

    #[test]
    fn lookup_by_name() {
        for name in ["VGG16", "ResNet50", "BERT", "ViT", "GPT-2", "BART", "ResNet152", "ResNet18"] {
            let w = ModelWorkload::by_name(name).expect(name);
            assert_eq!(w.name, name);
            assert!(w.total_macs() > 0);
        }
        assert!(ModelWorkload::by_name("AlexNet").is_none());
    }

    #[test]
    fn performance_suite_order() {
        let names: Vec<_> = ModelWorkload::performance_suite()
            .into_iter()
            .map(|w| w.name)
            .collect();
        assert_eq!(
            names,
            vec!["VGG16", "ResNet18", "ResNet50", "ViT", "BERT", "GPT-2"]
        );
    }
}
