//! # spark-nn — neural-network substrate for the SPARK reproduction
//!
//! Two halves:
//!
//! 1. **Workloads** ([`workload`]): the paper's evaluated networks (VGG16,
//!    ResNet-18/50/152, BERT, ViT, GPT-2, BART) expressed as the GEMM
//!    sequences their inference lowers to. The cycle-accurate simulator in
//!    `spark-sim` consumes these.
//! 2. **Trainable proxies** ([`layers`], [`model`], [`train`], [`proxy`]):
//!    small networks — an im2col CNN and a single-head attention classifier —
//!    with full manual backprop and SGD, trained on the synthetic tasks from
//!    `spark-data`. They provide the *real* end-to-end accuracy numbers for
//!    Tables III/IV/V and the Fig 13 ablation: train in FP32, compress the
//!    weights with any [`spark_quant::Codec`], re-evaluate, optionally
//!    finetune with the codec in the loop.
//!
//! # Example
//!
//! ```no_run
//! use spark_data::Dataset;
//! use spark_nn::{proxy, train};
//! use spark_quant::SparkCodec;
//!
//! let data = Dataset::blobs(512, 16, 4, 1);
//! let (train_set, test_set) = data.split(0.8);
//! let mut model = proxy::tiny_mlp(16, 32, 4, 7);
//! train::train(&mut model, &train_set, &train::TrainConfig::quick());
//! let fp32_acc = train::evaluate(&mut model, &test_set);
//! train::compress_weights(&mut model, &SparkCodec::default()).unwrap();
//! let spark_acc = train::evaluate(&mut model, &test_set);
//! assert!(fp32_acc - spark_acc < 0.1);
//! ```

#![warn(missing_docs)]

pub mod layers;
pub mod model;
pub mod proxy;
pub mod train;
pub mod workload;

pub use model::{FreezeReport, Sequential};
pub use workload::{Gemm, ModelWorkload};
