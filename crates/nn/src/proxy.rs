//! Proxy model builders: the small trainable stand-ins for the paper's
//! evaluated networks.
//!
//! | Paper model | Proxy | Task (`spark-data`) |
//! |---|---|---|
//! | VGG16 / ResNet-18/50/152 | [`tiny_cnn`] | `Dataset::bars` |
//! | BERT / ViT / GPT-2 / BART | [`tiny_attention`] | `Dataset::token_patterns` |
//! | generic / quickstart | [`tiny_mlp`] | `Dataset::blobs` |
//!
//! The proxies are deliberately small enough to train in seconds but deep
//! enough that codec-injected weight error moves their test accuracy.

use spark_tensor::im2col::Conv2dSpec;

use crate::layers::{Conv2d, ConvFirst, Dense, Flatten, MeanPoolRows, PositionalEncoding, Relu, SelfAttention};
use crate::model::Sequential;

/// Two-layer MLP: `input -> hidden (ReLU) -> classes`.
pub fn tiny_mlp(input: usize, hidden: usize, classes: usize, seed: u64) -> Sequential {
    Sequential::new("TinyMLP")
        .push(Dense::new(input, hidden, seed))
        .push(Relu::new())
        .push(Dense::new(hidden, classes, seed.wrapping_add(1)))
}

/// Small CNN for `side x side` single-channel images: conv (ReLU) → flatten
/// → hidden dense (ReLU) → classes. Input is the flattened image row.
pub fn tiny_cnn(side: usize, channels: usize, hidden: usize, classes: usize, seed: u64) -> Sequential {
    let spec = Conv2dSpec {
        in_channels: 1,
        out_channels: channels,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let conv_out = side * side * channels;
    Sequential::new("TinyCNN")
        .push(ConvFirst::new(spec, side, side, seed))
        .push(Relu::new())
        .push(Flatten::new())
        .push(Dense::new(conv_out, hidden, seed.wrapping_add(1)))
        .push(Relu::new())
        .push(Dense::new(hidden, classes, seed.wrapping_add(2)))
}

/// Deeper CNN with two stacked convolutions (ResNet-ish proxy): conv →
/// ReLU → conv → ReLU → flatten → dense → classes. Exercises gradient flow
/// through the `col2im` path.
pub fn deep_cnn(
    side: usize,
    ch1: usize,
    ch2: usize,
    hidden: usize,
    classes: usize,
    seed: u64,
) -> Sequential {
    let spec1 = Conv2dSpec {
        in_channels: 1,
        out_channels: ch1,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let spec2 = Conv2dSpec {
        in_channels: ch1,
        out_channels: ch2,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    Sequential::new("DeepCNN")
        .push(Conv2d::new(spec1, side, side, seed))
        .push(Relu::new())
        .push(Conv2d::new(spec2, side, side, seed.wrapping_add(1)))
        .push(Relu::new())
        .push(Flatten::new())
        .push(Dense::new(side * side * ch2, hidden, seed.wrapping_add(2)))
        .push(Relu::new())
        .push(Dense::new(hidden, classes, seed.wrapping_add(3)))
}

/// Small attention classifier for token sequences: per-token embedding →
/// self-attention → mean-pool → classes. Input is the flattened
/// `(seq, vocab)` one-hot matrix.
pub fn tiny_attention(seq: usize, vocab: usize, d: usize, classes: usize, seed: u64) -> Sequential {
    Sequential::new("TinyAttention")
        .push(ReshapeRows::new(seq, vocab))
        .push(Dense::new(vocab, d, seed))
        .push(PositionalEncoding::new(seq, d))
        .push(SelfAttention::new(d, seed.wrapping_add(1)))
        .push(Relu::new())
        .push(MeanPoolRows::new())
        .push(Dense::new(d, classes, seed.wrapping_add(5)))
}

/// Internal layer: reinterprets the flattened `(1, rows*cols)` input as a
/// `(rows, cols)` matrix so row-wise layers (Dense over tokens) apply
/// per-token.
#[derive(Debug, Clone)]
pub struct ReshapeRows {
    rows: usize,
    cols: usize,
}

impl ReshapeRows {
    /// Creates the reshape layer.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols }
    }
}

impl crate::layers::Layer for ReshapeRows {
    fn forward(&mut self, x: &spark_tensor::Tensor) -> spark_tensor::Tensor {
        x.reshape(&[self.rows, self.cols]).expect("input matches")
    }

    fn backward(&mut self, grad_out: &spark_tensor::Tensor) -> spark_tensor::Tensor {
        grad_out
            .reshape(&[1, self.rows * self.cols])
            .expect("same length")
    }

    fn step(&mut self, _lr: f32, _batch: usize) {}

    fn weights_mut(&mut self) -> Vec<&mut spark_tensor::Tensor> {
        Vec::new()
    }

    fn param_count(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_tensor::Tensor;

    #[test]
    fn mlp_shapes() {
        let mut m = tiny_mlp(16, 8, 4, 1);
        let y = m.forward(&Tensor::zeros(&[1, 16]));
        assert_eq!(y.dims(), &[1, 4]);
        assert_eq!(m.param_count(), (16 * 8 + 8) + (8 * 4 + 4));
    }

    #[test]
    fn cnn_shapes() {
        let mut m = tiny_cnn(8, 4, 16, 10, 2);
        let y = m.forward(&Tensor::zeros(&[1, 64]));
        assert_eq!(y.dims(), &[1, 10]);
    }

    #[test]
    fn attention_shapes() {
        let mut m = tiny_attention(6, 12, 8, 12, 3);
        let y = m.forward(&Tensor::zeros(&[1, 72]));
        assert_eq!(y.dims(), &[1, 12]);
    }

    #[test]
    fn deep_cnn_shapes_and_gradient_flow() {
        let mut m = deep_cnn(6, 4, 6, 24, 12, 5);
        let y = m.forward(&Tensor::zeros(&[1, 36]));
        assert_eq!(y.dims(), &[1, 12]);
        // All four weight tensors (2 convs + 2 dense) must move on a step.
        let before: Vec<Tensor> = m.weights_mut().into_iter().map(|w| w.clone()).collect();
        assert_eq!(before.len(), 4);
        let x = Tensor::from_fn(&[1, 36], |i| (i as f32 * 0.2).sin());
        m.train_example(&x, 3);
        m.step(0.5, 1);
        for (b, w) in before.iter().zip(m.weights_mut()) {
            assert_ne!(b, &*w, "a weight tensor received no gradient");
        }
    }

    #[test]
    fn proxies_are_trainable_end_to_end() {
        // One SGD step must run without panicking and change the loss.
        let mut m = tiny_attention(4, 8, 8, 8, 4);
        let x = Tensor::from_fn(&[1, 32], |i| if i % 9 == 0 { 1.0 } else { 0.0 });
        let l0 = m.train_example(&x, 3);
        m.step(0.5, 1);
        let l1 = m.train_example(&x, 3);
        m.step(0.5, 1);
        assert!(l1 < l0, "loss {l0} -> {l1}");
    }
}
