//! Training loops, evaluation, and codec-in-the-loop compression.
//!
//! These drive the accuracy experiments: train a proxy in FP32, measure test
//! accuracy, compress every weight tensor with a [`Codec`], re-measure, and
//! (for the Fig 13 finetuning arm) keep training with compression applied
//! after every optimizer step.

use spark_data::Dataset;
use spark_util::Rng;
use spark_quant::{Codec, QuantError};
use spark_tensor::Tensor;

use crate::model::Sequential;

/// Hyperparameters for [`train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Examples per SGD step.
    pub batch: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl TrainConfig {
    /// A fast configuration for tests and doc examples.
    pub fn quick() -> Self {
        Self {
            epochs: 5,
            lr: 0.2,
            batch: 16,
            seed: 0,
        }
    }

    /// The configuration the accuracy experiments use.
    pub fn standard() -> Self {
        Self {
            epochs: 20,
            lr: 0.15,
            batch: 16,
            seed: 0,
        }
    }
}

/// Trains a model with minibatch SGD; returns the mean loss of the final
/// epoch.
pub fn train(model: &mut Sequential, data: &Dataset, config: &TrainConfig) -> f32 {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut last_epoch_loss = 0.0;
    for _ in 0..config.epochs {
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0;
        for chunk in order.chunks(config.batch) {
            for &i in chunk {
                let s = &data.samples[i];
                let x = Tensor::from_vec(s.input.clone(), &[1, data.input_dim])
                    .expect("dataset dims are consistent");
                epoch_loss += model.train_example(&x, s.label);
            }
            model.step(config.lr, chunk.len());
        }
        last_epoch_loss = epoch_loss / data.len().max(1) as f32;
    }
    last_epoch_loss
}

/// Classification accuracy on a dataset (0.0..=1.0).
pub fn evaluate(model: &mut Sequential, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for s in &data.samples {
        let x = Tensor::from_vec(s.input.clone(), &[1, data.input_dim])
            .expect("dataset dims are consistent");
        if model.predict(&x) == s.label {
            correct += 1;
        }
    }
    correct as f64 / data.len() as f64
}

/// Classification accuracy with *both* weights already compressed and
/// activations round-tripped through `codec` between layers — the full
/// datapath the paper's accelerator implements (weights offline,
/// activations dynamically on chip).
pub fn evaluate_with_activation_codec(
    model: &mut Sequential,
    data: &Dataset,
    codec: &dyn Codec,
) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let hook = |t: &Tensor| -> Tensor {
        codec
            .compress(t)
            .map(|r| r.reconstructed)
            .unwrap_or_else(|_| t.clone())
    };
    let mut correct = 0usize;
    for s in &data.samples {
        let x = Tensor::from_vec(s.input.clone(), &[1, data.input_dim])
            .expect("dataset dims are consistent");
        if model.predict_with_activation_hook(&x, &hook) == s.label {
            correct += 1;
        }
    }
    correct as f64 / data.len() as f64
}

/// Compresses every weight tensor in place with `codec`; returns the
/// weighted average storage bits per weight element.
///
/// # Errors
///
/// Propagates the codec's [`QuantError`] (e.g. non-finite weights).
pub fn compress_weights(model: &mut Sequential, codec: &dyn Codec) -> Result<f64, QuantError> {
    let mut total_bits = 0.0f64;
    let mut total_elems = 0usize;
    for w in model.weights_mut() {
        let r = codec.compress(w)?;
        total_bits += r.avg_bits * w.len() as f64;
        total_elems += w.len();
        *w = r.reconstructed;
    }
    Ok(if total_elems == 0 {
        0.0
    } else {
        total_bits / total_elems as f64
    })
}

/// Codec-aware finetuning (the paper's "w/-FT" arm): after every optimizer
/// step the weights are re-projected through the codec, so training adapts
/// to the representable set.
///
/// # Errors
///
/// Propagates the codec's [`QuantError`].
pub fn finetune_with_codec(
    model: &mut Sequential,
    data: &Dataset,
    codec: &dyn Codec,
    config: &TrainConfig,
) -> Result<(), QuantError> {
    let mut rng = Rng::seed_from_u64(config.seed.wrapping_add(99));
    let mut order: Vec<usize> = (0..data.len()).collect();
    for _ in 0..config.epochs {
        rng.shuffle(&mut order);
        for chunk in order.chunks(config.batch) {
            for &i in chunk {
                let s = &data.samples[i];
                let x = Tensor::from_vec(s.input.clone(), &[1, data.input_dim])
                    .expect("dataset dims are consistent");
                model.train_example(&x, s.label);
            }
            model.step(config.lr, chunk.len());
            for w in model.weights_mut() {
                let r = codec.compress(w)?;
                *w = r.reconstructed;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy;
    use spark_quant::{SparkCodec, UniformQuantizer};

    #[test]
    fn mlp_learns_blobs() {
        let data = Dataset::blobs(600, 12, 3, 21);
        let (tr, te) = data.split(0.8);
        let mut m = proxy::tiny_mlp(12, 24, 3, 5);
        train(&mut m, &tr, &TrainConfig::quick());
        let acc = evaluate(&mut m, &te);
        assert!(acc > 0.75, "accuracy {acc}");
    }

    #[test]
    fn cnn_learns_bars() {
        let data = Dataset::bars(600, 6, 12, 22);
        let (tr, te) = data.split(0.8);
        let mut m = proxy::tiny_cnn(6, 6, 32, 12, 6);
        train(
            &mut m,
            &tr,
            &TrainConfig {
                epochs: 12,
                lr: 0.25,
                batch: 16,
                seed: 1,
            },
        );
        let acc = evaluate(&mut m, &te);
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn attention_learns_token_patterns() {
        // Full 60-epoch convergence run, in default tier-1 since the turbo
        // GEMM backend made it cheap (the attention forward/backward passes
        // route through matmul_nt/matmul_tn now).
        let data = Dataset::token_patterns(800, 5, 8, 23);
        let (tr, te) = data.split(0.85);
        let mut m = proxy::tiny_attention(5, 8, 16, 8, 7);
        train(
            &mut m,
            &tr,
            &TrainConfig {
                epochs: 60,
                lr: 0.2,
                batch: 8,
                seed: 2,
            },
        );
        let acc = evaluate(&mut m, &te);
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn spark_compression_keeps_accuracy_close() {
        let data = Dataset::blobs(600, 12, 3, 24);
        let (tr, te) = data.split(0.8);
        let mut m = proxy::tiny_mlp(12, 24, 3, 8);
        train(&mut m, &tr, &TrainConfig::quick());
        let fp32 = evaluate(&mut m, &te);
        let bits = compress_weights(&mut m, &SparkCodec::default()).unwrap();
        let spark = evaluate(&mut m, &te);
        assert!(bits <= 8.0);
        assert!(fp32 - spark < 0.08, "fp32 {fp32} vs spark {spark}");
    }

    #[test]
    fn int2_compression_hurts_more_than_spark() {
        let data = Dataset::blobs(600, 12, 3, 25);
        let (tr, te) = data.split(0.8);
        let mut base = proxy::tiny_mlp(12, 24, 3, 9);
        train(&mut base, &tr, &TrainConfig::quick());

        let mut spark_model = proxy::tiny_mlp(12, 24, 3, 9);
        train(&mut spark_model, &tr, &TrainConfig::quick());
        compress_weights(&mut spark_model, &SparkCodec::default()).unwrap();
        let spark_acc = evaluate(&mut spark_model, &te);

        let mut int2_model = proxy::tiny_mlp(12, 24, 3, 9);
        train(&mut int2_model, &tr, &TrainConfig::quick());
        compress_weights(&mut int2_model, &UniformQuantizer::symmetric(2)).unwrap();
        let int2_acc = evaluate(&mut int2_model, &te);

        assert!(spark_acc >= int2_acc, "spark {spark_acc} vs int2 {int2_acc}");
    }

    #[test]
    fn finetuning_recovers_low_bit_accuracy() {
        let data = Dataset::blobs(600, 12, 3, 26);
        let (tr, te) = data.split(0.8);
        let mut m = proxy::tiny_mlp(12, 24, 3, 10);
        train(&mut m, &tr, &TrainConfig::quick());
        let codec = UniformQuantizer::symmetric(3);
        compress_weights(&mut m, &codec).unwrap();
        let before = evaluate(&mut m, &te);
        finetune_with_codec(&mut m, &tr, &codec, &TrainConfig::quick()).unwrap();
        let after = evaluate(&mut m, &te);
        assert!(after + 1e-9 >= before, "finetune {before} -> {after}");
    }

    #[test]
    fn evaluate_empty_dataset_is_zero() {
        let mut m = proxy::tiny_mlp(4, 4, 2, 11);
        let d = Dataset::blobs(10, 4, 2, 27).split(1.0).1;
        assert_eq!(evaluate(&mut m, &d), 0.0);
    }
}

#[cfg(test)]
mod activation_tests {
    use super::*;
    use crate::proxy;
    use spark_quant::{SparkCodec, UniformQuantizer};

    #[test]
    fn activation_codec_evaluation_close_to_plain() {
        let data = Dataset::blobs(600, 12, 3, 31);
        let (tr, te) = data.split(0.8);
        let mut m = proxy::tiny_mlp(12, 24, 3, 13);
        train(&mut m, &tr, &TrainConfig::quick());
        let plain = evaluate(&mut m, &te);
        // SPARK on both weights and activations.
        compress_weights(&mut m, &SparkCodec::default()).unwrap();
        let full = evaluate_with_activation_codec(&mut m, &te, &SparkCodec::default());
        assert!(plain - full < 0.1, "plain {plain} vs w+a quantized {full}");
    }

    #[test]
    fn coarse_activation_quantization_hurts_more() {
        let data = Dataset::blobs(600, 12, 3, 32);
        let (tr, te) = data.split(0.8);
        let mut m = proxy::tiny_mlp(12, 24, 3, 14);
        train(&mut m, &tr, &TrainConfig::quick());
        let spark = evaluate_with_activation_codec(&mut m, &te, &SparkCodec::default());
        let int2 = evaluate_with_activation_codec(&mut m, &te, &UniformQuantizer::symmetric(2));
        assert!(spark >= int2, "spark {spark} vs int2 {int2}");
    }

    #[test]
    fn empty_dataset_yields_zero() {
        let mut m = proxy::tiny_mlp(4, 4, 2, 15);
        let d = Dataset::blobs(10, 4, 2, 33).split(1.0).1;
        assert_eq!(
            evaluate_with_activation_codec(&mut m, &d, &SparkCodec::default()),
            0.0
        );
    }
}

#[cfg(test)]
mod deep_cnn_tests {
    use super::*;
    use crate::proxy;

    #[test]
    fn deep_cnn_learns_bars() {
        let data = Dataset::bars(500, 6, 12, 61);
        let (tr, te) = data.split(0.8);
        let mut m = proxy::deep_cnn(6, 4, 6, 32, 12, 9);
        train(
            &mut m,
            &tr,
            &TrainConfig {
                epochs: 12,
                lr: 0.2,
                batch: 16,
                seed: 61,
            },
        );
        let acc = evaluate(&mut m, &te);
        assert!(acc > 0.6, "deep CNN accuracy {acc}");
    }

    #[test]
    fn deep_cnn_survives_spark_compression() {
        use spark_quant::SparkCodec;
        let data = Dataset::bars(500, 6, 12, 62);
        let (tr, te) = data.split(0.8);
        let mut m = proxy::deep_cnn(6, 4, 6, 32, 12, 10);
        train(
            &mut m,
            &tr,
            &TrainConfig {
                epochs: 12,
                lr: 0.2,
                batch: 16,
                seed: 62,
            },
        );
        let fp32 = evaluate(&mut m, &te);
        compress_weights(&mut m, &SparkCodec::default()).unwrap();
        let spark = evaluate(&mut m, &te);
        assert!(fp32 - spark < 0.1, "fp32 {fp32} vs spark {spark}");
    }
}
