//! Property-based tests over the SPARK codec invariants, on the in-tree
//! `spark_util::prop` harness.
//!
//! The paper's headline guarantees are checked *exhaustively* (all 256 INT8
//! values), not just sampled: the Table II compensation-mechanism error
//! bound of ≤ 16, losslessness of the short range, and the 4-bit length of
//! every short code. Randomized properties cover tensor-level streams.

use spark_codec::{
    bias_correction, decode_stream, decode_value, encode_tensor, encode_tensor_with,
    encode_value, CodeKind, EncodeMode, SparkDecoder, SparkEncoder, MAX_ENCODING_ERROR,
};
use spark_util::prop::check;
use spark_util::{prop_assert, prop_assert_eq, Rng};

fn any_u8(rng: &mut Rng) -> u8 {
    rng.next_u32() as u8
}

fn byte_vec(rng: &mut Rng, lo: usize, hi: usize) -> Vec<u8> {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| rng.next_u32() as u8).collect()
}

// ---------------------------------------------------------------------------
// Exhaustive per-value invariants (Table II): all 256 inputs, every run.
// ---------------------------------------------------------------------------

/// Round-trip error never exceeds the paper's bound of 16, for every value.
#[test]
fn error_bounded_exhaustive() {
    for v in 0..=255u8 {
        let d = decode_value(v);
        let err = (i16::from(v) - i16::from(d)).abs();
        assert!(err <= i16::from(MAX_ENCODING_ERROR), "value {v}: error {err}");
    }
}

/// Re-encoding a decoded value is lossless for every value:
/// `encode(decode(x)).decode() == decode(x)`, i.e. decoding is a projection
/// onto the representable set.
#[test]
fn round_trip_projection_exhaustive() {
    for v in 0..=255u8 {
        let d = decode_value(v);
        assert_eq!(decode_value(d), d, "decoded value {d} is not a fixed point");
        assert_eq!(encode_value(d).decode(), d, "re-encoding {d} lost information");
    }
}

/// Short-code values `[0, 7]` always emit exactly 4 bits (one nibble) and
/// are lossless; everything else is long.
#[test]
fn short_codes_are_4_bits_exhaustive() {
    for v in 0..=255u8 {
        let c = encode_value(v);
        if v < 8 {
            assert_eq!(c.kind(), CodeKind::Short, "value {v}");
            assert_eq!(c.bits(), 4, "value {v}");
            assert_eq!(c.nibbles().count(), 1, "value {v}");
            assert_eq!(c.decode(), v, "short code for {v} must be lossless");
        } else {
            assert_eq!(c.kind(), CodeKind::Long, "value {v}");
            assert_eq!(c.bits(), 8, "value {v}");
            assert_eq!(c.nibbles().count(), 2, "value {v}");
        }
    }
}

/// Values whose check bits agree (b0 == b3) are lossless, and only those
/// (plus the short range).
#[test]
fn agreeing_check_bits_lossless_exhaustive() {
    for v in 0..=255u8 {
        let b0 = (v >> 7) & 1;
        let b3 = (v >> 4) & 1;
        let lossless = decode_value(v) == v;
        assert_eq!(lossless, v < 8 || b0 == b3, "value {v}");
    }
}

/// The compensated mode dominates truncation pointwise, for every value.
#[test]
fn cm_dominates_truncation_exhaustive() {
    for v in 0..=255u8 {
        let ec = (i16::from(EncodeMode::Compensated.reconstruct(v)) - i16::from(v)).abs();
        let et = (i16::from(EncodeMode::Truncated.reconstruct(v)) - i16::from(v)).abs();
        assert!(ec <= et, "value {v}: CM error {ec} > truncation error {et}");
    }
}

/// The hardware encoder datapath agrees with the spec function everywhere.
#[test]
fn hw_encoder_matches_spec_exhaustive() {
    let mut enc = SparkEncoder::new();
    for v in 0..=255u8 {
        assert_eq!(enc.encode(v), encode_value(v), "value {v}");
    }
}

// ---------------------------------------------------------------------------
// Randomized tensor/stream properties.
// ---------------------------------------------------------------------------

/// Encoding preserves order coarsely: reconstruction stays within one
/// rounding block, so values more than 32 apart can never invert.
#[test]
fn coarse_monotonicity() {
    check(
        "coarse_monotonicity",
        |rng| (any_u8(rng), any_u8(rng)),
        |&(a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            if u16::from(hi) - u16::from(lo) > 32 {
                prop_assert!(
                    decode_value(lo) < decode_value(hi),
                    "{lo} -> {} but {hi} -> {}",
                    decode_value(lo),
                    decode_value(hi)
                );
            }
            Ok(())
        },
    );
}

/// Tensor-level round trip through the packed nibble stream matches the
/// per-value reconstruction for arbitrary tensors.
#[test]
fn stream_round_trip() {
    check(
        "stream_round_trip",
        |rng| byte_vec(rng, 0, 512),
        |values| {
            let enc = encode_tensor(values);
            let dec = decode_stream(&enc.stream).map_err(|e| e.to_string())?;
            prop_assert_eq!(dec.len(), values.len());
            for (orig, got) in values.iter().zip(&dec) {
                prop_assert_eq!(*got, decode_value(*orig));
            }
            Ok(())
        },
    );
}

/// The packed stream is never larger than the 8-bit original and never
/// smaller than half of it.
#[test]
fn stream_size_bounds() {
    check(
        "stream_size_bounds",
        |rng| byte_vec(rng, 1, 512),
        |values| {
            let enc = encode_tensor(values);
            prop_assert!(enc.stream.byte_len() <= values.len());
            prop_assert!(enc.stream.len() >= values.len());
            prop_assert!(enc.stream.len() <= 2 * values.len());
            Ok(())
        },
    );
}

/// Average bit-width always lies in [4, 8] and matches the short fraction
/// exactly.
#[test]
fn avg_bits_consistent() {
    check(
        "avg_bits_consistent",
        |rng| byte_vec(rng, 1, 512),
        |values| {
            let enc = encode_tensor(values);
            let avg = enc.stats.avg_bits();
            prop_assert!((4.0..=8.0).contains(&avg), "avg {avg}");
            let expect = 8.0 - 4.0 * enc.stats.short_fraction();
            prop_assert!((avg - expect).abs() < 1e-9, "avg {avg} vs {expect}");
            Ok(())
        },
    );
}

/// The streaming decoder agrees with per-code decoding on arbitrary
/// concatenated streams.
#[test]
fn streaming_decoder_matches() {
    check(
        "streaming_decoder_matches",
        |rng| byte_vec(rng, 0, 256),
        |values| {
            let mut dec = SparkDecoder::new();
            let mut out = Vec::new();
            for &v in values {
                for nib in encode_value(v).nibbles() {
                    if let Some(x) = dec.push_nibble(nib).map_err(|e| e.to_string())? {
                        out.push(x);
                    }
                }
            }
            dec.finish().map_err(|e| e.to_string())?;
            let expect: Vec<u8> = values.iter().map(|&v| decode_value(v)).collect();
            prop_assert_eq!(out, expect);
            Ok(())
        },
    );
}

/// Bias correction is bounded by the max error.
#[test]
fn bias_bounded() {
    check(
        "bias_bounded",
        |rng| byte_vec(rng, 1, 512),
        |values| {
            let b = bias_correction(values, EncodeMode::Compensated);
            prop_assert!(b.abs() <= f64::from(MAX_ENCODING_ERROR), "bias {b}");
            Ok(())
        },
    );
}

/// Truncated-mode tensors still decode through the standard stream decoder
/// (the format on the wire is identical).
#[test]
fn truncated_streams_decode() {
    check(
        "truncated_streams_decode",
        |rng| byte_vec(rng, 0, 256),
        |values| {
            let enc = encode_tensor_with(values, EncodeMode::Truncated);
            let dec = decode_stream(&enc.stream).map_err(|e| e.to_string())?;
            prop_assert_eq!(dec.len(), values.len());
            Ok(())
        },
    );
}

mod general_format {
    use spark_codec::SparkFormat;
    use spark_util::prop::check;
    use spark_util::{prop_assert, prop_assert_eq, Rng};

    /// Generates `(base_bits, short_bits)` pairs, mostly valid; properties
    /// skip combinations `SparkFormat::new` rejects (this keeps shrinking
    /// closed over the generated space).
    fn format_params(rng: &mut Rng) -> (u8, u8) {
        loop {
            let short = rng.gen_range(3..16) as u8;
            let extra = rng.gen_range(1..9) as u8;
            if short + extra <= 16 {
                return (short + extra, short);
            }
        }
    }

    /// The generalized error bound holds for every (format, value).
    #[test]
    fn general_error_bounded() {
        check(
            "general_error_bounded",
            |rng| (format_params(rng), rng.next_u32() as u16),
            |&((base, short), v)| {
                let Ok(fmt) = SparkFormat::new(base, short) else {
                    return Ok(());
                };
                let v = v & fmt.max_value();
                let r = fmt.reconstruct(v);
                prop_assert!(
                    (i32::from(r) - i32::from(v)).abs() <= i32::from(fmt.max_error()),
                    "format {base}/{short}: {v} -> {r}"
                );
                Ok(())
            },
        );
    }

    /// Decoding is a projection in every format.
    #[test]
    fn general_projection() {
        check(
            "general_projection",
            |rng| (format_params(rng), rng.next_u32() as u16),
            |&((base, short), v)| {
                let Ok(fmt) = SparkFormat::new(base, short) else {
                    return Ok(());
                };
                let r = fmt.reconstruct(v & fmt.max_value());
                prop_assert_eq!(fmt.reconstruct(r), r);
                Ok(())
            },
        );
    }

    /// Short-range values are always lossless.
    #[test]
    fn general_short_lossless() {
        check(
            "general_short_lossless",
            |rng| (format_params(rng), rng.next_u32() as u16),
            |&((base, short), v)| {
                let Ok(fmt) = SparkFormat::new(base, short) else {
                    return Ok(());
                };
                let v = v % fmt.short_range();
                prop_assert_eq!(fmt.reconstruct(v), v);
                Ok(())
            },
        );
    }

    /// Rounding direction: values below the sign-bit half round down,
    /// values in the top half round up (matching Table II's rows).
    #[test]
    fn general_rounding_direction() {
        check(
            "general_rounding_direction",
            |rng| (format_params(rng), rng.next_u32() as u16),
            |&((base, short), v)| {
                let Ok(fmt) = SparkFormat::new(base, short) else {
                    return Ok(());
                };
                let v = v & fmt.max_value();
                let r = fmt.reconstruct(v);
                let half = 1u32 << (fmt.base_bits() - 1);
                if u32::from(v) < half {
                    prop_assert!(r <= v, "{v} rounded up to {r}");
                } else {
                    prop_assert!(r >= v, "{v} rounded down to {r}");
                }
                Ok(())
            },
        );
    }
}

mod fault_injection {
    use super::byte_vec;
    use spark_codec::{decode_stream, encode_tensor, NibbleStream, SparkDecoder};
    use spark_util::prop::{check_with, Config};
    use spark_util::{prop_assert, prop_assert_eq};

    /// Corrupting any nibble of a valid stream never panics: decoding
    /// either yields values (possibly a different count) or reports a
    /// truncated long code.
    #[test]
    fn corrupted_streams_never_panic() {
        check_with(
            &Config::with_cases(512),
            "corrupted_streams_never_panic",
            |rng| {
                (
                    byte_vec(rng, 1, 128),
                    rng.next_u64() as usize,
                    rng.gen_range(1..16) as u8,
                )
            },
            |&(ref values, flip_pos, flip_bits)| {
                if values.is_empty() || flip_bits & 0x0F == 0 {
                    return Ok(()); // shrinking can leave the interesting space
                }
                let enc = encode_tensor(values);
                let pos = flip_pos % enc.stream.len();
                let corrupted: NibbleStream = enc
                    .stream
                    .iter()
                    .enumerate()
                    .map(|(i, n)| if i == pos { n ^ (flip_bits & 0x0F) } else { n })
                    .collect();
                match decode_stream(&corrupted) {
                    Ok(decoded) => {
                        // Every decoded value is a valid byte; count may
                        // differ by at most the tail effect of one flipped
                        // identifier.
                        prop_assert!(decoded.len() <= 2 * values.len());
                    }
                    Err(e) => {
                        prop_assert_eq!(e, spark_codec::DecodeError::TruncatedLongCode);
                    }
                }
                Ok(())
            },
        );
    }

    /// Arbitrary nibble streams (not produced by the encoder) decode
    /// without panicking.
    #[test]
    fn arbitrary_streams_never_panic() {
        check_with(
            &Config::with_cases(512),
            "arbitrary_streams_never_panic",
            |rng| {
                let n = rng.gen_range(0..256);
                (0..n).map(|_| rng.gen_range(0..16) as u8).collect::<Vec<u8>>()
            },
            |nibbles| {
                let mut dec = SparkDecoder::new();
                for &n in nibbles {
                    if n >= 16 {
                        return Ok(()); // shrunk outside the nibble domain
                    }
                    let _ = dec.push_nibble(n).map_err(|e| e.to_string())?;
                }
                let _ = dec.finish();
                Ok(())
            },
        );
    }
}
