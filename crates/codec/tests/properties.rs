//! Property-based tests over the SPARK codec invariants.

use proptest::prelude::*;
use spark_codec::{
    bias_correction, decode_stream, decode_value, encode_tensor, encode_tensor_with,
    encode_value, CodeKind, EncodeMode, SparkDecoder, SparkEncoder, MAX_ENCODING_ERROR,
};

proptest! {
    /// Round-trip error never exceeds the paper's bound of 16.
    #[test]
    fn error_bounded(v in any::<u8>()) {
        let d = decode_value(v);
        prop_assert!((i16::from(v) - i16::from(d)).abs() <= i16::from(MAX_ENCODING_ERROR));
    }

    /// Short codes are exactly the values below 8 and are lossless.
    #[test]
    fn short_codes_lossless(v in 0u8..8) {
        let c = encode_value(v);
        prop_assert_eq!(c.kind(), CodeKind::Short);
        prop_assert_eq!(c.decode(), v);
    }

    /// Values whose check bits agree (b0 == b3) are lossless.
    #[test]
    fn agreeing_check_bits_lossless(v in any::<u8>()) {
        let b0 = (v >> 7) & 1;
        let b3 = (v >> 4) & 1;
        if b0 == b3 {
            prop_assert_eq!(decode_value(v), v);
        }
    }

    /// Decoding is a projection: decoded values are fixed points.
    #[test]
    fn decode_is_projection(v in any::<u8>()) {
        let d = decode_value(v);
        prop_assert_eq!(decode_value(d), d);
    }

    /// Encoding preserves order coarsely: reconstruction stays within one
    /// rounding block, so values 32 apart can never invert.
    #[test]
    fn coarse_monotonicity(a in any::<u8>(), b in any::<u8>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        if u16::from(hi) - u16::from(lo) > 32 {
            prop_assert!(decode_value(lo) < decode_value(hi));
        }
    }

    /// Tensor-level round trip through the packed nibble stream matches the
    /// per-value reconstruction for arbitrary tensors.
    #[test]
    fn stream_round_trip(values in proptest::collection::vec(any::<u8>(), 0..512)) {
        let enc = encode_tensor(&values);
        let dec = decode_stream(&enc.stream).unwrap();
        prop_assert_eq!(dec.len(), values.len());
        for (orig, got) in values.iter().zip(&dec) {
            prop_assert_eq!(*got, decode_value(*orig));
        }
    }

    /// The packed stream is never larger than the 8-bit original and never
    /// smaller than half of it.
    #[test]
    fn stream_size_bounds(values in proptest::collection::vec(any::<u8>(), 1..512)) {
        let enc = encode_tensor(&values);
        prop_assert!(enc.stream.byte_len() <= values.len());
        prop_assert!(enc.stream.len() >= values.len());
        prop_assert!(enc.stream.len() <= 2 * values.len());
    }

    /// Average bit-width always lies in [4, 8] and matches the short
    /// fraction exactly.
    #[test]
    fn avg_bits_consistent(values in proptest::collection::vec(any::<u8>(), 1..512)) {
        let enc = encode_tensor(&values);
        let avg = enc.stats.avg_bits();
        prop_assert!((4.0..=8.0).contains(&avg));
        let expect = 8.0 - 4.0 * enc.stats.short_fraction();
        prop_assert!((avg - expect).abs() < 1e-9);
    }

    /// The hardware encoder datapath agrees with the spec function.
    #[test]
    fn hw_encoder_matches_spec(v in any::<u8>()) {
        let mut enc = SparkEncoder::new();
        prop_assert_eq!(enc.encode(v), encode_value(v));
    }

    /// The streaming decoder agrees with per-code decoding on arbitrary
    /// concatenated streams.
    #[test]
    fn streaming_decoder_matches(values in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut dec = SparkDecoder::new();
        let mut out = Vec::new();
        for &v in &values {
            for nib in encode_value(v).nibbles() {
                if let Some(x) = dec.push_nibble(nib).unwrap() {
                    out.push(x);
                }
            }
        }
        dec.finish().unwrap();
        let expect: Vec<u8> = values.iter().map(|&v| decode_value(v)).collect();
        prop_assert_eq!(out, expect);
    }

    /// Compensated mode dominates truncated mode pointwise in absolute error.
    #[test]
    fn cm_dominates_truncation(v in any::<u8>()) {
        let ec = (i16::from(EncodeMode::Compensated.reconstruct(v)) - i16::from(v)).abs();
        let et = (i16::from(EncodeMode::Truncated.reconstruct(v)) - i16::from(v)).abs();
        prop_assert!(ec <= et);
    }

    /// Bias correction is bounded by the max error.
    #[test]
    fn bias_bounded(values in proptest::collection::vec(any::<u8>(), 1..512)) {
        let b = bias_correction(&values, EncodeMode::Compensated);
        prop_assert!(b.abs() <= f64::from(MAX_ENCODING_ERROR));
    }

    /// Truncated-mode tensors still decode through the standard stream
    /// decoder (the format on the wire is identical).
    #[test]
    fn truncated_streams_decode(values in proptest::collection::vec(any::<u8>(), 0..256)) {
        let enc = encode_tensor_with(&values, EncodeMode::Truncated);
        let dec = decode_stream(&enc.stream).unwrap();
        prop_assert_eq!(dec.len(), values.len());
    }
}

mod general_format {
    use proptest::prelude::*;
    use spark_codec::SparkFormat;

    fn formats() -> impl Strategy<Value = SparkFormat> {
        (3u8..=15, 1u8..=8).prop_filter_map("valid format", |(short, extra)| {
            let base = short + extra;
            if base <= 16 {
                SparkFormat::new(base, short).ok()
            } else {
                None
            }
        })
    }

    proptest! {
        /// The generalized error bound holds for every (format, value).
        #[test]
        fn general_error_bounded(fmt in formats(), v in any::<u16>()) {
            let v = v & fmt.max_value();
            let r = fmt.reconstruct(v);
            prop_assert!((i32::from(r) - i32::from(v)).abs() <= i32::from(fmt.max_error()));
        }

        /// Decoding is a projection in every format.
        #[test]
        fn general_projection(fmt in formats(), v in any::<u16>()) {
            let v = v & fmt.max_value();
            let r = fmt.reconstruct(v);
            prop_assert_eq!(fmt.reconstruct(r), r);
        }

        /// Short-range values are always lossless.
        #[test]
        fn general_short_lossless(fmt in formats(), v in any::<u16>()) {
            let v = v % fmt.short_range();
            prop_assert_eq!(fmt.reconstruct(v), v);
        }

        /// Rounding direction: values below the sign-bit half round down,
        /// values in the top half round up (matching Table II's rows).
        #[test]
        fn general_rounding_direction(fmt in formats(), v in any::<u16>()) {
            let v = v & fmt.max_value();
            let r = fmt.reconstruct(v);
            let half = 1u32 << (fmt.base_bits() - 1);
            if u32::from(v) < half {
                prop_assert!(r <= v, "{v} rounded up to {r}");
            } else {
                prop_assert!(r >= v, "{v} rounded down to {r}");
            }
        }
    }
}

mod fault_injection {
    use proptest::prelude::*;
    use spark_codec::{decode_stream, encode_tensor, NibbleStream, SparkDecoder};

    proptest! {
        /// Corrupting any nibble of a valid stream never panics: decoding
        /// either yields values (possibly a different count) or reports a
        /// truncated long code.
        #[test]
        fn corrupted_streams_never_panic(
            values in proptest::collection::vec(any::<u8>(), 1..128),
            flip_pos in any::<usize>(),
            flip_bits in 1u8..16,
        ) {
            let enc = encode_tensor(&values);
            let pos = flip_pos % enc.stream.len();
            let corrupted: NibbleStream = enc
                .stream
                .iter()
                .enumerate()
                .map(|(i, n)| if i == pos { n ^ (flip_bits & 0x0F) } else { n })
                .collect();
            match decode_stream(&corrupted) {
                Ok(decoded) => {
                    // Every decoded value is a valid byte; count may differ
                    // by at most the tail effect of one flipped identifier.
                    prop_assert!(decoded.len() <= 2 * values.len());
                }
                Err(e) => {
                    prop_assert_eq!(e, spark_codec::DecodeError::TruncatedLongCode);
                }
            }
        }

        /// Arbitrary nibble streams (not produced by the encoder) decode
        /// without panicking.
        #[test]
        fn arbitrary_streams_never_panic(nibbles in proptest::collection::vec(0u8..16, 0..256)) {
            let mut dec = SparkDecoder::new();
            for &n in &nibbles {
                let _ = dec.push_nibble(n).expect("nibbles are in range");
            }
            let _ = dec.finish();
        }
    }
}
