//! Exhaustive differential suite: the bit-parallel bulk decoder versus the
//! streaming Fig 7 FSM, for every dispatch variant this host supports.
//!
//! The bulk engine's contract is bit-identity with [`decode_stream_reference`]
//! on every input — same values in the same order, and the same typed
//! [`DecodeError`] on malformed streams. These tests are the tier-1 stage
//! that pins that contract: single bytes exhaustively, structured parities,
//! odd lengths, truncated long codes at every block-boundary offset, and
//! seeded random streams, each run under Scalar and every SIMD variant the
//! host exposes.

use spark_codec::{
    decode_bulk_with, decode_stream_reference, encode_tensor, DecodeError, DecodeVariant,
    EncodedTensor, NibbleStream,
};

/// Asserts bulk == FSM (values or typed error) for one stream, all variants.
fn assert_identical(stream: &NibbleStream, what: &str) {
    let want = decode_stream_reference(stream);
    for variant in DecodeVariant::all() {
        let got = decode_bulk_with(variant, stream);
        assert_eq!(got, want, "{what} under {}", variant.name());
    }
}

fn encoded(values: &[u8]) -> EncodedTensor {
    encode_tensor(values)
}

#[test]
fn every_single_byte_value() {
    for v in 0u16..=255 {
        let enc = encoded(&[v as u8]);
        assert_identical(&enc.stream, &format!("single value {v}"));
    }
}

#[test]
fn every_adjacent_byte_pair_class() {
    // All four kind adjacencies (short/long x short/long) over the full
    // byte range: pairs (v, v+97) walk every residue and both parities.
    for v in 0u16..=255 {
        let pair = [v as u8, (v + 97) as u8];
        let enc = encoded(&pair);
        assert_identical(&enc.stream, &format!("pair {pair:?}"));
    }
}

#[test]
fn structured_parities() {
    // All-short (one nibble each), all-long (two nibbles each), and the
    // two alternating phases, at lengths that straddle block boundaries
    // (64 nibbles per block).
    for len in [1usize, 2, 31, 32, 63, 64, 65, 127, 128, 129, 200, 513] {
        let all_short: Vec<u8> = vec![3; len];
        let all_long: Vec<u8> = vec![200; len];
        let alt_sl: Vec<u8> = (0..len).map(|i| if i % 2 == 0 { 3 } else { 200 }).collect();
        let alt_ls: Vec<u8> = (0..len).map(|i| if i % 2 == 0 { 200 } else { 3 }).collect();
        for (name, values) in [
            ("all_short", &all_short),
            ("all_long", &all_long),
            ("alt short-first", &alt_sl),
            ("alt long-first", &alt_ls),
        ] {
            let enc = encoded(values);
            assert_identical(&enc.stream, &format!("{name} len {len}"));
        }
    }
}

#[test]
fn odd_nibble_counts() {
    // One short code among longs yields an odd nibble count wherever it
    // sits; sweep its position across two full blocks.
    for pos in 0..130usize {
        let mut values = vec![250u8; 130];
        values[pos] = 5;
        let enc = encoded(&values);
        assert_eq!(enc.stream.len() % 2, 1, "odd count expected at pos {pos}");
        assert_identical(&enc.stream, &format!("odd count, short at {pos}"));
    }
}

#[test]
fn truncated_long_code_at_every_block_offset() {
    // n short codes followed by a lone prev nibble: the truncation lands
    // at every offset within (and across) the 64-nibble block, including
    // exactly at block boundaries. Both decoders must report
    // TruncatedLongCode, never values or a panic.
    for n in 0..130usize {
        let mut stream = NibbleStream::with_capacity(n + 1);
        for i in 0..n {
            stream.push((i % 8) as u8); // short codes
        }
        stream.push(0b1000); // prev of a long code, post never arrives
        let want = decode_stream_reference(&stream);
        assert_eq!(want, Err(DecodeError::TruncatedLongCode), "n={n}");
        for variant in DecodeVariant::all() {
            assert_eq!(
                decode_bulk_with(variant, &stream),
                want,
                "truncation after {n} shorts under {}",
                variant.name()
            );
        }
    }
}

#[test]
fn truncation_preceded_by_long_codes() {
    // Same sweep but the prefix is long codes, so the dangling prev's
    // predecessor is a post nibble with its identifier bit possibly set —
    // the case that distinguishes "unconsumed prev" from "identifier set".
    for n in 0..66usize {
        let mut stream = NibbleStream::new();
        for _ in 0..n {
            // 210 encodes as the long pair (0b1101, 0b0010).
            stream.push(0b1101);
            stream.push(0b0010);
        }
        stream.push(0b1111); // dangling prev
        let want = decode_stream_reference(&stream);
        assert_eq!(want, Err(DecodeError::TruncatedLongCode), "n={n}");
        for variant in DecodeVariant::all() {
            assert_eq!(decode_bulk_with(variant, &stream), want, "n={n} {}", variant.name());
        }
    }
}

#[test]
fn long_code_straddling_every_block_boundary_offset() {
    // Slide a window of long codes so prev/post pairs land on both sides
    // of the 64-nibble boundary in every phase: shorts then longs, with
    // the short-prefix length sweeping a full block.
    for shorts in 0..66usize {
        let mut values = vec![1u8; shorts];
        values.extend(std::iter::repeat(170).take(80));
        let enc = encoded(&values);
        assert_identical(&enc.stream, &format!("{shorts} shorts then longs"));
    }
}

#[test]
fn seeded_random_streams_per_variant() {
    // Deterministic xorshift-mixed streams at several lengths and
    // long-code densities; every variant must match the FSM exactly.
    let mut state = 0x00D1_F7A5_EED5_1234u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for len in [0usize, 1, 7, 64, 65, 255, 1024, 4097] {
        for density in [0u64, 10, 50, 90, 100] {
            let values: Vec<u8> = (0..len)
                .map(|_| {
                    let r = next();
                    let byte = (r >> 32) as u8;
                    if r % 100 < density {
                        byte | 8 // force long (>= 8)
                    } else {
                        byte % 8 // force short
                    }
                })
                .collect();
            let enc = encoded(&values);
            assert_identical(&enc.stream, &format!("random len {len} density {density}"));
        }
    }
}

#[test]
fn raw_nibble_streams_not_from_the_encoder() {
    // Arbitrary nibble soup (not necessarily a valid encoding of any
    // tensor): bulk and FSM must still agree on output or typed error.
    let mut state = 0x5EED_BEEF_u64;
    for len in [1usize, 2, 63, 64, 65, 129, 500] {
        for _ in 0..8 {
            let mut stream = NibbleStream::with_capacity(len);
            for _ in 0..len {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                stream.push((state >> 60) as u8);
            }
            assert_identical(&stream, &format!("raw soup len {len}"));
        }
    }
}

#[test]
fn empty_stream_decodes_to_nothing() {
    let stream = NibbleStream::new();
    for variant in DecodeVariant::all() {
        assert_eq!(decode_bulk_with(variant, &stream), Ok(vec![]), "{}", variant.name());
    }
}
