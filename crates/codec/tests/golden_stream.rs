//! Golden-vector test for the streaming decoder (Fig 5 / Eq 3): a fixed,
//! hand-assembled bit-stream of mixed short and long codes is fed to the
//! decoder 4 bits per enable-cycle, and every intermediate output is
//! checked against hand-computed values.

use spark_codec::{decode_stream, encode_tensor, NibbleStream, SparkCode, SparkDecoder};

/// The worked example: [5, 18, 170, 210, 3].
///
/// Hand encoding (paper bit convention, `b0` = MSB):
/// - 5   (0000 0101): short code `0101`.
/// - 18  (0001 0010): b0=0 b3=1 disagree, b3=1 -> round to 1111;
///   prev = `1 b1 b2 b0` = `1000`; decodes to 0001111 = 15.
/// - 170 (1010 1010): b0=1 b3=0 disagree, b3=0 -> round to 0000;
///   prev = `1011`; decodes to 1011 0000 = 176.
/// - 210 (1101 0010): b0=1 b3=1 agree -> post verbatim `0010`;
///   prev = `1101`; decodes losslessly to 210.
/// - 3   (0000 0011): short code `0011`.
const VALUES: [u8; 5] = [5, 18, 170, 210, 3];
const GOLDEN_NIBBLES: [u8; 8] = [0b0101, 0b1000, 0b1111, 0b1011, 0b0000, 0b1101, 0b0010, 0b0011];
const GOLDEN_DECODED: [u8; 5] = [5, 15, 176, 210, 3];

#[test]
fn encoder_emits_the_golden_nibble_sequence() {
    let nibbles: Vec<u8> = VALUES.iter().flat_map(|&v| SparkCode::encode(v).nibbles()).collect();
    assert_eq!(nibbles, GOLDEN_NIBBLES);
}

#[test]
fn decoder_consumes_4_bits_per_enable_cycle() {
    // One nibble per enable-cycle: short codes complete in one cycle, long
    // codes in two (output only on the post nibble) — Fig 5's timing.
    let mut dec = SparkDecoder::new();
    let expected_per_cycle: [Option<u8>; 8] = [
        Some(5),    // cycle 1: short 0101
        None,       // cycle 2: long prev 1000 buffered
        Some(15),   // cycle 3: post 1111 completes 18 -> 15
        None,       // cycle 4: long prev 1011 buffered
        Some(176),  // cycle 5: post 0000 completes 170 -> 176
        None,       // cycle 6: long prev 1101 buffered
        Some(210),  // cycle 7: post 0010 completes 210 losslessly
        Some(3),    // cycle 8: short 0011
    ];
    for (cycle, (&nib, &expect)) in
        GOLDEN_NIBBLES.iter().zip(&expected_per_cycle).enumerate()
    {
        let got = dec.push_nibble(nib).expect("well-formed stream");
        assert_eq!(got, expect, "enable-cycle {}", cycle + 1);
    }
    dec.finish().expect("no dangling long code");
}

#[test]
fn packed_stream_matches_the_golden_vector() {
    let enc = encode_tensor(&VALUES);
    let nibbles: Vec<u8> = enc.stream.iter().collect();
    assert_eq!(nibbles, GOLDEN_NIBBLES);
    assert_eq!(decode_stream(&enc.stream).expect("valid"), GOLDEN_DECODED);
    // 2 short (4b) + 3 long (8b) codes = 32 bits in 4 bytes, vs 5 raw bytes.
    assert_eq!(enc.stream.len(), 8);
    assert_eq!(enc.stream.byte_len(), 4);
}

#[test]
fn hand_built_stream_decodes_to_golden_values() {
    // Build the stream from raw nibbles (not via the encoder) to pin the
    // wire format itself, then decode.
    let stream: NibbleStream = GOLDEN_NIBBLES.iter().copied().collect();
    assert_eq!(decode_stream(&stream).expect("valid"), GOLDEN_DECODED);
}
