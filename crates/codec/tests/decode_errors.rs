//! Error-path coverage for the streaming decoders.
//!
//! The codec's robustness story rests on every malformed stream mapping to
//! a *specific* typed [`DecodeError`] variant — these tests pin each path:
//! a dangling long-code prefix at `finish()`, an out-of-range beat pushed
//! into the general decoder, and mid-pair truncation through the packed
//! stream decoders. The seeded corruption sweep in `spark-fault` asserts
//! the same contract statistically; this file asserts it exactly.

use spark_codec::{
    decode_general, decode_stream, encode_general, encode_tensor, encode_value, BeatStream,
    DecodeError, GeneralDecoder, NibbleStream, SparkDecoder, SparkFormat,
};

/// Nibbles that open a long code (identifier bit set), one per c3 value.
const LONG_PREFIXES: [u8; 2] = [0b1000, 0b1001];

#[test]
fn dangling_long_prefix_at_finish_is_truncated_long_code() {
    for prefix in LONG_PREFIXES {
        let mut dec = SparkDecoder::new();
        // A healthy preamble first: full values must not mask the error.
        for nib in encode_value(210).nibbles() {
            dec.push_nibble(nib).unwrap();
        }
        assert_eq!(dec.push_nibble(prefix), Ok(None));
        assert!(dec.enable());
        assert_eq!(dec.finish(), Err(DecodeError::TruncatedLongCode));
    }
}

#[test]
fn mid_pair_truncation_in_packed_stream_is_truncated_long_code() {
    // Build a stream of full values, then drop the final nibble so the last
    // long code is cut between prev and post.
    let values = [5u8, 210, 3, 170];
    let full = encode_tensor(&values);
    assert!(decode_stream(&full.stream).is_ok());
    let mut cut = NibbleStream::new();
    for i in 0..full.stream.len() - 1 {
        cut.push(full.stream.get(i).expect("in range"));
    }
    assert_eq!(decode_stream(&cut), Err(DecodeError::TruncatedLongCode));
}

#[test]
fn invalid_nibble_reports_the_offending_value() {
    let mut dec = SparkDecoder::new();
    for bad in [16u8, 0x1F, 255] {
        assert_eq!(dec.push_nibble(bad), Err(DecodeError::InvalidNibble(bad)));
    }
    // The decoder state is untouched by rejected pushes.
    assert!(!dec.enable());
    assert_eq!(dec.cycles(), 0);
}

#[test]
fn out_of_range_beat_is_invalid_beat_with_width() {
    for (base, short) in [(6u8, 3u8), (8, 4), (12, 6), (16, 8)] {
        let fmt = SparkFormat::new(base, short).unwrap();
        let mut dec = GeneralDecoder::new(fmt);
        let bad = 1u16 << short; // one past the widest legal beat
        assert_eq!(
            dec.push_beat(bad),
            Err(DecodeError::InvalidBeat { beat: bad, width: short }),
            "{fmt}"
        );
        // Legal beats still flow after a rejected one.
        assert!(dec.push_beat(0).unwrap().is_some());
        assert!(dec.finish().is_ok());
    }
}

#[test]
fn mid_pair_truncation_in_general_stream_is_truncated_long_code() {
    let fmt = SparkFormat::new(12, 6).unwrap();
    let values: Vec<u16> = (0..64u16).map(|i| i * 61 % (fmt.max_value() + 1)).collect();
    let full = encode_general(&fmt, &values);
    assert!(decode_general(&fmt, &full).is_ok());
    let mut cut = BeatStream::new(full.beat_bits());
    for i in 0..full.len() - 1 {
        cut.push(full.get(i).expect("in range"));
    }
    assert_eq!(decode_general(&fmt, &cut), Err(DecodeError::TruncatedLongCode));
}

#[test]
fn general_decoder_dangling_prefix_at_finish() {
    let fmt = SparkFormat::new(8, 4).unwrap();
    let mut dec = GeneralDecoder::new(fmt);
    assert_eq!(dec.push_beat(0b1000), Ok(None)); // long prev
    assert!(dec.enable());
    assert_eq!(dec.finish(), Err(DecodeError::TruncatedLongCode));
}

#[test]
fn every_single_nibble_stream_is_classified() {
    // Exhaustive over the 16 possible one-nibble streams: short codes
    // decode to one value, long prefixes fail with TruncatedLongCode.
    for nib in 0u8..16 {
        let mut s = NibbleStream::new();
        s.push(nib);
        match decode_stream(&s) {
            Ok(vals) => {
                assert_eq!(nib >> 3, 0, "long prefix {nib:#06b} decoded silently");
                assert_eq!(vals, vec![nib & 0x07]);
            }
            Err(e) => {
                assert_eq!(nib >> 3, 1, "short code {nib:#06b} errored");
                assert_eq!(e, DecodeError::TruncatedLongCode);
            }
        }
    }
}

#[test]
fn decode_error_messages_name_the_failure() {
    assert!(DecodeError::TruncatedLongCode.to_string().contains("long code"));
    assert!(DecodeError::InvalidNibble(20).to_string().contains("20"));
    let e = DecodeError::InvalidBeat { beat: 300, width: 6 };
    let msg = e.to_string();
    assert!(msg.contains("300") && msg.contains('6'), "{msg}");
}
