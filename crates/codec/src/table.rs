//! Table II of the paper as queryable data.
//!
//! Each row classifies the original-byte bit patterns, the SPARK code they
//! map to, the decimal coverage and whether the row is lossy. The
//! reproduction harness prints this table (`experiments table2`) and the
//! tests verify every byte lands in exactly one row with the documented
//! behaviour.


use crate::code::{bit, decode_value, CodeKind};

/// One row of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableRow {
    /// Human-readable bit pattern of the original value ("x" = don't care).
    pub bits: &'static str,
    /// Human-readable SPARK code pattern.
    pub spark_code: &'static str,
    /// Decimal coverage description.
    pub values: &'static str,
    /// Whether values matching this row incur encoding error.
    pub lossy: bool,
}

/// The five rows of Table II, in paper order.
pub const TABLE_II: [TableRow; 5] = [
    TableRow {
        bits: "0xxx",
        spark_code: "0xxx",
        values: "[0,7]",
        lossy: false,
    },
    TableRow {
        bits: "0xx0 xxxx",
        spark_code: "1xx0 xxxx",
        values: "[8,15] u [32,47] u [64,79] u [96,111]",
        lossy: false,
    },
    TableRow {
        bits: "0xx1 xxxx",
        spark_code: "1xx0 1111",
        values: "15, 47, 79, 111",
        lossy: true,
    },
    TableRow {
        bits: "1xx0 xxxx",
        spark_code: "1xx1 0000",
        values: "144, 176, 208, 240",
        lossy: true,
    },
    TableRow {
        bits: "1xx1 xxxx",
        spark_code: "1xx1 xxxx",
        values: "[144,159] u [176,191] u [208,223] u [240,255]",
        lossy: false,
    },
];

/// Classifies a byte into its Table II row index (0..=4).
pub fn classify(value: u8) -> usize {
    if value < 8 {
        return 0;
    }
    match (bit(value, 0), bit(value, 3)) {
        (0, 0) => 1,
        (0, 1) => 2,
        (1, 0) => 3,
        (1, 1) => 4,
        _ => unreachable!("bits are 0 or 1"),
    }
}

/// The set of bytes the SPARK code represents exactly (the fixed points of
/// encode∘decode). Useful for workload generators that want pre-rounded data.
pub fn representable_values() -> Vec<u8> {
    (0u16..=255)
        .map(|v| v as u8)
        .filter(|&v| decode_value(v) == v)
        .collect()
}

/// Nominal code kind for each row (row 0 is short, the rest long).
pub fn row_code_kind(row: usize) -> CodeKind {
    if row == 0 {
        CodeKind::Short
    } else {
        CodeKind::Long
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode_value;

    #[test]
    fn every_byte_classified_consistently_with_lossiness() {
        for v in 0u16..=255 {
            let v = v as u8;
            let row = classify(v);
            let lossless = decode_value(v) == v;
            // Row 0 special case: values 8..16 have b0=0,b3=0 pattern "0xx0"
            // only when bit(v,3)==0; classify handles v<8 first.
            assert_eq!(
                TABLE_II[row].lossy,
                !lossless,
                "value {v} in row {row} ({})",
                TABLE_II[row].bits
            );
        }
    }

    #[test]
    fn row_kinds() {
        assert_eq!(row_code_kind(0), CodeKind::Short);
        for r in 1..5 {
            assert_eq!(row_code_kind(r), CodeKind::Long);
        }
    }

    #[test]
    fn classify_matches_code_kind() {
        for v in 0u16..=255 {
            let v = v as u8;
            assert_eq!(row_code_kind(classify(v)), encode_value(v).kind());
        }
    }

    #[test]
    fn representable_set_contains_decoded_values_only() {
        let rep = representable_values();
        for &v in &rep {
            assert_eq!(decode_value(v), v);
        }
        // Spot-check the paper's lossy examples are NOT fixed points of the
        // classifier rows 2 and 3, i.e. excluded unless they coincide with
        // the rounding targets.
        assert!(rep.contains(&15));
        assert!(rep.contains(&176));
        assert!(!rep.contains(&18));
        assert!(!rep.contains(&170));
    }

    #[test]
    fn representable_count_matches_lossless_count() {
        // Short range: 8 values; mid lossless: 4 blocks of 16 minus overlap;
        // compute independently from check bits.
        let expected = (0u16..=255)
            .filter(|&v| {
                let v = v as u8;
                v < 8 || ((v >> 7) & 1) == ((v >> 4) & 1)
            })
            .count();
        assert_eq!(representable_values().len(), expected);
    }

    #[test]
    fn rounding_targets_per_row() {
        // Row 2 rounds to {15, 47, 79, 111}.
        for v in [16u8, 30, 48, 63, 80, 95, 112, 127] {
            let d = decode_value(v);
            assert!(matches!(d, 15 | 47 | 79 | 111), "value {v} -> {d}");
        }
        // Row 3 rounds to {144, 176, 208, 240}.
        for v in [128u8, 143, 160, 175, 192, 207, 224, 239] {
            let d = decode_value(v);
            assert!(matches!(d, 144 | 176 | 208 | 240), "value {v} -> {d}");
        }
    }
}
