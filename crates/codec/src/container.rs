//! On-disk container for SPARK-encoded tensors.
//!
//! A compact binary format for persisting encoded tensors — what a
//! deployment pipeline would ship to the accelerator: a 32-byte header
//! (magic, version, element and nibble counts, payload checksum) followed
//! by the packed nibble stream. Everything is little-endian and the stream
//! bytes are the exact DRAM image.
//!
//! This is the serialization **trust boundary**: everything in the header
//! is attacker-controlled until proven otherwise, so [`read_container`]
//! cross-checks every field before trusting it — count consistency
//! (`elements <= nibbles <= 2 * elements`, each value being one or two
//! beats), payload length (growing the buffer with the data actually read,
//! never allocating from a declared length), an FNV-1a checksum over the
//! code stream, trailing-byte rejection, and finally a full decode. Any
//! corruption yields a typed [`ContainerError`], never a panic, hang, or
//! silently wrong tensor.

use std::io::{self, Read, Write};

use crate::stats::CodeStats;
use crate::stream::{EncodedTensor, NibbleStream};
use crate::DecodeError;

/// File magic: "SPRK".
pub const MAGIC: [u8; 4] = *b"SPRK";
/// Container format version. Version 2 added the payload checksum; version
/// 1 files (no checksum) are no longer accepted.
pub const VERSION: u32 = 2;
/// Serialized header size in bytes: magic, version, element count, nibble
/// count, payload checksum. The payload starts at this offset.
pub const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8;

/// FNV-1a 64-bit checksum over the packed code-stream bytes — the payload
/// integrity check of the version-2 container header. Not cryptographic;
/// it detects accidental corruption (bit rot, truncation at a byte
/// boundary, mis-spliced files), which is the container's threat model.
///
/// Delegates to the workspace's one FNV-1a implementation
/// ([`spark_util::fnv`]); `checksum_pins_the_v2_wire_format` pins a golden
/// digest so the v2 wire format cannot drift under refactors there.
pub fn stream_checksum(bytes: &[u8]) -> u64 {
    spark_util::fnv::fnv1a(bytes)
}

/// Errors reading a container.
#[derive(Debug)]
pub enum ContainerError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Wrong magic bytes.
    BadMagic([u8; 4]),
    /// Unsupported version.
    BadVersion(u32),
    /// Header counts inconsistent with the payload.
    Corrupt(String),
    /// Payload bytes do not match the header checksum.
    ChecksumMismatch {
        /// Checksum declared in the header.
        expected: u64,
        /// Checksum computed over the payload actually read.
        found: u64,
    },
    /// The nibble stream itself is malformed.
    Stream(DecodeError),
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::Io(e) => write!(f, "i/o error: {e}"),
            ContainerError::BadMagic(m) => write!(f, "bad magic {m:?}, not a SPARK container"),
            ContainerError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            ContainerError::Corrupt(msg) => write!(f, "corrupt container: {msg}"),
            ContainerError::ChecksumMismatch { expected, found } => write!(
                f,
                "payload checksum mismatch: header says {expected:#018x}, stream hashes to {found:#018x}"
            ),
            ContainerError::Stream(e) => write!(f, "malformed stream: {e}"),
        }
    }
}

impl std::error::Error for ContainerError {}

impl From<io::Error> for ContainerError {
    fn from(e: io::Error) -> Self {
        ContainerError::Io(e)
    }
}

impl From<DecodeError> for ContainerError {
    fn from(e: DecodeError) -> Self {
        ContainerError::Stream(e)
    }
}

/// Writes an encoded tensor to a writer. Returns the bytes written.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_container<W: Write>(tensor: &EncodedTensor, mut out: W) -> Result<usize, io::Error> {
    // The header is serialized into a fixed buffer first so the returned
    // byte count is derived from what was actually written — it cannot
    // drift from the format if a field is ever added or resized.
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4..8].copy_from_slice(&VERSION.to_le_bytes());
    header[8..16].copy_from_slice(&(tensor.elements as u64).to_le_bytes());
    header[16..24].copy_from_slice(&(tensor.stream.len() as u64).to_le_bytes());
    header[24..32].copy_from_slice(&stream_checksum(tensor.stream.as_bytes()).to_le_bytes());
    let payload = tensor.stream.as_bytes();
    out.write_all(&header)?;
    out.write_all(payload)?;
    Ok(header.len() + payload.len())
}

/// Reads an encoded tensor back from a reader, re-deriving the statistics
/// by decoding the stream.
///
/// # Errors
///
/// Returns [`ContainerError`] on I/O failure, bad magic/version,
/// inconsistent or implausible counts, checksum mismatch, trailing bytes,
/// or a malformed nibble stream.
pub fn read_container<R: Read>(mut input: R) -> Result<EncodedTensor, ContainerError> {
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(ContainerError::BadMagic(magic));
    }
    let mut buf4 = [0u8; 4];
    input.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if version != VERSION {
        return Err(ContainerError::BadVersion(version));
    }
    let mut buf8 = [0u8; 8];
    input.read_exact(&mut buf8)?;
    let elements = u64::from_le_bytes(buf8);
    input.read_exact(&mut buf8)?;
    let nibbles = u64::from_le_bytes(buf8);
    input.read_exact(&mut buf8)?;
    let checksum = u64::from_le_bytes(buf8);

    // Count plausibility before anything is allocated from the header:
    // every value is one or two beats, so a header violating
    // `elements <= nibbles <= 2 * elements` cannot describe any stream.
    if nibbles < elements || nibbles > elements.saturating_mul(2) {
        return Err(ContainerError::Corrupt(format!(
            "header says {elements} elements in {nibbles} nibbles, \
             but every value takes one or two nibbles"
        )));
    }
    let elements = elements as usize;
    let nibbles = nibbles as usize;

    // Bounded payload read: `take` caps what we consume and the buffer
    // grows with the bytes actually present, so a forged length field can
    // never force a huge up-front allocation.
    let expected_bytes = nibbles.div_ceil(2);
    let mut bytes = Vec::new();
    input.by_ref().take(expected_bytes as u64).read_to_end(&mut bytes)?;
    if bytes.len() != expected_bytes {
        return Err(ContainerError::Corrupt(format!(
            "payload truncated: header promises {expected_bytes} stream bytes, file holds {}",
            bytes.len()
        )));
    }
    let found = stream_checksum(&bytes);
    if found != checksum {
        return Err(ContainerError::ChecksumMismatch { expected: checksum, found });
    }
    let mut trailer = [0u8; 1];
    if input.read(&mut trailer)? != 0 {
        return Err(ContainerError::Corrupt(
            "trailing bytes after the declared payload".into(),
        ));
    }

    if nibbles % 2 == 1 && bytes[nibbles / 2] & 0x0F != 0 {
        return Err(ContainerError::Corrupt(
            "final padding nibble is not zero".into(),
        ));
    }
    // The validated payload is adopted wholesale — no per-nibble re-push.
    let stream = NibbleStream::from_parts(bytes, nibbles).ok_or_else(|| {
        ContainerError::Corrupt("payload shape disagrees with the nibble count".into())
    })?;
    // Boundary-resolution pass: the exact value count comes out of the
    // identifier bits alone, so the header's element count is verified
    // *before* the output allocation it then sizes.
    let variant = crate::bulk::DecodeVariant::detect();
    let resolved = crate::bulk::resolve_len_with(variant, stream.as_bytes(), stream.len())?;
    if resolved != elements {
        return Err(ContainerError::Corrupt(format!(
            "header says {elements} elements, stream holds {resolved}"
        )));
    }
    let mut decoded = Vec::with_capacity(elements);
    crate::bulk::decode_payload_into(variant, stream.as_bytes(), stream.len(), &mut decoded);
    let mut stats = CodeStats::new();
    for &v in &decoded {
        // Decoded values are fixed points, so re-encoding them recovers the
        // exact code kinds; errors are all zero by construction.
        stats.record(v, crate::encode_value(v));
    }
    Ok(EncodedTensor {
        stream,
        elements,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode_tensor;

    fn sample() -> EncodedTensor {
        let values: Vec<u8> = (0..500u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
            .collect();
        encode_tensor(&values)
    }

    #[test]
    fn written_byte_count_equals_serialized_length() {
        // The return value is derived from the buffers actually written:
        // header + payload, for every payload parity including empty.
        for values in [&[][..], &[3u8][..], &[200u8][..], &[1u8, 200, 3][..]] {
            let enc = encode_tensor(values);
            let mut buf = Vec::new();
            let written = write_container(&enc, &mut buf).unwrap();
            assert_eq!(written, buf.len(), "values {values:?}");
            assert_eq!(written, HEADER_LEN + enc.stream.byte_len(), "values {values:?}");
        }
    }

    #[test]
    fn round_trip_preserves_stream_and_counts() {
        let enc = sample();
        let mut buf = Vec::new();
        let written = write_container(&enc, &mut buf).unwrap();
        assert_eq!(written, buf.len());
        let back = read_container(buf.as_slice()).unwrap();
        assert_eq!(back.stream, enc.stream);
        assert_eq!(back.elements, enc.elements);
        assert_eq!(back.stats.short_count(), enc.stats.short_count());
        assert_eq!(back.stats.long_count(), enc.stats.long_count());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_container(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_container(buf.as_slice()),
            Err(ContainerError::BadMagic(_))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_container(&sample(), &mut buf).unwrap();
        buf[4] = 99;
        assert!(matches!(
            read_container(buf.as_slice()),
            Err(ContainerError::BadVersion(99))
        ));
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut buf = Vec::new();
        write_container(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_container(buf.as_slice()),
            Err(ContainerError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_header_is_io_error() {
        let mut buf = Vec::new();
        write_container(&sample(), &mut buf).unwrap();
        buf.truncate(20); // mid-header
        assert!(matches!(
            read_container(buf.as_slice()),
            Err(ContainerError::Io(_))
        ));
    }

    #[test]
    fn element_count_mismatch_detected() {
        let mut buf = Vec::new();
        write_container(&sample(), &mut buf).unwrap();
        // Tamper with the element count field.
        buf[8] = buf[8].wrapping_add(1);
        assert!(matches!(
            read_container(buf.as_slice()),
            Err(ContainerError::Corrupt(_))
        ));
    }

    #[test]
    fn payload_bit_flip_fails_the_checksum() {
        let mut buf = Vec::new();
        write_container(&sample(), &mut buf).unwrap();
        let payload_start = 32;
        buf[payload_start + 17] ^= 0x40;
        assert!(matches!(
            read_container(buf.as_slice()),
            Err(ContainerError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn forged_checksum_field_is_reported() {
        let mut buf = Vec::new();
        write_container(&sample(), &mut buf).unwrap();
        buf[24] ^= 0xFF; // checksum field, not payload
        match read_container(buf.as_slice()) {
            Err(ContainerError::ChecksumMismatch { expected, found }) => {
                assert_ne!(expected, found);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Vec::new();
        write_container(&sample(), &mut buf).unwrap();
        buf.push(0xAA);
        match read_container(buf.as_slice()) {
            Err(ContainerError::Corrupt(msg)) => assert!(msg.contains("trailing"), "{msg}"),
            other => panic!("expected trailing-byte rejection, got {other:?}"),
        }
    }

    #[test]
    fn implausible_counts_rejected_without_allocation() {
        // elements=1 but nibbles=u64::MAX: must fail the count plausibility
        // check, never attempt a giant allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        match read_container(buf.as_slice()) {
            Err(ContainerError::Corrupt(msg)) => assert!(msg.contains("nibbles"), "{msg}"),
            other => panic!("expected count rejection, got {other:?}"),
        }
    }

    #[test]
    fn huge_but_consistent_counts_fail_on_missing_payload() {
        // A consistent (elements, nibbles) pair with no payload behind it:
        // the bounded read stops at EOF and reports truncation instead of
        // allocating the declared size.
        let n = 1u64 << 40;
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&n.to_le_bytes());
        buf.extend_from_slice(&n.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        match read_container(buf.as_slice()) {
            Err(ContainerError::Corrupt(msg)) => assert!(msg.contains("truncated"), "{msg}"),
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn nonzero_padding_nibble_rejected() {
        // Odd nibble count: the final low nibble is padding and must be 0.
        let enc = encode_tensor(&[3u8]); // one short code -> one nibble
        let mut buf = Vec::new();
        write_container(&enc, &mut buf).unwrap();
        let payload_start = 32;
        buf[payload_start] |= 0x05; // dirty the padding nibble
        // Recompute the checksum so only the padding check can fire.
        let sum = stream_checksum(&buf[payload_start..]);
        buf[24..32].copy_from_slice(&sum.to_le_bytes());
        match read_container(buf.as_slice()) {
            Err(ContainerError::Corrupt(msg)) => assert!(msg.contains("padding"), "{msg}"),
            other => panic!("expected padding rejection, got {other:?}"),
        }
    }

    #[test]
    fn empty_tensor_round_trips() {
        let enc = encode_tensor(&[]);
        let mut buf = Vec::new();
        write_container(&enc, &mut buf).unwrap();
        let back = read_container(buf.as_slice()).unwrap();
        assert_eq!(back.elements, 0);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(stream_checksum(&[1, 2]), stream_checksum(&[2, 1]));
        assert_ne!(stream_checksum(&[0]), stream_checksum(&[]));
    }

    #[test]
    fn checksum_pins_the_v2_wire_format() {
        // Golden digests computed by the original in-crate FNV-1a loop
        // before it was consolidated into spark_util::fnv. A v2 container
        // written before the consolidation must still verify after it.
        assert_eq!(stream_checksum(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(stream_checksum(b"SPRK"), 0x9F55_6424_6C61_1AE5);
        let payload: Vec<u8> = (0u16..256).map(|i| i as u8).collect();
        assert_eq!(stream_checksum(&payload), 0x4242_DC52_49C3_3625);
    }

    #[test]
    fn error_display() {
        assert!(ContainerError::BadVersion(7).to_string().contains('7'));
        assert!(ContainerError::BadMagic(*b"ABCD").to_string().contains("magic"));
        assert!(ContainerError::ChecksumMismatch { expected: 1, found: 2 }
            .to_string()
            .contains("checksum"));
    }
}
