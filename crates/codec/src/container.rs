//! On-disk container for SPARK-encoded tensors.
//!
//! A compact binary format for persisting encoded tensors — what a
//! deployment pipeline would ship to the accelerator: a 24-byte header
//! (magic, version, element and nibble counts) followed by the packed
//! nibble stream. Everything is little-endian and the stream bytes are the
//! exact DRAM image.

use std::io::{self, Read, Write};

use crate::stats::CodeStats;
use crate::stream::{EncodedTensor, NibbleStream};
use crate::{decode_stream, DecodeError};

/// File magic: "SPRK".
pub const MAGIC: [u8; 4] = *b"SPRK";
/// Container format version.
pub const VERSION: u32 = 1;

/// Errors reading a container.
#[derive(Debug)]
pub enum ContainerError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Wrong magic bytes.
    BadMagic([u8; 4]),
    /// Unsupported version.
    BadVersion(u32),
    /// Header counts inconsistent with the payload.
    Corrupt(String),
    /// The nibble stream itself is malformed.
    Stream(DecodeError),
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::Io(e) => write!(f, "i/o error: {e}"),
            ContainerError::BadMagic(m) => write!(f, "bad magic {m:?}, not a SPARK container"),
            ContainerError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            ContainerError::Corrupt(msg) => write!(f, "corrupt container: {msg}"),
            ContainerError::Stream(e) => write!(f, "malformed stream: {e}"),
        }
    }
}

impl std::error::Error for ContainerError {}

impl From<io::Error> for ContainerError {
    fn from(e: io::Error) -> Self {
        ContainerError::Io(e)
    }
}

impl From<DecodeError> for ContainerError {
    fn from(e: DecodeError) -> Self {
        ContainerError::Stream(e)
    }
}

/// Writes an encoded tensor to a writer. Returns the bytes written.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_container<W: Write>(tensor: &EncodedTensor, mut out: W) -> Result<usize, io::Error> {
    out.write_all(&MAGIC)?;
    out.write_all(&VERSION.to_le_bytes())?;
    out.write_all(&(tensor.elements as u64).to_le_bytes())?;
    out.write_all(&(tensor.stream.len() as u64).to_le_bytes())?;
    out.write_all(tensor.stream.as_bytes())?;
    Ok(4 + 4 + 8 + 8 + tensor.stream.as_bytes().len())
}

/// Reads an encoded tensor back from a reader, re-deriving the statistics
/// by decoding the stream.
///
/// # Errors
///
/// Returns [`ContainerError`] on I/O failure, bad magic/version, count
/// mismatches, or a malformed nibble stream.
pub fn read_container<R: Read>(mut input: R) -> Result<EncodedTensor, ContainerError> {
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(ContainerError::BadMagic(magic));
    }
    let mut buf4 = [0u8; 4];
    input.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if version != VERSION {
        return Err(ContainerError::BadVersion(version));
    }
    let mut buf8 = [0u8; 8];
    input.read_exact(&mut buf8)?;
    let elements = u64::from_le_bytes(buf8) as usize;
    input.read_exact(&mut buf8)?;
    let nibbles = u64::from_le_bytes(buf8) as usize;
    let mut bytes = vec![0u8; nibbles.div_ceil(2)];
    input.read_exact(&mut bytes)?;

    let mut stream = NibbleStream::with_capacity(nibbles);
    for i in 0..nibbles {
        let b = bytes[i / 2];
        stream.push(if i % 2 == 0 { b >> 4 } else { b & 0x0F });
    }
    // Validate and re-derive statistics by decoding.
    let decoded = decode_stream(&stream)?;
    if decoded.len() != elements {
        return Err(ContainerError::Corrupt(format!(
            "header says {elements} elements, stream holds {}",
            decoded.len()
        )));
    }
    let mut stats = CodeStats::new();
    for &v in &decoded {
        // Decoded values are fixed points, so re-encoding them recovers the
        // exact code kinds; errors are all zero by construction.
        stats.record(v, crate::encode_value(v));
    }
    Ok(EncodedTensor {
        stream,
        elements,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode_tensor;

    fn sample() -> EncodedTensor {
        let values: Vec<u8> = (0..500u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
            .collect();
        encode_tensor(&values)
    }

    #[test]
    fn round_trip_preserves_stream_and_counts() {
        let enc = sample();
        let mut buf = Vec::new();
        let written = write_container(&enc, &mut buf).unwrap();
        assert_eq!(written, buf.len());
        let back = read_container(buf.as_slice()).unwrap();
        assert_eq!(back.stream, enc.stream);
        assert_eq!(back.elements, enc.elements);
        assert_eq!(back.stats.short_count(), enc.stats.short_count());
        assert_eq!(back.stats.long_count(), enc.stats.long_count());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_container(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_container(buf.as_slice()),
            Err(ContainerError::BadMagic(_))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_container(&sample(), &mut buf).unwrap();
        buf[4] = 99;
        assert!(matches!(
            read_container(buf.as_slice()),
            Err(ContainerError::BadVersion(99))
        ));
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut buf = Vec::new();
        write_container(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_container(buf.as_slice()),
            Err(ContainerError::Io(_))
        ));
    }

    #[test]
    fn element_count_mismatch_detected() {
        let mut buf = Vec::new();
        write_container(&sample(), &mut buf).unwrap();
        // Tamper with the element count field.
        buf[8] = buf[8].wrapping_add(1);
        assert!(matches!(
            read_container(buf.as_slice()),
            Err(ContainerError::Corrupt(_))
        ));
    }

    #[test]
    fn empty_tensor_round_trips() {
        let enc = encode_tensor(&[]);
        let mut buf = Vec::new();
        write_container(&enc, &mut buf).unwrap();
        let back = read_container(buf.as_slice()).unwrap();
        assert_eq!(back.elements, 0);
    }

    #[test]
    fn error_display() {
        assert!(ContainerError::BadVersion(7).to_string().contains('7'));
        assert!(ContainerError::BadMagic(*b"ABCD").to_string().contains("magic"));
    }
}
