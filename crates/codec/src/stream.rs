//! Nibble-aligned packing of whole tensors.
//!
//! The paper stresses that SPARK keeps memory accesses *aligned*: the tensor
//! is stored as a dense stream of 4-bit beats (the "basic bit length"), two
//! per byte, with no side tables. [`NibbleStream`] is that storage format;
//! [`encode_tensor`] / [`decode_stream`] convert between raw `u8` code words
//! and the packed representation.


use crate::compensation::EncodeMode;
use crate::decoder::{DecodeError, SparkDecoder};
use crate::stats::CodeStats;

/// A dense, aligned stream of 4-bit beats (high nibble first within each
/// byte).
///
/// ```
/// use spark_codec::NibbleStream;
/// let mut s = NibbleStream::new();
/// s.push(0xA);
/// s.push(0xB);
/// s.push(0xC);
/// assert_eq!(s.as_bytes(), &[0xAB, 0xC0]);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![0xA, 0xB, 0xC]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NibbleStream {
    bytes: Vec<u8>,
    len: usize,
}

impl NibbleStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty stream with capacity for `n` nibbles.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(n.div_ceil(2)),
            len: 0,
        }
    }

    /// Appends one nibble (low 4 bits of `nibble`).
    pub fn push(&mut self, nibble: u8) {
        let nibble = nibble & 0x0F;
        if self.len.is_multiple_of(2) {
            self.bytes.push(nibble << 4);
        } else {
            *self.bytes.last_mut().expect("odd len implies a byte") |= nibble;
        }
        self.len += 1;
    }

    /// Number of nibbles stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no nibbles are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes of the packed storage (the footprint DRAM sees).
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// The packed bytes (final byte zero-padded when `len` is odd).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Nibble at position `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<u8> {
        if i >= self.len {
            return None;
        }
        let byte = self.bytes[i / 2];
        Some(if i.is_multiple_of(2) { byte >> 4 } else { byte & 0x0F })
    }

    /// Iterates the nibbles in order.
    ///
    /// Walks the packed bytes directly — two nibbles per byte, high half
    /// first — rather than routing every position through [`get`]'s
    /// bounds check and div/mod. The `take` trims the zero padding nibble
    /// when `len` is odd.
    ///
    /// [`get`]: NibbleStream::get
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        self.bytes
            .iter()
            .flat_map(|&b| [b >> 4, b & 0x0F])
            .take(self.len)
    }

    /// Reassembles a stream from its packed parts (the inverse of
    /// [`as_bytes`](NibbleStream::as_bytes) + [`len`](NibbleStream::len)).
    /// The container reader uses this to adopt a validated payload in one
    /// move instead of re-pushing every nibble.
    ///
    /// Returns `None` when `bytes` is not exactly `nibbles.div_ceil(2)`
    /// long or a padding nibble is non-zero.
    pub fn from_parts(bytes: Vec<u8>, nibbles: usize) -> Option<Self> {
        if bytes.len() != nibbles.div_ceil(2) {
            return None;
        }
        if nibbles % 2 == 1 {
            let last = bytes.last().copied().unwrap_or(0);
            if last & 0x0F != 0 {
                return None;
            }
        }
        Some(Self { bytes, len: nibbles })
    }
}

impl FromIterator<u8> for NibbleStream {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        let mut s = NibbleStream::new();
        for n in iter {
            s.push(n);
        }
        s
    }
}

impl Extend<u8> for NibbleStream {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        let iter = iter.into_iter();
        let (lower, _) = iter.size_hint();
        self.bytes.reserve(lower.div_ceil(2));
        for n in iter {
            self.push(n);
        }
    }
}

/// A SPARK-encoded tensor: the aligned nibble stream plus bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedTensor {
    /// The packed, aligned 4-bit stream.
    pub stream: NibbleStream,
    /// Number of source elements.
    pub elements: usize,
    /// Encoding statistics (short/lossless fractions, average bit-width).
    pub stats: CodeStats,
}

impl EncodedTensor {
    /// Compression ratio versus the 8-bit baseline
    /// (`8 / average_bits`, > 1 when the encoding saves space).
    pub fn compression_ratio(&self) -> f64 {
        if self.elements == 0 {
            return 1.0;
        }
        8.0 / self.stats.avg_bits()
    }
}

/// Encodes a slice of INT8 code words with the accuracy compensation
/// mechanism enabled (the paper's default).
pub fn encode_tensor(values: &[u8]) -> EncodedTensor {
    encode_tensor_with(values, EncodeMode::Compensated)
}

/// Encodes a slice of INT8 code words under an explicit [`EncodeMode`]
/// (used by the Fig 13 ablation).
pub fn encode_tensor_with(values: &[u8], mode: EncodeMode) -> EncodedTensor {
    // Statistics pre-pass: `EncodeMode::encode` is pure, so encoding twice
    // is safe and the second pass writes into an exactly-sized stream
    // (`nibble_count`) instead of the 2-nibbles-per-value worst case.
    let mut stats = CodeStats::default();
    for &v in values {
        stats.record(v, mode.encode(v));
    }
    let mut stream = NibbleStream::with_capacity(stats.nibble_count() as usize);
    for &v in values {
        stream.extend(mode.encode(v).nibbles());
    }
    EncodedTensor {
        stream,
        elements: values.len(),
        stats,
    }
}

/// One byte's precomputed encoding: the packed nibbles plus its statistics
/// contributions, so the batch encoder touches one table row per value
/// instead of re-running the gate-level encoder (twice) and the error
/// bookkeeping per value.
#[derive(Clone, Copy, Default)]
struct PlanEntry {
    /// First nibble, low bits (`acc | n0` completes a pending byte).
    n0: u8,
    /// First nibble pre-shifted high (starts a fresh byte).
    n0h: u8,
    /// Second nibble pre-shifted high (long codes leave it pending).
    n1h: u8,
    /// Both nibbles packed into one byte (long code on an even boundary).
    pair: u8,
    /// True for a two-nibble long code.
    long: bool,
    /// True when the value reconstructs exactly.
    lossless: bool,
    /// Absolute reconstruction error in code units.
    err: u8,
}

/// A reusable 256-entry encoding table for one [`EncodeMode`] — the batched
/// entry point the serving layer amortizes across whole request batches.
///
/// [`EncodePlan::encode`] produces output **bit-identical** to
/// [`encode_tensor_with`] (a property the tests pin), but in a single pass
/// with no per-value encoder invocation, which makes it several times
/// faster per element even on one core.
pub struct EncodePlan {
    mode: EncodeMode,
    table: [PlanEntry; 256],
}

impl EncodePlan {
    /// Builds the table by running the gate-level encoder once per possible
    /// byte value.
    pub fn new(mode: EncodeMode) -> Self {
        let mut table = [PlanEntry::default(); 256];
        for (v, entry) in table.iter_mut().enumerate() {
            let v = v as u8;
            let code = mode.encode(v);
            let nibs: Vec<u8> = code.nibbles().collect();
            let err = (i16::from(code.decode()) - i16::from(v)).unsigned_abs() as u8;
            *entry = PlanEntry {
                n0: nibs[0],
                n0h: nibs[0] << 4,
                n1h: nibs.get(1).copied().unwrap_or(0) << 4,
                pair: (nibs[0] << 4) | nibs.get(1).copied().unwrap_or(0),
                long: nibs.len() == 2,
                lossless: err == 0,
                err,
            };
        }
        Self { mode, table }
    }

    /// The mode this plan encodes under.
    pub fn mode(&self) -> EncodeMode {
        self.mode
    }

    /// Encodes one tensor through the table: a single pass that packs
    /// nibbles and accumulates statistics simultaneously.
    pub fn encode(&self, values: &[u8]) -> EncodedTensor {
        let mut long_cnt = 0u64;
        let mut lossless = 0u64;
        let mut err_sum = 0u64;
        let mut max_err = 0u8;
        // Worst case one byte per value (all long codes).
        let mut bytes = Vec::with_capacity(values.len());
        let mut acc = 0u8; // pending high nibble, valid when `have_half`
        let mut have_half = false;
        for &v in values {
            let e = self.table[v as usize];
            long_cnt += e.long as u64;
            lossless += e.lossless as u64;
            err_sum += u64::from(e.err);
            max_err = max_err.max(e.err);
            if have_half {
                bytes.push(acc | e.n0);
                acc = e.n1h;
                have_half = e.long;
            } else if e.long {
                bytes.push(e.pair);
            } else {
                acc = e.n0h;
                have_half = true;
            }
        }
        if have_half {
            bytes.push(acc);
        }
        let short_cnt = values.len() as u64 - long_cnt;
        let len = (short_cnt + 2 * long_cnt) as usize;
        debug_assert_eq!(bytes.len(), len.div_ceil(2));
        EncodedTensor {
            stream: NibbleStream { bytes, len },
            elements: values.len(),
            stats: CodeStats::from_counts(short_cnt, long_cnt, lossless, err_sum, max_err),
        }
    }
}

/// Encodes a batch of tensors in one call under the paper's default
/// compensated mode — the arity the serving layer's micro-batcher feeds.
///
/// The per-byte encoding table is built once for the whole batch and the
/// tensors fan out over [`spark_util::par_map`] (a no-op split on one
/// core, a row fan-out on many). Results come back in input order, each
/// bit-identical to what [`encode_tensor`] returns for that tensor.
pub fn encode_batch(tensors: &[&[u8]]) -> Vec<EncodedTensor> {
    encode_batch_with(tensors, EncodeMode::Compensated)
}

/// [`encode_batch`] under an explicit [`EncodeMode`].
pub fn encode_batch_with(tensors: &[&[u8]], mode: EncodeMode) -> Vec<EncodedTensor> {
    let plan = EncodePlan::new(mode);
    spark_util::par_map(tensors, |t| plan.encode(t))
}

/// Decodes a packed nibble stream back to code words.
///
/// Dispatches to the bit-parallel bulk engine ([`crate::bulk`]) under the
/// host's best kernel: a boundary-resolution pass sizes the output
/// exactly, then whole 64-nibble blocks decode through the compile-time
/// pair table. Bit-identical to [`decode_stream_reference`] (pinned by the
/// exhaustive differential suite in `tests/bulk_differential.rs`).
///
/// # Errors
///
/// Returns [`DecodeError::TruncatedLongCode`] when the stream ends half-way
/// through a long code.
pub fn decode_stream(stream: &NibbleStream) -> Result<Vec<u8>, DecodeError> {
    crate::bulk::decode_bulk(stream)
}

/// Decodes through the streaming Fig 7 FSM, one beat per step — the
/// bit-identity reference the bulk engine is tested against.
///
/// # Errors
///
/// Returns [`DecodeError::TruncatedLongCode`] when the stream ends half-way
/// through a long code.
pub fn decode_stream_reference(stream: &NibbleStream) -> Result<Vec<u8>, DecodeError> {
    let mut dec = SparkDecoder::new();
    let mut out = Vec::with_capacity(stream.len());
    for nib in stream.iter() {
        if let Some(v) = dec.push_nibble(nib)? {
            out.push(v);
        }
    }
    dec.finish()?;
    Ok(out)
}

/// Decodes a batch of streams in one call — the arity the serving
/// layer's decode micro-batcher feeds. Streams fan out over
/// [`spark_util::par_map`] (a no-op split on one core) and results come
/// back in input order, each identical to a [`decode_stream`] call.
pub fn decode_batch(streams: &[&NibbleStream]) -> Vec<Result<Vec<u8>, DecodeError>> {
    let variant = crate::bulk::DecodeVariant::detect();
    spark_util::par_map(streams, |s| crate::bulk::decode_bulk_with(variant, s))
}

/// Encodes values and immediately decodes them — the reconstruction the
/// accelerator computes with. Convenience for accuracy experiments.
pub fn round_trip(values: &[u8], mode: EncodeMode) -> Vec<u8> {
    values.iter().map(|&v| mode.encode(v).decode()).collect()
}

/// Per-value code kinds for a tensor, the operand-precision schedule the
/// simulator consumes.
pub fn code_kinds(values: &[u8]) -> Vec<crate::CodeKind> {
    values.iter().map(|&v| crate::CodeKind::of(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode_value;

    #[test]
    fn push_and_get() {
        let mut s = NibbleStream::new();
        for n in 0..10u8 {
            s.push(n);
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.byte_len(), 5);
        for n in 0..10u8 {
            assert_eq!(s.get(n as usize), Some(n));
        }
        assert_eq!(s.get(10), None);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        let mut s = NibbleStream::new();
        s.push(0xF);
        assert_eq!(s.as_bytes(), &[0xF0]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_matches_indexed_path_for_both_parities() {
        // The bytewise iterator must agree with the bounds-checked `get`
        // path nibble-for-nibble, for even lengths (no padding) and odd
        // lengths (zero-padded final byte that `take` must trim).
        for len in [0usize, 1, 2, 3, 7, 8, 63, 64, 65, 128, 129] {
            let s: NibbleStream = (0..len).map(|i| (i * 11 % 16) as u8).collect();
            let by_iter: Vec<u8> = s.iter().collect();
            let by_get: Vec<u8> = (0..s.len()).map(|i| s.get(i).expect("in range")).collect();
            assert_eq!(by_iter, by_get, "len {len}");
            assert_eq!(by_iter.len(), len);
        }
    }

    #[test]
    fn from_parts_round_trips_and_rejects_bad_shapes() {
        let s: NibbleStream = (0..9u8).collect();
        let back = NibbleStream::from_parts(s.as_bytes().to_vec(), s.len()).unwrap();
        assert_eq!(back, s);
        // Wrong byte count for the nibble count.
        assert!(NibbleStream::from_parts(vec![0x12], 3).is_none());
        // Non-zero padding nibble on an odd length.
        assert!(NibbleStream::from_parts(vec![0x12, 0x34], 3).is_none());
        assert!(NibbleStream::from_parts(vec![0x12, 0x30], 3).is_some());
    }

    #[test]
    fn from_iterator_and_extend() {
        let s: NibbleStream = [1u8, 2, 3].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        let mut s2 = s.clone();
        s2.extend([4u8]);
        assert_eq!(s2.len(), 4);
    }

    #[test]
    fn encode_decode_round_trip_all_bytes() {
        let values: Vec<u8> = (0u16..=255).map(|v| v as u8).collect();
        let enc = encode_tensor(&values);
        let dec = decode_stream(&enc.stream).unwrap();
        assert_eq!(dec.len(), values.len());
        for (&orig, &got) in values.iter().zip(&dec) {
            assert_eq!(got, encode_value(orig).decode());
        }
    }

    #[test]
    fn all_short_values_halve_storage() {
        let values = vec![3u8; 100];
        let enc = encode_tensor(&values);
        assert_eq!(enc.stream.len(), 100); // one nibble each
        assert_eq!(enc.stream.byte_len(), 50);
        assert!((enc.compression_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn all_long_values_keep_full_width() {
        let values = vec![200u8; 50];
        let enc = encode_tensor(&values);
        assert_eq!(enc.stream.len(), 100);
        assert!((enc.compression_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn encode_presizes_stream_exactly() {
        // The stats pre-pass must predict the packed length exactly: the
        // stream never reallocates past its initial capacity.
        let values: Vec<u8> = (0..513).map(|i| (i * 31 % 256) as u8).collect();
        let enc = encode_tensor(&values);
        assert_eq!(enc.stream.len() as u64, enc.stats.nibble_count());
        assert_eq!(enc.stream.bytes.capacity(), enc.stream.byte_len());
    }

    #[test]
    fn decode_presizes_output_exactly() {
        // Mirror of `encode_presizes_stream_exactly` for the decode
        // direction: the boundary pass predicts the value count exactly,
        // so the output vector never reallocates past its initial
        // capacity.
        let values: Vec<u8> = (0..513).map(|i| (i * 31 % 256) as u8).collect();
        let enc = encode_tensor(&values);
        let dec = decode_stream(&enc.stream).unwrap();
        assert_eq!(dec.len(), values.len());
        assert_eq!(dec.capacity(), dec.len());
    }

    #[test]
    fn decode_batch_matches_per_call_in_order() {
        let tensors: Vec<Vec<u8>> = vec![
            (0u16..=255).map(|v| v as u8).collect(),
            vec![5u8; 31],
            vec![],
            vec![250u8, 1, 250, 1],
        ];
        let encoded: Vec<EncodedTensor> =
            tensors.iter().map(|t| encode_tensor(t)).collect();
        let streams: Vec<&NibbleStream> = encoded.iter().map(|e| &e.stream).collect();
        let batch = decode_batch(&streams);
        assert_eq!(batch.len(), streams.len());
        for (got, enc) in batch.iter().zip(&encoded) {
            assert_eq!(got.as_ref().unwrap(), &decode_stream(&enc.stream).unwrap());
        }
        // Errors stay per-stream: a truncated member fails alone.
        let mut bad = NibbleStream::new();
        bad.push(0b1000);
        let mixed = decode_batch(&[&encoded[0].stream, &bad]);
        assert!(mixed[0].is_ok());
        assert_eq!(mixed[1], Err(DecodeError::TruncatedLongCode));
    }

    #[test]
    fn bulk_and_reference_decoders_agree() {
        let values: Vec<u8> = (0..2048).map(|i| (i * 37 % 256) as u8).collect();
        let enc = encode_tensor(&values);
        assert_eq!(
            decode_stream(&enc.stream).unwrap(),
            decode_stream_reference(&enc.stream).unwrap()
        );
    }

    #[test]
    fn empty_tensor() {
        let enc = encode_tensor(&[]);
        assert_eq!(enc.elements, 0);
        assert_eq!(enc.compression_ratio(), 1.0);
        assert_eq!(decode_stream(&enc.stream).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn truncated_stream_errors() {
        let mut s = NibbleStream::new();
        s.push(0b1000); // first half of a long code
        assert!(decode_stream(&s).is_err());
    }

    #[test]
    fn round_trip_matches_per_value_decode() {
        let values = [0u8, 7, 8, 18, 127, 128, 170, 255];
        let rt = round_trip(&values, EncodeMode::Compensated);
        for (&v, &r) in values.iter().zip(&rt) {
            assert_eq!(r, encode_value(v).decode());
        }
    }

    #[test]
    fn code_kinds_split_at_8() {
        let kinds = code_kinds(&[0, 7, 8, 255]);
        use crate::CodeKind::*;
        assert_eq!(kinds, vec![Short, Short, Long, Long]);
    }

    #[test]
    fn plan_encode_is_bit_identical_to_encode_tensor() {
        // Exhaustive byte coverage plus every parity of short/long
        // adjacency, under both modes: the plan path must produce the
        // exact same stream bytes, length, and statistics.
        let mut patterns: Vec<Vec<u8>> = vec![
            (0u16..=255).map(|v| v as u8).collect(),
            vec![],
            vec![3],
            vec![200],
            vec![3, 200, 3, 200, 3],
            vec![200, 3, 200, 3, 200],
        ];
        // Pseudo-random mixes with varying short/long densities.
        let mut state = 0x5EED_1234_u64;
        for density in [0, 25, 50, 75, 100] {
            let mut v = Vec::with_capacity(997);
            for _ in 0..997 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let r = (state >> 33) as u8;
                v.push(if u64::from(r) % 100 < density { r | 8 } else { r % 8 });
            }
            patterns.push(v);
        }
        for mode in [EncodeMode::Compensated, EncodeMode::Truncated] {
            let plan = EncodePlan::new(mode);
            for values in &patterns {
                let want = encode_tensor_with(values, mode);
                let got = plan.encode(values);
                assert_eq!(got.stream.as_bytes(), want.stream.as_bytes());
                assert_eq!(got.stream.len(), want.stream.len());
                assert_eq!(got.elements, want.elements);
                assert_eq!(got.stats, want.stats);
            }
        }
    }

    #[test]
    fn plan_single_element_parity_is_exhaustive() {
        // Every possible byte as a whole tensor of one, under both modes:
        // the smallest tensors exercise the plan's edge bookkeeping (no
        // pending half-byte, a single trailing high nibble for long
        // codes) that the mixed patterns above can mask.
        for mode in [EncodeMode::Compensated, EncodeMode::Truncated] {
            let plan = EncodePlan::new(mode);
            for v in 0u16..=255 {
                let values = [v as u8];
                let want = encode_tensor_with(&values, mode);
                let got = plan.encode(&values);
                assert_eq!(got.stream.as_bytes(), want.stream.as_bytes(), "{mode:?} {v}");
                assert_eq!(got.stream.len(), want.stream.len(), "{mode:?} {v}");
                assert_eq!(got.stats, want.stats, "{mode:?} {v}");
                assert_eq!(
                    decode_stream(&got.stream).unwrap(),
                    vec![mode.encode(v as u8).decode()],
                    "{mode:?} {v}"
                );
            }
            // And the empty tensor: zero nibbles, zero stats, decodable.
            let empty = plan.encode(&[]);
            assert_eq!(empty, encode_tensor_with(&[], mode));
            assert_eq!(empty.stream.len(), 0);
            assert_eq!(decode_stream(&empty.stream).unwrap(), Vec::<u8>::new());
        }
    }

    #[test]
    fn plan_parity_holds_at_max_compensation() {
        use crate::MAX_ENCODING_ERROR;
        // The values the check-bit rounding hurts most: reconstruction
        // error exactly at the paper's CM bound. A tensor made of nothing
        // but worst-case values is the adversarial input for the plan's
        // error accounting (err_sum, max_err saturation).
        let worst: Vec<u8> = (0u16..=255)
            .map(|v| v as u8)
            .filter(|&v| {
                let code = EncodeMode::Compensated.encode(v);
                (i16::from(code.decode()) - i16::from(v)).unsigned_abs() as u8
                    == MAX_ENCODING_ERROR
            })
            .collect();
        assert!(
            !worst.is_empty(),
            "some byte must sit exactly at the CM bound or the bound is wrong"
        );
        let plan = EncodePlan::new(EncodeMode::Compensated);
        // Pure worst-case tensor, and worst-case interleaved with short
        // codes to cover both nibble parities around each long code.
        let mut interleaved = Vec::with_capacity(worst.len() * 2);
        for &v in &worst {
            interleaved.push(v);
            interleaved.push(3);
        }
        for values in [&worst, &interleaved] {
            let want = encode_tensor_with(values, EncodeMode::Compensated);
            let got = plan.encode(values);
            assert_eq!(got.stream.as_bytes(), want.stream.as_bytes());
            assert_eq!(got.stats, want.stats);
            assert_eq!(got.stats.max_error(), MAX_ENCODING_ERROR);
        }
    }

    #[test]
    fn plan_output_is_container_v2_identical() {
        use crate::container::{read_container, write_container};
        // Parity promoted through the serialization layer: the container
        // image (header, element/nibble accounting, FNV checksum,
        // payload) of a plan-encoded tensor must be byte-identical to the
        // per-value encoder's, and read back cleanly.
        let patterns: Vec<Vec<u8>> = vec![
            vec![],
            vec![7],
            vec![200],
            (0u16..=255).map(|v| v as u8).collect(),
            (0..997).map(|i| ((i * 41) % 256) as u8).collect(),
        ];
        let plan = EncodePlan::new(EncodeMode::Compensated);
        for values in &patterns {
            let mut from_plan = Vec::new();
            write_container(&plan.encode(values), &mut from_plan).unwrap();
            let mut from_encoder = Vec::new();
            write_container(&encode_tensor(values), &mut from_encoder).unwrap();
            assert_eq!(from_plan, from_encoder, "container images diverge for {values:?}");
            let back = read_container(&from_plan[..]).unwrap();
            assert_eq!(back.elements, values.len());
            assert_eq!(
                decode_stream(&back.stream).unwrap(),
                round_trip(values, EncodeMode::Compensated)
            );
        }
    }

    #[test]
    fn encode_batch_matches_per_call_in_order() {
        let a: Vec<u8> = (0u16..=255).map(|v| v as u8).collect();
        let b = vec![5u8; 31];
        let c: Vec<u8> = vec![];
        let d = vec![250u8, 1, 250, 1];
        let batch = encode_batch(&[&a, &b, &c, &d]);
        assert_eq!(batch.len(), 4);
        for (got, values) in batch.iter().zip([&a, &b, &c, &d]) {
            assert_eq!(got, &encode_tensor(values));
        }
    }

    #[test]
    fn batch_decodes_round_trip() {
        let tensors: Vec<Vec<u8>> = (0..5)
            .map(|t| (0..100).map(|i| ((i * 7 + t * 13) % 256) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = tensors.iter().map(Vec::as_slice).collect();
        for (enc, values) in encode_batch(&refs).iter().zip(&tensors) {
            let dec = decode_stream(&enc.stream).unwrap();
            let want: Vec<u8> = values.iter().map(|&v| encode_value(v).decode()).collect();
            assert_eq!(dec, want);
        }
    }
}
