//! Error type for invalid generalized-format parameters.

use std::error::Error;
use std::fmt;

/// Returned when a `(base_bits, short_bits)` pair is not a valid SPARK
/// format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FormatError {
    base_bits: u8,
    short_bits: u8,
}

impl FormatError {
    pub(crate) fn new(base_bits: u8, short_bits: u8) -> Self {
        Self {
            base_bits,
            short_bits,
        }
    }

    /// The rejected base width.
    pub fn base_bits(&self) -> u8 {
        self.base_bits
    }

    /// The rejected short-code width.
    pub fn short_bits(&self) -> u8 {
        self.short_bits
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid SPARK format ({}/{}): need 3 <= short < base <= 16",
            self.base_bits, self.short_bits
        )
    }
}

impl Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_both_widths() {
        let e = FormatError::new(20, 2);
        assert!(e.to_string().contains("20"));
        assert!(e.to_string().contains('2'));
        assert_eq!(e.base_bits(), 20);
        assert_eq!(e.short_bits(), 2);
    }
}
