//! Encoding statistics: the quantities plotted in Fig 2 (short-code
//! percentage) and Fig 4 (lossless vs lossy fraction), plus the average
//! bit-width reported in Tables IV and V.


use crate::code::SparkCode;

/// Running statistics over a stream of encoded values.
///
/// ```
/// use spark_codec::{CodeStats, SparkCode};
/// let mut stats = CodeStats::default();
/// stats.record(5, SparkCode::encode(5));    // short, lossless
/// stats.record(18, SparkCode::encode(18));  // long, lossy (18 -> 15)
/// assert_eq!(stats.total(), 2);
/// assert_eq!(stats.short_fraction(), 0.5);
/// assert_eq!(stats.lossless_fraction(), 0.5);
/// assert_eq!(stats.avg_bits(), 6.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodeStats {
    short: u64,
    long: u64,
    lossless: u64,
    abs_error_sum: u64,
    max_error: u8,
}

impl CodeStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one encoded value.
    pub fn record(&mut self, original: u8, code: SparkCode) {
        match code {
            SparkCode::Short(_) => self.short += 1,
            SparkCode::Long { .. } => self.long += 1,
        }
        let err = (i16::from(code.decode()) - i16::from(original)).unsigned_abs() as u8;
        if err == 0 {
            self.lossless += 1;
        }
        self.abs_error_sum += u64::from(err);
        self.max_error = self.max_error.max(err);
    }

    /// Total values recorded.
    pub fn total(&self) -> u64 {
        self.short + self.long
    }

    /// Count of 4-bit short codes.
    pub fn short_count(&self) -> u64 {
        self.short
    }

    /// Count of 8-bit long codes.
    pub fn long_count(&self) -> u64 {
        self.long
    }

    /// Fraction of values taking the short code (0 when empty).
    pub fn short_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.short as f64 / self.total() as f64
    }

    /// Fraction of values reconstructed exactly (0 when empty).
    pub fn lossless_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.lossless as f64 / self.total() as f64
    }

    /// Average code length in bits (`4·p_short + 8·p_long`; 8 when empty so
    /// an empty tensor reports no compression).
    pub fn avg_bits(&self) -> f64 {
        if self.total() == 0 {
            return 8.0;
        }
        (4 * self.short + 8 * self.long) as f64 / self.total() as f64
    }

    /// Mean absolute reconstruction error in code-word units.
    pub fn mean_abs_error(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.abs_error_sum as f64 / self.total() as f64
    }

    /// Largest single-value error observed.
    pub fn max_error(&self) -> u8 {
        self.max_error
    }

    /// Exact packed-stream length in nibbles (`1·short + 2·long`), letting
    /// an encoder pre-size its output from a statistics pre-pass.
    pub fn nibble_count(&self) -> u64 {
        self.short + 2 * self.long
    }

    /// Reassembles statistics from raw counters — the batch encoder
    /// accumulates these from a per-byte lookup table instead of calling
    /// [`CodeStats::record`] per value.
    pub(crate) fn from_counts(
        short: u64,
        long: u64,
        lossless: u64,
        abs_error_sum: u64,
        max_error: u8,
    ) -> Self {
        Self { short, long, lossless, abs_error_sum, max_error }
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &CodeStats) {
        self.short += other.short;
        self.long += other.long;
        self.lossless += other.lossless;
        self.abs_error_sum += other.abs_error_sum;
        self.max_error = self.max_error.max(other.max_error);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode_value;

    fn stats_for(values: impl IntoIterator<Item = u8>) -> CodeStats {
        let mut s = CodeStats::new();
        for v in values {
            s.record(v, encode_value(v));
        }
        s
    }

    #[test]
    fn empty_stats_are_neutral() {
        let s = CodeStats::new();
        assert_eq!(s.total(), 0);
        assert_eq!(s.short_fraction(), 0.0);
        assert_eq!(s.lossless_fraction(), 0.0);
        assert_eq!(s.avg_bits(), 8.0);
        assert_eq!(s.mean_abs_error(), 0.0);
    }

    #[test]
    fn exhaustive_byte_stats_match_table_ii() {
        let s = stats_for(0u8..=255);
        assert_eq!(s.total(), 256);
        // 8 short codes (0..=7)
        assert_eq!(s.short_count(), 8);
        assert_eq!(s.long_count(), 248);
        // Lossless: v<8 (8) + v>=8 with b0==b3. Count them directly.
        let lossless = (0u16..=255)
            .filter(|&v| {
                let v = v as u8;
                v < 8 || ((v >> 7) & 1) == ((v >> 4) & 1)
            })
            .count() as u64;
        assert_eq!(
            (s.lossless_fraction() * 256.0).round() as u64,
            lossless
        );
        assert_eq!(s.max_error(), 16);
    }

    #[test]
    fn avg_bits_interpolates() {
        let s = stats_for([1u8, 2, 100, 200]); // 2 short + 2 long
        assert_eq!(s.avg_bits(), 6.0);
        assert_eq!(s.nibble_count(), 2 + 2 * 2);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = stats_for([1u8, 18]);
        let b = stats_for([200u8]);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.short_count(), 1);
        assert_eq!(a.long_count(), 2);
    }

    #[test]
    fn gaussian_like_data_mostly_short() {
        // A concentration near zero (as the paper observes for quantized
        // DNN tensors) yields a high short fraction.
        let values: Vec<u8> = (0..1000).map(|i| (i % 10) as u8).collect();
        let s = stats_for(values);
        assert!(s.short_fraction() >= 0.8);
        assert!(s.avg_bits() < 5.0);
    }
}
