//! Per-value SPARK encoding and decoding (Fig 3, Table II).
//!
//! Bit convention: following the paper, `b0` is the *most* significant bit of
//! the original 8-bit value and `b7` the least. Code bits `c0…c7` follow the
//! same convention; for short codes only `c4…c7` exist.

use std::fmt;

/// Largest possible absolute error the SPARK code introduces for any byte
/// (the paper: "no more than error of 16").
pub const MAX_ENCODING_ERROR: u8 = 16;

/// Whether a value takes a short (4-bit) or long (8-bit) SPARK code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeKind {
    /// 4-bit code: original value in `[0, 7]`.
    Short,
    /// 8-bit code: original value in `[8, 255]`.
    Long,
}

impl CodeKind {
    /// The code kind a raw value maps to.
    pub fn of(value: u8) -> Self {
        if value < 8 {
            CodeKind::Short
        } else {
            CodeKind::Long
        }
    }

    /// Code length in bits (4 or 8).
    pub fn bits(self) -> u8 {
        match self {
            CodeKind::Short => 4,
            CodeKind::Long => 8,
        }
    }

    /// Code length in nibbles (1 or 2) — the unit the hardware streams.
    pub fn nibbles(self) -> u8 {
        match self {
            CodeKind::Short => 1,
            CodeKind::Long => 2,
        }
    }
}

impl fmt::Display for CodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeKind::Short => write!(f, "short(4b)"),
            CodeKind::Long => write!(f, "long(8b)"),
        }
    }
}

/// A single SPARK code word.
///
/// ```
/// use spark_codec::SparkCode;
/// // Paper example: 18 (00010010) rounds to 15, code 1000 1111.
/// let code = SparkCode::encode(18);
/// assert_eq!(code, SparkCode::Long { prev: 0b1000, post: 0b1111 });
/// assert_eq!(code.decode(), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SparkCode {
    /// 4-bit code `0 b5 b6 b7`; the stored nibble (identifier bit is its MSB
    /// and always 0, so the nibble is in `0..=7`).
    Short(u8),
    /// 8-bit code split in two nibbles: `prev = 1 b1 b2 b0`, `post` per the
    /// check-bit rule (Eq 5).
    Long {
        /// First nibble, MSB (the identifier) always set.
        prev: u8,
        /// Second nibble.
        post: u8,
    },
}

impl SparkCode {
    /// Encodes a raw byte with the accuracy compensation mechanism
    /// (check-bit rounding), exactly as Fig 10 / Eqs 4–5.
    pub fn encode(value: u8) -> Self {
        encode_value(value)
    }

    /// Decodes the code word back to its (possibly rounded) byte value.
    pub fn decode(self) -> u8 {
        match self {
            SparkCode::Short(nibble) => nibble & 0x07,
            SparkCode::Long { prev, post } => decode_long(prev, post),
        }
    }

    /// Short or long.
    pub fn kind(self) -> CodeKind {
        match self {
            SparkCode::Short(_) => CodeKind::Short,
            SparkCode::Long { .. } => CodeKind::Long,
        }
    }

    /// Code length in bits.
    pub fn bits(self) -> u8 {
        self.kind().bits()
    }

    /// The nibbles this code occupies in a stream, prev first.
    pub fn nibbles(self) -> impl Iterator<Item = u8> {
        let (a, b) = match self {
            SparkCode::Short(nibble) => (nibble & 0x0F, None),
            SparkCode::Long { prev, post } => (prev & 0x0F, Some(post & 0x0F)),
        };
        std::iter::once(a).chain(b)
    }

    /// True when decoding returns exactly the value this code was built from.
    pub fn is_lossless_for(self, original: u8) -> bool {
        self.decode() == original
    }
}

impl fmt::Display for SparkCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparkCode::Short(n) => write!(f, "{:04b}", n & 0x0F),
            SparkCode::Long { prev, post } => {
                write!(f, "{:04b} {:04b}", prev & 0x0F, post & 0x0F)
            }
        }
    }
}

/// Extracts bit `i` (0 = MSB) of a byte, paper convention.
#[inline]
pub(crate) fn bit(value: u8, i: u8) -> u8 {
    (value >> (7 - i)) & 1
}

/// Encodes one byte into its SPARK code (compensated rounding, Eqs 4–5).
///
/// ```
/// use spark_codec::{encode_value, SparkCode};
/// assert_eq!(encode_value(5), SparkCode::Short(0b0101));
/// assert_eq!(encode_value(170), SparkCode::Long { prev: 0b1011, post: 0b0000 });
/// ```
pub fn encode_value(value: u8) -> SparkCode {
    if value < 8 {
        // LZD(b0..b4) == 0: first five bits all zero -> low-precision code.
        return SparkCode::Short(value & 0x0F);
    }
    let b0 = bit(value, 0);
    let b1 = bit(value, 1);
    let b2 = bit(value, 2);
    let b3 = bit(value, 3);
    // Eq 4: prev = 1 b1 b2 b0.
    let prev = 0b1000 | (b1 << 2) | (b2 << 1) | b0;
    // Eq 5: check-bit rounding.
    let post = if b0 ^ b3 == 0 {
        value & 0x0F
    } else if b3 == 1 {
        0b1111
    } else {
        0b0000
    };
    SparkCode::Long { prev, post }
}

/// Decodes a long code's two nibbles (Eq 3 semantics).
fn decode_long(prev: u8, post: u8) -> u8 {
    let c1 = (prev >> 2) & 1; // b1
    let c2 = (prev >> 1) & 1; // b2
    let c3 = prev & 1; // b0 of the original value
    let high = (c1 << 6) | (c2 << 5);
    if c3 == 0 {
        // value < 128: identifier is not a numeric bit; 7-bit value
        // c1 c2 c3 c4..c7 with c3 = 0.
        high | (post & 0x0F)
    } else {
        // value >= 128: identifier joins the numeric bits; 8-bit value
        // 1 b1 b2 1 post.
        0x80 | high | 0x10 | (post & 0x0F)
    }
}

/// Round-trips one byte through the SPARK code, returning the reconstructed
/// value. Equivalent to `SparkCode::encode(v).decode()`.
pub fn decode_value(value: u8) -> u8 {
    encode_value(value).decode()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_codes_cover_0_to_7_losslessly() {
        for v in 0u8..=7 {
            let c = encode_value(v);
            assert_eq!(c.kind(), CodeKind::Short);
            assert_eq!(c.decode(), v);
            assert_eq!(c.bits(), 4);
        }
    }

    #[test]
    fn values_8_to_255_are_long() {
        for v in 8u8..=255 {
            assert_eq!(encode_value(v).kind(), CodeKind::Long);
            if v == 255 {
                break;
            }
        }
    }

    #[test]
    fn paper_example_18_rounds_to_15() {
        // 18 = 00010010; b0=0, b3=1 -> round down, SPARK code 1000 1111.
        let c = encode_value(18);
        assert_eq!(c, SparkCode::Long { prev: 0b1000, post: 0b1111 });
        assert_eq!(c.decode(), 15);
    }

    #[test]
    fn paper_example_170_rounds_to_176() {
        // 170 = 10101010; b0=1, b3=0 -> round up, code 1011 0000 -> 176.
        let c = encode_value(170);
        assert_eq!(c, SparkCode::Long { prev: 0b1011, post: 0b0000 });
        assert_eq!(c.decode(), 176);
    }

    #[test]
    fn paper_example_code_11010010_is_210() {
        let c = SparkCode::Long { prev: 0b1101, post: 0b0010 };
        assert_eq!(c.decode(), 210);
        // and 210 encodes losslessly back to the same code
        assert_eq!(encode_value(210), c);
    }

    #[test]
    fn paper_example_code_0101_is_5() {
        // Table II narrative: 0101 short code decodes to 5.
        assert_eq!(SparkCode::Short(0b0101).decode(), 5);
    }

    #[test]
    fn paper_example_code_10110001_is_177() {
        // Section III-B: encoded 10110001 has decimal value 177.
        let c = SparkCode::Long { prev: 0b1011, post: 0b0001 };
        assert_eq!(c.decode(), 177);
    }

    #[test]
    fn exhaustive_error_bound() {
        for v in 0u16..=255 {
            let v = v as u8;
            let d = decode_value(v);
            let err = (v as i16 - d as i16).abs();
            assert!(
                err <= MAX_ENCODING_ERROR as i16,
                "value {v} decoded to {d}, error {err} > 16"
            );
        }
    }

    #[test]
    fn lossless_exactly_when_check_bits_agree() {
        for v in 0u16..=255 {
            let v = v as u8;
            let lossless = decode_value(v) == v;
            let expected = v < 8 || bit(v, 0) == bit(v, 3);
            assert_eq!(lossless, expected, "value {v}");
        }
    }

    #[test]
    fn rounding_direction_matches_table_ii() {
        for v in 0u16..=255 {
            let v = v as u8;
            let d = decode_value(v);
            if v < 128 {
                // mid-range values round down (or are exact)
                assert!(d <= v, "value {v} rounded up to {d}");
            } else {
                // high values round up (or are exact)
                assert!(d >= v, "value {v} rounded down to {d}");
            }
        }
    }

    #[test]
    fn table_ii_row_lossy_mid_values() {
        // 0xx1xxxx -> 15, 47, 79, 111
        for (block, target) in [(16u8, 15u8), (48, 47), (80, 79), (112, 111)] {
            for v in block..block + 16 {
                assert_eq!(decode_value(v), target, "value {v}");
            }
        }
    }

    #[test]
    fn table_ii_row_lossy_high_values() {
        // 1xx0xxxx -> 144, 176, 208, 240
        for (block, target) in [(128u8, 144u8), (160, 176), (192, 208), (224, 240)] {
            for v in block..block + 16 {
                assert_eq!(decode_value(v), target, "value {v}");
            }
        }
    }

    #[test]
    fn table_ii_row_lossless_mid_ranges() {
        for range in [8..=15u8, 32..=47, 64..=79, 96..=111] {
            for v in range {
                assert_eq!(decode_value(v), v);
            }
        }
    }

    #[test]
    fn table_ii_row_lossless_high_ranges() {
        for range in [144..=159u8, 176..=191, 208..=223, 240..=255] {
            for v in range {
                assert_eq!(decode_value(v), v);
            }
        }
    }

    #[test]
    fn nibbles_iterator_lengths() {
        assert_eq!(encode_value(3).nibbles().count(), 1);
        assert_eq!(encode_value(100).nibbles().count(), 2);
    }

    #[test]
    fn long_prev_identifier_always_set() {
        for v in 8u16..=255 {
            match encode_value(v as u8) {
                SparkCode::Long { prev, .. } => assert_eq!(prev & 0b1000, 0b1000),
                SparkCode::Short(_) => panic!("{v} should be long"),
            }
        }
    }

    #[test]
    fn display_renders_binary() {
        assert_eq!(encode_value(5).to_string(), "0101");
        assert_eq!(encode_value(18).to_string(), "1000 1111");
    }

    #[test]
    fn kind_display_and_bits() {
        assert_eq!(CodeKind::Short.to_string(), "short(4b)");
        assert_eq!(CodeKind::Long.to_string(), "long(8b)");
        assert_eq!(CodeKind::Short.nibbles(), 1);
        assert_eq!(CodeKind::Long.nibbles(), 2);
    }

    #[test]
    fn idempotent_reencoding() {
        // Decoded values are representable, so re-encoding them is lossless.
        for v in 0u16..=255 {
            let d = decode_value(v as u8);
            assert_eq!(decode_value(d), d, "decoded value {d} not a fixed point");
        }
    }
}
