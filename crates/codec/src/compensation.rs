//! The accuracy compensation mechanism (CM) and tensor-level bias
//! correction.
//!
//! The paper's Section III-B introduces CM as the check-bit rounding rule
//! that steers every lossy value to the *nearest* representable boundary
//! instead of simply dropping bits. Fig 13 ablates it; [`EncodeMode`] makes
//! both variants available. On top of the per-value rule, [`bias_correction`]
//! recentres the dequantization so the mean encoding error does not shift a
//! layer's output distribution — the "hardware-friendly accuracy recovery
//! without finetuning" the paper claims.


use crate::code::{bit, encode_value, SparkCode};

/// How a raw byte is turned into a SPARK code word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EncodeMode {
    /// The paper's encoding: check-bit (`b0 XOR b3`) rounding to the nearest
    /// representable boundary. Expected absolute error ≈ half the truncation
    /// error; maximum 16.
    #[default]
    Compensated,
    /// Naive variable-length encoding without the compensation mechanism:
    /// the low nibble is stored verbatim and the `b3` information is simply
    /// lost. Every lossy value errs by exactly 16. Used as the "w/o CM" arm
    /// of the Fig 13 ablation.
    Truncated,
}

impl EncodeMode {
    /// Encodes one byte under this mode.
    pub fn encode(self, value: u8) -> SparkCode {
        match self {
            EncodeMode::Compensated => encode_value(value),
            EncodeMode::Truncated => encode_truncated(value),
        }
    }

    /// Round-trips one byte (encode then decode).
    pub fn reconstruct(self, value: u8) -> u8 {
        self.encode(value).decode()
    }
}

/// Encoding without CM: prev nibble as in Eq 4, post nibble always the raw
/// low nibble. The decoder is unchanged, so for every value whose check bits
/// disagree the reconstructed value is off by exactly 16 (the weight of the
/// dropped/ghosted `b3` bit).
fn encode_truncated(value: u8) -> SparkCode {
    if value < 8 {
        return SparkCode::Short(value & 0x0F);
    }
    let b0 = bit(value, 0);
    let b1 = bit(value, 1);
    let b2 = bit(value, 2);
    let prev = 0b1000 | (b1 << 2) | (b2 << 1) | b0;
    SparkCode::Long {
        prev,
        post: value & 0x0F,
    }
}

/// Computes the mean signed reconstruction error of a tensor under `mode`,
/// in code-word units.
///
/// A dequantizer subtracts `scale * bias` from its zero-point (or
/// equivalently shifts the layer bias) to cancel the distribution shift the
/// encoding introduces. Returns 0 for empty input.
///
/// ```
/// use spark_codec::{bias_correction, EncodeMode};
/// // Values in [16, 31] all round down to 15 under SPARK:
/// let values: Vec<u8> = (16..=31).collect();
/// let bias = bias_correction(&values, EncodeMode::Compensated);
/// assert!(bias < 0.0); // reconstruction is below the original on average
/// ```
pub fn bias_correction(values: &[u8], mode: EncodeMode) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: i64 = values
        .iter()
        .map(|&v| i64::from(mode.reconstruct(v)) - i64::from(v))
        .sum();
    sum as f64 / values.len() as f64
}

/// Mean absolute reconstruction error of a tensor under `mode`, in code-word
/// units. Returns 0 for empty input.
pub fn mean_abs_error(values: &[u8], mode: EncodeMode) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: i64 = values
        .iter()
        .map(|&v| (i64::from(mode.reconstruct(v)) - i64::from(v)).abs())
        .sum();
    sum as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_error_is_exactly_16_when_lossy() {
        for v in 0u16..=255 {
            let v = v as u8;
            let r = EncodeMode::Truncated.reconstruct(v);
            let err = (i16::from(r) - i16::from(v)).abs();
            let check_disagrees = v >= 8 && bit(v, 0) != bit(v, 3);
            if check_disagrees {
                assert_eq!(err, 16, "value {v} reconstructed to {r}");
            } else {
                assert_eq!(err, 0, "value {v} reconstructed to {r}");
            }
        }
    }

    #[test]
    fn compensated_never_worse_than_truncated() {
        for v in 0u16..=255 {
            let v = v as u8;
            let ec = (i16::from(EncodeMode::Compensated.reconstruct(v)) - i16::from(v)).abs();
            let et = (i16::from(EncodeMode::Truncated.reconstruct(v)) - i16::from(v)).abs();
            assert!(ec <= et, "value {v}: CM error {ec} > truncated {et}");
        }
    }

    #[test]
    fn compensated_mean_abs_error_strictly_lower_overall() {
        let all: Vec<u8> = (0u16..=255).map(|v| v as u8).collect();
        let cm = mean_abs_error(&all, EncodeMode::Compensated);
        let tr = mean_abs_error(&all, EncodeMode::Truncated);
        assert!(cm < tr, "CM {cm} should beat truncation {tr}");
    }

    #[test]
    fn bias_correction_of_lossless_data_is_zero() {
        let values: Vec<u8> = (0..8).collect();
        assert_eq!(bias_correction(&values, EncodeMode::Compensated), 0.0);
    }

    #[test]
    fn bias_correction_sign_matches_rounding_direction() {
        // Mid-range lossy values round down -> negative bias.
        let mid: Vec<u8> = (16..=31).collect();
        assert!(bias_correction(&mid, EncodeMode::Compensated) < 0.0);
        // High lossy values round up -> positive bias.
        let high: Vec<u8> = (128..=143).collect();
        assert!(bias_correction(&high, EncodeMode::Compensated) > 0.0);
    }

    #[test]
    fn empty_inputs_yield_zero() {
        assert_eq!(bias_correction(&[], EncodeMode::Compensated), 0.0);
        assert_eq!(mean_abs_error(&[], EncodeMode::Truncated), 0.0);
    }

    #[test]
    fn default_mode_is_compensated() {
        assert_eq!(EncodeMode::default(), EncodeMode::Compensated);
    }

    #[test]
    fn truncated_short_codes_unchanged() {
        for v in 0u8..8 {
            assert_eq!(EncodeMode::Truncated.reconstruct(v), v);
        }
    }
}
