//! Information-theoretic analysis of the SPARK code.
//!
//! How close does SPARK's fixed 4/8-bit split come to the optimum? The
//! Shannon entropy of the (rounded) value distribution lower-bounds any
//! prefix-free code's average length; [`CodeAnalysis`] computes it next to
//! SPARK's achieved average bits, plus the per-value error distribution
//! (mean, RMS, histogram of magnitudes) that drives the accuracy results.
//!
//! Two caveats keep the comparison honest:
//!
//! 1. SPARK is *not* trying to hit the entropy bound — a Huffman code gets
//!    closer but destroys memory alignment, which is the whole point
//!    (Table I's "Memory Aligned" column). The gap quantifies what
//!    alignment costs.
//! 2. SPARK is lossy on ~5 % of values, so its effective rate should be
//!    compared against the entropy of the *reconstructed* distribution,
//!    which the analysis also reports.


use crate::code::{decode_value, encode_value, CodeKind};

/// Full analysis of a code-word stream.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeAnalysis {
    /// Number of values analysed.
    pub count: usize,
    /// SPARK's achieved average bits per value.
    pub spark_bits: f64,
    /// Shannon entropy (bits/value) of the original byte distribution.
    pub source_entropy: f64,
    /// Shannon entropy (bits/value) of the reconstructed distribution
    /// (what a lossless code would need after SPARK's rounding).
    pub reconstructed_entropy: f64,
    /// Mean signed reconstruction error (code units).
    pub mean_error: f64,
    /// Root-mean-square reconstruction error (code units).
    pub rms_error: f64,
    /// Histogram of absolute errors 0..=16.
    pub error_histogram: Vec<u64>,
}

spark_util::to_json_struct!(CodeAnalysis {
    count,
    spark_bits,
    source_entropy,
    reconstructed_entropy,
    mean_error,
    rms_error,
    error_histogram,
});

impl CodeAnalysis {
    /// Gap between SPARK's rate and the reconstructed-distribution entropy
    /// (bits/value); what memory alignment costs versus an ideal
    /// entropy coder.
    pub fn alignment_overhead_bits(&self) -> f64 {
        self.spark_bits - self.reconstructed_entropy
    }
}

fn entropy(counts: &[u64], total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

/// Analyses a stream of INT8 code words under the paper's 8/4 format.
pub fn analyze(values: &[u8]) -> CodeAnalysis {
    let mut source_hist = [0u64; 256];
    let mut recon_hist = [0u64; 256];
    let mut error_histogram = vec![0u64; 17];
    let mut bits = 0u64;
    let mut err_sum = 0i64;
    let mut err_sq = 0f64;
    for &v in values {
        source_hist[v as usize] += 1;
        let code = encode_value(v);
        bits += match code.kind() {
            CodeKind::Short => 4,
            CodeKind::Long => 8,
        };
        let r = decode_value(v);
        recon_hist[r as usize] += 1;
        let e = i64::from(r) - i64::from(v);
        err_sum += e;
        err_sq += (e * e) as f64;
        error_histogram[e.unsigned_abs() as usize] += 1;
    }
    let n = values.len();
    let total = n as u64;
    CodeAnalysis {
        count: n,
        spark_bits: if n == 0 { 8.0 } else { bits as f64 / n as f64 },
        source_entropy: entropy(&source_hist, total),
        reconstructed_entropy: entropy(&recon_hist, total),
        mean_error: if n == 0 { 0.0 } else { err_sum as f64 / n as f64 },
        rms_error: if n == 0 {
            0.0
        } else {
            (err_sq / n as f64).sqrt()
        },
        error_histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A geometric-ish code distribution: heavy mass on small values.
    fn peaked_codes(n: usize) -> Vec<u8> {
        (0..n)
            .map(|i| {
                let u = (i * 2654435761) % 100;
                match u {
                    0..=64 => (u % 8) as u8,
                    65..=89 => (8 + u % 24) as u8,
                    _ => (32 + (u * 7) % 224) as u8,
                }
            })
            .collect()
    }

    #[test]
    fn spark_bits_above_entropy_bound() {
        // No code can beat the entropy of what it (losslessly) represents.
        let values = peaked_codes(20_000);
        let a = analyze(&values);
        assert!(
            a.spark_bits >= a.reconstructed_entropy,
            "SPARK {} below entropy {}",
            a.spark_bits,
            a.reconstructed_entropy
        );
        assert!(a.alignment_overhead_bits() >= 0.0);
    }

    #[test]
    fn spark_beats_fixed_8_bits_on_peaked_data() {
        let values = peaked_codes(20_000);
        let a = analyze(&values);
        assert!(a.spark_bits < 7.0, "{}", a.spark_bits);
    }

    #[test]
    fn uniform_bytes_entropy_is_8_bits() {
        let values: Vec<u8> = (0u16..=255).flat_map(|v| [v as u8; 4]).collect();
        let a = analyze(&values);
        assert!((a.source_entropy - 8.0).abs() < 1e-9);
        // Rounding merges values, so the reconstructed entropy is lower.
        assert!(a.reconstructed_entropy < a.source_entropy);
    }

    #[test]
    fn error_statistics_consistent_with_bound() {
        let values: Vec<u8> = (0u16..=255).map(|v| v as u8).collect();
        let a = analyze(&values);
        assert!(a.rms_error <= 16.0);
        assert_eq!(a.error_histogram.iter().sum::<u64>(), 256);
        // Exhaustive bytes: errors up to 16 occur.
        assert!(a.error_histogram[16] > 0);
        // Lossless values (error 0) dominate the exhaustive sweep.
        assert!(a.error_histogram[0] >= 128);
    }

    #[test]
    fn constant_stream_degenerate() {
        let values = vec![5u8; 100];
        let a = analyze(&values);
        assert_eq!(a.source_entropy, 0.0);
        assert_eq!(a.spark_bits, 4.0);
        assert_eq!(a.mean_error, 0.0);
    }

    #[test]
    fn empty_stream_neutral() {
        let a = analyze(&[]);
        assert_eq!(a.count, 0);
        assert_eq!(a.spark_bits, 8.0);
        assert_eq!(a.rms_error, 0.0);
    }
}
