//! Generalized SPARK: the encoding family for arbitrary base widths.
//!
//! The paper presents SPARK for INT8 with 4-bit short codes, and stresses
//! scalability ("for a model quantized to 8-bit, the basic bit length
//! remains constant at 4"). The same construction works for any
//! `(base_bits, short_bits)` pair: a value whose top `base - short + 1`
//! bits are zero takes the short code; everything else takes a full-width
//! code whose last prev-bit carries `b0`, with the check-bit rounding rule
//! generalized verbatim. The specialized 8/4 codec in [`crate::code`] is
//! the `SparkFormat::paper()` instance of this family — a unit test pins
//! them to each other bit for bit.
//!
//! Useful instances:
//!
//! - `SparkFormat::new(8, 4)` — the paper (error ≤ 16 of 255);
//! - `SparkFormat::new(16, 8)` — INT16 models (error ≤ 256 of 65535);
//! - `SparkFormat::new(6, 3)` — aggressive 6-bit quantization.

use std::fmt;

use crate::code::SparkCode;
use crate::codecheck::FormatError;

/// A generalized SPARK code word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GeneralCode {
    /// Short code: `short_bits` wide, identifier 0.
    Short(u16),
    /// Long code: `base_bits` wide, split into the identifier-led prev part
    /// and the post part.
    Long {
        /// First `short_bits` of the code (identifier set).
        prev: u16,
        /// Remaining `base_bits - short_bits` bits.
        post: u16,
    },
}

impl GeneralCode {
    /// Code length in bits under the given format.
    pub fn bits(&self, format: &SparkFormat) -> u8 {
        match self {
            GeneralCode::Short(_) => format.short_bits(),
            GeneralCode::Long { .. } => format.base_bits(),
        }
    }
}

/// A `(base_bits, short_bits)` SPARK format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SparkFormat {
    base_bits: u8,
    short_bits: u8,
}

impl SparkFormat {
    /// Creates a format.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] unless `3 <= short_bits < base_bits <= 16`.
    pub fn new(base_bits: u8, short_bits: u8) -> Result<Self, FormatError> {
        if !(3..=15).contains(&short_bits) || short_bits >= base_bits || base_bits > 16 {
            return Err(FormatError::new(base_bits, short_bits));
        }
        Ok(Self {
            base_bits,
            short_bits,
        })
    }

    /// The paper's 8/4 format.
    pub fn paper() -> Self {
        Self {
            base_bits: 8,
            short_bits: 4,
        }
    }

    /// Total width of a long code (= the quantization width).
    pub fn base_bits(&self) -> u8 {
        self.base_bits
    }

    /// Width of a short code.
    pub fn short_bits(&self) -> u8 {
        self.short_bits
    }

    /// Largest representable value (`2^base - 1`).
    pub fn max_value(&self) -> u16 {
        if self.base_bits == 16 {
            u16::MAX
        } else {
            (1u16 << self.base_bits) - 1
        }
    }

    /// Exclusive upper bound of the short-code range (`2^(short-1)`).
    pub fn short_range(&self) -> u16 {
        1u16 << (self.short_bits - 1)
    }

    /// Worst-case encoding error (`2^(base - short)`).
    pub fn max_error(&self) -> u16 {
        1u16 << (self.base_bits - self.short_bits)
    }

    /// Bit `i` of `v` in the paper's MSB-first numbering.
    fn bit(&self, v: u16, i: u8) -> u16 {
        (v >> (self.base_bits - 1 - i)) & 1
    }

    /// Encodes one value.
    ///
    /// # Panics
    ///
    /// Panics when `value` exceeds [`SparkFormat::max_value`] (the
    /// quantizer guarantees the range; exceeding it is a caller bug).
    pub fn encode(&self, value: u16) -> GeneralCode {
        assert!(
            value <= self.max_value(),
            "value {value} exceeds {}-bit range",
            self.base_bits
        );
        if value < self.short_range() {
            return GeneralCode::Short(value);
        }
        let h = self.short_bits;
        let b0 = self.bit(value, 0);
        let check = self.bit(value, h - 1);
        // prev = 1, b1..b_{h-2}, b0
        let mut prev = 1u16 << (h - 1);
        for i in 1..=(h - 2) {
            prev |= self.bit(value, i) << (h - 1 - i);
        }
        prev |= b0;
        let post_bits = self.base_bits - h;
        let post_mask = (1u32 << post_bits) as u16 - 1;
        let post = if b0 == check {
            value & post_mask
        } else if check == 1 {
            post_mask
        } else {
            0
        };
        GeneralCode::Long { prev, post }
    }

    /// Decodes one code word.
    pub fn decode(&self, code: GeneralCode) -> u16 {
        match code {
            GeneralCode::Short(v) => v,
            GeneralCode::Long { prev, post } => {
                let h = self.short_bits;
                let post_bits = self.base_bits - h;
                let c_last = prev & 1; // carries b0
                let mid_bits = h - 2;
                let mid = (prev >> 1) & (((1u32 << mid_bits) as u16).wrapping_sub(1));
                let mut value = (mid as u32) << (post_bits + 1) | u32::from(post);
                if c_last == 1 {
                    value |= 1 << (self.base_bits - 1); // identifier as MSB
                    value |= 1 << post_bits; // the implied check bit
                }
                value as u16
            }
        }
    }

    /// Round trip: the reconstructed value.
    pub fn reconstruct(&self, value: u16) -> u16 {
        self.decode(self.encode(value))
    }

    /// Whether a value round-trips exactly.
    pub fn is_lossless(&self, value: u16) -> bool {
        self.reconstruct(value) == value
    }

    /// Average code bits for a slice of values.
    pub fn avg_bits(&self, values: &[u16]) -> f64 {
        if values.is_empty() {
            return f64::from(self.base_bits);
        }
        let total: u64 = values
            .iter()
            .map(|&v| u64::from(self.encode(v).bits(self)))
            .sum();
        total as f64 / values.len() as f64
    }

    /// Fraction of values taking the short code.
    pub fn short_fraction(&self, values: &[u16]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let short = values.iter().filter(|&&v| v < self.short_range()).count();
        short as f64 / values.len() as f64
    }
}

impl fmt::Display for SparkFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SPARK-{}/{}", self.base_bits, self.short_bits)
    }
}

/// Converts the specialized 8-bit code into the general representation
/// (for the cross-validation tests).
impl From<SparkCode> for GeneralCode {
    fn from(code: SparkCode) -> Self {
        match code {
            SparkCode::Short(n) => GeneralCode::Short(u16::from(n & 0x07)),
            SparkCode::Long { prev, post } => GeneralCode::Long {
                prev: u16::from(prev),
                post: u16::from(post),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::encode_value;

    #[test]
    fn format_validation() {
        assert!(SparkFormat::new(8, 4).is_ok());
        assert!(SparkFormat::new(16, 8).is_ok());
        assert!(SparkFormat::new(6, 3).is_ok());
        assert!(SparkFormat::new(4, 4).is_err()); // short == base
        assert!(SparkFormat::new(17, 8).is_err()); // too wide
        assert!(SparkFormat::new(8, 2).is_err()); // short too narrow
    }

    #[test]
    fn paper_instance_matches_specialized_codec_exactly() {
        let fmt = SparkFormat::paper();
        for v in 0u16..=255 {
            let general = fmt.encode(v);
            let specialized: GeneralCode = encode_value(v as u8).into();
            assert_eq!(general, specialized, "encode({v})");
            assert_eq!(
                fmt.decode(general),
                u16::from(crate::decode_value(v as u8)),
                "decode({v})"
            );
        }
    }

    #[test]
    fn error_bound_holds_for_every_format_and_value() {
        for (base, short) in [(6u8, 3u8), (8, 4), (8, 5), (10, 4), (12, 6), (16, 8)] {
            let fmt = SparkFormat::new(base, short).unwrap();
            let bound = i32::from(fmt.max_error());
            let step = (u32::from(fmt.max_value()) / 4096).max(1);
            let mut v = 0u32;
            while v <= u32::from(fmt.max_value()) {
                let r = fmt.reconstruct(v as u16);
                let err = (i32::from(r) - v as i32).abs();
                assert!(err <= bound, "{fmt}: {v} -> {r} (err {err} > {bound})");
                v += step;
            }
        }
    }

    #[test]
    fn short_codes_lossless_in_all_formats() {
        for (base, short) in [(6u8, 3u8), (8, 4), (12, 6), (16, 8)] {
            let fmt = SparkFormat::new(base, short).unwrap();
            for v in 0..fmt.short_range() {
                assert_eq!(fmt.reconstruct(v), v, "{fmt}: {v}");
                assert!(matches!(fmt.encode(v), GeneralCode::Short(_)));
            }
        }
    }

    #[test]
    fn check_bit_agreement_means_lossless() {
        for (base, short) in [(6u8, 3u8), (10, 5), (16, 8)] {
            let fmt = SparkFormat::new(base, short).unwrap();
            let step = (u32::from(fmt.max_value()) / 2048).max(1);
            let mut v = u32::from(fmt.short_range());
            while v <= u32::from(fmt.max_value()) {
                let vv = v as u16;
                let b0 = (vv >> (base - 1)) & 1;
                let chk = (vv >> (base - short)) & 1;
                if b0 == chk {
                    assert!(fmt.is_lossless(vv), "{fmt}: {vv}");
                }
                v += step;
            }
        }
    }

    #[test]
    fn decode_is_projection_in_all_formats() {
        for (base, short) in [(6u8, 3u8), (8, 4), (16, 8)] {
            let fmt = SparkFormat::new(base, short).unwrap();
            let step = (u32::from(fmt.max_value()) / 1024).max(1);
            let mut v = 0u32;
            while v <= u32::from(fmt.max_value()) {
                let r = fmt.reconstruct(v as u16);
                assert_eq!(fmt.reconstruct(r), r, "{fmt}: {v}");
                v += step;
            }
        }
    }

    #[test]
    fn spark16_exhaustive_error_bound() {
        // Full 16-bit sweep: 65k encodes is cheap and pins the widest
        // format completely.
        let fmt = SparkFormat::new(16, 8).unwrap();
        let mut max_err = 0i32;
        for v in 0..=u16::MAX {
            let r = fmt.reconstruct(v);
            max_err = max_err.max((i32::from(r) - i32::from(v)).abs());
        }
        assert_eq!(max_err, i32::from(fmt.max_error()));
    }

    #[test]
    fn avg_bits_and_short_fraction() {
        let fmt = SparkFormat::new(8, 4).unwrap();
        let values = vec![1u16, 2, 3, 200]; // 3 short + 1 long
        assert_eq!(fmt.short_fraction(&values), 0.75);
        assert_eq!(fmt.avg_bits(&values), 5.0);
        assert_eq!(fmt.avg_bits(&[]), 8.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(SparkFormat::paper().to_string(), "SPARK-8/4");
        assert_eq!(SparkFormat::new(16, 8).unwrap().to_string(), "SPARK-16/8");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn encode_rejects_out_of_range() {
        let fmt = SparkFormat::new(6, 3).unwrap();
        let _ = fmt.encode(64);
    }

    #[test]
    fn wider_short_codes_trade_error_for_bits() {
        // At the same base width, a wider short code covers more values
        // losslessly but saves fewer bits.
        let narrow = SparkFormat::new(8, 4).unwrap();
        let wide = SparkFormat::new(8, 5).unwrap();
        assert!(wide.short_range() > narrow.short_range());
        assert!(wide.max_error() < narrow.max_error());
    }
}
