//! Streaming model of the SPARK decoder (Fig 5, Fig 7, Eq 3).
//!
//! The hardware decoder reads one 4-bit beat per cycle plus an *enable*
//! signal that remembers whether the previous beat was the first half of a
//! long code. It is built from multiplexers, OR and NOT gates only; this
//! module reproduces that finite-state machine faithfully, including the
//! cycle accounting the simulator uses.

use std::error::Error;
use std::fmt;

/// Error returned when a nibble stream is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended while the decoder was waiting for the second nibble
    /// of a long code.
    TruncatedLongCode,
    /// A nibble outside `0..=15` was pushed (caller bug).
    InvalidNibble(u8),
    /// A beat wider than the format's beat width was pushed into a
    /// [`crate::GeneralDecoder`] (caller bug or corrupted unpacking).
    InvalidBeat {
        /// The offending beat value.
        beat: u16,
        /// The format's beat width in bits.
        width: u8,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TruncatedLongCode => {
                write!(f, "stream ended inside a long code (enable still set)")
            }
            DecodeError::InvalidNibble(n) => write!(f, "invalid nibble value {n}"),
            DecodeError::InvalidBeat { beat, width } => {
                write!(f, "beat value {beat} does not fit the {width}-bit beat width")
            }
        }
    }
}

impl Error for DecodeError {}

/// One decoded output beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    /// prev nibble of a long code, waiting for post.
    LongPrev(u8),
}

/// The streaming SPARK decoder of Fig 7.
///
/// Push nibbles with [`SparkDecoder::push_nibble`]; each push models one
/// decoder cycle. Completed values come back as `Some(value)`.
///
/// ```
/// use spark_codec::SparkDecoder;
/// let mut dec = SparkDecoder::new();
/// // Paper example: byte 0100 0011 carries two short values, 4 and 3.
/// assert_eq!(dec.push_nibble(0b0100)?, Some(4));
/// assert_eq!(dec.push_nibble(0b0011)?, Some(3));
/// // Paper example: 1101 0010 is the single long value 210.
/// assert_eq!(dec.push_nibble(0b1101)?, None);
/// assert_eq!(dec.push_nibble(0b0010)?, Some(210));
/// # Ok::<(), spark_codec::DecodeError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparkDecoder {
    pending: Option<Pending>,
    cycles: u64,
    values_out: u64,
}

impl SparkDecoder {
    /// Creates a decoder with the enable signal cleared.
    pub fn new() -> Self {
        Self::default()
    }

    /// The enable signal: set while the decoder waits for the post nibble of
    /// a long code.
    pub fn enable(&self) -> bool {
        self.pending.is_some()
    }

    /// Consumes one 4-bit beat; returns a completed value when one finishes
    /// this cycle.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidNibble`] if `nibble > 15`.
    pub fn push_nibble(&mut self, nibble: u8) -> Result<Option<u8>, DecodeError> {
        if nibble > 0x0F {
            return Err(DecodeError::InvalidNibble(nibble));
        }
        self.cycles += 1;
        match self.pending.take() {
            Some(Pending::LongPrev(prev)) => {
                // EN = 1: this beat is the post part of a high-precision value.
                let value = decode_pair(prev, nibble);
                self.values_out += 1;
                Ok(Some(value))
            }
            None => {
                let c0 = (nibble >> 3) & 1; // identifier bit of this beat
                if c0 == 0 {
                    // Low-precision value: output directly.
                    self.values_out += 1;
                    Ok(Some(nibble & 0x07))
                } else {
                    // High-precision: remember prev, set enable.
                    self.pending = Some(Pending::LongPrev(nibble));
                    Ok(None)
                }
            }
        }
    }

    /// Declares the stream finished.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::TruncatedLongCode`] when a long code was left
    /// half-read.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.enable() {
            Err(DecodeError::TruncatedLongCode)
        } else {
            Ok(())
        }
    }

    /// Cycles consumed so far (one per pushed nibble — the decoder reads one
    /// 4-bit beat per cycle).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Values emitted so far.
    pub fn values_decoded(&self) -> u64 {
        self.values_out
    }

    /// Clears all state and counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Combines a long code's two nibbles into the decoded byte (Eq 3).
///
/// `prev` is the identifier nibble `1 b1 b2 c3`; `c3` selects whether the
/// identifier participates in the value. `const` so the bulk decoder
/// ([`crate::bulk`]) can bake all 256 `(prev, post)` combinations into a
/// compile-time table that is bit-identical to this FSM by construction.
pub(crate) const fn decode_pair(prev: u8, post: u8) -> u8 {
    let c3 = prev & 1;
    let high = ((prev >> 2) & 1) << 6 | ((prev >> 1) & 1) << 5;
    if c3 == 0 {
        high | (post & 0x0F)
    } else {
        0x80 | high | 0x10 | (post & 0x0F)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode_value, SparkCode};

    #[test]
    fn decoder_round_trips_every_byte() {
        let mut dec = SparkDecoder::new();
        for v in 0u16..=255 {
            let v = v as u8;
            let code = encode_value(v);
            let mut out = None;
            for nib in code.nibbles() {
                out = dec.push_nibble(nib).unwrap();
            }
            assert_eq!(out, Some(code.decode()), "value {v}");
        }
        dec.finish().unwrap();
    }

    #[test]
    fn enable_signal_tracks_long_codes() {
        let mut dec = SparkDecoder::new();
        assert!(!dec.enable());
        dec.push_nibble(0b1010).unwrap(); // long prev
        assert!(dec.enable());
        dec.push_nibble(0b0000).unwrap(); // post
        assert!(!dec.enable());
    }

    #[test]
    fn truncated_stream_detected() {
        let mut dec = SparkDecoder::new();
        dec.push_nibble(0b1000).unwrap();
        assert_eq!(dec.finish(), Err(DecodeError::TruncatedLongCode));
    }

    #[test]
    fn invalid_nibble_rejected() {
        let mut dec = SparkDecoder::new();
        assert_eq!(dec.push_nibble(16), Err(DecodeError::InvalidNibble(16)));
    }

    #[test]
    fn cycle_accounting_one_per_nibble() {
        let mut dec = SparkDecoder::new();
        // one short (1 cycle) + one long (2 cycles)
        dec.push_nibble(0b0001).unwrap();
        for nib in SparkCode::encode(100).nibbles() {
            dec.push_nibble(nib).unwrap();
        }
        assert_eq!(dec.cycles(), 3);
        assert_eq!(dec.values_decoded(), 2);
    }

    #[test]
    fn mixed_stream_paper_order() {
        // Values interleave short and long codes without resynchronization.
        let values = [5u8, 210, 3, 15, 176];
        let mut nibbles = Vec::new();
        for &v in &values {
            nibbles.extend(encode_value(v).nibbles());
        }
        let mut dec = SparkDecoder::new();
        let mut out = Vec::new();
        for nib in nibbles {
            if let Some(v) = dec.push_nibble(nib).unwrap() {
                out.push(v);
            }
        }
        dec.finish().unwrap();
        assert_eq!(out, vec![5, 210, 3, 15, 176]);
    }

    #[test]
    fn reset_clears_state() {
        let mut dec = SparkDecoder::new();
        dec.push_nibble(0b1000).unwrap();
        dec.reset();
        assert!(!dec.enable());
        assert_eq!(dec.cycles(), 0);
        assert_eq!(dec.values_decoded(), 0);
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::TruncatedLongCode.to_string().contains("long code"));
        assert!(DecodeError::InvalidNibble(20).to_string().contains("20"));
    }
}
