//! # spark-codec — the SPARK variable-length encoding
//!
//! This crate implements the core contribution of *SPARK: Scalable and
//! Precision-Aware Acceleration of Neural Networks via Efficient Encoding*
//! (HPCA 2024): a bit-level variable-length code for INT8-quantized tensors.
//!
//! ## The format in one paragraph
//!
//! A per-layer scaled unsigned 8-bit value `v = b0 b1 … b7` (MSB first) is
//! encoded as either a 4-bit **short code** or an 8-bit **long code**:
//!
//! - `v ∈ [0, 7]` → short code `0 b5 b6 b7` (identifier bit 0, lossless);
//! - otherwise → long code, first nibble (*prev*) `1 b1 b2 b0` and second
//!   nibble (*post*) given by the check-bit rule: if `b0 XOR b3 == 0` the
//!   low nibble is stored verbatim (lossless), otherwise it rounds to `1111`
//!   (when `b3 = 1`) or `0000` (when `b3 = 0`), bounding the error at 16.
//!
//! The fourth code bit `c3 = b0` tells the decoder whether the identifier
//! participates in the numeric value (values ≥ 128) or not (values < 128).
//! This reproduces Table II, Fig 3, Fig 5, Fig 7, Fig 10 and Equations 3–5
//! of the paper bit-exactly; the unit tests check the paper's own worked
//! examples (18 → 15, 170 → 176, `11010010` → 210, `01000011` → 4 and 3).
//!
//! ## Modules
//!
//! - [`code`] — per-value encoding/decoding and the [`SparkCode`] type;
//! - [`encoder`] — the gate-level encoder of Fig 10 ([`SparkEncoder`]);
//! - [`decoder`] — the streaming enable-signal decoder of Fig 5/7
//!   ([`SparkDecoder`]);
//! - [`bulk`] — the bit-parallel block decoder (boundary-resolution
//!   prefix scan + table decode, runtime SIMD dispatch) that
//!   [`decode_stream`] runs on, with the FSM kept as reference;
//! - [`stream`] — nibble-aligned packing of whole tensors;
//! - [`compensation`] — the accuracy compensation mechanism toggle and
//!   tensor-level bias correction;
//! - [`stats`] — code statistics (short/lossless fractions, average
//!   bit-width) backing Fig 2 and Fig 4;
//! - [`table`] — the Table II value table as queryable data;
//! - [`general`] — the generalized `(base, short)` format family
//!   ([`SparkFormat`]), of which the paper's 8/4 scheme is one instance.
//!
//! ## Example
//!
//! ```
//! use spark_codec::{encode_tensor, decode_stream};
//!
//! let values = vec![5u8, 18, 170, 210, 3];
//! let enc = encode_tensor(&values);
//! let dec = decode_stream(&enc.stream)?;
//! assert_eq!(dec, vec![5, 15, 176, 210, 3]); // 18 and 170 round per Table II
//! assert!(enc.stats.avg_bits() < 8.0);
//! # Ok::<(), spark_codec::DecodeError>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod bulk;
pub mod code;
pub mod codecheck;
pub mod compensation;
pub mod container;
pub mod decoder;
pub mod encoder;
pub mod general;
pub mod general_stream;
pub mod stats;
pub mod stream;
pub mod table;

pub use analysis::{analyze, CodeAnalysis};
pub use bulk::{decode_bulk, decode_bulk_with, decode_payload, decode_payload_with, DecodeVariant};
pub use code::{decode_value, encode_value, CodeKind, SparkCode, MAX_ENCODING_ERROR};
pub use codecheck::FormatError;
pub use general::{GeneralCode, SparkFormat};
pub use general_stream::{decode_general, encode_general, BeatStream, GeneralDecoder};
pub use compensation::{bias_correction, EncodeMode};
pub use container::{read_container, stream_checksum, write_container, ContainerError, HEADER_LEN};
pub use decoder::{DecodeError, SparkDecoder};
pub use encoder::SparkEncoder;
pub use stats::CodeStats;
pub use stream::{
    decode_batch, decode_stream, decode_stream_reference, encode_batch, encode_batch_with,
    encode_tensor, encode_tensor_with, EncodePlan, EncodedTensor, NibbleStream,
};
