//! Beat-aligned streaming for the generalized SPARK family.
//!
//! The paper's memory-alignment property — every code is one or two
//! fixed-width beats — holds exactly for the formats with
//! `base_bits == 2 * short_bits` (8/4, 12/6, 16/8, 6/3). For those,
//! this module provides the packed [`BeatStream`] (the general analogue of
//! [`crate::NibbleStream`]) and the enable-signal [`GeneralDecoder`]
//! (the analogue of [`crate::SparkDecoder`]). A cross-check test pins the
//! 8/4 instance to the specialized nibble machinery bit for bit.


use crate::decoder::DecodeError;
use crate::general::{GeneralCode, SparkFormat};

/// Whether a format streams with two-beat alignment.
pub fn is_aligned(format: &SparkFormat) -> bool {
    format.base_bits() == 2 * format.short_bits()
}

/// A bit-packed stream of fixed-width beats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BeatStream {
    bits: Vec<u8>,
    beat_bits: u8,
    len: usize,
}

impl BeatStream {
    /// Creates an empty stream of `beat_bits`-wide beats (1..=16).
    ///
    /// # Panics
    ///
    /// Panics for beat widths outside `1..=16`.
    pub fn new(beat_bits: u8) -> Self {
        assert!((1..=16).contains(&beat_bits), "beat width out of range");
        Self {
            bits: Vec::new(),
            beat_bits,
            len: 0,
        }
    }

    /// Beat width in bits.
    pub fn beat_bits(&self) -> u8 {
        self.beat_bits
    }

    /// Number of beats stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the stream holds no beats.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Packed size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bits.len()
    }

    /// Appends one beat (low `beat_bits` of `beat`).
    pub fn push(&mut self, beat: u16) {
        let mask = if self.beat_bits == 16 {
            u16::MAX
        } else {
            (1u16 << self.beat_bits) - 1
        };
        let beat = beat & mask;
        let start = self.len * self.beat_bits as usize;
        let end = start + self.beat_bits as usize;
        if self.bits.len() * 8 < end {
            self.bits.resize(end.div_ceil(8), 0);
        }
        for i in 0..self.beat_bits as usize {
            // MSB-first within the beat, bits packed densely.
            let bit = (beat >> (self.beat_bits as usize - 1 - i)) & 1;
            if bit == 1 {
                let pos = start + i;
                self.bits[pos / 8] |= 1 << (7 - pos % 8);
            }
        }
        self.len += 1;
    }

    /// Beat at index `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<u16> {
        if i >= self.len {
            return None;
        }
        let start = i * self.beat_bits as usize;
        let mut out = 0u16;
        for k in 0..self.beat_bits as usize {
            let pos = start + k;
            let bit = (self.bits[pos / 8] >> (7 - pos % 8)) & 1;
            out = (out << 1) | u16::from(bit);
        }
        Some(out)
    }

    /// Iterates the beats in order.
    pub fn iter(&self) -> impl Iterator<Item = u16> + '_ {
        (0..self.len).map(move |i| self.get(i).expect("in range"))
    }
}

/// Streaming decoder for an aligned format: one beat per cycle plus the
/// enable signal, exactly the Fig 7 FSM at generalized width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneralDecoder {
    format: SparkFormat,
    pending: Option<u16>,
}

impl GeneralDecoder {
    /// Creates a decoder for an aligned format.
    ///
    /// # Panics
    ///
    /// Panics when the format is not two-beat aligned (use the value-level
    /// API for those).
    pub fn new(format: SparkFormat) -> Self {
        assert!(is_aligned(&format), "format {format} is not beat-aligned");
        Self {
            format,
            pending: None,
        }
    }

    /// The enable signal.
    pub fn enable(&self) -> bool {
        self.pending.is_some()
    }

    /// Consumes one beat; returns a completed value when one finishes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidBeat`] when `beat` does not fit the
    /// format's beat width — the beat-level analogue of
    /// [`DecodeError::InvalidNibble`], so corrupted unpacking surfaces as a
    /// typed error instead of silently aliasing a valid beat.
    pub fn push_beat(&mut self, beat: u16) -> Result<Option<u16>, DecodeError> {
        let h = self.format.short_bits();
        if h < 16 && beat >> h != 0 {
            return Err(DecodeError::InvalidBeat { beat, width: h });
        }
        Ok(match self.pending.take() {
            Some(prev) => Some(self.format.decode(GeneralCode::Long { prev, post: beat })),
            None => {
                let identifier = (beat >> (h - 1)) & 1;
                if identifier == 0 {
                    Some(self.format.decode(GeneralCode::Short(beat)))
                } else {
                    self.pending = Some(beat);
                    None
                }
            }
        })
    }

    /// Declares the stream finished.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::TruncatedLongCode`] when a long code is
    /// half-read.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.enable() {
            Err(DecodeError::TruncatedLongCode)
        } else {
            Ok(())
        }
    }
}

/// Encodes values into a packed beat stream under an aligned format.
///
/// # Panics
///
/// Panics when the format is unaligned or a value exceeds its range.
pub fn encode_general(format: &SparkFormat, values: &[u16]) -> BeatStream {
    assert!(is_aligned(format), "format {format} is not beat-aligned");
    let mut stream = BeatStream::new(format.short_bits());
    for &v in values {
        match format.encode(v) {
            GeneralCode::Short(s) => stream.push(s),
            GeneralCode::Long { prev, post } => {
                stream.push(prev);
                stream.push(post);
            }
        }
    }
    stream
}

/// Decodes a packed beat stream.
///
/// # Errors
///
/// Returns [`DecodeError::TruncatedLongCode`] for half-read long codes and
/// [`DecodeError::InvalidBeat`] for beats outside the format's width.
pub fn decode_general(format: &SparkFormat, stream: &BeatStream) -> Result<Vec<u16>, DecodeError> {
    let mut dec = GeneralDecoder::new(*format);
    let mut out = Vec::new();
    for beat in stream.iter() {
        if let Some(v) = dec.push_beat(beat)? {
            out.push(v);
        }
    }
    dec.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_stream, encode_tensor};

    #[test]
    fn beat_stream_packs_arbitrary_widths() {
        for width in [3u8, 4, 6, 8, 11, 16] {
            let mut s = BeatStream::new(width);
            let mask = if width == 16 { u16::MAX } else { (1 << width) - 1 };
            let beats: Vec<u16> = (0..50u16).map(|i| i.wrapping_mul(2654) & mask).collect();
            for &b in &beats {
                s.push(b);
            }
            assert_eq!(s.len(), 50);
            for (i, &b) in beats.iter().enumerate() {
                assert_eq!(s.get(i), Some(b), "width {width}, beat {i}");
            }
            assert_eq!(s.get(50), None);
            // Packed density: ceil(50 * width / 8) bytes.
            assert_eq!(s.byte_len(), (50 * width as usize).div_ceil(8));
        }
    }

    #[test]
    fn aligned_formats_identified() {
        assert!(is_aligned(&SparkFormat::new(8, 4).unwrap()));
        assert!(is_aligned(&SparkFormat::new(16, 8).unwrap()));
        assert!(is_aligned(&SparkFormat::new(6, 3).unwrap()));
        assert!(!is_aligned(&SparkFormat::new(10, 4).unwrap()));
    }

    #[test]
    fn round_trip_all_aligned_formats() {
        for (base, short) in [(6u8, 3u8), (8, 4), (12, 6), (16, 8)] {
            let fmt = SparkFormat::new(base, short).unwrap();
            let values: Vec<u16> = (0..500u32)
                .map(|i| (i.wrapping_mul(2654435761) % (u32::from(fmt.max_value()) + 1)) as u16)
                .collect();
            let stream = encode_general(&fmt, &values);
            let decoded = decode_general(&fmt, &stream).unwrap();
            assert_eq!(decoded.len(), values.len());
            for (&v, &d) in values.iter().zip(&decoded) {
                assert_eq!(d, fmt.reconstruct(v), "{fmt}: {v}");
            }
        }
    }

    #[test]
    fn general_8_4_matches_specialized_nibble_stream() {
        let fmt = SparkFormat::paper();
        let values: Vec<u8> = (0u16..=255).map(|v| v as u8).collect();
        let values16: Vec<u16> = values.iter().map(|&v| u16::from(v)).collect();
        let general = encode_general(&fmt, &values16);
        let specialized = encode_tensor(&values);
        // Same beat sequence...
        assert_eq!(general.len(), specialized.stream.len());
        for (a, b) in general.iter().zip(specialized.stream.iter()) {
            assert_eq!(a, u16::from(b));
        }
        // ...and same decoded values.
        let dg = decode_general(&fmt, &general).unwrap();
        let ds = decode_stream(&specialized.stream).unwrap();
        assert_eq!(dg.len(), ds.len());
        for (a, b) in dg.iter().zip(&ds) {
            assert_eq!(*a, u16::from(*b));
        }
    }

    #[test]
    fn truncated_general_stream_detected() {
        let fmt = SparkFormat::new(12, 6).unwrap();
        let mut s = BeatStream::new(6);
        s.push(0b100000); // long prev only
        assert!(decode_general(&fmt, &s).is_err());
    }

    #[test]
    #[should_panic(expected = "not beat-aligned")]
    fn unaligned_format_rejected() {
        let fmt = SparkFormat::new(10, 4).unwrap();
        let _ = encode_general(&fmt, &[1]);
    }

    #[test]
    fn compression_ratio_scales_with_format() {
        // Mostly-small values: the stream approaches half the base width.
        let fmt = SparkFormat::new(16, 8).unwrap();
        let values: Vec<u16> = (0..1000).map(|i| (i % 100) as u16).collect();
        let stream = encode_general(&fmt, &values);
        let bits = stream.byte_len() * 8;
        assert!(bits < values.len() * 10, "bits {bits}");
    }
}
