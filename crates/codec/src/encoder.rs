//! Gate-level model of the SPARK encoder (Fig 10, Eqs 4–5).
//!
//! The hardware encoder is built from a simplified 5-bit leading-zero
//! detector, multiplexers and an XOR gate. This module mirrors that structure
//! gate by gate so the unit tests can prove the datapath of Fig 10 computes
//! the same function as the specification-level [`crate::encode_value`].

use crate::code::{bit, SparkCode};

/// Simplified 5-bit leading-zero detector.
///
/// Returns `0` when all five inputs are zero (the whole high field is empty,
/// so a short code suffices) and `1` otherwise.
pub fn lzd5(b0: u8, b1: u8, b2: u8, b3: u8, b4: u8) -> u8 {
    // OR-tree: any set bit means the value needs the long code.
    (b0 | b1 | b2 | b3 | b4) & 1
}

/// The hardware SPARK encoder sitting on the accelerator's output path.
///
/// The encoder is stateless per element; the struct carries the running
/// cycle/throughput counters the simulator reads.
///
/// ```
/// use spark_codec::{SparkEncoder, SparkCode};
/// let mut enc = SparkEncoder::new();
/// assert_eq!(enc.encode(18), SparkCode::Long { prev: 0b1000, post: 0b1111 });
/// assert_eq!(enc.elements_encoded(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparkEncoder {
    elements: u64,
    nibbles_out: u64,
}

impl SparkEncoder {
    /// Creates an idle encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes one 8-bit value through the Fig 10 datapath.
    pub fn encode(&mut self, value: u8) -> SparkCode {
        let code = hw_encode(value);
        self.elements += 1;
        self.nibbles_out += u64::from(code.kind().nibbles());
        code
    }

    /// Number of elements pushed through the encoder.
    pub fn elements_encoded(&self) -> u64 {
        self.elements
    }

    /// Number of 4-bit output beats produced. One element costs one cycle;
    /// the output rate is `nibbles_emitted / elements_encoded` nibbles per
    /// element (between 1 and 2).
    pub fn nibbles_emitted(&self) -> u64 {
        self.nibbles_out
    }

    /// Resets the throughput counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// The combinational encoder datapath: LZD → prev mux, XOR check → post mux.
fn hw_encode(value: u8) -> SparkCode {
    let b0 = bit(value, 0);
    let b1 = bit(value, 1);
    let b2 = bit(value, 2);
    let b3 = bit(value, 3);
    let b4 = bit(value, 4);

    if lzd5(b0, b1, b2, b3, b4) == 0 {
        // Output the last four bits, discard the first four (Eq 4, top arm).
        return SparkCode::Short(value & 0x0F);
    }
    // Eq 4, bottom arm: prev = 1 b1 b2 b0.
    let prev = 0b1000 | (b1 << 2) | (b2 << 1) | b0;
    // Eq 5: XOR check decides whether the low nibble is kept or saturated.
    let check = b0 ^ b3;
    let post = if check == 0 {
        value & 0x0F
    } else if b3 == 1 {
        0b1111
    } else {
        0b0000
    };
    SparkCode::Long { prev, post }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode_value;

    #[test]
    fn lzd_detects_any_high_bit() {
        assert_eq!(lzd5(0, 0, 0, 0, 0), 0);
        assert_eq!(lzd5(1, 0, 0, 0, 0), 1);
        assert_eq!(lzd5(0, 0, 0, 0, 1), 1);
        assert_eq!(lzd5(1, 1, 1, 1, 1), 1);
    }

    #[test]
    fn hw_encoder_matches_spec_exhaustively() {
        // The gate-level datapath must compute exactly the specification
        // function for every input byte.
        let mut enc = SparkEncoder::new();
        for v in 0u16..=255 {
            assert_eq!(enc.encode(v as u8), encode_value(v as u8), "value {v}");
        }
    }

    #[test]
    fn throughput_counters() {
        let mut enc = SparkEncoder::new();
        enc.encode(3); // short: 1 nibble
        enc.encode(200); // long: 2 nibbles
        assert_eq!(enc.elements_encoded(), 2);
        assert_eq!(enc.nibbles_emitted(), 3);
        enc.reset();
        assert_eq!(enc.elements_encoded(), 0);
        assert_eq!(enc.nibbles_emitted(), 0);
    }

    #[test]
    fn boundary_values() {
        let mut enc = SparkEncoder::new();
        assert_eq!(enc.encode(7), SparkCode::Short(7));
        assert_eq!(enc.encode(8), SparkCode::Long { prev: 0b1000, post: 0b1000 });
        assert_eq!(enc.encode(0), SparkCode::Short(0));
        assert_eq!(enc.encode(255), SparkCode::Long { prev: 0b1111, post: 0b1111 });
    }
}
