//! Bit-parallel bulk decoder for packed SPARK nibble streams.
//!
//! The streaming [`SparkDecoder`] of Fig 7 consumes one 4-bit beat per
//! call and threads the *enable* signal through every push — a faithful
//! hardware model, but a software bottleneck: every consumer of decode
//! (`/v1/decode`, container reads, the fused GEMM panel packer) pays a
//! branchy state-machine step per nibble. This module decodes the same
//! streams block-at-a-time instead, exploiting the structure the paper's
//! identifier bit gives away for free (Fig 5):
//!
//! 1. **Boundary resolution.** Extract the identifier bit of all 64
//!    nibbles of a block into one `u64` mask. A nibble is the *prev* half
//!    of a long code exactly when its identifier is set and the preceding
//!    nibble was not itself an unconsumed prev — the recurrence
//!    `p[i] = id[i] & !p[i-1]`, whose solution is "every other bit within
//!    each run of identifier bits". That alternation is computed for all
//!    64 positions at once with a Kogge–Stone style prefix scan over the
//!    run-connectivity mask (§ [`prev_mask`]), so code boundaries fall out
//!    with no sequential state at all.
//! 2. **Lane decode.** Every position that is not a prev emits exactly
//!    one value: short codes emit `nibble & 7`, post positions emit the
//!    long-code formula of Eq 3 — `((prev & 6) << 4) | ((prev & 1) *
//!    0x90) | post` — which is pure bitwise arithmetic and therefore
//!    computed for eight positions per `u64` SWAR step. A branchless
//!    compaction then gathers emitted lanes; the in-module tests pin the
//!    SWAR formula against the FSM's own
//!    [`decode_pair`](crate::decoder) over all 256 `(prev, post)` pairs.
//!
//! The identifier-mask extraction and nibble unpacking have `Scalar`,
//! `AVX2`, and `AVX-512` kernels behind the same runtime-dispatch enum
//! pattern as the simulator and GEMM engines ([`DecodeVariant`]); the
//! scalar FSM stays in-tree as the bit-identity reference
//! ([`crate::stream::decode_stream_reference`]), and the exhaustive
//! differential suite in `tests/bulk_differential.rs` pins every dispatch
//! variant against it.
//!
//! Because the boundary pass also yields the exact value count before any
//! output is written (`values = nibbles - popcount(prev)`), bulk decode
//! allocates its output once, exactly sized — no hot-path reallocation.

use crate::decoder::DecodeError;
use crate::stream::NibbleStream;

/// Nibbles processed per block: one `u64` of identifier bits.
const BLOCK_NIBBLES: usize = 64;
/// Packed bytes per full block.
const BLOCK_BYTES: usize = BLOCK_NIBBLES / 2;

/// SWAR lane constants: eight nibbles per `u64`, one byte each.
/// `LOW3` keeps a short code's value bits, `BIT12` isolates the long-code
/// `b1 b2` payload bits of a prev nibble, `BIT0` its `c3` check bit.
const LOW3: u64 = 0x0707_0707_0707_0707;
const BIT12: u64 = 0x0606_0606_0606_0606;
const BIT0: u64 = 0x0101_0101_0101_0101;

/// Which bulk-decode kernel to run. Mirrors the simulator's and GEMM's
/// engine-variant pattern: detect once, dispatch per call, keep every
/// variant testable on hosts that support it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeVariant {
    /// Portable scalar path (still bit-parallel per block via SWAR).
    Scalar,
    /// AVX2 mask extraction and unpacking plus BMI2 `pext`/`pdep`
    /// byte-granular emission compaction.
    Avx2,
    /// AVX-512 (`F+BW+VL+VBMI+VBMI2`): whole blocks decoded in one
    /// 64-lane register, emitted values gathered with `vpcompressb`.
    Avx512,
}

impl DecodeVariant {
    #[cfg(target_arch = "x86_64")]
    fn avx2_supported() -> bool {
        // BMI2 rides along for the pext/pdep byte compaction; the two have
        // shipped together since their (Haswell) introduction.
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("bmi2")
    }

    #[cfg(target_arch = "x86_64")]
    fn avx512_supported() -> bool {
        // VBMI supplies the cross-lane byte permute for prev alignment,
        // VBMI2 the `vpcompressb` emission compaction.
        is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512bw")
            && is_x86_feature_detected!("avx512vl")
            && is_x86_feature_detected!("avx512vbmi")
            && is_x86_feature_detected!("avx512vbmi2")
    }

    /// Picks the fastest variant the host supports.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if Self::avx512_supported() {
                return DecodeVariant::Avx512;
            }
            if Self::avx2_supported() {
                return DecodeVariant::Avx2;
            }
        }
        DecodeVariant::Scalar
    }

    /// Every variant this host can run (always at least
    /// [`DecodeVariant::Scalar`]), for differential tests and benchmarks.
    pub fn all() -> Vec<Self> {
        let mut v = vec![DecodeVariant::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if Self::avx2_supported() {
                v.push(DecodeVariant::Avx2);
            }
            if Self::avx512_supported() {
                v.push(DecodeVariant::Avx512);
            }
        }
        v
    }

    /// Stable lower-case name for reports and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            DecodeVariant::Scalar => "scalar",
            DecodeVariant::Avx2 => "avx2",
            DecodeVariant::Avx512 => "avx512",
        }
    }
}

/// Solves the prev recurrence `p[i] = id[i] & !p[i-1]` for all 64
/// positions of a block at once.
///
/// Within each maximal run of set identifier bits, prev positions are
/// every other bit starting at the run's first bit; `carry_in` (the last
/// nibble of the previous block was an unconsumed prev) shifts the first
/// run's alternation by one. Run starts seed the mask and a
/// log-step prefix scan fills the alternating positions: `conn` at
/// distance `d` marks positions whose preceding `d` identifier bits are
/// all set, so `p |= (p << d) & conn` extends every chain by `d` nibbles
/// per step — six steps cover the whole block.
#[inline]
fn prev_mask(id: u64, carry_in: bool) -> u64 {
    let mut starts = id & !(id << 1);
    if carry_in {
        // Position 0 is the post half of a long code straddling the block
        // boundary: never a prev, and if the identifier run continues the
        // alternation restarts at position 1.
        starts &= !1;
        starts |= id & (id << 1) & 0b10;
    }
    let mut p = starts;
    let mut conn = id & (id << 1) & (id << 2);
    let mut shift = 2u32;
    while shift < 64 {
        p |= (p << shift) & conn;
        conn &= conn << shift;
        shift <<= 1;
    }
    p
}

/// Scalar identifier-mask extraction over up to one block of packed
/// bytes. Bit `i` of the result is the identifier (top) bit of nibble
/// `i`; bits past `n` are cleared so padding never reaches the scan.
#[inline]
fn id_mask_scalar(bytes: &[u8], n: usize) -> u64 {
    let mut id = 0u64;
    for (j, &b) in bytes.iter().enumerate() {
        id |= u64::from(b >> 7) << (2 * j);
        id |= u64::from((b >> 3) & 1) << (2 * j + 1);
    }
    if n < BLOCK_NIBBLES {
        id &= (1u64 << n) - 1;
    }
    id
}

/// Scalar nibble unpack of up to one block: byte `j` becomes nibbles
/// `2j` (high) and `2j + 1` (low).
#[inline]
fn unpack_scalar(bytes: &[u8]) -> [u8; BLOCK_NIBBLES] {
    let mut nibs = [0u8; BLOCK_NIBBLES];
    for (j, &b) in bytes.iter().enumerate() {
        nibs[2 * j] = b >> 4;
        nibs[2 * j + 1] = b & 0x0F;
    }
    nibs
}

/// Spreads the 32 bits of `x` to the even bit positions of a `u64`
/// (Morton interleave half): bit `j` of `x` lands at bit `2j`.
#[inline]
fn spread(x: u32) -> u64 {
    let mut x = u64::from(x);
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! SIMD mask-extraction and unpack kernels for one full 32-byte
    //! block. Callers guarantee `bytes` holds at least [`BLOCK_BYTES`]
    //! readable bytes and that the required CPU features are present
    //! (enforced by constructing the [`DecodeVariant`] via `detect`/`all`).
    #![allow(unsafe_code)]

    use super::{prev_mask, spread, BIT0, BIT12, BLOCK_NIBBLES, LOW3};
    use std::arch::x86_64::*;

    /// AVX2 load: movemask reads the identifier bit of high nibbles
    /// directly (byte bit 7); shifting each byte left by 4 moves the low
    /// nibble's identifier (byte bit 3) into movemask position.
    #[target_feature(enable = "avx2")]
    pub unsafe fn load_avx2(bytes: *const u8) -> ([u8; BLOCK_NIBBLES], u64) {
        let v = _mm256_loadu_si256(bytes.cast());
        let hi = _mm256_movemask_epi8(v) as u32;
        let lo = _mm256_movemask_epi8(_mm256_slli_epi16::<4>(v)) as u32;
        let id = spread(hi) | (spread(lo) << 1);

        let mask = _mm256_set1_epi8(0x0F);
        let h = _mm256_and_si256(_mm256_srli_epi16::<4>(v), mask);
        let l = _mm256_and_si256(v, mask);
        // unpacklo/hi interleave within 128-bit lanes; the cross-lane
        // permutes restore byte order 0..32.
        let a = _mm256_unpacklo_epi8(h, l);
        let b = _mm256_unpackhi_epi8(h, l);
        let mut nibs = [0u8; BLOCK_NIBBLES];
        _mm256_storeu_si256(
            nibs.as_mut_ptr().cast(),
            _mm256_permute2x128_si256::<0x20>(a, b),
        );
        _mm256_storeu_si256(
            nibs.as_mut_ptr().add(32).cast(),
            _mm256_permute2x128_si256::<0x31>(a, b),
        );
        (nibs, id)
    }

    /// AVX-512 load: `vpmovb2m` yields the high-nibble identifier mask in
    /// one instruction and `vptestmb` the low-nibble one, skipping the
    /// shift+movemask round trips of the AVX2 path. The emission kernel
    /// unpacks in-register instead; this array form remains for the
    /// cross-variant agreement tests.
    #[cfg(test)]
    #[target_feature(enable = "avx512f,avx512bw,avx512vl")]
    pub unsafe fn load_avx512(bytes: *const u8) -> ([u8; BLOCK_NIBBLES], u64) {
        let v = _mm256_loadu_si256(bytes.cast());
        let hi = _mm256_movepi8_mask(v) as u32;
        let lo = _mm256_test_epi8_mask(v, _mm256_set1_epi8(0x08)) as u32;
        let id = spread(hi) | (spread(lo) << 1);

        let mask = _mm256_set1_epi8(0x0F);
        let h = _mm256_and_si256(_mm256_srli_epi16::<4>(v), mask);
        let l = _mm256_and_si256(v, mask);
        let a = _mm256_unpacklo_epi8(h, l);
        let b = _mm256_unpackhi_epi8(h, l);
        let mut nibs = [0u8; BLOCK_NIBBLES];
        _mm256_storeu_si256(
            nibs.as_mut_ptr().cast(),
            _mm256_permute2x128_si256::<0x20>(a, b),
        );
        _mm256_storeu_si256(
            nibs.as_mut_ptr().add(32).cast(),
            _mm256_permute2x128_si256::<0x31>(a, b),
        );
        (nibs, id)
    }

    /// Identifier mask only (boundary pass), AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn id_mask_avx2(bytes: *const u8) -> u64 {
        let v = _mm256_loadu_si256(bytes.cast());
        let hi = _mm256_movemask_epi8(v) as u32;
        let lo = _mm256_movemask_epi8(_mm256_slli_epi16::<4>(v)) as u32;
        spread(hi) | (spread(lo) << 1)
    }

    /// Identifier mask only (boundary pass), AVX-512.
    #[target_feature(enable = "avx512f,avx512bw,avx512vl")]
    pub unsafe fn id_mask_avx512(bytes: *const u8) -> u64 {
        let v = _mm256_loadu_si256(bytes.cast());
        let hi = _mm256_movepi8_mask(v) as u32;
        let lo = _mm256_test_epi8_mask(v, _mm256_set1_epi8(0x08)) as u32;
        spread(hi) | (spread(lo) << 1)
    }

    /// AVX2 + BMI2 emission pass over all full blocks of `payload`.
    ///
    /// Boundary masks come from [`load_avx2`]; per eight-nibble lane the
    /// short and long-code candidates are computed SWAR-style, selected by
    /// the post mask (expanded to byte granularity with `pdep`), and the
    /// emitted bytes compacted with one `pext`. Returns the FSM state
    /// (`carry`, last nibble, next nibble index) for the tail block.
    #[target_feature(enable = "avx2,bmi2")]
    pub unsafe fn decode_payload_avx2(
        payload: &[u8],
        nibbles: usize,
        out: &mut Vec<u8>,
    ) -> (bool, u8, usize) {
        let mut carry = false;
        let mut last_nib = 0u8;
        let mut start = 0usize;
        // Each lane store writes a full u64 at the cursor; eight spare
        // bytes absorb the final lane's overshoot.
        let mut scratch = [0u8; BLOCK_NIBBLES + 8];
        while nibbles - start >= BLOCK_NIBBLES {
            let (nibs, id) = load_avx2(payload.as_ptr().add(start / 2));
            let p = prev_mask(id, carry);
            let post = (p << 1) | u64::from(carry);
            let emit = !p;
            let mut k = 0usize;
            let mut prev_byte = u64::from(last_nib);
            for c in 0..BLOCK_NIBBLES / 8 {
                let wn = nibs.as_ptr().add(8 * c).cast::<u64>().read_unaligned();
                // Little-endian byte shift aligns each nibble with its
                // predecessor; the carried byte is the previous lane's last.
                let wp = (wn << 8) | prev_byte;
                prev_byte = wn >> 56;
                let pair_w = ((wp & BIT12) << 4) | (wp & BIT0).wrapping_mul(0x90) | wn;
                let short_w = wn & LOW3;
                let post_m = _pdep_u64(post >> (8 * c), BIT0).wrapping_mul(0xFF);
                let vals = short_w ^ ((short_w ^ pair_w) & post_m);
                let emit_b = (emit >> (8 * c)) & 0xFF;
                let emit_m = _pdep_u64(emit_b, BIT0).wrapping_mul(0xFF);
                scratch
                    .as_mut_ptr()
                    .add(k)
                    .cast::<u64>()
                    .write_unaligned(_pext_u64(vals, emit_m));
                k += emit_b.count_ones() as usize;
            }
            out.extend_from_slice(&scratch[..k]);
            carry = p >> 63 == 1;
            last_nib = nibs[BLOCK_NIBBLES - 1];
            start += BLOCK_NIBBLES;
        }
        (carry, last_nib, start)
    }

    /// AVX-512 emission pass over all full blocks of `payload`: the whole
    /// block lives in one 64-lane register, prev alignment is a VBMI byte
    /// permute, candidate selection is a mask blend keyed directly on the
    /// post bitmask, and compaction is a single `vpcompressb` (VBMI2).
    /// Returns the FSM state for the tail block, like
    /// [`decode_payload_avx2`].
    #[target_feature(enable = "avx512f,avx512bw,avx512vl,avx512vbmi,avx512vbmi2")]
    pub unsafe fn decode_payload_avx512(
        payload: &[u8],
        nibbles: usize,
        out: &mut Vec<u8>,
    ) -> (bool, u8, usize) {
        // Byte-shift-right-by-one permute indices (lane 0 is patched with
        // the carried nibble afterwards, so its index is don't-care).
        const SHIFT_IDX: [u8; BLOCK_NIBBLES] = {
            let mut a = [0u8; BLOCK_NIBBLES];
            let mut i = 1usize;
            while i < BLOCK_NIBBLES {
                a[i] = (i - 1) as u8;
                i += 1;
            }
            a
        };
        // Byte-duplication permute indices: packed byte `j` feeds nibble
        // lanes `2j` (high half) and `2j + 1` (low half).
        const DUP_IDX: [u8; BLOCK_NIBBLES] = {
            let mut a = [0u8; BLOCK_NIBBLES];
            let mut i = 0usize;
            while i < BLOCK_NIBBLES {
                a[i] = (i / 2) as u8;
                i += 1;
            }
            a
        };
        /// Odd (low-half) nibble lanes.
        const ODD: u64 = 0xAAAA_AAAA_AAAA_AAAA;
        let shift_idx = _mm512_loadu_si512(SHIFT_IDX.as_ptr().cast());
        let dup_idx = _mm512_loadu_si512(DUP_IDX.as_ptr().cast());
        let low_nib = _mm512_set1_epi8(0x0F);
        let mut carry = false;
        let mut last_nib = 0u8;
        let mut start = 0usize;
        let mut scratch = [0u8; BLOCK_NIBBLES];
        while nibbles - start >= BLOCK_NIBBLES {
            let bytes = payload.as_ptr().add(start / 2);
            // Unpack in-register: duplicate every packed byte across its
            // two nibble lanes, then blend the shifted high halves with
            // the masked low halves. The identifier mask falls out of one
            // byte test against the nibble lanes' bit 3.
            let dup = _mm512_permutexvar_epi8(dup_idx, _mm512_castsi256_si512(_mm256_loadu_si256(bytes.cast())));
            let hi = _mm512_and_si512(_mm512_srli_epi16::<4>(dup), low_nib);
            let nz = _mm512_mask_blend_epi8(ODD, hi, _mm512_and_si512(dup, low_nib));
            let id = _mm512_test_epi8_mask(nz, _mm512_set1_epi8(0x08));
            let p = prev_mask(id, carry);
            let post = (p << 1) | u64::from(carry);
            let emit = !p;
            let prevs = _mm512_mask_mov_epi8(
                _mm512_permutexvar_epi8(shift_idx, nz),
                1,
                _mm512_set1_epi8(last_nib as i8),
            );
            // Long-code formula (Eq 3) in lanes: `b1 b2` to bits 6..5,
            // `0x90` where the `c3` check bit is set, post value bits
            // straight from the nibble itself.
            let b12 = _mm512_and_si512(
                _mm512_slli_epi16::<4>(_mm512_and_si512(prevs, _mm512_set1_epi8(0x06))),
                _mm512_set1_epi8(0x60),
            );
            let c3 = _mm512_maskz_mov_epi8(
                _mm512_test_epi8_mask(prevs, _mm512_set1_epi8(0x01)),
                _mm512_set1_epi8(0x90u8 as i8),
            );
            let pair = _mm512_or_si512(_mm512_or_si512(b12, c3), nz);
            let shorts = _mm512_and_si512(nz, _mm512_set1_epi8(0x07));
            let vals = _mm512_mask_blend_epi8(post, shorts, pair);
            let packed = _mm512_maskz_compress_epi8(emit, vals);
            _mm512_storeu_si512(scratch.as_mut_ptr().cast(), packed);
            out.extend_from_slice(&scratch[..emit.count_ones() as usize]);
            carry = p >> 63 == 1;
            // Nibble 63 is the low half of the block's final packed byte.
            last_nib = *bytes.add(BLOCK_NIBBLES / 2 - 1) & 0x0F;
            start += BLOCK_NIBBLES;
        }
        (carry, last_nib, start)
    }
}

/// One full-block identifier mask through the selected kernel.
#[inline]
fn id_mask_full(variant: DecodeVariant, bytes: &[u8]) -> u64 {
    debug_assert!(bytes.len() >= BLOCK_BYTES);
    match variant {
        DecodeVariant::Scalar => id_mask_scalar(&bytes[..BLOCK_BYTES], BLOCK_NIBBLES),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the variant is only constructed when the features are
        // detected, and the caller slices a full block.
        DecodeVariant::Avx2 => unsafe { x86::id_mask_avx2(bytes.as_ptr()) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        DecodeVariant::Avx512 => unsafe { x86::id_mask_avx512(bytes.as_ptr()) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => id_mask_scalar(&bytes[..BLOCK_BYTES], BLOCK_NIBBLES),
    }
}

/// One full-block load (nibbles + identifier mask) through the selected
/// kernel — kept for the cross-variant agreement tests; the hot paths
/// call their kernel directly.
#[cfg(test)]
fn load_full(variant: DecodeVariant, bytes: &[u8]) -> ([u8; BLOCK_NIBBLES], u64) {
    debug_assert!(bytes.len() >= BLOCK_BYTES);
    match variant {
        DecodeVariant::Scalar => (
            unpack_scalar(&bytes[..BLOCK_BYTES]),
            id_mask_scalar(&bytes[..BLOCK_BYTES], BLOCK_NIBBLES),
        ),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the variant is only constructed when the features are
        // detected, and the caller slices a full block.
        DecodeVariant::Avx2 => unsafe { x86::load_avx2(bytes.as_ptr()) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        DecodeVariant::Avx512 => unsafe { x86::load_avx512(bytes.as_ptr()) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => (
            unpack_scalar(&bytes[..BLOCK_BYTES]),
            id_mask_scalar(&bytes[..BLOCK_BYTES], BLOCK_NIBBLES),
        ),
    }
}

/// Boundary-resolution pass: the exact number of values a packed payload
/// of `nibbles` beats decodes to, without touching any nibble value.
///
/// This is the sizing half of bulk decode — each prev bit absorbs one
/// nibble, so `values = nibbles - popcount(prev)` — and the whole
/// truncation check: a stream is malformed exactly when its final nibble
/// is an unconsumed prev.
///
/// # Errors
///
/// [`DecodeError::TruncatedLongCode`] when the stream ends half-way
/// through a long code.
pub fn resolve_len_with(
    variant: DecodeVariant,
    payload: &[u8],
    nibbles: usize,
) -> Result<usize, DecodeError> {
    debug_assert!(payload.len() >= nibbles.div_ceil(2));
    let mut carry = false;
    let mut prevs = 0u32;
    let mut start = 0usize;
    while start < nibbles {
        let n = BLOCK_NIBBLES.min(nibbles - start);
        let bytes = &payload[start / 2..];
        let id = if n == BLOCK_NIBBLES {
            id_mask_full(variant, bytes)
        } else {
            id_mask_scalar(&bytes[..n.div_ceil(2)], n)
        };
        let p = prev_mask(id, carry);
        prevs += p.count_ones();
        carry = (p >> (n - 1)) & 1 == 1;
        start += n;
    }
    if carry {
        return Err(DecodeError::TruncatedLongCode);
    }
    Ok(nibbles - prevs as usize)
}

/// [`resolve_len_with`] under the host's detected variant.
///
/// # Errors
///
/// [`DecodeError::TruncatedLongCode`] for a half-read long code.
pub fn resolve_len(payload: &[u8], nibbles: usize) -> Result<usize, DecodeError> {
    resolve_len_with(DecodeVariant::detect(), payload, nibbles)
}

/// Emission pass: decodes `nibbles` beats of `payload` into `out`,
/// assuming [`resolve_len_with`] already validated the stream (so a
/// trailing truncated long code is unrepresentable here). Appends exactly
/// the resolved number of values. Callers that already ran the boundary
/// pass (the container reader, the fused GEMM's panel decoder) use this to
/// decode into a buffer they sized from the resolved count.
pub fn decode_payload_into(
    variant: DecodeVariant,
    payload: &[u8],
    nibbles: usize,
    out: &mut Vec<u8>,
) {
    let (carry, last_nib, start) = match variant {
        DecodeVariant::Scalar => (false, 0u8, 0usize),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the variant is only constructed when `detect`/`all`
        // observed the required CPU features.
        DecodeVariant::Avx2 => unsafe { x86::decode_payload_avx2(payload, nibbles, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        DecodeVariant::Avx512 => unsafe { x86::decode_payload_avx512(payload, nibbles, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => (false, 0u8, 0usize),
    };
    decode_payload_scalar_from(payload, nibbles, carry, last_nib, start, out);
}

/// Portable emission pass from a mid-stream FSM state: `carry`/`last_nib`
/// describe the boundary at nibble `start` (block-aligned). Entry point
/// for the whole stream under [`DecodeVariant::Scalar`] and for the
/// final partial block left over by the SIMD kernels.
fn decode_payload_scalar_from(
    payload: &[u8],
    nibbles: usize,
    mut carry: bool,
    mut last_nib: u8,
    mut start: usize,
    out: &mut Vec<u8>,
) {
    let mut scratch = [0u8; BLOCK_NIBBLES];
    while start < nibbles {
        let n = BLOCK_NIBBLES.min(nibbles - start);
        let bytes = &payload[start / 2..];
        let nb = n.div_ceil(2);
        let nibs = unpack_scalar(&bytes[..nb]);
        let id = id_mask_scalar(&bytes[..nb], n);
        let valid = if n == BLOCK_NIBBLES { u64::MAX } else { (1u64 << n) - 1 };
        let p = prev_mask(id, carry);
        if p == 0 && !carry {
            // All-short fast path: every valid nibble is its own value,
            // masked to its low three bits eight at a time.
            for (dst, src) in scratch.chunks_exact_mut(8).zip(nibs.chunks_exact(8)) {
                let w = u64::from_le_bytes([
                    src[0], src[1], src[2], src[3], src[4], src[5], src[6], src[7],
                ]) & LOW3;
                dst.copy_from_slice(&w.to_le_bytes());
            }
            out.extend_from_slice(&scratch[..n]);
        } else {
            // Candidate values for every position, computed branch-free
            // eight lanes at a time. `prevs` aligns each nibble with its
            // predecessor so the long-code formula (Eq 3, see
            // `decode_pair`) vectorizes: the `b1 b2` payload bits shift
            // into bits 6..5 and the `c3` check bit contributes `0x90`.
            let mut prevs = [0u8; BLOCK_NIBBLES];
            prevs[0] = last_nib;
            prevs[1..].copy_from_slice(&nibs[..BLOCK_NIBBLES - 1]);
            let mut shorts = [0u8; BLOCK_NIBBLES];
            let mut pairs = [0u8; BLOCK_NIBBLES];
            for c in 0..BLOCK_NIBBLES / 8 {
                let wn = u64::from_le_bytes([
                    nibs[8 * c],
                    nibs[8 * c + 1],
                    nibs[8 * c + 2],
                    nibs[8 * c + 3],
                    nibs[8 * c + 4],
                    nibs[8 * c + 5],
                    nibs[8 * c + 6],
                    nibs[8 * c + 7],
                ]);
                let wp = u64::from_le_bytes([
                    prevs[8 * c],
                    prevs[8 * c + 1],
                    prevs[8 * c + 2],
                    prevs[8 * c + 3],
                    prevs[8 * c + 4],
                    prevs[8 * c + 5],
                    prevs[8 * c + 6],
                    prevs[8 * c + 7],
                ]);
                let pair_w = ((wp & BIT12) << 4) | (wp & BIT0).wrapping_mul(0x90) | wn;
                shorts[8 * c..8 * c + 8].copy_from_slice(&(wn & LOW3).to_le_bytes());
                pairs[8 * c..8 * c + 8].copy_from_slice(&pair_w.to_le_bytes());
            }
            // Branchless compaction: every position stores its selected
            // candidate, the cursor advances only on emit bits. Prev
            // positions overwrite in place and contribute nothing.
            let post = ((p << 1) | u64::from(carry)) & valid;
            let emit = !p & valid;
            let mut k = 0usize;
            for i in 0..n {
                let sel = 0u8.wrapping_sub(((post >> i) & 1) as u8);
                scratch[k] = shorts[i] ^ ((shorts[i] ^ pairs[i]) & sel);
                k += ((emit >> i) & 1) as usize;
            }
            out.extend_from_slice(&scratch[..k]);
        }
        carry = (p >> (n - 1)) & 1 == 1;
        last_nib = nibs[n - 1];
        start += n;
    }
}

/// Bulk-decodes a packed payload of `nibbles` beats: boundary resolution,
/// one exact allocation, then the block-table emission pass.
///
/// # Errors
///
/// [`DecodeError::TruncatedLongCode`] when the stream ends half-way
/// through a long code.
pub fn decode_payload_with(
    variant: DecodeVariant,
    payload: &[u8],
    nibbles: usize,
) -> Result<Vec<u8>, DecodeError> {
    let count = resolve_len_with(variant, payload, nibbles)?;
    let mut out = Vec::with_capacity(count);
    decode_payload_into(variant, payload, nibbles, &mut out);
    debug_assert_eq!(out.len(), count);
    Ok(out)
}

/// [`decode_payload_with`] under the host's detected variant.
///
/// # Errors
///
/// [`DecodeError::TruncatedLongCode`] for a half-read long code.
pub fn decode_payload(payload: &[u8], nibbles: usize) -> Result<Vec<u8>, DecodeError> {
    decode_payload_with(DecodeVariant::detect(), payload, nibbles)
}

/// Bulk-decodes a [`NibbleStream`] under an explicit variant — the
/// differential-test entry point.
///
/// # Errors
///
/// [`DecodeError::TruncatedLongCode`] for a half-read long code.
pub fn decode_bulk_with(
    variant: DecodeVariant,
    stream: &NibbleStream,
) -> Result<Vec<u8>, DecodeError> {
    decode_payload_with(variant, stream.as_bytes(), stream.len())
}

/// Bulk-decodes a [`NibbleStream`] under the host's detected variant —
/// what [`crate::decode_stream`] dispatches to.
///
/// # Errors
///
/// [`DecodeError::TruncatedLongCode`] for a half-read long code.
pub fn decode_bulk(stream: &NibbleStream) -> Result<Vec<u8>, DecodeError> {
    decode_bulk_with(DecodeVariant::detect(), stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The prev recurrence computed the slow, obviously-correct way.
    fn prev_mask_reference(id: u64, carry_in: bool, n: usize) -> u64 {
        let mut p = 0u64;
        let mut prev = carry_in;
        for i in 0..n {
            let bit = (id >> i) & 1 == 1 && !prev;
            p |= u64::from(bit) << i;
            prev = bit;
        }
        p
    }

    #[test]
    fn prev_mask_matches_recurrence_on_random_masks() {
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let id = state;
            for carry in [false, true] {
                assert_eq!(
                    prev_mask(id, carry),
                    prev_mask_reference(id, carry, 64),
                    "id={id:#018x} carry={carry}"
                );
            }
        }
    }

    #[test]
    fn prev_mask_structured_cases() {
        // All identifiers set: strict alternation from bit 0 (or 1 with
        // carry); all clear: empty; single runs at every offset.
        assert_eq!(prev_mask(u64::MAX, false), 0x5555_5555_5555_5555);
        assert_eq!(prev_mask(u64::MAX, true), 0xAAAA_AAAA_AAAA_AAAA);
        assert_eq!(prev_mask(0, false), 0);
        assert_eq!(prev_mask(0, true), 0);
        for off in 0..63 {
            let id = 0b11u64 << off;
            assert_eq!(prev_mask(id, false), 1 << off, "run at {off}");
        }
    }

    #[test]
    fn swar_pair_formula_matches_decode_pair() {
        // The SWAR lane formula in `decode_payload_into` must be
        // bit-identical to the FSM's `decode_pair` for every (prev, post)
        // nibble combination — equivalence of Eq 3's two spellings.
        for prev in 0u8..16 {
            for post in 0u8..16 {
                let swar = ((prev & 0x06) << 4) | ((prev & 0x01) * 0x90) | post;
                assert_eq!(
                    swar,
                    crate::decoder::decode_pair(prev, post),
                    "prev={prev:#x} post={post:#x}"
                );
            }
        }
    }

    #[test]
    fn spread_interleaves_bits() {
        assert_eq!(spread(0xFFFF_FFFF), 0x5555_5555_5555_5555);
        assert_eq!(spread(0b1011), 0b01_00_01_01);
    }

    #[test]
    fn id_masks_agree_across_variants() {
        let bytes: Vec<u8> = (0..BLOCK_BYTES).map(|i| (i * 37 + 11) as u8).collect();
        let want = id_mask_scalar(&bytes, BLOCK_NIBBLES);
        for v in DecodeVariant::all() {
            assert_eq!(id_mask_full(v, &bytes), want, "{}", v.name());
            let (nibs, id) = load_full(v, &bytes);
            assert_eq!(id, want, "{}", v.name());
            assert_eq!(nibs, unpack_scalar(&bytes), "{}", v.name());
        }
    }

    #[test]
    fn variant_detect_is_listed_in_all() {
        let all = DecodeVariant::all();
        assert!(all.contains(&DecodeVariant::detect()));
        assert_eq!(all[0], DecodeVariant::Scalar);
    }
}
