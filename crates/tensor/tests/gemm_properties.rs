//! Bit-identity property suite for the turbo GEMM backend.
//!
//! The turbo kernels claim exact equality — not closeness — with the
//! retained seed kernel (`ops::matmul_reference`): same k-order, separate
//! multiply/add roundings, same zero-skip. These properties check
//! `to_bits()` equality over random ragged shapes (including exact zeros
//! to exercise the skip branch) for **every** dispatch variant the running
//! CPU can execute, and for the transpose-free layouts and fused epilogues
//! against their seed-op compositions.

use spark_tensor::gemm::{gemm_with, Epilogue, GemmVariant, Layout};
use spark_tensor::{ops, Tensor};
use spark_util::prop::check;
use spark_util::prop_assert;
use spark_util::Rng;

/// A random GEMM case: ragged `m`/`k`/`n`, ~25% exact zeros in both
/// operands, and a bias row for the epilogue properties.
type Case = (usize, usize, usize, Vec<f32>, Vec<f32>, Vec<f32>);

fn gemm_case(rng: &mut Rng) -> Case {
    let m = rng.gen_range(1..24);
    let k = rng.gen_range(1..40);
    let n = rng.gen_range(1..80);
    let mut values = Vec::new();
    for _ in 0..m * k + k * n + n {
        values.push(if rng.gen_f64() < 0.25 {
            0.0
        } else {
            rng.gen_range_f32(-4.0, 4.0)
        });
    }
    let b = values.split_off(m * k + k * n);
    let a_and_b = values;
    let (a, bm) = a_and_b.split_at(m * k);
    (m, k, n, a.to_vec(), bm.to_vec(), b)
}

fn case_valid((m, k, n, a, b, bias): &Case) -> bool {
    *m > 0 && *k > 0 && *n > 0 && a.len() == m * k && b.len() == k * n && bias.len() == *n
}

fn bits_eq(got: &[f32], want: &[f32]) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("length {} vs {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g.to_bits() != w.to_bits() {
            return Err(format!("element {i}: {g} ({:#x}) vs {w} ({:#x})", g.to_bits(), w.to_bits()));
        }
    }
    Ok(())
}

/// Every dispatch variant reproduces the seed kernel bit-for-bit on plain
/// `A · B`.
#[test]
fn turbo_matmul_bit_identical_to_reference() {
    check(
        "turbo_matmul_bit_identical_to_reference",
        gemm_case,
        |case| {
            if !case_valid(case) {
                return Ok(());
            }
            let (m, k, n, ref a, ref b, _) = *case;
            let at = Tensor::from_vec(a.clone(), &[m, k]).unwrap();
            let bt = Tensor::from_vec(b.clone(), &[k, n]).unwrap();
            let want = ops::matmul_reference(&at, &bt).unwrap();
            for v in GemmVariant::available() {
                let got = gemm_with(v, Layout::Nn, a, b, m, k, n, Epilogue::None);
                if let Err(e) = bits_eq(&got, want.as_slice()) {
                    prop_assert!(false, "{} {m}x{k}x{n}: {e}", v.name());
                }
            }
            Ok(())
        },
    );
}

/// The transpose-free layouts match the seed kernel applied to a
/// materialized transpose, bit-for-bit, under every variant.
#[test]
fn transpose_free_layouts_match_materialized_transpose() {
    check(
        "transpose_free_layouts_match_materialized_transpose",
        gemm_case,
        |case| {
            if !case_valid(case) {
                return Ok(());
            }
            let (m, k, n, ref a, ref b, _) = *case;
            // Nt: B is given as n x k, computing A · Bᵀ.
            let at = Tensor::from_vec(a.clone(), &[m, k]).unwrap();
            let bnk = Tensor::from_vec(b[..k * n].to_vec(), &[n, k]).unwrap();
            let want_nt =
                ops::matmul_reference(&at, &ops::transpose(&bnk).unwrap()).unwrap();
            // Tn: A is given as k x m, computing Aᵀ · B.
            let akm = Tensor::from_vec(a.clone(), &[k, m]).unwrap();
            let bkn = Tensor::from_vec(b.clone(), &[k, n]).unwrap();
            let want_tn =
                ops::matmul_reference(&ops::transpose(&akm).unwrap(), &bkn).unwrap();
            for v in GemmVariant::available() {
                let got_nt = gemm_with(v, Layout::Nt, a, b, m, k, n, Epilogue::None);
                if let Err(e) = bits_eq(&got_nt, want_nt.as_slice()) {
                    prop_assert!(false, "nt {} {m}x{k}x{n}: {e}", v.name());
                }
                let got_tn = gemm_with(v, Layout::Tn, a, b, m, k, n, Epilogue::None);
                if let Err(e) = bits_eq(&got_tn, want_tn.as_slice()) {
                    prop_assert!(false, "tn {} {m}x{k}x{n}: {e}", v.name());
                }
            }
            // The public transpose-free ops route through the same engine.
            let got_nt = ops::matmul_nt(&at, &bnk).unwrap();
            if let Err(e) = bits_eq(got_nt.as_slice(), want_nt.as_slice()) {
                prop_assert!(false, "ops::matmul_nt {m}x{k}x{n}: {e}");
            }
            let got_tn = ops::matmul_tn(&akm, &bkn).unwrap();
            if let Err(e) = bits_eq(got_tn.as_slice(), want_tn.as_slice()) {
                prop_assert!(false, "ops::matmul_tn {m}x{k}x{n}: {e}");
            }
            Ok(())
        },
    );
}

/// The fused bias / bias+ReLU epilogues match the separate seed-op
/// composition `relu(add_bias(matmul_reference(..)))` bit-for-bit.
#[test]
fn fused_epilogues_match_seed_composition() {
    check(
        "fused_epilogues_match_seed_composition",
        gemm_case,
        |case| {
            if !case_valid(case) {
                return Ok(());
            }
            let (m, k, n, ref a, ref b, ref bias) = *case;
            let at = Tensor::from_vec(a.clone(), &[m, k]).unwrap();
            let bt = Tensor::from_vec(b.clone(), &[k, n]).unwrap();
            let plain = ops::matmul_reference(&at, &bt).unwrap();
            let want_bias = ops::add_bias(&plain, bias).unwrap();
            let want_bias_relu = ops::relu(&want_bias);
            for v in GemmVariant::available() {
                let got = gemm_with(v, Layout::Nn, a, b, m, k, n, Epilogue::Bias(bias));
                if let Err(e) = bits_eq(&got, want_bias.as_slice()) {
                    prop_assert!(false, "bias {} {m}x{k}x{n}: {e}", v.name());
                }
                let got =
                    gemm_with(v, Layout::Nn, a, b, m, k, n, Epilogue::BiasRelu(bias));
                if let Err(e) = bits_eq(&got, want_bias_relu.as_slice()) {
                    prop_assert!(false, "bias_relu {} {m}x{k}x{n}: {e}", v.name());
                }
            }
            let got = ops::matmul_bias(&at, &bt, bias).unwrap();
            if let Err(e) = bits_eq(got.as_slice(), want_bias.as_slice()) {
                prop_assert!(false, "ops::matmul_bias {m}x{k}x{n}: {e}");
            }
            let got = ops::matmul_bias_relu(&at, &bt, bias).unwrap();
            if let Err(e) = bits_eq(got.as_slice(), want_bias_relu.as_slice()) {
                prop_assert!(false, "ops::matmul_bias_relu {m}x{k}x{n}: {e}");
            }
            Ok(())
        },
    );
}
