//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use spark_tensor::im2col::{col2im, im2col, Conv2dSpec};
use spark_tensor::{ops, Tensor};

fn tensor_strategy(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim)
        .prop_flat_map(|(m, n)| {
            (
                Just((m, n)),
                proptest::collection::vec(-100.0f32..100.0, m * n..=m * n),
            )
        })
        .prop_map(|((m, n), data)| Tensor::from_vec(data, &[m, n]).expect("length matches"))
}

proptest! {
    /// Transposing twice is the identity.
    #[test]
    fn transpose_involution(t in tensor_strategy(7)) {
        let tt = ops::transpose(&ops::transpose(&t).unwrap()).unwrap();
        prop_assert_eq!(tt, t);
    }

    /// (A B)^T == B^T A^T.
    #[test]
    fn matmul_transpose_identity(
        a in tensor_strategy(7),
        b_data in proptest::collection::vec(-10.0f32..10.0, 7 * 3),
    ) {
        let (m, k) = a.shape().as_matrix().unwrap();
        let _ = m;
        let n = 3usize;
        let b = Tensor::from_vec(b_data[..k * n].to_vec(), &[k, n]).unwrap();
        let ab_t = ops::transpose(&ops::matmul(&a, &b).unwrap()).unwrap();
        let bt_at = ops::matmul(
            &ops::transpose(&b).unwrap(),
            &ops::transpose(&a).unwrap(),
        )
        .unwrap();
        for (x, y) in ab_t.as_slice().iter().zip(bt_at.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-3 * x.abs().max(1.0));
        }
    }

    /// Identity is a two-sided unit for matmul.
    #[test]
    fn matmul_identity_unit(t in tensor_strategy(7)) {
        let (m, n) = t.shape().as_matrix().unwrap();
        let left = ops::matmul(&Tensor::eye(m), &t).unwrap();
        let right = ops::matmul(&t, &Tensor::eye(n)).unwrap();
        prop_assert_eq!(left.as_slice(), t.as_slice());
        prop_assert_eq!(right.as_slice(), t.as_slice());
    }

    /// Matmul distributes over addition: A(B + C) == AB + AC.
    #[test]
    fn matmul_distributive(
        a in tensor_strategy(5),
        extra in proptest::collection::vec(-10.0f32..10.0, 2 * 5 * 3),
    ) {
        let (_, k) = a.shape().as_matrix().unwrap();
        let n = 3usize;
        let b = Tensor::from_vec(extra[..k * n].to_vec(), &[k, n]).unwrap();
        let c = Tensor::from_vec(extra[k * n..2 * k * n].to_vec(), &[k, n]).unwrap();
        let lhs = ops::matmul(&a, &ops::add(&b, &c).unwrap()).unwrap();
        let rhs = ops::add(
            &ops::matmul(&a, &b).unwrap(),
            &ops::matmul(&a, &c).unwrap(),
        )
        .unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-2 * x.abs().max(1.0));
        }
    }

    /// Softmax rows are probability distributions.
    #[test]
    fn softmax_rows_are_distributions(t in tensor_strategy(7)) {
        let s = ops::softmax_rows(&t).unwrap();
        let (m, n) = s.shape().as_matrix().unwrap();
        for i in 0..m {
            let row = &s.as_slice()[i * n..(i + 1) * n];
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    /// im2col/col2im satisfy the adjoint identity <im2col(x), g> == <x, col2im(g)>.
    #[test]
    fn im2col_adjoint(
        h in 3usize..7,
        w in 3usize..7,
        kernel in 1usize..4,
        padding in 0usize..2,
        seed in any::<u32>(),
    ) {
        let spec = Conv2dSpec {
            in_channels: 2,
            out_channels: 1,
            kernel,
            stride: 1,
            padding,
        };
        prop_assume!(spec.output_hw(h, w).is_ok());
        let x = Tensor::from_fn(&[2, h, w], |i| {
            (((i as u32).wrapping_mul(seed | 1) >> 16) % 17) as f32 - 8.0
        });
        let patches = im2col(&x, &spec).unwrap();
        let g = Tensor::from_fn(patches.dims(), |i| {
            (((i as u32).wrapping_mul(seed.rotate_left(7) | 1) >> 16) % 13) as f32 - 6.0
        });
        let lhs: f64 = patches
            .as_slice()
            .iter()
            .zip(g.as_slice())
            .map(|(&a, &b)| (a * b) as f64)
            .sum();
        let back = col2im(&g, &spec, h, w).unwrap();
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(&a, &b)| (a * b) as f64)
            .sum();
        prop_assert!((lhs - rhs).abs() <= 1e-3 * lhs.abs().max(1.0));
    }
}
