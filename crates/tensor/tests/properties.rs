//! Property-based tests for the tensor substrate, on the in-tree
//! `spark_util::prop` harness.

use spark_tensor::im2col::{col2im, im2col, Conv2dSpec};
use spark_tensor::{ops, Tensor};
use spark_util::prop::check;
use spark_util::{prop_assert, prop_assert_eq, Rng};

/// Generates an (m, n, data) triple with `data.len() == m * n`. Tensors are
/// built inside properties so shrinking operates on plain data; shrunk
/// triples whose length no longer matches are skipped via [`as_matrix`].
fn matrix_data(rng: &mut Rng, max_dim: usize) -> (usize, usize, Vec<f32>) {
    let m = rng.gen_range(1..max_dim + 1);
    let n = rng.gen_range(1..max_dim + 1);
    let data = (0..m * n).map(|_| rng.gen_range_f32(-100.0, 100.0)).collect();
    (m, n, data)
}

fn as_matrix(m: usize, n: usize, data: &[f32]) -> Option<Tensor> {
    if m == 0 || n == 0 || data.len() != m * n {
        return None;
    }
    Some(Tensor::from_vec(data.to_vec(), &[m, n]).expect("length matches"))
}

/// Transposing twice is the identity.
#[test]
fn transpose_involution() {
    check(
        "transpose_involution",
        |rng| matrix_data(rng, 7),
        |&(m, n, ref data)| {
            let Some(t) = as_matrix(m, n, data) else { return Ok(()) };
            let tt = ops::transpose(&ops::transpose(&t).unwrap()).unwrap();
            prop_assert_eq!(tt, t);
            Ok(())
        },
    );
}

/// (A B)^T == B^T A^T.
#[test]
fn matmul_transpose_identity() {
    check(
        "matmul_transpose_identity",
        |rng| {
            let a = matrix_data(rng, 7);
            let b: Vec<f32> = (0..7 * 3).map(|_| rng.gen_range_f32(-10.0, 10.0)).collect();
            (a, b)
        },
        |&((m, k, ref a_data), ref b_data)| {
            let Some(a) = as_matrix(m, k, a_data) else { return Ok(()) };
            let n = 3usize;
            if b_data.len() < k * n {
                return Ok(());
            }
            let b = Tensor::from_vec(b_data[..k * n].to_vec(), &[k, n]).unwrap();
            let ab_t = ops::transpose(&ops::matmul(&a, &b).unwrap()).unwrap();
            let bt_at = ops::matmul(
                &ops::transpose(&b).unwrap(),
                &ops::transpose(&a).unwrap(),
            )
            .unwrap();
            for (x, y) in ab_t.as_slice().iter().zip(bt_at.as_slice()) {
                prop_assert!((x - y).abs() <= 1e-3 * x.abs().max(1.0), "{x} vs {y}");
            }
            Ok(())
        },
    );
}

/// Identity is a two-sided unit for matmul.
#[test]
fn matmul_identity_unit() {
    check(
        "matmul_identity_unit",
        |rng| matrix_data(rng, 7),
        |&(m, n, ref data)| {
            let Some(t) = as_matrix(m, n, data) else { return Ok(()) };
            let left = ops::matmul(&Tensor::eye(m), &t).unwrap();
            let right = ops::matmul(&t, &Tensor::eye(n)).unwrap();
            prop_assert_eq!(left.as_slice(), t.as_slice());
            prop_assert_eq!(right.as_slice(), t.as_slice());
            Ok(())
        },
    );
}

/// Matmul distributes over addition: A(B + C) == AB + AC.
#[test]
fn matmul_distributive() {
    check(
        "matmul_distributive",
        |rng| {
            let a = matrix_data(rng, 5);
            let extra: Vec<f32> =
                (0..2 * 5 * 3).map(|_| rng.gen_range_f32(-10.0, 10.0)).collect();
            (a, extra)
        },
        |&((m, k, ref a_data), ref extra)| {
            let Some(a) = as_matrix(m, k, a_data) else { return Ok(()) };
            let n = 3usize;
            if extra.len() < 2 * k * n {
                return Ok(());
            }
            let b = Tensor::from_vec(extra[..k * n].to_vec(), &[k, n]).unwrap();
            let c = Tensor::from_vec(extra[k * n..2 * k * n].to_vec(), &[k, n]).unwrap();
            let lhs = ops::matmul(&a, &ops::add(&b, &c).unwrap()).unwrap();
            let rhs = ops::add(
                &ops::matmul(&a, &b).unwrap(),
                &ops::matmul(&a, &c).unwrap(),
            )
            .unwrap();
            for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((x - y).abs() <= 1e-2 * x.abs().max(1.0), "{x} vs {y}");
            }
            Ok(())
        },
    );
}

/// Softmax rows are probability distributions.
#[test]
fn softmax_rows_are_distributions() {
    check(
        "softmax_rows_are_distributions",
        |rng| matrix_data(rng, 7),
        |&(m, n, ref data)| {
            let Some(t) = as_matrix(m, n, data) else { return Ok(()) };
            let s = ops::softmax_rows(&t).unwrap();
            let (m, n) = s.shape().as_matrix().unwrap();
            for i in 0..m {
                let row = &s.as_slice()[i * n..(i + 1) * n];
                prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)), "row {i}");
                let sum: f32 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4, "row {i} sums to {sum}");
            }
            Ok(())
        },
    );
}

/// im2col/col2im satisfy the adjoint identity
/// `<im2col(x), g> == <x, col2im(g)>`.
#[test]
fn im2col_adjoint() {
    check(
        "im2col_adjoint",
        |rng| {
            (
                rng.gen_range(3..7),
                rng.gen_range(3..7),
                rng.gen_range(1..4),
                rng.gen_range(0..2),
                rng.next_u32(),
            )
        },
        |&(h, w, kernel, padding, seed)| {
            if h == 0 || w == 0 || kernel == 0 {
                return Ok(()); // shrunk outside the conv domain
            }
            let spec = Conv2dSpec {
                in_channels: 2,
                out_channels: 1,
                kernel,
                stride: 1,
                padding,
            };
            if spec.output_hw(h, w).is_err() {
                return Ok(());
            }
            let x = Tensor::from_fn(&[2, h, w], |i| {
                (((i as u32).wrapping_mul(seed | 1) >> 16) % 17) as f32 - 8.0
            });
            let patches = im2col(&x, &spec).unwrap();
            let g = Tensor::from_fn(patches.dims(), |i| {
                (((i as u32).wrapping_mul(seed.rotate_left(7) | 1) >> 16) % 13) as f32 - 6.0
            });
            let lhs: f64 = patches
                .as_slice()
                .iter()
                .zip(g.as_slice())
                .map(|(&a, &b)| (a * b) as f64)
                .sum();
            let back = col2im(&g, &spec, h, w).unwrap();
            let rhs: f64 = x
                .as_slice()
                .iter()
                .zip(back.as_slice())
                .map(|(&a, &b)| (a * b) as f64)
                .sum();
            prop_assert!((lhs - rhs).abs() <= 1e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
            Ok(())
        },
    );
}
