//! Cross-engine differential suite for the decode-fused GEMM.
//!
//! The fused path ([`gemm_encoded_with`]) runs a variable-length SPARK
//! decoder *inside* the cache-blocked GEMM loop, so its correctness claim
//! is the strongest the repo makes: for every dispatch variant, its output
//! is `to_bits()`-identical to
//!
//! 1. **decode-then-turbo** — `gemm_with` over [`EncodedMatrix::decode`]'s
//!    dense reconstruction (same variant), and
//! 2. **the seed kernel** — `ops::matmul_reference` over that same
//!    reconstruction.
//!
//! Random ragged shapes cover the steady state; the pinned adversarial
//! edges cover what random sampling reaches rarely: `m = 1`, `n = 1`,
//! `k = 0`, ragged `n % NR` and `k % KC` tails, all-zero weights, and
//! denormal-heavy operands on both sides of the product.

use spark_tensor::encoded::EncodedMatrix;
use spark_tensor::gemm::{gemm_encoded_with, gemm_with, Epilogue, GemmVariant, Layout, KC, NR};
use spark_tensor::{ops, Tensor};
use spark_util::prop::check;
use spark_util::prop_assert;
use spark_util::Rng;

/// A random fused-GEMM case: ragged `m`/`k`/`n` (with `k` ranging past
/// `KC` so multi-block accumulator parking is exercised), ~25% exact
/// zeros in `A`, and a bias row for the epilogue properties.
type Case = (usize, usize, usize, Vec<f32>, Vec<f32>, Vec<f32>);

fn fused_case(rng: &mut Rng) -> Case {
    let m = rng.gen_range(1..24);
    let k = rng.gen_range(1..2 * KC + 40);
    let n = rng.gen_range(1..80);
    let mut a = Vec::with_capacity(m * k);
    for _ in 0..m * k {
        a.push(if rng.gen_f64() < 0.25 {
            0.0
        } else {
            rng.gen_range_f32(-4.0, 4.0)
        });
    }
    let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range_f32(-2.0, 2.0)).collect();
    let bias: Vec<f32> = (0..n).map(|_| rng.gen_range_f32(-3.0, 3.0)).collect();
    (m, k, n, a, b, bias)
}

fn case_valid((m, k, n, a, b, bias): &Case) -> bool {
    *m > 0 && *k > 0 && *n > 0 && a.len() == m * k && b.len() == k * n && bias.len() == *n
}

fn bits_eq(got: &[f32], want: &[f32]) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("length {} vs {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g.to_bits() != w.to_bits() {
            return Err(format!(
                "element {i}: {g} ({:#x}) vs {w} ({:#x})",
                g.to_bits(),
                w.to_bits()
            ));
        }
    }
    Ok(())
}

/// Runs one (a, b) pair through all three engines under every available
/// variant and demands bit equality.
fn assert_cross_engine(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], ctx: &str) {
    let at = Tensor::from_vec(a.to_vec(), &[m.max(1), k]).unwrap();
    let bt = Tensor::from_vec(b.to_vec(), &[k, n]).unwrap();
    let em = EncodedMatrix::encode(&bt).expect("finite weights encode");
    let decoded = em.decode().expect("self-encoded matrix decodes");
    let want = ops::matmul_reference(&at, &decoded).unwrap();
    for v in GemmVariant::available() {
        let fused = gemm_encoded_with(v, a, &em, m, Epilogue::None)
            .unwrap_or_else(|e| panic!("{ctx} {}: fused path errored: {e}", v.name()));
        let dense = gemm_with(v, Layout::Nn, a, decoded.as_slice(), m, k, n, Epilogue::None);
        if let Err(e) = bits_eq(&fused, want.as_slice()) {
            panic!("{ctx} {} fused vs reference: {e}", v.name());
        }
        if let Err(e) = bits_eq(&fused, &dense) {
            panic!("{ctx} {} fused vs decode-then-turbo: {e}", v.name());
        }
    }
}

/// Random ragged shapes: fused == decode-then-turbo == reference, to the
/// bit, under every variant.
#[test]
fn fused_bit_identical_to_decode_then_gemm_and_reference() {
    check(
        "fused_bit_identical_to_decode_then_gemm_and_reference",
        fused_case,
        |case| {
            if !case_valid(case) {
                return Ok(());
            }
            let (m, k, n, ref a, ref b, _) = *case;
            let at = Tensor::from_vec(a.clone(), &[m, k]).unwrap();
            let bt = Tensor::from_vec(b.clone(), &[k, n]).unwrap();
            let em = EncodedMatrix::encode(&bt).expect("finite weights encode");
            let decoded = em.decode().expect("self-encoded matrix decodes");
            let want = ops::matmul_reference(&at, &decoded).unwrap();
            for v in GemmVariant::available() {
                let fused = match gemm_encoded_with(v, a, &em, m, Epilogue::None) {
                    Ok(out) => out,
                    Err(e) => {
                        prop_assert!(false, "{} {m}x{k}x{n}: fused errored: {e}", v.name());
                        unreachable!()
                    }
                };
                let dense =
                    gemm_with(v, Layout::Nn, a, decoded.as_slice(), m, k, n, Epilogue::None);
                if let Err(e) = bits_eq(&fused, want.as_slice()) {
                    prop_assert!(false, "{} {m}x{k}x{n} vs reference: {e}", v.name());
                }
                if let Err(e) = bits_eq(&fused, &dense) {
                    prop_assert!(false, "{} {m}x{k}x{n} vs decode-then-turbo: {e}", v.name());
                }
            }
            Ok(())
        },
    );
}

/// The fused bias / bias+ReLU epilogues match the dense engine and the
/// seed-op composition over the decoded weights, bit-for-bit.
#[test]
fn fused_epilogues_bit_identical() {
    check("fused_epilogues_bit_identical", fused_case, |case| {
        if !case_valid(case) {
            return Ok(());
        }
        let (m, k, n, ref a, ref b, ref bias) = *case;
        let at = Tensor::from_vec(a.clone(), &[m, k]).unwrap();
        let bt = Tensor::from_vec(b.clone(), &[k, n]).unwrap();
        let em = EncodedMatrix::encode(&bt).expect("finite weights encode");
        let decoded = em.decode().expect("self-encoded matrix decodes");
        let plain = ops::matmul_reference(&at, &decoded).unwrap();
        let want_bias = ops::add_bias(&plain, bias).unwrap();
        let want_bias_relu = ops::relu(&want_bias);
        for v in GemmVariant::available() {
            let got = gemm_encoded_with(v, a, &em, m, Epilogue::Bias(bias))
                .map_err(|e| e.to_string())?;
            if let Err(e) = bits_eq(&got, want_bias.as_slice()) {
                prop_assert!(false, "bias {} {m}x{k}x{n}: {e}", v.name());
            }
            let got = gemm_encoded_with(v, a, &em, m, Epilogue::BiasRelu(bias))
                .map_err(|e| e.to_string())?;
            if let Err(e) = bits_eq(&got, want_bias_relu.as_slice()) {
                prop_assert!(false, "bias_relu {} {m}x{k}x{n}: {e}", v.name());
            }
        }
        // The public encoded ops route through the same engine.
        let got = ops::matmul_bias_encoded(&at, &em, bias).map_err(|e| e.to_string())?;
        if let Err(e) = bits_eq(got.as_slice(), want_bias.as_slice()) {
            prop_assert!(false, "ops::matmul_bias_encoded {m}x{k}x{n}: {e}");
        }
        let got = ops::matmul_bias_relu_encoded(&at, &em, bias).map_err(|e| e.to_string())?;
        if let Err(e) = bits_eq(got.as_slice(), want_bias_relu.as_slice()) {
            prop_assert!(false, "ops::matmul_bias_relu_encoded {m}x{k}x{n}: {e}");
        }
        Ok(())
    });
}

/// `encode_transposed` + the fused walk equals transposing first and going
/// through the plain encoded path — the encode-time blocked transpose is
/// exact.
#[test]
fn fused_nt_matches_materialized_transpose() {
    check("fused_nt_matches_materialized_transpose", fused_case, |case| {
        if !case_valid(case) {
            return Ok(());
        }
        let (m, k, n, ref a, ref b, _) = *case;
        let at = Tensor::from_vec(a.clone(), &[m, k]).unwrap();
        // B given as n x k, multiplied as A · Bᵀ.
        let bnk = Tensor::from_vec(b.clone(), &[n, k]).unwrap();
        let em_t = EncodedMatrix::encode_transposed(&bnk).map_err(|e| e.to_string())?;
        let em = EncodedMatrix::encode(&ops::transpose(&bnk).unwrap()).map_err(|e| e.to_string())?;
        let want = ops::matmul_encoded(&at, &em).map_err(|e| e.to_string())?;
        let got = ops::matmul_nt_encoded(&at, &em_t).map_err(|e| e.to_string())?;
        bits_eq(got.as_slice(), want.as_slice())
            .map_err(|e| format!("nt {m}x{k}x{n}: {e}"))?;
        Ok(())
    });
}

/// Pinned adversarial edges, per variant: degenerate dims, ragged panel
/// and depth-block tails, all-zero weights.
#[test]
fn adversarial_edges_bit_identical() {
    let mut rng = Rng::seed_from_u64(0x0F05_EDC0);
    let shapes: &[(usize, usize, usize, &str)] = &[
        (1, 50, 33, "m=1"),
        (7, 40, 1, "n=1"),
        (1, 1, 1, "scalar"),
        (5, KC, NR, "exact KC x NR"),
        (5, KC + 1, NR + 1, "KC/NR +1 tails"),
        (5, KC - 1, NR - 1, "KC/NR -1 tails"),
        (9, 2 * KC + 7, 3 * NR + 5, "multi-block ragged"),
        (3, 3, 2 * NR, "row tail only"),
    ];
    for &(m, k, n, label) in shapes {
        let a: Vec<f32> = (0..m * k)
            .map(|_| {
                if rng.gen_f64() < 0.25 {
                    0.0
                } else {
                    rng.gen_range_f32(-4.0, 4.0)
                }
            })
            .collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range_f32(-2.0, 2.0)).collect();
        assert_cross_engine(m, k, n, &a, &b, label);
    }
    // All-zero weights: every decoded panel row is zero, the zero-skip on
    // A never fires for B's sake, and the output must be exactly zero.
    assert_cross_engine(6, 37, 21, &vec![1.5; 6 * 37], &vec![0.0; 37 * 21], "all-zero B");
    // All-zero A: the skip branch takes every iteration.
    assert_cross_engine(6, 37, 21, &vec![0.0; 6 * 37], &vec![0.25; 37 * 21], "all-zero A");
}

/// `k = 0` runs one zero-depth block: accumulators stay zero, the
/// epilogue still fires, and the empty panels still validate.
#[test]
fn k_zero_applies_epilogue() {
    let em = EncodedMatrix::encode(&Tensor::zeros(&[0, 5])).unwrap();
    let bias = [1.0f32, -2.0, 0.5, 4.0, -0.25];
    for v in GemmVariant::available() {
        let got = gemm_encoded_with(v, &[], &em, 3, Epilogue::Bias(&bias)).unwrap();
        assert_eq!(got.len(), 15, "{}", v.name());
        for (j, g) in got.iter().enumerate() {
            assert_eq!(g.to_bits(), bias[j % 5].to_bits(), "{} col {j}", v.name());
        }
        let got = gemm_encoded_with(v, &[], &em, 3, Epilogue::BiasRelu(&bias)).unwrap();
        for (j, g) in got.iter().enumerate() {
            assert_eq!(g.to_bits(), bias[j % 5].max(0.0).to_bits(), "{}", v.name());
        }
    }
}

/// Denormal-heavy operands: a weight tensor whose dequantization step is
/// itself subnormal, and an `A` full of subnormals. The fused path must
/// reproduce the reference's subnormal arithmetic exactly — no
/// flush-to-zero anywhere in the pipeline.
#[test]
fn denormal_heavy_operands_bit_identical() {
    let mut rng = Rng::seed_from_u64(0xDE_0054);
    let (m, k, n) = (5, KC + 9, 2 * NR + 3);
    // Weight magnitudes around 1e-38: alpha/255 lands deep in the
    // subnormal range, so every decoded value is subnormal.
    let b: Vec<f32> = (0..k * n)
        .map(|_| rng.gen_range_f32(-1.0, 1.0) * 1e-38)
        .collect();
    let a: Vec<f32> = (0..m * k)
        .map(|_| {
            if rng.gen_f64() < 0.25 {
                0.0
            } else {
                rng.gen_range_f32(-4.0, 4.0)
            }
        })
        .collect();
    assert_cross_engine(m, k, n, &a, &b, "subnormal B");
    // Subnormal A against ordinary weights.
    let a_sub: Vec<f32> = (0..m * k)
        .map(|_| rng.gen_range_f32(-1.0, 1.0) * f32::MIN_POSITIVE * 0.5)
        .collect();
    let b_ord: Vec<f32> = (0..k * n).map(|_| rng.gen_range_f32(-2.0, 2.0)).collect();
    assert_cross_engine(m, k, n, &a_sub, &b_ord, "subnormal A");
}
