//! SPARK-encoded weight matrices in GEMM panel order.
//!
//! [`EncodedMatrix`] is the *native serving format* for weights: the
//! matrix lives in memory as container-v2 nibble streams
//! ([`spark_codec::write_container`] images) plus a bit-packed sign plane
//! and a per-tensor [`PrecisionProfile`], never as dense `f32`. The fused
//! GEMM path ([`crate::gemm::gemm_encoded_with`]) decodes each `KC x NR`
//! block of a panel on the fly inside the cache-blocked loop.
//!
//! # Panel-major element order
//!
//! SPARK codes are variable-length (one or two nibbles), so a stream has
//! no random access: the only way to reach element `e` is to decode
//! elements `0..e`. The encoder therefore serializes the logical `k x n`
//! operand in exactly the order the GEMM packer consumes it — one stream
//! per `NR`-wide column panel, elements depth-major within the panel
//! (`(kk, lane)` for `kk` in `0..k`, `lane` in `0..w`) — so the fused
//! packer is a single forward pass per panel. The sign plane uses the same
//! order, one bit per element.
//!
//! # Value reconstruction
//!
//! Dequantization mirrors `spark-quant`'s `MagnitudeCodes::dequantize`
//! bit-for-bit: `step = scale / qmax`, `value = code as f32 * step`,
//! negated where the sign bit is set. Both [`EncodedMatrix::decode`] (the
//! decode-then-GEMM reference path) and the fused panel decoder evaluate
//! this exact expression, which is half of the fused path's bit-identity
//! argument (the other half is the GEMM schedule itself, see
//! [`crate::gemm`]).
//!
//! # Trust boundary
//!
//! Container bytes are untrusted until validated. [`EncodedMatrix::decode`]
//! goes through [`spark_codec::read_container`] (full validation);
//! [`PanelDecoder::new`] re-validates the header — magic, version, count
//! plausibility, payload length, FNV-1a checksum, padding nibble — on
//! every fused GEMM call, so corrupted bytes smuggled in through
//! [`EncodedMatrix::from_raw_parts`] surface as a typed [`EncodedError`],
//! never a panic or a silently wrong output.

use crate::gemm::NR;
use crate::{stats, ShapeError, Tensor};
use spark_codec::{
    stream_checksum, ContainerError, DecodeError, EncodePlan, EncodeMode, HEADER_LEN,
};

/// Errors from encoding, decoding, or running GEMM over an
/// [`EncodedMatrix`].
#[derive(Debug)]
pub enum EncodedError {
    /// A panel container failed validation (header, checksum, payload).
    Container(ContainerError),
    /// A panel nibble stream is malformed.
    Decode(DecodeError),
    /// Operand shapes are inconsistent.
    Shape(ShapeError),
    /// The source tensor holds NaN or infinite values, which the
    /// magnitude quantization cannot represent.
    NonFinite,
}

impl std::fmt::Display for EncodedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodedError::Container(e) => write!(f, "panel container: {e}"),
            EncodedError::Decode(e) => write!(f, "panel stream: {e}"),
            EncodedError::Shape(e) => write!(f, "shape: {e}"),
            EncodedError::NonFinite => write!(f, "non-finite value in source tensor"),
        }
    }
}

impl std::error::Error for EncodedError {}

impl From<ContainerError> for EncodedError {
    fn from(e: ContainerError) -> Self {
        EncodedError::Container(e)
    }
}

impl From<DecodeError> for EncodedError {
    fn from(e: DecodeError) -> Self {
        EncodedError::Decode(e)
    }
}

impl From<ShapeError> for EncodedError {
    fn from(e: ShapeError) -> Self {
        EncodedError::Shape(e)
    }
}

/// Per-tensor dequantization metadata: the magnitude represented by the
/// full-scale code and the code bit-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionProfile {
    /// Magnitude of the full-scale code (the per-tensor `alpha`).
    pub scale: f32,
    /// Code bit-width (the SPARK codec consumes 8-bit code words).
    pub bits: u8,
}

impl PrecisionProfile {
    /// The largest representable code as `f32` (`2^bits - 1`).
    pub fn qmax(self) -> f32 {
        ((1u64 << self.bits) - 1) as f32
    }

    /// The dequantization step `scale / qmax` — the exact expression
    /// `spark-quant` uses, evaluated once so every element sees the same
    /// rounded step.
    pub fn step(self) -> f32 {
        self.scale / self.qmax()
    }
}

/// A weight matrix held as SPARK container-v2 nibble streams in GEMM
/// panel order, plus the sign plane and [`PrecisionProfile`] needed to
/// reconstruct `f32` values.
///
/// Logically a `k x n` GEMM `B` operand. Build one with
/// [`EncodedMatrix::encode`] (from a row-major `k x n` tensor) or
/// [`EncodedMatrix::encode_transposed`] (from `n x k`, fusing the
/// transpose into the panel serialization), multiply with
/// [`crate::ops::matmul_encoded`] and friends, and reconstruct the dense
/// tensor with [`EncodedMatrix::decode`].
#[derive(Debug, Clone)]
pub struct EncodedMatrix {
    k: usize,
    n: usize,
    profile: PrecisionProfile,
    /// One serialized container per `NR`-wide column panel.
    panels: Vec<Vec<u8>>,
    /// Bit-packed signs per panel, same element order as the stream.
    signs: Vec<Vec<u8>>,
    /// Aggregate code statistics (empty for [`Self::from_raw_parts`]).
    stats: spark_codec::CodeStats,
}

impl EncodedMatrix {
    /// Encodes a row-major `k x n` tensor (matrix interpretation) into
    /// panel-major SPARK streams.
    ///
    /// # Errors
    ///
    /// [`EncodedError::NonFinite`] for NaN/infinite input.
    pub fn encode(t: &Tensor) -> Result<Self, EncodedError> {
        let (k, n) = t.shape().as_matrix()?;
        let src = t.as_slice();
        Self::encode_panels(t, k, n, |kk, j| src[kk * n + j])
    }

    /// Encodes an `n x k` row-major tensor as the logical `k x n` operand
    /// `tᵀ` — the blocked transpose is fused into the panel serialization,
    /// so `matmul_nt`-shaped weights encode straight into the same panel
    /// format with no materialized transpose.
    ///
    /// # Errors
    ///
    /// [`EncodedError::NonFinite`] for NaN/infinite input.
    pub fn encode_transposed(t: &Tensor) -> Result<Self, EncodedError> {
        let (n, k) = t.shape().as_matrix()?;
        let src = t.as_slice();
        Self::encode_panels(t, k, n, |kk, j| src[j * k + kk])
    }

    fn encode_panels(
        t: &Tensor,
        k: usize,
        n: usize,
        get: impl Fn(usize, usize) -> f32,
    ) -> Result<Self, EncodedError> {
        if t.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(EncodedError::NonFinite);
        }
        // The exact front-end `spark-quant`'s MagnitudeQuantizer applies:
        // per-tensor scale from the absolute maximum (1.0 for an all-zero
        // tensor), magnitudes rounded into 0..=qmax, signs kept aside.
        let alpha = stats::abs_max(t);
        let alpha = if alpha == 0.0 { 1.0 } else { alpha };
        let profile = PrecisionProfile { scale: alpha, bits: 8 };
        let qmax = profile.qmax();
        let plan = EncodePlan::new(EncodeMode::Compensated);
        let panel_count = n.div_ceil(NR);
        let mut panels = Vec::with_capacity(panel_count);
        let mut signs = Vec::with_capacity(panel_count);
        let mut stats = spark_codec::CodeStats::new();
        let mut codes = Vec::new();
        for p in 0..panel_count {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            codes.clear();
            codes.reserve(k * w);
            let mut sign_bits = vec![0u8; (k * w).div_ceil(8)];
            for kk in 0..k {
                for l in 0..w {
                    let x = get(kk, j0 + l);
                    let e = codes.len();
                    if x < 0.0 {
                        sign_bits[e >> 3] |= 1 << (e & 7);
                    }
                    codes.push((x.abs() / alpha * qmax).round().min(qmax) as u8);
                }
            }
            let enc = plan.encode(&codes);
            stats.merge(&enc.stats);
            let mut bytes = Vec::with_capacity(HEADER_LEN + enc.stream.byte_len());
            // Infallible: writing into a Vec cannot fail.
            spark_codec::write_container(&enc, &mut bytes)
                .map_err(|e| EncodedError::Container(ContainerError::Io(e)))?;
            panels.push(bytes);
            signs.push(sign_bits);
        }
        Ok(Self { k, n, profile, panels, signs, stats })
    }

    /// Reassembles a matrix from raw parts *without validating the
    /// container bytes* — the zero-copy load path, and the door the fault
    /// plane walks corrupted bytes through. Only the structural
    /// invariants the fused packer indexes by are checked here; byte-level
    /// corruption surfaces later as a typed [`EncodedError`] from
    /// [`Self::decode`] or the fused GEMM, never as a panic.
    ///
    /// # Errors
    ///
    /// [`EncodedError::Shape`] when the panel or sign-plane layout does
    /// not match the dimensions.
    pub fn from_raw_parts(
        k: usize,
        n: usize,
        profile: PrecisionProfile,
        panels: Vec<Vec<u8>>,
        signs: Vec<Vec<u8>>,
    ) -> Result<Self, EncodedError> {
        let panel_count = n.div_ceil(NR);
        if panels.len() != panel_count || signs.len() != panel_count {
            return Err(EncodedError::Shape(ShapeError::new(format!(
                "raw parts hold {} panels / {} sign planes, dims {k}x{n} need {panel_count}",
                panels.len(),
                signs.len(),
            ))));
        }
        for (p, s) in signs.iter().enumerate() {
            let w = NR.min(n - p * NR);
            if s.len() != (k * w).div_ceil(8) {
                return Err(EncodedError::Shape(ShapeError::new(format!(
                    "panel {p} sign plane holds {} bytes, {} elements need {}",
                    s.len(),
                    k * w,
                    (k * w).div_ceil(8),
                ))));
            }
        }
        Ok(Self {
            k,
            n,
            profile,
            panels,
            signs,
            stats: spark_codec::CodeStats::new(),
        })
    }

    /// Depth (rows) of the logical `k x n` operand.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Columns of the logical `k x n` operand.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The dequantization profile.
    pub fn profile(&self) -> PrecisionProfile {
        self.profile
    }

    /// Number of `NR`-wide column panels.
    pub fn panels(&self) -> usize {
        self.panels.len()
    }

    /// Width of panel `p` (always `NR` except a ragged last panel).
    pub fn panel_width(&self, p: usize) -> usize {
        NR.min(self.n - p * NR)
    }

    /// The serialized container bytes of panel `p`.
    pub fn panel_container(&self, p: usize) -> &[u8] {
        &self.panels[p]
    }

    /// The bit-packed sign plane of panel `p`.
    pub fn panel_signs(&self, p: usize) -> &[u8] {
        &self.signs[p]
    }

    /// Aggregate code statistics from encoding (empty when the matrix was
    /// rebuilt with [`Self::from_raw_parts`]).
    pub fn stats(&self) -> &spark_codec::CodeStats {
        &self.stats
    }

    /// Bytes this matrix actually occupies resident in memory: container
    /// images (headers + packed nibble payloads) plus the sign planes.
    pub fn resident_bytes(&self) -> usize {
        self.panels.iter().map(Vec::len).sum::<usize>()
            + self.signs.iter().map(Vec::len).sum::<usize>()
    }

    /// Bytes the same matrix would occupy as dense `f32`.
    pub fn dense_bytes(&self) -> usize {
        4 * self.k * self.n
    }

    /// `resident_bytes / dense_bytes` (0 for an empty matrix).
    pub fn footprint_ratio(&self) -> f64 {
        if self.k == 0 || self.n == 0 {
            return 0.0;
        }
        self.resident_bytes() as f64 / self.dense_bytes() as f64
    }

    /// Opens a validating streaming decoder over panel `p` for the fused
    /// GEMM packer.
    pub(crate) fn panel_decoder(&self, p: usize) -> Result<PanelDecoder<'_>, EncodedError> {
        PanelDecoder::new(
            &self.panels[p],
            &self.signs[p],
            self.k * self.panel_width(p),
            self.profile.step(),
        )
    }

    /// Decodes the matrix back to a dense row-major `k x n` tensor — the
    /// decode-then-GEMM reference path the fused kernels are proven
    /// bit-identical against. Every panel goes through the full
    /// [`spark_codec::read_container`] validation.
    ///
    /// # Errors
    ///
    /// Typed [`EncodedError`] for any corrupted or inconsistent panel.
    pub fn decode(&self) -> Result<Tensor, EncodedError> {
        let step = self.profile.step();
        let mut out = vec![0.0f32; self.k * self.n];
        for p in 0..self.panels() {
            let j0 = p * NR;
            let w = self.panel_width(p);
            let et = spark_codec::read_container(self.panels[p].as_slice())?;
            if et.elements != self.k * w {
                return Err(EncodedError::Container(ContainerError::Corrupt(format!(
                    "panel {p} holds {} elements, dims {}x{w} need {}",
                    et.elements,
                    self.k,
                    self.k * w,
                ))));
            }
            let codes = spark_codec::decode_stream(&et.stream)?;
            let sign_bits = &self.signs[p];
            for (e, &c) in codes.iter().enumerate() {
                let mag = c as f32 * step;
                let neg = sign_bits[e >> 3] >> (e & 7) & 1 == 1;
                out[(e / w) * self.n + j0 + e % w] = if neg { -mag } else { mag };
            }
        }
        Tensor::from_vec(out, &[self.k, self.n]).map_err(EncodedError::Shape)
    }
}

/// Decoder over one panel's container bytes: validates the header eagerly
/// (including the FNV-1a checksum, so a corrupted payload is rejected
/// *before* any value reaches an accumulator), bulk-decodes the whole code
/// stream through the bit-parallel engine ([`spark_codec::bulk`]), then
/// serves depth-blocks of dequantized values to the fused packer as pure
/// table reads. The upfront code buffer is one byte per element — for a
/// `KC x NR` panel group a few KiB, dwarfed by the `f32` panel buffers the
/// GEMM already holds — and it removes the per-nibble FSM step from the
/// KC-loop entirely.
pub(crate) struct PanelDecoder<'a> {
    signs: &'a [u8],
    codes: Vec<u8>,
    elements: usize,
    step: f32,
    emitted: usize,
}

impl<'a> PanelDecoder<'a> {
    /// Validates the container image and positions the decoder at the
    /// first element.
    ///
    /// # Errors
    ///
    /// Typed [`EncodedError::Container`] for any header, length, checksum,
    /// or padding violation, and when the header's element count does not
    /// match `expected`.
    pub(crate) fn new(
        container: &'a [u8],
        signs: &'a [u8],
        expected: usize,
        step: f32,
    ) -> Result<Self, EncodedError> {
        if container.len() < HEADER_LEN {
            return Err(ContainerError::Corrupt(format!(
                "container holds {} bytes, the header alone is {HEADER_LEN}",
                container.len()
            ))
            .into());
        }
        let (header, payload) = container.split_at(HEADER_LEN);
        if header[0..4] != spark_codec::container::MAGIC {
            let mut magic = [0u8; 4];
            magic.copy_from_slice(&header[0..4]);
            return Err(ContainerError::BadMagic(magic).into());
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4-byte slice"));
        if version != spark_codec::container::VERSION {
            return Err(ContainerError::BadVersion(version).into());
        }
        let elements = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice"));
        let nibbles = u64::from_le_bytes(header[16..24].try_into().expect("8-byte slice"));
        let checksum = u64::from_le_bytes(header[24..32].try_into().expect("8-byte slice"));
        if nibbles < elements || nibbles > elements.saturating_mul(2) {
            return Err(ContainerError::Corrupt(format!(
                "header says {elements} elements in {nibbles} nibbles, \
                 but every value takes one or two nibbles"
            ))
            .into());
        }
        let elements = elements as usize;
        let nibbles = nibbles as usize;
        if elements != expected {
            return Err(ContainerError::Corrupt(format!(
                "panel header says {elements} elements, the matrix layout needs {expected}"
            ))
            .into());
        }
        if payload.len() != nibbles.div_ceil(2) {
            return Err(ContainerError::Corrupt(format!(
                "panel payload holds {} bytes, header promises {}",
                payload.len(),
                nibbles.div_ceil(2)
            ))
            .into());
        }
        let found = stream_checksum(payload);
        if found != checksum {
            return Err(ContainerError::ChecksumMismatch { expected: checksum, found }.into());
        }
        if nibbles % 2 == 1 && payload[nibbles / 2] & 0x0F != 0 {
            return Err(
                ContainerError::Corrupt("final padding nibble is not zero".into()).into(),
            );
        }
        if signs.len() < expected.div_ceil(8) {
            return Err(EncodedError::Shape(ShapeError::new(format!(
                "sign plane holds {} bytes, {expected} elements need {}",
                signs.len(),
                expected.div_ceil(8)
            ))));
        }
        // Bulk-decode the whole panel now. A checksum-valid stream always
        // holds every promised value, but raw-parts callers can forge a
        // consistent header over a mismatched stream; the boundary pass
        // exposes the real count (or a truncated long code) before any
        // output is allocated, so the guards stay typed.
        let variant = spark_codec::DecodeVariant::detect();
        let resolved = spark_codec::bulk::resolve_len_with(variant, payload, nibbles)?;
        if resolved < elements {
            return Err(ContainerError::Corrupt(format!(
                "stream exhausted after {resolved} of {elements} elements"
            ))
            .into());
        }
        if resolved > elements {
            return Err(ContainerError::Corrupt(format!(
                "stream holds more than the promised {elements} elements"
            ))
            .into());
        }
        let mut codes = Vec::with_capacity(elements);
        spark_codec::bulk::decode_payload_into(variant, payload, nibbles, &mut codes);
        Ok(Self {
            signs,
            codes,
            elements,
            step,
            emitted: 0,
        })
    }

    /// Decodes the next `rows` depth-rows of a `w`-wide panel into `dst`,
    /// one `NR`-strided row per depth step (`dst[r * NR + lane]`); lanes
    /// `w..NR` are left untouched (the caller pre-zeroes them).
    ///
    /// # Errors
    ///
    /// [`EncodedError::Container`] when the caller asks for more elements
    /// than the panel holds (a packer-layout bug, kept typed).
    pub(crate) fn decode_rows(
        &mut self,
        dst: &mut [f32],
        rows: usize,
        w: usize,
    ) -> Result<(), EncodedError> {
        debug_assert!(dst.len() >= rows * NR || rows == 0);
        if rows * w > self.elements - self.emitted {
            return Err(ContainerError::Corrupt(format!(
                "stream holds more than the promised {} elements",
                self.elements
            ))
            .into());
        }
        for r in 0..rows {
            let e0 = self.emitted + r * w;
            let (row, codes) = (&mut dst[r * NR..r * NR + w], &self.codes[e0..e0 + w]);
            for (l, (slot, &code)) in row.iter_mut().zip(codes).enumerate() {
                let e = e0 + l;
                // Bit-for-bit the MagnitudeCodes::dequantize expression.
                let mag = code as f32 * self.step;
                let neg = self.signs[e >> 3] >> (e & 7) & 1 == 1;
                *slot = if neg { -mag } else { mag };
            }
        }
        self.emitted += rows * w;
        Ok(())
    }

    /// Asserts the panel is fully consumed: every promised element served
    /// to the packer.
    ///
    /// # Errors
    ///
    /// [`EncodedError::Container`] when elements remain.
    pub(crate) fn finish(&self) -> Result<(), EncodedError> {
        if self.emitted != self.elements {
            return Err(ContainerError::Corrupt(format!(
                "panel not fully consumed: {}/{} elements",
                self.emitted, self.elements
            ))
            .into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_util::Rng;

    fn random_matrix(k: usize, n: usize, seed: u64) -> Tensor {
        let mut rng = Rng::seed_from_u64(seed);
        Tensor::from_fn(&[k, n], |_| {
            if rng.gen_f64() < 0.15 {
                0.0
            } else {
                (rng.gen_f64() as f32) * 2.0 - 1.0
            }
        })
    }

    #[test]
    fn encode_decode_round_trip_is_the_quantized_reconstruction() {
        // decode() must equal quantize -> SPARK round-trip -> dequantize,
        // element for element, in the row-major layout.
        let t = random_matrix(9, 21, 3);
        let em = EncodedMatrix::encode(&t).unwrap();
        let back = em.decode().unwrap();
        assert_eq!(back.dims(), &[9, 21]);
        let alpha = stats::abs_max(&t);
        let step = alpha / 255.0;
        for (i, (&x, &y)) in t.as_slice().iter().zip(back.as_slice()).enumerate() {
            let code = (x.abs() / alpha * 255.0).round().min(255.0) as u8;
            let rt = spark_codec::encode_value(code).decode();
            let want = if x < 0.0 { -(rt as f32 * step) } else { rt as f32 * step };
            assert_eq!(y.to_bits(), want.to_bits(), "element {i}: {y} vs {want}");
        }
    }

    #[test]
    fn encode_transposed_matches_encode_of_transpose() {
        let t = random_matrix(13, 7, 11);
        let tt = crate::ops::transpose(&t).unwrap();
        let a = EncodedMatrix::encode(&t).unwrap();
        let b = EncodedMatrix::encode_transposed(&tt).unwrap();
        assert_eq!(a.k(), b.k());
        assert_eq!(a.n(), b.n());
        for p in 0..a.panels() {
            assert_eq!(a.panel_container(p), b.panel_container(p), "panel {p}");
            assert_eq!(a.panel_signs(p), b.panel_signs(p), "signs {p}");
        }
        assert_eq!(
            a.decode().unwrap().as_slice(),
            b.decode().unwrap().as_slice()
        );
    }

    #[test]
    fn footprint_beats_dense_f32() {
        let t = random_matrix(64, 64, 5);
        let em = EncodedMatrix::encode(&t).unwrap();
        // Worst case is ~1.16 bytes/element (all long codes + signs); any
        // real tensor sits far under the 4 bytes/element dense baseline.
        assert!(em.resident_bytes() < em.dense_bytes() / 2);
        assert!(em.footprint_ratio() < 0.5);
    }

    #[test]
    fn zero_and_degenerate_matrices() {
        for (k, n) in [(0, 5), (5, 0), (0, 0), (1, 1), (3, 16), (2, 17)] {
            let t = Tensor::zeros(&[k, n]);
            let em = EncodedMatrix::encode(&t).unwrap();
            let back = em.decode().unwrap();
            assert_eq!(back.dims(), &[k, n]);
            assert!(back.as_slice().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn non_finite_rejected() {
        let t = Tensor::from_vec(vec![1.0, f32::NAN], &[1, 2]).unwrap();
        assert!(matches!(
            EncodedMatrix::encode(&t),
            Err(EncodedError::NonFinite)
        ));
    }

    #[test]
    fn raw_parts_round_trip_and_layout_checks() {
        let t = random_matrix(6, 18, 9);
        let em = EncodedMatrix::encode(&t).unwrap();
        let want = em.decode().unwrap();
        let panels: Vec<Vec<u8>> = (0..em.panels()).map(|p| em.panel_container(p).to_vec()).collect();
        let signs: Vec<Vec<u8>> = (0..em.panels()).map(|p| em.panel_signs(p).to_vec()).collect();
        let rebuilt =
            EncodedMatrix::from_raw_parts(6, 18, em.profile(), panels.clone(), signs.clone())
                .unwrap();
        assert_eq!(rebuilt.decode().unwrap().as_slice(), want.as_slice());
        // Wrong panel count.
        assert!(EncodedMatrix::from_raw_parts(6, 18, em.profile(), panels[..1].to_vec(), signs.clone()).is_err());
        // Wrong sign plane length.
        let mut bad_signs = signs;
        bad_signs[0].pop();
        assert!(EncodedMatrix::from_raw_parts(6, 18, em.profile(), panels, bad_signs).is_err());
    }

    #[test]
    fn corrupted_container_bytes_fail_typed_in_both_paths() {
        let t = random_matrix(8, 20, 17);
        let em = EncodedMatrix::encode(&t).unwrap();
        let signs: Vec<Vec<u8>> = (0..em.panels()).map(|p| em.panel_signs(p).to_vec()).collect();
        for (offset, label) in [(0usize, "magic"), (4, "version"), (9, "elements"), (40, "payload")] {
            let mut panels: Vec<Vec<u8>> =
                (0..em.panels()).map(|p| em.panel_container(p).to_vec()).collect();
            panels[1][offset] ^= 0x10;
            let bad = EncodedMatrix::from_raw_parts(8, 20, em.profile(), panels, signs.clone())
                .unwrap();
            assert!(bad.decode().is_err(), "decode accepted corrupted {label}");
            assert!(bad.panel_decoder(1).is_err(), "panel decoder accepted corrupted {label}");
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = EncodedError::from(DecodeError::TruncatedLongCode);
        assert!(e.to_string().contains("long code"));
        assert!(EncodedError::NonFinite.to_string().contains("finite"));
    }
}
