//! Elementwise and linear-algebra operations on [`Tensor`].

use crate::encoded::{EncodedError, EncodedMatrix};
use crate::gemm::{self, Epilogue, Layout};
use crate::{Tensor, ShapeError};

fn matmul_dims(a: &Tensor, b: &Tensor) -> Result<(usize, usize, usize), ShapeError> {
    let (m, ka) = a.shape().as_matrix()?;
    let (kb, n) = b.shape().as_matrix()?;
    if ka != kb {
        return Err(ShapeError::new(format!(
            "matmul inner dims differ: {ka} vs {kb}"
        )));
    }
    Ok((m, ka, n))
}

/// Matrix multiplication `A (m x k) * B (k x n) -> C (m x n)`.
///
/// Higher-rank inputs are interpreted as matrices by collapsing leading
/// dimensions (see [`crate::Shape::as_matrix`]).
///
/// Executed by the blocked, SIMD-dispatched [`crate::gemm`] backend; the
/// result is bit-identical to [`matmul_reference`].
///
/// # Errors
///
/// Returns [`ShapeError`] when the inner dimensions differ or either input is
/// a scalar.
///
/// ```
/// use spark_tensor::{Tensor, ops};
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
/// let c = ops::matmul(&a, &b)?;
/// assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok::<(), spark_tensor::ShapeError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, k, n) = matmul_dims(a, b)?;
    let out = gemm::gemm_auto(Layout::Nn, a.as_slice(), b.as_slice(), m, k, n, Epilogue::None);
    Tensor::from_vec(out, &[m, n])
}

/// The original scalar `matmul` kernel, retained verbatim as the oracle the
/// turbo backend is proven bit-identical against (and as the baseline the
/// GEMM benchmark reports speedup over).
///
/// # Errors
///
/// Returns [`ShapeError`] under the same conditions as [`matmul`].
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, k, n) = matmul_dims(a, b)?;
    let out = gemm::reference(Layout::Nn, a.as_slice(), b.as_slice(), m, k, n, Epilogue::None);
    Tensor::from_vec(out, &[m, n])
}

/// Transpose-free `A · Bᵀ`: `A` is `m x k`, `B` is `n x k`, the result is
/// `m x n` — bit-identical to `matmul(a, &transpose(b))` without
/// materializing the transpose (the backend packs `B` straight into
/// column panels).
///
/// # Errors
///
/// Returns [`ShapeError`] when the `k` dimensions differ or either input is
/// a scalar.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, ka) = a.shape().as_matrix()?;
    let (n, kb) = b.shape().as_matrix()?;
    if ka != kb {
        return Err(ShapeError::new(format!(
            "matmul_nt inner dims differ: {ka} vs {kb}"
        )));
    }
    let out = gemm::gemm_auto(Layout::Nt, a.as_slice(), b.as_slice(), m, ka, n, Epilogue::None);
    Tensor::from_vec(out, &[m, n])
}

/// Transpose-free `Aᵀ · B`: `A` is `k x m`, `B` is `k x n`, the result is
/// `m x n` — bit-identical to `matmul(&transpose(a), b)` without
/// materializing the transpose (the kernels read `A` down its columns).
///
/// # Errors
///
/// Returns [`ShapeError`] when the `k` dimensions differ or either input is
/// a scalar.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (ka, m) = a.shape().as_matrix()?;
    let (kb, n) = b.shape().as_matrix()?;
    if ka != kb {
        return Err(ShapeError::new(format!(
            "matmul_tn inner dims differ: {ka} vs {kb}"
        )));
    }
    let out = gemm::gemm_auto(Layout::Tn, a.as_slice(), b.as_slice(), m, ka, n, Epilogue::None);
    Tensor::from_vec(out, &[m, n])
}

/// `matmul` with the bias row added in the output epilogue — bit-identical
/// to `add_bias(&matmul(a, b)?, bias)` in one pass.
///
/// # Errors
///
/// Returns [`ShapeError`] on a dimension mismatch or when `bias.len()`
/// differs from the column count.
pub fn matmul_bias(a: &Tensor, b: &Tensor, bias: &[f32]) -> Result<Tensor, ShapeError> {
    let (m, k, n) = matmul_dims(a, b)?;
    if bias.len() != n {
        return Err(ShapeError::element_count(n, bias.len()));
    }
    let out = gemm::gemm_auto(
        Layout::Nn,
        a.as_slice(),
        b.as_slice(),
        m,
        k,
        n,
        Epilogue::Bias(bias),
    );
    Tensor::from_vec(out, &[m, n])
}

/// `matmul` with bias and ReLU fused into the output epilogue —
/// bit-identical to `relu(&add_bias(&matmul(a, b)?, bias)?)` in one pass.
///
/// # Errors
///
/// Returns [`ShapeError`] on a dimension mismatch or when `bias.len()`
/// differs from the column count.
pub fn matmul_bias_relu(a: &Tensor, b: &Tensor, bias: &[f32]) -> Result<Tensor, ShapeError> {
    let (m, k, n) = matmul_dims(a, b)?;
    if bias.len() != n {
        return Err(ShapeError::element_count(n, bias.len()));
    }
    let out = gemm::gemm_auto(
        Layout::Nn,
        a.as_slice(),
        b.as_slice(),
        m,
        k,
        n,
        Epilogue::BiasRelu(bias),
    );
    Tensor::from_vec(out, &[m, n])
}

fn matmul_encoded_dims(a: &Tensor, b: &EncodedMatrix) -> Result<usize, EncodedError> {
    let (m, ka) = a.shape().as_matrix()?;
    if ka != b.k() {
        return Err(EncodedError::Shape(ShapeError::new(format!(
            "matmul inner dims differ: {ka} vs encoded {}",
            b.k()
        ))));
    }
    Ok(m)
}

/// [`matmul`] over a SPARK-encoded `B`: `A (m x k) * B (k x n) -> C
/// (m x n)` where `B` stays resident as nibble streams and is decoded
/// panel-by-panel inside the GEMM loop.
///
/// Bit-identical to `matmul(a, &b.decode()?)` — and therefore to
/// [`matmul_reference`] over the decoded matrix.
///
/// # Errors
///
/// Returns [`EncodedError`] on a dimension mismatch or when any panel
/// container fails validation.
pub fn matmul_encoded(a: &Tensor, b: &EncodedMatrix) -> Result<Tensor, EncodedError> {
    let m = matmul_encoded_dims(a, b)?;
    let out = gemm::gemm_encoded_auto(a.as_slice(), b, m, Epilogue::None)?;
    Tensor::from_vec(out, &[m, b.n()]).map_err(EncodedError::Shape)
}

/// [`matmul_nt`] over a SPARK-encoded weight: multiplies `A (m x k)` by
/// the transpose of the `n x k` matrix the operand was built from with
/// [`EncodedMatrix::encode_transposed`].
///
/// The blocked transpose already happened at encode time (the panels hold
/// the logical `k x n` operand), so this *is* the same fused walk as
/// [`matmul_encoded`] — the distinct name documents intent at call sites
/// that mirror a dense `matmul_nt`. Bit-identical to
/// `matmul_nt(a, &source)` when the source round-trips losslessly, and to
/// `matmul(a, &b.decode()?)` always.
///
/// # Errors
///
/// Returns [`EncodedError`] on a dimension mismatch or when any panel
/// container fails validation.
pub fn matmul_nt_encoded(a: &Tensor, b: &EncodedMatrix) -> Result<Tensor, EncodedError> {
    matmul_encoded(a, b)
}

/// [`matmul_bias`] over a SPARK-encoded `B` — bias fused into the output
/// epilogue of the decode-fused GEMM.
///
/// # Errors
///
/// Returns [`EncodedError`] on a dimension mismatch, a wrong bias length,
/// or when any panel container fails validation.
pub fn matmul_bias_encoded(
    a: &Tensor,
    b: &EncodedMatrix,
    bias: &[f32],
) -> Result<Tensor, EncodedError> {
    let m = matmul_encoded_dims(a, b)?;
    if bias.len() != b.n() {
        return Err(EncodedError::Shape(ShapeError::element_count(
            b.n(),
            bias.len(),
        )));
    }
    let out = gemm::gemm_encoded_auto(a.as_slice(), b, m, Epilogue::Bias(bias))?;
    Tensor::from_vec(out, &[m, b.n()]).map_err(EncodedError::Shape)
}

/// [`matmul_bias_relu`] over a SPARK-encoded `B` — bias and ReLU fused
/// into the output epilogue of the decode-fused GEMM.
///
/// # Errors
///
/// Returns [`EncodedError`] on a dimension mismatch, a wrong bias length,
/// or when any panel container fails validation.
pub fn matmul_bias_relu_encoded(
    a: &Tensor,
    b: &EncodedMatrix,
    bias: &[f32],
) -> Result<Tensor, EncodedError> {
    let m = matmul_encoded_dims(a, b)?;
    if bias.len() != b.n() {
        return Err(EncodedError::Shape(ShapeError::element_count(
            b.n(),
            bias.len(),
        )));
    }
    let out = gemm::gemm_encoded_auto(a.as_slice(), b, m, Epilogue::BiasRelu(bias))?;
    Tensor::from_vec(out, &[m, b.n()]).map_err(EncodedError::Shape)
}

/// Applies a fused [`Epilogue`] to one accumulated element of column `j` —
/// the same rounded operations, in the same order, as the separate
/// [`add_bias`] / [`relu`] passes.
#[inline(always)]
pub(crate) fn apply_epilogue(v: f32, j: usize, epi: Epilogue<'_>) -> f32 {
    match epi {
        Epilogue::None => v,
        Epilogue::Bias(bias) => v + bias[j],
        Epilogue::BiasRelu(bias) => (v + bias[j]).max(0.0),
    }
}

/// Transposes a matrix (rank-2 interpretation).
///
/// Walks `TB x TB` tiles so reads and writes both stay cache-resident
/// (the naive scatter touches a fresh output cache line per element once
/// `m` exceeds a few hundred).
///
/// # Errors
///
/// Returns [`ShapeError`] for scalars.
pub fn transpose(a: &Tensor) -> Result<Tensor, ShapeError> {
    const TB: usize = 32;
    let (m, n) = a.shape().as_matrix()?;
    let av = a.as_slice();
    let mut out = vec![0.0f32; m * n];
    for ib in (0..m).step_by(TB) {
        let ie = (ib + TB).min(m);
        for jb in (0..n).step_by(TB) {
            let je = (jb + TB).min(n);
            for i in ib..ie {
                for j in jb..je {
                    out[j * m + i] = av[i * n + j];
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, m])
}

/// Elementwise addition.
///
/// # Errors
///
/// Returns [`ShapeError`] when shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    zip_with(a, b, |x, y| x + y)
}

/// Elementwise subtraction `a - b`.
///
/// # Errors
///
/// Returns [`ShapeError`] when shapes differ.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    zip_with(a, b, |x, y| x - y)
}

/// Elementwise multiplication.
///
/// # Errors
///
/// Returns [`ShapeError`] when shapes differ.
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    zip_with(a, b, |x, y| x * y)
}

/// Combines two same-shaped tensors elementwise with `f`.
///
/// # Errors
///
/// Returns [`ShapeError`] when shapes differ.
pub fn zip_with(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor, ShapeError> {
    if a.shape() != b.shape() {
        return Err(ShapeError::new(format!(
            "elementwise op on mismatched shapes {} vs {}",
            a.shape(),
            b.shape()
        )));
    }
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| f(x, y))
        .collect();
    Tensor::from_vec(data, a.dims())
}

/// Scales every element by a constant.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x * s)
}

/// Adds a row vector `bias` (length n) to every row of an `m x n` matrix.
///
/// # Errors
///
/// Returns [`ShapeError`] when `bias.len()` differs from the column count.
pub fn add_bias(a: &Tensor, bias: &[f32]) -> Result<Tensor, ShapeError> {
    let (m, n) = a.shape().as_matrix()?;
    if bias.len() != n {
        return Err(ShapeError::element_count(n, bias.len()));
    }
    let av = a.as_slice();
    let mut out = Vec::with_capacity(m * n);
    for i in 0..m {
        for j in 0..n {
            out.push(av[i * n + j] + bias[j]);
        }
    }
    Tensor::from_vec(out, a.dims())
}

/// ReLU activation.
pub fn relu(a: &Tensor) -> Tensor {
    a.map(|x| x.max(0.0))
}

/// Row-wise softmax over the last dimension (matrix interpretation).
///
/// # Errors
///
/// Returns [`ShapeError`] for scalars.
pub fn softmax_rows(a: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, n) = a.shape().as_matrix()?;
    let av = a.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let row = &av[i * n..(i + 1) * n];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for (o, &x) in out[i * n..(i + 1) * n].iter_mut().zip(row) {
            let e = (x - max).exp();
            *o = e;
            sum += e;
        }
        for o in &mut out[i * n..(i + 1) * n] {
            *o /= sum;
        }
    }
    Tensor::from_vec(out, a.dims())
}

/// Row-wise layer normalization (zero mean, unit variance, then affine).
///
/// # Errors
///
/// Returns [`ShapeError`] for scalars or when `gamma`/`beta` lengths differ
/// from the column count.
pub fn layer_norm_rows(
    a: &Tensor,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) -> Result<Tensor, ShapeError> {
    let (m, n) = a.shape().as_matrix()?;
    if gamma.len() != n || beta.len() != n {
        return Err(ShapeError::new("layer_norm affine params wrong length"));
    }
    let av = a.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let row = &av[i * n..(i + 1) * n];
        let mean = row.iter().sum::<f32>() / n as f32;
        let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for j in 0..n {
            out[i * n + j] = (row[j] - mean) * inv * gamma[j] + beta[j];
        }
    }
    Tensor::from_vec(out, a.dims())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let c = matmul(&a, &Tensor::eye(2)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_vector_as_row() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = Tensor::eye(2);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[1, 2]);
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = transpose(&a).unwrap();
        assert_eq!(at.dims(), &[3, 2]);
        assert_eq!(transpose(&at).unwrap(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[3.0, 5.0], &[2]);
        assert_eq!(add(&a, &b).unwrap().as_slice(), &[4.0, 7.0]);
        assert_eq!(sub(&b, &a).unwrap().as_slice(), &[2.0, 3.0]);
        assert_eq!(mul(&a, &b).unwrap().as_slice(), &[3.0, 10.0]);
        assert!(add(&a, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn add_bias_per_column() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let c = add_bias(&a, &[10.0, 20.0]).unwrap();
        assert_eq!(c.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
        assert!(add_bias(&a, &[1.0]).is_err());
    }

    #[test]
    fn relu_clamps_negatives() {
        let a = t(&[-1.0, 0.0, 2.0], &[3]);
        assert_eq!(relu(&a).as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = t(&[1.0, 2.0, 3.0, 1.0, 1.0, 1.0], &[2, 3]);
        let s = softmax_rows(&a).unwrap();
        for i in 0..2 {
            let sum: f32 = s.as_slice()[i * 3..(i + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // uniform row softmaxes to uniform
        assert!((s.get(&[1, 0]).unwrap() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let a = t(&[1000.0, 1001.0], &[1, 2]);
        let s = softmax_rows(&a).unwrap();
        assert!(s.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn layer_norm_normalizes() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[1, 4]);
        let g = vec![1.0; 4];
        let b = vec![0.0; 4];
        let n = layer_norm_rows(&a, &g, &b, 1e-5).unwrap();
        let mean: f32 = n.as_slice().iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        let var: f32 = n.as_slice().iter().map(|x| x * x).sum::<f32>() / 4.0;
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn scale_multiplies() {
        let a = t(&[1.0, -2.0], &[2]);
        assert_eq!(scale(&a, 3.0).as_slice(), &[3.0, -6.0]);
    }

    #[test]
    fn matmul_encoded_matches_decode_then_matmul() {
        let a = Tensor::from_fn(&[5, 24], |i| ((i * 7) % 13) as f32 - 6.0);
        let b = Tensor::from_fn(&[24, 18], |i| ((i * 11) % 17) as f32 / 8.5 - 1.0);
        let em = EncodedMatrix::encode(&b).unwrap();
        let want = matmul(&a, &em.decode().unwrap()).unwrap();
        let got = matmul_encoded(&a, &em).unwrap();
        assert_eq!(got.dims(), &[5, 18]);
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
        // Dimension mismatch is typed.
        assert!(matmul_encoded(&Tensor::zeros(&[2, 3]), &em).is_err());
    }

    #[test]
    fn matmul_nt_encoded_uses_encode_time_transpose() {
        let a = Tensor::from_fn(&[4, 10], |i| (i % 5) as f32 - 2.0);
        let bt = Tensor::from_fn(&[9, 10], |i| ((i * 3) % 7) as f32 / 3.5 - 1.0);
        let em = EncodedMatrix::encode_transposed(&bt).unwrap();
        let want = matmul(&a, &em.decode().unwrap()).unwrap();
        let got = matmul_nt_encoded(&a, &em).unwrap();
        assert_eq!(got.dims(), &[4, 9]);
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn matmul_bias_encoded_epilogues_match_dense() {
        let a = Tensor::from_fn(&[3, 12], |i| (i % 7) as f32 - 3.0);
        let b = Tensor::from_fn(&[12, 20], |i| ((i * 5) % 9) as f32 / 4.5 - 1.0);
        let em = EncodedMatrix::encode(&b).unwrap();
        let dec = em.decode().unwrap();
        let bias: Vec<f32> = (0..20).map(|j| j as f32 * 0.5 - 4.0).collect();
        let want = matmul_bias(&a, &dec, &bias).unwrap();
        let got = matmul_bias_encoded(&a, &em, &bias).unwrap();
        assert_eq!(got.as_slice(), want.as_slice());
        let want = matmul_bias_relu(&a, &dec, &bias).unwrap();
        let got = matmul_bias_relu_encoded(&a, &em, &bias).unwrap();
        assert_eq!(got.as_slice(), want.as_slice());
        // Wrong bias length is typed.
        assert!(matmul_bias_encoded(&a, &em, &[0.0]).is_err());
        assert!(matmul_bias_relu_encoded(&a, &em, &[0.0]).is_err());
    }
}
