//! Error type for shape and dimension mismatches.

use std::error::Error;
use std::fmt;

/// Error returned when tensor shapes are inconsistent with an operation.
///
/// ```
/// use spark_tensor::{Tensor, ops};
/// let a = Tensor::zeros(&[2, 3]);
/// let b = Tensor::zeros(&[2, 3]);
/// assert!(ops::matmul(&a, &b).is_err()); // inner dims don't match
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    message: String,
}

impl ShapeError {
    /// Creates a shape error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Convenience constructor for "expected X elements, got Y" mismatches.
    pub fn element_count(expected: usize, got: usize) -> Self {
        Self::new(format!("expected {expected} elements, got {got}"))
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.message)
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ShapeError::new("bad dims");
        assert_eq!(e.to_string(), "shape error: bad dims");
    }

    #[test]
    fn element_count_formats_both_numbers() {
        let e = ShapeError::element_count(6, 4);
        assert!(e.to_string().contains('6'));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}
