//! Shape arithmetic for row-major dense tensors.

use std::fmt;

use crate::ShapeError;

/// The dimensions of a dense, row-major tensor.
///
/// A `Shape` owns its dimension list and provides the index arithmetic shared
/// by all tensor operations.
///
/// ```
/// use spark_tensor::Shape;
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.offset(&[1, 2, 3]), Some(23));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension list. A scalar is `&[]`.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
        }
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dims; 1 for a scalar).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index, or `None` when any
    /// coordinate is out of bounds or the rank differs.
    pub fn offset(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.dims.len() {
            return None;
        }
        let mut off = 0;
        let strides = self.strides();
        for ((&i, &d), &s) in index.iter().zip(&self.dims).zip(&strides) {
            if i >= d {
                return None;
            }
            off += i * s;
        }
        Some(off)
    }

    /// Checks that `self` can be reinterpreted as `other` (same element
    /// count).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the element counts differ.
    pub fn check_reshape(&self, other: &Shape) -> Result<(), ShapeError> {
        if self.len() == other.len() {
            Ok(())
        } else {
            Err(ShapeError::element_count(self.len(), other.len()))
        }
    }

    /// Interprets the shape as a matrix `(rows, cols)`.
    ///
    /// Rank-1 shapes are treated as a single row; higher ranks collapse all
    /// leading dimensions into rows.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] for scalars (rank 0).
    pub fn as_matrix(&self) -> Result<(usize, usize), ShapeError> {
        match self.dims.len() {
            0 => Err(ShapeError::new("scalar has no matrix interpretation")),
            1 => Ok((1, self.dims[0])),
            n => {
                let cols = self.dims[n - 1];
                let rows = self.dims[..n - 1].iter().product();
                Ok((rows, cols))
            }
        }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn zero_dim_is_empty() {
        let s = Shape::new(&[3, 0, 2]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_bounds_checked() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[0, 0]), Some(0));
        assert_eq!(s.offset(&[1, 2]), Some(5));
        assert_eq!(s.offset(&[2, 0]), None);
        assert_eq!(s.offset(&[0, 3]), None);
        assert_eq!(s.offset(&[0]), None);
    }

    #[test]
    fn reshape_check() {
        let a = Shape::new(&[2, 6]);
        assert!(a.check_reshape(&Shape::new(&[3, 4])).is_ok());
        assert!(a.check_reshape(&Shape::new(&[5])).is_err());
    }

    #[test]
    fn matrix_interpretation() {
        assert_eq!(Shape::new(&[3, 4]).as_matrix().unwrap(), (3, 4));
        assert_eq!(Shape::new(&[2, 3, 4]).as_matrix().unwrap(), (6, 4));
        assert_eq!(Shape::new(&[7]).as_matrix().unwrap(), (1, 7));
        assert!(Shape::new(&[]).as_matrix().is_err());
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2x3]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }
}
