//! Reductions and distribution statistics used by the quantizers and the
//! paper's characterization experiments (Fig 2, Fig 4).

use crate::Tensor;

/// Summary statistics of a tensor's values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest value (0 for empty tensors).
    pub min: f32,
    /// Largest value (0 for empty tensors).
    pub max: f32,
    /// Arithmetic mean.
    pub mean: f32,
    /// Population standard deviation.
    pub std: f32,
}

/// Computes min/max/mean/std in one pass.
///
/// Empty tensors yield all-zero statistics.
pub fn summarize(t: &Tensor) -> Summary {
    let data = t.as_slice();
    if data.is_empty() {
        return Summary {
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            std: 0.0,
        };
    }
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for &x in data {
        min = min.min(x);
        max = max.max(x);
        sum += x as f64;
        sum_sq += (x as f64) * (x as f64);
    }
    let n = data.len() as f64;
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);
    Summary {
        min,
        max,
        mean: mean as f32,
        std: var.sqrt() as f32,
    }
}

/// Maximum absolute value (the `alpha` used by symmetric quantizers).
pub fn abs_max(t: &Tensor) -> f32 {
    t.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// The `q`-th quantile (0.0..=1.0) of the absolute values, used by
/// clipping-based quantizers to suppress outliers.
///
/// Returns 0 for empty tensors. `q` is clamped to `[0, 1]`.
pub fn abs_quantile(t: &Tensor, q: f32) -> f32 {
    let mut mags: Vec<f32> = t.as_slice().iter().map(|x| x.abs()).collect();
    if mags.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    mags.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((mags.len() - 1) as f32 * q).round() as usize;
    mags[idx]
}

/// Mean squared error between two equal-length tensors.
///
/// # Panics
///
/// Panics when lengths differ (callers compare a tensor against its own
/// reconstruction, so a mismatch is a programming error).
pub fn mse(a: &Tensor, b: &Tensor) -> f64 {
    assert_eq!(a.len(), b.len(), "mse operands must have equal lengths");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum();
    sum / a.len() as f64
}

/// Signal-to-quantization-noise ratio in dB: `10 log10(E[x^2] / MSE)`.
///
/// Returns `f64::INFINITY` for an exact reconstruction of a nonzero signal,
/// and 0 for an all-zero signal.
pub fn sqnr_db(original: &Tensor, reconstructed: &Tensor) -> f64 {
    let err = mse(original, reconstructed);
    let power: f64 = if original.is_empty() {
        0.0
    } else {
        original
            .as_slice()
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            / original.len() as f64
    };
    if power == 0.0 {
        return 0.0;
    }
    if err == 0.0 {
        return f64::INFINITY;
    }
    10.0 * (power / err).log10()
}

/// Histogram of u8 code words, used for characterizing quantized
/// distributions (the blue/orange bars of Fig 2).
pub fn histogram_u8(codes: &[u8]) -> [u64; 256] {
    let mut h = [0u64; 256];
    for &c in codes {
        h[c as usize] += 1;
    }
    h
}

/// Fraction of code words falling in `[lo, hi]` (inclusive).
///
/// Returns 0 for an empty slice.
pub fn fraction_in_range(codes: &[u8], lo: u8, hi: u8) -> f64 {
    if codes.is_empty() {
        return 0.0;
    }
    let n = codes.iter().filter(|&&c| c >= lo && c <= hi).count();
    n as f64 / codes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32]) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[data.len()]).unwrap()
    }

    #[test]
    fn summary_basic() {
        let s = summarize(&t(&[1.0, 2.0, 3.0, 4.0]));
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-6);
        assert!((s.std - 1.118_034).abs() < 1e-4);
    }

    #[test]
    fn summary_empty() {
        let s = summarize(&Tensor::zeros(&[0]));
        assert_eq!(s, Summary { min: 0.0, max: 0.0, mean: 0.0, std: 0.0 });
    }

    #[test]
    fn abs_max_ignores_sign() {
        assert_eq!(abs_max(&t(&[-5.0, 3.0])), 5.0);
        assert_eq!(abs_max(&Tensor::zeros(&[0])), 0.0);
    }

    #[test]
    fn quantile_endpoints() {
        let x = t(&[1.0, -2.0, 3.0, -4.0]);
        assert_eq!(abs_quantile(&x, 0.0), 1.0);
        assert_eq!(abs_quantile(&x, 1.0), 4.0);
        // out-of-range q is clamped
        assert_eq!(abs_quantile(&x, 2.0), 4.0);
    }

    #[test]
    fn mse_and_sqnr() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[1.0, 2.0]);
        assert_eq!(mse(&a, &b), 0.0);
        assert_eq!(sqnr_db(&a, &b), f64::INFINITY);
        let c = t(&[0.0, 2.0]);
        assert_eq!(mse(&a, &c), 0.5);
        let s = sqnr_db(&a, &c);
        assert!((s - 10.0 * (2.5f64 / 0.5).log10()).abs() < 1e-9);
    }

    #[test]
    fn sqnr_of_zero_signal_is_zero() {
        let z = Tensor::zeros(&[4]);
        assert_eq!(sqnr_db(&z, &z), 0.0);
    }

    #[test]
    fn histogram_counts() {
        let h = histogram_u8(&[0, 0, 255, 7]);
        assert_eq!(h[0], 2);
        assert_eq!(h[7], 1);
        assert_eq!(h[255], 1);
        assert_eq!(h.iter().sum::<u64>(), 4);
    }

    #[test]
    fn fraction_in_range_inclusive() {
        let codes = [0u8, 7, 8, 255];
        assert_eq!(fraction_in_range(&codes, 0, 7), 0.5);
        assert_eq!(fraction_in_range(&codes, 8, 255), 0.5);
        assert_eq!(fraction_in_range(&[], 0, 255), 0.0);
    }
}
