//! Turbo GEMM backend: cache-blocked, SIMD-dispatched, row-parallel.
//!
//! Every accuracy experiment funnels through [`crate::ops::matmul`]; this
//! module is its engine. The design goal is throughput *without changing a
//! single output bit* relative to the original scalar kernel (retained as
//! [`crate::ops::matmul_reference`]), because the training tests pin exact
//! RNG-seeded expectations.
//!
//! # Bit-identity argument
//!
//! The reference kernel computes every output element as
//!
//! ```text
//! c[i][j] = fold over kk = 0..k (in order, skipping a[i][kk] == 0):
//!           c = c + a[i][kk] * b[kk][j]     // two roundings per step
//! ```
//!
//! The turbo kernels preserve exactly that recurrence per element:
//!
//! * **k-order unchanged** — each micro-kernel walks `kk` from 0 to `k`
//!   with one accumulator per output element;
//! * **separate multiply and add** — no FMA contraction, even on the
//!   AVX2+FMA tier, because a fused multiply-add rounds once where the
//!   reference rounds twice;
//! * **the `a == 0.0` skip is kept** per (row, kk), matching the reference
//!   even for non-finite `B` entries (`0 * inf` would otherwise inject
//!   NaNs the reference never sees);
//! * **vector lanes span output columns only** — different lanes are
//!   different output elements, so lane width never reorders an
//!   accumulation;
//! * **row-parallelism partitions output rows** across workers; each row's
//!   dot products are computed by exactly one worker with the same scalar
//!   schedule.
//!
//! The fused [`Epilogue`] applies `+ bias[j]` and then `max(x, 0.0)` after
//! the accumulator is complete — the same two rounded operations, in the
//! same order, as the separate `add_bias` / `relu` passes.
//!
//! `crates/tensor/tests/gemm_properties.rs` proves the identity against the
//! retained reference over random ragged shapes for every available
//! dispatch variant.
//!
//! # Blocking scheme
//!
//! `B` is processed in `NR`-wide column panels; rows of `A` are processed
//! `MR` at a time, giving an `MR x NR` register tile of accumulators that
//! is filled in one pass over `k` and stored once. Panel-aligned `B`
//! operands are read in place; ragged or transposed operands are packed
//! into zero-padded contiguous panels first (the packing for
//! [`Layout::Nt`] doubles as a blocked transpose, which is how
//! `matmul_nt`/`matmul_tn` avoid materializing `transpose` results).

use crate::encoded::{EncodedError, EncodedMatrix};
use crate::ops::apply_epilogue;

/// Column-panel width of the register tile (f32 lanes).
pub const NR: usize = 16;
/// Row height of the register tile.
pub const MR: usize = 4;
/// Depth block of the decode-fused engine ([`gemm_encoded_with`]): each
/// encoded panel is decoded and consumed `KC` rows at a time so the
/// active decode scratch stays cache-resident while partial accumulators
/// park in the output stripe between blocks.
pub const KC: usize = 128;
/// Panels per group in the decode-fused engine — matches the four-panel
/// column blocks of the AVX-512 steady-state kernel.
const GQ: usize = 4;

/// Below this many multiply-accumulates the blocked machinery costs more
/// than it saves; [`gemm_auto`] routes such calls to the reference loops.
const TURBO_MIN_MACS: usize = 1024;
/// Minimum multiply-accumulates before row-parallel fan-out pays for the
/// thread spawns.
const PAR_MIN_MACS: usize = 1 << 21;

/// Runtime-dispatched kernel tiers, mirroring the engine-variant pattern of
/// the systolic simulator (`crates/sim/src/systolic.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmVariant {
    /// Portable Rust micro-kernel (autovectorized by the compiler).
    Scalar,
    /// 8-lane AVX2 micro-kernel (requires `avx2` + `fma`; FMA is part of
    /// the platform tier but deliberately unused in the accumulation — see
    /// the module docs).
    Avx2,
    /// 16-lane AVX-512 micro-kernel (requires `avx512f`/`vl`/`dq`).
    Avx512,
}

impl GemmVariant {
    /// Picks the fastest variant the running CPU supports.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f")
                && is_x86_feature_detected!("avx512vl")
                && is_x86_feature_detected!("avx512dq")
            {
                return GemmVariant::Avx512;
            }
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                return GemmVariant::Avx2;
            }
        }
        GemmVariant::Scalar
    }

    /// Every variant the running CPU can execute (always includes
    /// [`GemmVariant::Scalar`]), for differential tests and benchmarks.
    pub fn available() -> Vec<Self> {
        let mut v = vec![GemmVariant::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                v.push(GemmVariant::Avx2);
            }
            if is_x86_feature_detected!("avx512f")
                && is_x86_feature_detected!("avx512vl")
                && is_x86_feature_detected!("avx512dq")
            {
                v.push(GemmVariant::Avx512);
            }
        }
        v
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            GemmVariant::Scalar => "scalar",
            GemmVariant::Avx2 => "avx2",
            GemmVariant::Avx512 => "avx512",
        }
    }
}

/// Operand layout of the `A` and `B` arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// `A` is `m x k`, `B` is `k x n` (plain matmul).
    Nn,
    /// `A` is `m x k`, `B` is `n x k`; computes `A · Bᵀ` without
    /// materializing the transpose.
    Nt,
    /// `A` is `k x m`, `B` is `k x n`; computes `Aᵀ · B` without
    /// materializing the transpose.
    Tn,
}

/// Fused output transform applied once per element after accumulation.
#[derive(Debug, Clone, Copy)]
pub enum Epilogue<'a> {
    /// Store the raw accumulator.
    None,
    /// `c + bias[j]` (the dense-layer bias row).
    Bias(&'a [f32]),
    /// `max(c + bias[j], 0.0)` — bias then ReLU in one pass.
    BiasRelu(&'a [f32]),
}

/// How rows of `A` are addressed: element `(i, kk)` lives at
/// `a[i * row + kk * step]`. `Nn`/`Nt` use `(k, 1)`; `Tn` uses `(1, m)`.
#[derive(Clone, Copy)]
struct AStride {
    row: usize,
    step: usize,
}

/// Zero-padded `NR`-wide panels with the first panel aligned to a cache
/// line: `panels()[p * k * NR + kk * NR + l]` is panel `p`, depth `kk`,
/// lane `l`.
struct PackedB {
    buf: Vec<f32>,
    off: usize,
}

impl PackedB {
    /// Allocates a zeroed panel buffer of `len` elements whose payload
    /// starts on a 64-byte boundary, so every panel row is one full-width
    /// aligned vector load.
    fn zeroed(len: usize) -> Self {
        let buf = vec![0.0f32; len + 15];
        let off = buf.as_ptr().align_offset(64).min(buf.len() - len);
        Self { buf, off }
    }

    fn panels(&self) -> &[f32] {
        &self.buf[self.off..]
    }

    fn panels_mut(&mut self) -> &mut [f32] {
        let off = self.off;
        &mut self.buf[off..]
    }
}

/// The `B` operand as the micro-kernel sees it: either packed zero-padded
/// `NR`-wide panels, or the caller's row-major buffer read in place.
enum BPlan {
    Packed(PackedB),
    /// Untouched `k x n` row-major storage; full panels only, a ragged
    /// column tail is handled by scalar loops.
    Direct,
}

/// Entry point used by `crates/tensor/src/ops.rs`: picks the dispatch
/// variant, falls back to the reference loops for tiny problems, and fans
/// large ones out over rows.
pub(crate) fn gemm_auto(
    layout: Layout,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) -> Vec<f32> {
    if m * k * n < TURBO_MIN_MACS {
        return reference(layout, a, b, m, k, n, epi);
    }
    gemm_impl(GemmVariant::detect(), layout, a, b, m, k, n, epi, auto_workers(m, k, n))
}

/// Runs the blocked kernels under an explicit dispatch `variant` (no tiny-
/// size fallback), for differential tests and benchmarks. Output is
/// bit-identical across variants and to the reference kernel.
pub fn gemm_with(
    variant: GemmVariant,
    layout: Layout,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) -> Vec<f32> {
    gemm_impl(variant, layout, a, b, m, k, n, epi, auto_workers(m, k, n))
}

fn auto_workers(m: usize, k: usize, n: usize) -> usize {
    let t = spark_util::par::thread_count();
    if t <= 1 || m < 2 * MR || m * k * n < PAR_MIN_MACS {
        return 1;
    }
    t.min(m / MR)
}

pub(crate) fn gemm_impl(
    variant: GemmVariant,
    layout: Layout,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
    workers: usize,
) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k, "A operand length");
    debug_assert_eq!(b.len(), k * n, "B operand length");
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 {
        return out;
    }
    let astride = match layout {
        Layout::Nn | Layout::Nt => AStride { row: k, step: 1 },
        Layout::Tn => AStride { row: 1, step: m },
    };
    let plan = match layout {
        // The transposed pack is mandatory (it *is* the blocked transpose);
        // row-major B is packed once enough rows amortize the copy and
        // either a ragged tail would otherwise run scalar over real work,
        // or B outgrows the L1 (packed panel pairs stay L1-resident across
        // row tiles where in-place strided reads would stream from L2).
        Layout::Nt => BPlan::Packed(pack_b_transposed(b, k, n)),
        Layout::Nn | Layout::Tn => {
            if (m >= 2 * MR && (k * n >= 4096 || (n % NR != 0 && n > NR))) || k * n >= (1 << 18) {
                BPlan::Packed(pack_b_rowmajor(b, k, n))
            } else {
                BPlan::Direct
            }
        }
    };
    if workers <= 1 {
        run_rows(variant, a, astride, b, &plan, &mut out, 0, m, k, n, epi);
    } else {
        // Chunk boundaries stay MR-aligned so register tiles never straddle
        // a worker split.
        let rows_per = m.div_ceil(workers).div_ceil(MR) * MR;
        spark_util::par::par_chunks_mut(&mut out, rows_per * n, |ci, chunk| {
            let r0 = ci * rows_per;
            let r1 = r0 + chunk.len() / n;
            run_rows(variant, a, astride, b, &plan, chunk, r0, r1, k, n, epi);
        });
    }
    out
}

/// Packs row-major `B` (`k x n`) into zero-padded `NR`-wide panels.
fn pack_b_rowmajor(b: &[f32], k: usize, n: usize) -> PackedB {
    let panels = n.div_ceil(NR);
    let mut packed = PackedB::zeroed(panels * k * NR);
    let dst = packed.panels_mut();
    for p in 0..panels {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let base = p * k * NR;
        for kk in 0..k {
            let src = &b[kk * n + j0..kk * n + j0 + w];
            dst[base + kk * NR..base + kk * NR + w].copy_from_slice(src);
        }
    }
    packed
}

/// Packs transposed `B` (`n x k` row-major, logical `k x n`) into the same
/// panel format — a fused blocked transpose. Depth is walked in `TK`-sized
/// blocks so reads and writes both stay cache-resident.
fn pack_b_transposed(bt: &[f32], k: usize, n: usize) -> PackedB {
    const TK: usize = 256;
    let panels = n.div_ceil(NR);
    let mut packed = PackedB::zeroed(panels * k * NR);
    let dst = packed.panels_mut();
    for p in 0..panels {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let base = p * k * NR;
        for kb in (0..k).step_by(TK) {
            let ke = (kb + TK).min(k);
            for l in 0..w {
                let src = &bt[(j0 + l) * k..(j0 + l) * k + k];
                for kk in kb..ke {
                    dst[base + kk * NR + l] = src[kk];
                }
            }
        }
    }
    packed
}

/// Computes output rows `r0..r1` into `out_chunk` (whose first element is
/// row `r0`, column 0).
#[allow(clippy::too_many_arguments)]
fn run_rows(
    variant: GemmVariant,
    a: &[f32],
    astride: AStride,
    b_raw: &[f32],
    plan: &BPlan,
    out_chunk: &mut [f32],
    r0: usize,
    r1: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) {
    let (bbuf, bstride, panels): (&[f32], usize, usize) = match plan {
        BPlan::Packed(p) => (p.panels(), NR, n.div_ceil(NR)),
        BPlan::Direct => (b_raw, n, n / NR),
    };
    // Panel pitch: offset from one panel's depth-row to the next panel's
    // same depth-row (the AVX-512 kernel fills two adjacent panels per
    // pass to double its independent accumulator chains).
    let b2off = match plan {
        BPlan::Packed(_) => k * NR,
        BPlan::Direct => NR,
    };
    // Phase 1 (AVX-512): four-panel column blocks, depth-blocked so the
    // active 4 x KC x NR sub-panel set stays L1-resident across every row
    // tile. Partial accumulators are parked in the output buffer between
    // depth blocks — an exact f32 round-trip, so each element still sees
    // one accumulation chain in ascending-k order (the epilogue fires only
    // after the final block).
    let mut quad_panels = 0;
    #[cfg(target_arch = "x86_64")]
    if variant == GemmVariant::Avx512 {
        let full_quads = panels / 4;
        quad_panels = full_quads * 4;
        let kc = if k > 192 && r1 - r0 >= 2 * MR { 128 } else { k };
        for qi in 0..full_quads {
            let p = qi * 4;
            let j0 = p * NR;
            let pbase = match plan {
                BPlan::Packed(_) => p * k * NR,
                BPlan::Direct => j0,
            };
            let mut kb = 0;
            while kb < k {
                let ke = (kb + kc).min(k);
                let (first, last) = (kb == 0, ke == k);
                let mut i = r0;
                while i + MR <= r1 {
                    let mut accs = [[[0.0f32; NR]; MR]; 4];
                    if !first {
                        for (q, accq) in accs.iter_mut().enumerate() {
                            let jq = j0 + q * NR;
                            let wq = NR.min(n - jq);
                            for (r, accr) in accq.iter_mut().enumerate() {
                                accr[..wq]
                                    .copy_from_slice(&out_chunk[(i - r0 + r) * n + jq..][..wq]);
                            }
                        }
                    }
                    // SAFETY: `i + MR <= r1 <= m` bounds the A pointers for
                    // depths kb..ke; the quad spans four panels that all
                    // have `ke` full NR-wide depth rows (packed panels are
                    // zero-padded); ISA verified at dispatch time.
                    unsafe {
                        let abase = a.as_ptr().add(i * astride.row + kb * astride.step);
                        let bpanel = bbuf.as_ptr().add(pbase + kb * bstride);
                        x86::mac4x4_avx512(abase, astride, bpanel, b2off, bstride, ke - kb, &mut accs);
                    }
                    for (q, accq) in accs.iter().enumerate() {
                        let jq = j0 + q * NR;
                        let wq = NR.min(n - jq);
                        for r in 0..MR {
                            let orow = &mut out_chunk[(i - r0 + r) * n + jq..][..wq];
                            if last && !matches!(epi, Epilogue::None) {
                                for (l, o) in orow.iter_mut().enumerate() {
                                    *o = apply_epilogue(accq[r][l], jq + l, epi);
                                }
                            } else {
                                // Final value or parked partial — memcpy of
                                // a full lane row compiles to vector stores.
                                orow.copy_from_slice(&accq[r][..wq]);
                            }
                        }
                    }
                    i += MR;
                }
                kb = ke;
            }
        }
    }
    // Phase 2: remainder panels for full row tiles, every panel for the
    // row tail, and (in direct mode) the ragged column tail.
    let mut i = r0;
    while i < r1 {
        let rows = MR.min(r1 - i);
        let mut p = if rows == MR { quad_panels } else { 0 };
        while p < panels {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            #[cfg(target_arch = "x86_64")]
            if rows == MR && variant == GemmVariant::Avx512 && p + 1 < panels {
                let w2 = NR.min(n - (j0 + NR));
                let mut acc0 = [[0.0f32; NR]; MR];
                let mut acc1 = [[0.0f32; NR]; MR];
                // SAFETY: as below, for two adjacent full panels.
                unsafe {
                    let abase = a.as_ptr().add(i * astride.row);
                    let bpanel = match plan {
                        BPlan::Packed(_) => bbuf.as_ptr().add(p * k * NR),
                        BPlan::Direct => bbuf.as_ptr().add(j0),
                    };
                    x86::mac4x2_avx512(
                        abase, astride, bpanel, b2off, bstride, k, &mut acc0, &mut acc1,
                    );
                }
                for r in 0..rows {
                    let orow = &mut out_chunk[(i - r0 + r) * n + j0..][..w];
                    for (l, o) in orow.iter_mut().enumerate() {
                        *o = apply_epilogue(acc0[r][l], j0 + l, epi);
                    }
                    let orow = &mut out_chunk[(i - r0 + r) * n + j0 + NR..][..w2];
                    for (l, o) in orow.iter_mut().enumerate() {
                        *o = apply_epilogue(acc1[r][l], j0 + NR + l, epi);
                    }
                }
                p += 2;
                continue;
            }
            let mut acc = [[0.0f32; NR]; MR];
            // SAFETY: `i + rows <= m` bounds the A pointers for every
            // (row, kk); panel `p` has k full NR-wide rows in both packed
            // (padded) and direct (full-panel) form; the variant's ISA
            // requirements were verified at dispatch time.
            unsafe {
                let abase = a.as_ptr().add(i * astride.row);
                let bpanel = match plan {
                    BPlan::Packed(_) => bbuf.as_ptr().add(p * k * NR),
                    BPlan::Direct => bbuf.as_ptr().add(j0),
                };
                if rows == MR {
                    match variant {
                        GemmVariant::Scalar => {
                            mac4_scalar(abase, astride, bpanel, bstride, k, &mut acc)
                        }
                        #[cfg(target_arch = "x86_64")]
                        GemmVariant::Avx2 => {
                            x86::mac4_avx2(abase, astride, bpanel, bstride, k, &mut acc)
                        }
                        #[cfg(target_arch = "x86_64")]
                        GemmVariant::Avx512 => {
                            x86::mac4_avx512(abase, astride, bpanel, bstride, k, &mut acc)
                        }
                        #[cfg(not(target_arch = "x86_64"))]
                        _ => mac4_scalar(abase, astride, bpanel, bstride, k, &mut acc),
                    }
                } else {
                    for r in 0..rows {
                        let arow = abase.add(r * astride.row);
                        match variant {
                            GemmVariant::Scalar => {
                                mac1_scalar(arow, astride.step, bpanel, bstride, k, &mut acc[r])
                            }
                            #[cfg(target_arch = "x86_64")]
                            GemmVariant::Avx2 => {
                                x86::mac1_avx2(arow, astride.step, bpanel, bstride, k, &mut acc[r])
                            }
                            #[cfg(target_arch = "x86_64")]
                            GemmVariant::Avx512 => x86::mac1_avx512(
                                arow,
                                astride.step,
                                bpanel,
                                bstride,
                                k,
                                &mut acc[r],
                            ),
                            #[cfg(not(target_arch = "x86_64"))]
                            _ => mac1_scalar(arow, astride.step, bpanel, bstride, k, &mut acc[r]),
                        }
                    }
                }
            }
            for r in 0..rows {
                let orow = &mut out_chunk[(i - r0 + r) * n + j0..][..w];
                for (l, o) in orow.iter_mut().enumerate() {
                    *o = apply_epilogue(acc[r][l], j0 + l, epi);
                }
            }
            p += 1;
        }
        // Direct mode leaves a ragged column tail; finish it with the
        // reference-schedule scalar loop.
        if matches!(plan, BPlan::Direct) && !n.is_multiple_of(NR) {
            let j0 = panels * NR;
            for r in 0..rows {
                let gi = i + r;
                for j in j0..n {
                    let mut sum = 0.0f32;
                    for kk in 0..k {
                        let aik = a[gi * astride.row + kk * astride.step];
                        if aik == 0.0 {
                            continue;
                        }
                        sum += aik * b_raw[kk * n + j];
                    }
                    out_chunk[(gi - r0) * n + j] = apply_epilogue(sum, j, epi);
                }
            }
        }
        i += rows;
    }
}

/// Portable `MR x NR` micro-kernel. The per-lane loop autovectorizes; the
/// zero-skip branch sits outside it, exactly like the reference kernel's
/// hoisted check.
///
/// Accumulation *resumes from* `acc` (zeros for a one-shot call, parked
/// partials when the caller depth-blocks) — every kernel in this module
/// shares that contract so partial sums can round-trip through `f32`
/// memory between depth blocks without changing a bit.
///
/// # Safety
///
/// `a` must be valid for reads at `r * astride.row + kk * astride.step`
/// for `r < MR`, `kk < k`; `b` for `kk * bstride + l` for `l < NR`.
unsafe fn mac4_scalar(
    a: *const f32,
    astride: AStride,
    b: *const f32,
    bstride: usize,
    k: usize,
    acc: &mut [[f32; NR]; MR],
) {
    // Two rows per pass: the pass's accumulators (2 x NR locals) fit the
    // baseline SSE register file, so LLVM keeps them out of memory across
    // the k loop; MR rows at once would spill every iteration.
    for (pair, base) in [(0usize, a), (2, a.add(2 * astride.row))] {
        let mut c0 = acc[pair];
        let mut c1 = acc[pair + 1];
        let (mut p0, mut p1) = (base, base.add(astride.row));
        for kk in 0..k {
            let brow = std::slice::from_raw_parts(b.add(kk * bstride), NR);
            let a0 = *p0;
            p0 = p0.add(astride.step);
            if a0 != 0.0 {
                for (c, &bv) in c0.iter_mut().zip(brow) {
                    *c += a0 * bv;
                }
            }
            let a1 = *p1;
            p1 = p1.add(astride.step);
            if a1 != 0.0 {
                for (c, &bv) in c1.iter_mut().zip(brow) {
                    *c += a1 * bv;
                }
            }
        }
        acc[pair] = c0;
        acc[pair + 1] = c1;
    }
}

/// Portable single-row micro-kernel (row tail of [`mac4_scalar`]).
///
/// # Safety
///
/// `a` valid at `kk * astep` for `kk < k`; `b` as in [`mac4_scalar`].
unsafe fn mac1_scalar(
    a: *const f32,
    astep: usize,
    b: *const f32,
    bstride: usize,
    k: usize,
    acc: &mut [f32; NR],
) {
    let mut c = *acc;
    let mut p = a;
    let mut bp = b;
    for _ in 0..k {
        let aik = *p;
        p = p.add(astep);
        let brow = std::slice::from_raw_parts(bp, NR);
        bp = bp.add(bstride);
        if aik == 0.0 {
            continue;
        }
        for (cl, &bv) in c.iter_mut().zip(brow) {
            *cl += aik * bv;
        }
    }
    *acc = c;
}

/// Reference-schedule loops for all three layouts with the fused epilogue;
/// the [`Layout::Nn`] arm is byte-for-byte the seed `matmul` kernel. Tiny
/// problems route here, and the property suite uses it as the oracle.
pub(crate) fn reference(
    layout: Layout,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    match layout {
        // ikj loop order: streams B rows, vectorizes the inner j loop.
        Layout::Nn => {
            for i in 0..m {
                for kk in 0..k {
                    let aik = a[i * k + kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n..(kk + 1) * n];
                    let crow = &mut out[i * n..(i + 1) * n];
                    for (c, &bkj) in crow.iter_mut().zip(brow) {
                        *c += aik * bkj;
                    }
                }
            }
        }
        // Dot-product form: both operand rows stream contiguously.
        Layout::Nt => {
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                for j in 0..n {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut sum = 0.0f32;
                    for (&aik, &bjk) in arow.iter().zip(brow) {
                        if aik == 0.0 {
                            continue;
                        }
                        sum += aik * bjk;
                    }
                    out[i * n + j] = sum;
                }
            }
        }
        // ikj with A read down its columns.
        Layout::Tn => {
            for i in 0..m {
                for kk in 0..k {
                    let aik = a[kk * m + i];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n..(kk + 1) * n];
                    let crow = &mut out[i * n..(i + 1) * n];
                    for (c, &bkj) in crow.iter_mut().zip(brow) {
                        *c += aik * bkj;
                    }
                }
            }
        }
    }
    if !matches!(epi, Epilogue::None) {
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = apply_epilogue(out[i * n + j], j, epi);
            }
        }
    }
    out
}

/// Decode-fused GEMM entry point used by `crates/tensor/src/ops.rs`:
/// `A · B` where `B` never exists as dense `f32` — each `KC x NR` block of
/// each SPARK-encoded panel is decoded on the fly into the 64-byte-aligned
/// scratch inside the cache-blocked loop.
pub(crate) fn gemm_encoded_auto(
    a: &[f32],
    b: &EncodedMatrix,
    m: usize,
    epi: Epilogue<'_>,
) -> Result<Vec<f32>, EncodedError> {
    gemm_encoded_impl(
        GemmVariant::detect(),
        a,
        b,
        m,
        epi,
        auto_workers(m, b.k(), b.n()),
    )
}

/// Runs the decode-fused kernels under an explicit dispatch `variant`, for
/// differential tests and benchmarks. Output is bit-identical across
/// variants, to `gemm_with` over the decoded matrix, and to the reference
/// kernel — the fused packer reconstructs exactly the values
/// [`EncodedMatrix::decode`] produces (same dequantization expression, no
/// reassociation), and the micro-kernels downstream of the packer are the
/// very same ones the dense path dispatches to.
///
/// # Errors
///
/// Typed [`EncodedError`] when any panel container fails validation or its
/// stream is malformed; the output buffer is discarded, never partially
/// returned.
pub fn gemm_encoded_with(
    variant: GemmVariant,
    a: &[f32],
    b: &EncodedMatrix,
    m: usize,
    epi: Epilogue<'_>,
) -> Result<Vec<f32>, EncodedError> {
    gemm_encoded_impl(variant, a, b, m, epi, auto_workers(m, b.k(), b.n()))
}

pub(crate) fn gemm_encoded_impl(
    variant: GemmVariant,
    a: &[f32],
    b: &EncodedMatrix,
    m: usize,
    epi: Epilogue<'_>,
    workers: usize,
) -> Result<Vec<f32>, EncodedError> {
    let (k, n) = (b.k(), b.n());
    debug_assert_eq!(a.len(), m * k, "A operand length");
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 {
        // Nothing to multiply, but the corruption contract still holds:
        // every panel header and payload checksum is validated.
        for p in 0..b.panels() {
            b.panel_decoder(p)?;
        }
        return Ok(out);
    }
    let groups = b.panels().div_ceil(GQ);
    // Group-parallel fan-out: each worker owns whole panel groups, so a
    // panel is decoded exactly once no matter the worker count and every
    // output element is written by exactly one worker.
    let stripes: Vec<Result<Vec<f32>, EncodedError>> = if workers > 1 && groups > 1 {
        let gids: Vec<usize> = (0..groups).collect();
        spark_util::par::par_map(&gids, |&g| fused_group(variant, a, b, m, g, epi))
    } else {
        (0..groups)
            .map(|g| fused_group(variant, a, b, m, g, epi))
            .collect()
    };
    for (g, stripe) in stripes.into_iter().enumerate() {
        let stripe = stripe?;
        let j0 = g * GQ * NR;
        let gw = stripe.len() / m;
        for r in 0..m {
            out[r * n + j0..r * n + j0 + gw].copy_from_slice(&stripe[r * gw..(r + 1) * gw]);
        }
    }
    Ok(out)
}

/// Computes one panel group (up to [`GQ`] adjacent `NR`-wide panels) of
/// the decode-fused product into an `m x gw` stripe.
///
/// Depth is walked in [`KC`]-row blocks: each block is decoded once into
/// the zero-padded scratch (resuming every panel's streaming decoder where
/// the previous block left it), then all `MR`-row tiles consume it.
/// Partial accumulators park in the stripe between blocks — an exact `f32`
/// round-trip, so each output element still sees one accumulation chain in
/// ascending-k order, and the epilogue fires only after the final block.
fn fused_group(
    variant: GemmVariant,
    a: &[f32],
    b: &EncodedMatrix,
    m: usize,
    g: usize,
    epi: Epilogue<'_>,
) -> Result<Vec<f32>, EncodedError> {
    let k = b.k();
    let p0 = g * GQ;
    let p1 = (p0 + GQ).min(b.panels());
    let gp = p1 - p0;
    let j0 = p0 * NR;
    let gw = (gp - 1) * NR + b.panel_width(p1 - 1);
    let astride = AStride { row: k, step: 1 };
    let mut stripe = vec![0.0f32; m * gw];
    let mut scratch = PackedB::zeroed(gp * KC * NR);
    let b2off = KC * NR;
    let mut decs = Vec::with_capacity(gp);
    for p in p0..p1 {
        decs.push(b.panel_decoder(p)?);
    }
    let mut kb = 0;
    // `loop` rather than `while kb < k` so k = 0 still runs one zero-depth
    // block and the epilogue fires.
    loop {
        let ke = (kb + KC).min(k);
        let depth = ke - kb;
        let (first, last) = (kb == 0, ke == k);
        {
            let dst = scratch.panels_mut();
            dst[..gp * b2off].fill(0.0);
            for (q, dec) in decs.iter_mut().enumerate() {
                let w = NR.min(gw - q * NR);
                dec.decode_rows(&mut dst[q * b2off..q * b2off + depth * NR], depth, w)?;
            }
        }
        let bbuf = scratch.panels();
        let mut i = 0;
        while i < m {
            let rows = MR.min(m - i);
            if rows == MR {
                // Steady state on AVX-512 with a full group: the same
                // four-panel register tile as the dense engine's phase 1.
                #[cfg(target_arch = "x86_64")]
                if variant == GemmVariant::Avx512 && gp == GQ {
                    let mut accs = [[[0.0f32; NR]; MR]; GQ];
                    if !first {
                        for (q, accq) in accs.iter_mut().enumerate() {
                            let wq = NR.min(gw - q * NR);
                            for (r, accr) in accq.iter_mut().enumerate() {
                                accr[..wq]
                                    .copy_from_slice(&stripe[(i + r) * gw + q * NR..][..wq]);
                            }
                        }
                    }
                    // SAFETY: `i + MR <= m` bounds the A pointers for
                    // depths kb..ke; all four scratch panels have `depth`
                    // full NR-wide zero-padded rows; ISA verified at
                    // dispatch time.
                    unsafe {
                        let abase = a.as_ptr().add(i * k + kb);
                        x86::mac4x4_avx512(abase, astride, bbuf.as_ptr(), b2off, NR, depth, &mut accs);
                    }
                    for (q, accq) in accs.iter().enumerate() {
                        let wq = NR.min(gw - q * NR);
                        let jq = j0 + q * NR;
                        for (r, accr) in accq.iter().enumerate() {
                            store_stripe(&mut stripe[(i + r) * gw + q * NR..][..wq], accr, jq, last, epi);
                        }
                    }
                    i += MR;
                    continue;
                }
                let mut q = 0;
                while q < gp {
                    let wq = NR.min(gw - q * NR);
                    let jq = j0 + q * NR;
                    #[cfg(target_arch = "x86_64")]
                    if variant == GemmVariant::Avx512 && q + 1 < gp {
                        let w2 = NR.min(gw - (q + 1) * NR);
                        let mut acc0 = [[0.0f32; NR]; MR];
                        let mut acc1 = [[0.0f32; NR]; MR];
                        if !first {
                            for r in 0..MR {
                                acc0[r][..wq]
                                    .copy_from_slice(&stripe[(i + r) * gw + q * NR..][..wq]);
                                acc1[r][..w2]
                                    .copy_from_slice(&stripe[(i + r) * gw + (q + 1) * NR..][..w2]);
                            }
                        }
                        // SAFETY: as above, for two adjacent scratch panels.
                        unsafe {
                            let abase = a.as_ptr().add(i * k + kb);
                            let bpanel = bbuf.as_ptr().add(q * b2off);
                            x86::mac4x2_avx512(
                                abase, astride, bpanel, b2off, NR, depth, &mut acc0, &mut acc1,
                            );
                        }
                        for r in 0..MR {
                            store_stripe(&mut stripe[(i + r) * gw + q * NR..][..wq], &acc0[r], jq, last, epi);
                            store_stripe(
                                &mut stripe[(i + r) * gw + (q + 1) * NR..][..w2],
                                &acc1[r],
                                jq + NR,
                                last,
                                epi,
                            );
                        }
                        q += 2;
                        continue;
                    }
                    let mut acc = [[0.0f32; NR]; MR];
                    if !first {
                        for (r, accr) in acc.iter_mut().enumerate() {
                            accr[..wq].copy_from_slice(&stripe[(i + r) * gw + q * NR..][..wq]);
                        }
                    }
                    // SAFETY: `i + MR <= m` bounds the A pointers for
                    // depths kb..ke; scratch panel `q` has `depth` full
                    // NR-wide zero-padded rows; ISA verified at dispatch.
                    unsafe {
                        let abase = a.as_ptr().add(i * k + kb);
                        let bpanel = bbuf.as_ptr().add(q * b2off);
                        match variant {
                            GemmVariant::Scalar => {
                                mac4_scalar(abase, astride, bpanel, NR, depth, &mut acc)
                            }
                            #[cfg(target_arch = "x86_64")]
                            GemmVariant::Avx2 => {
                                x86::mac4_avx2(abase, astride, bpanel, NR, depth, &mut acc)
                            }
                            #[cfg(target_arch = "x86_64")]
                            GemmVariant::Avx512 => {
                                x86::mac4_avx512(abase, astride, bpanel, NR, depth, &mut acc)
                            }
                            #[cfg(not(target_arch = "x86_64"))]
                            _ => mac4_scalar(abase, astride, bpanel, NR, depth, &mut acc),
                        }
                    }
                    for (r, accr) in acc.iter().enumerate() {
                        store_stripe(&mut stripe[(i + r) * gw + q * NR..][..wq], accr, jq, last, epi);
                    }
                    q += 1;
                }
            } else {
                for q in 0..gp {
                    let wq = NR.min(gw - q * NR);
                    let jq = j0 + q * NR;
                    for r in 0..rows {
                        let mut acc = [0.0f32; NR];
                        if !first {
                            acc[..wq].copy_from_slice(&stripe[(i + r) * gw + q * NR..][..wq]);
                        }
                        // SAFETY: `i + r < m` bounds the A row for depths
                        // kb..ke; scratch panel `q` as above.
                        unsafe {
                            let arow = a.as_ptr().add((i + r) * k + kb);
                            let bpanel = bbuf.as_ptr().add(q * b2off);
                            match variant {
                                GemmVariant::Scalar => {
                                    mac1_scalar(arow, 1, bpanel, NR, depth, &mut acc)
                                }
                                #[cfg(target_arch = "x86_64")]
                                GemmVariant::Avx2 => {
                                    x86::mac1_avx2(arow, 1, bpanel, NR, depth, &mut acc)
                                }
                                #[cfg(target_arch = "x86_64")]
                                GemmVariant::Avx512 => {
                                    x86::mac1_avx512(arow, 1, bpanel, NR, depth, &mut acc)
                                }
                                #[cfg(not(target_arch = "x86_64"))]
                                _ => mac1_scalar(arow, 1, bpanel, NR, depth, &mut acc),
                            }
                        }
                        store_stripe(&mut stripe[(i + r) * gw + q * NR..][..wq], &acc, jq, last, epi);
                    }
                }
            }
            i += rows;
        }
        if last {
            break;
        }
        kb = ke;
    }
    // Every panel stream must land exactly on its promised end; a crafted
    // container with excess payload fails here, typed.
    for dec in &decs {
        dec.finish()?;
    }
    Ok(stripe)
}

/// Writes one accumulator row back to the stripe: the fused epilogue on
/// the final depth block, a raw parked partial (exact `f32` copy) before.
#[inline(always)]
fn store_stripe(orow: &mut [f32], acc: &[f32; NR], jq: usize, last: bool, epi: Epilogue<'_>) {
    if last && !matches!(epi, Epilogue::None) {
        for (l, o) in orow.iter_mut().enumerate() {
            *o = apply_epilogue(acc[l], jq + l, epi);
        }
    } else {
        // Final value or parked partial — memcpy of the lane row compiles
        // to vector stores.
        orow.copy_from_slice(&acc[..orow.len()]);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{AStride, MR, NR};
    use std::arch::x86_64::*;

    /// # Safety
    ///
    /// Caller verified `avx2`; pointer contracts as in
    /// [`super::mac4_scalar`]. Multiplies and adds stay separate (no FMA)
    /// to keep the reference's two-roundings-per-step semantics.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mac4_avx2(
        a: *const f32,
        astride: AStride,
        b: *const f32,
        bstride: usize,
        k: usize,
        acc: &mut [[f32; NR]; MR],
    ) {
        // Resume from the caller's accumulators (zeros for a one-shot
        // call, parked partials under depth blocking).
        let mut c00 = _mm256_loadu_ps(acc[0].as_ptr());
        let mut c01 = _mm256_loadu_ps(acc[0].as_ptr().add(8));
        let mut c10 = _mm256_loadu_ps(acc[1].as_ptr());
        let mut c11 = _mm256_loadu_ps(acc[1].as_ptr().add(8));
        let mut c20 = _mm256_loadu_ps(acc[2].as_ptr());
        let mut c21 = _mm256_loadu_ps(acc[2].as_ptr().add(8));
        let mut c30 = _mm256_loadu_ps(acc[3].as_ptr());
        let mut c31 = _mm256_loadu_ps(acc[3].as_ptr().add(8));
        let (mut p0, mut p1, mut p2, mut p3) = (
            a,
            a.add(astride.row),
            a.add(2 * astride.row),
            a.add(3 * astride.row),
        );
        let mut bp = b;
        for _ in 0..k {
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            bp = bp.add(bstride);
            let a0 = *p0;
            p0 = p0.add(astride.step);
            if a0 != 0.0 {
                let v = _mm256_set1_ps(a0);
                c00 = _mm256_add_ps(c00, _mm256_mul_ps(v, b0));
                c01 = _mm256_add_ps(c01, _mm256_mul_ps(v, b1));
            }
            let a1 = *p1;
            p1 = p1.add(astride.step);
            if a1 != 0.0 {
                let v = _mm256_set1_ps(a1);
                c10 = _mm256_add_ps(c10, _mm256_mul_ps(v, b0));
                c11 = _mm256_add_ps(c11, _mm256_mul_ps(v, b1));
            }
            let a2 = *p2;
            p2 = p2.add(astride.step);
            if a2 != 0.0 {
                let v = _mm256_set1_ps(a2);
                c20 = _mm256_add_ps(c20, _mm256_mul_ps(v, b0));
                c21 = _mm256_add_ps(c21, _mm256_mul_ps(v, b1));
            }
            let a3 = *p3;
            p3 = p3.add(astride.step);
            if a3 != 0.0 {
                let v = _mm256_set1_ps(a3);
                c30 = _mm256_add_ps(c30, _mm256_mul_ps(v, b0));
                c31 = _mm256_add_ps(c31, _mm256_mul_ps(v, b1));
            }
        }
        _mm256_storeu_ps(acc[0].as_mut_ptr(), c00);
        _mm256_storeu_ps(acc[0].as_mut_ptr().add(8), c01);
        _mm256_storeu_ps(acc[1].as_mut_ptr(), c10);
        _mm256_storeu_ps(acc[1].as_mut_ptr().add(8), c11);
        _mm256_storeu_ps(acc[2].as_mut_ptr(), c20);
        _mm256_storeu_ps(acc[2].as_mut_ptr().add(8), c21);
        _mm256_storeu_ps(acc[3].as_mut_ptr(), c30);
        _mm256_storeu_ps(acc[3].as_mut_ptr().add(8), c31);
    }

    /// # Safety
    ///
    /// Caller verified `avx2`; pointer contracts as in
    /// [`super::mac1_scalar`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn mac1_avx2(
        a: *const f32,
        astep: usize,
        b: *const f32,
        bstride: usize,
        k: usize,
        acc: &mut [f32; NR],
    ) {
        let mut c0 = _mm256_loadu_ps(acc.as_ptr());
        let mut c1 = _mm256_loadu_ps(acc.as_ptr().add(8));
        let mut p = a;
        let mut bp = b;
        for _ in 0..k {
            let aik = *p;
            p = p.add(astep);
            if aik != 0.0 {
                let v = _mm256_set1_ps(aik);
                c0 = _mm256_add_ps(c0, _mm256_mul_ps(v, _mm256_loadu_ps(bp)));
                c1 = _mm256_add_ps(c1, _mm256_mul_ps(v, _mm256_loadu_ps(bp.add(8))));
            }
            bp = bp.add(bstride);
        }
        _mm256_storeu_ps(acc.as_mut_ptr(), c0);
        _mm256_storeu_ps(acc.as_mut_ptr().add(8), c1);
    }

    /// # Safety
    ///
    /// Caller verified `avx512f`/`vl`/`dq`; pointer contracts as in
    /// [`super::mac4_scalar`]. No FMA contraction (see module docs).
    #[target_feature(enable = "avx512f", enable = "avx512vl", enable = "avx512dq")]
    pub unsafe fn mac4_avx512(
        a: *const f32,
        astride: AStride,
        b: *const f32,
        bstride: usize,
        k: usize,
        acc: &mut [[f32; NR]; MR],
    ) {
        let mut c0 = _mm512_loadu_ps(acc[0].as_ptr());
        let mut c1 = _mm512_loadu_ps(acc[1].as_ptr());
        let mut c2 = _mm512_loadu_ps(acc[2].as_ptr());
        let mut c3 = _mm512_loadu_ps(acc[3].as_ptr());
        let (mut p0, mut p1, mut p2, mut p3) = (
            a,
            a.add(astride.row),
            a.add(2 * astride.row),
            a.add(3 * astride.row),
        );
        let mut bp = b;
        for _ in 0..k {
            let bv = _mm512_loadu_ps(bp);
            bp = bp.add(bstride);
            let a0 = *p0;
            p0 = p0.add(astride.step);
            if a0 != 0.0 {
                c0 = _mm512_add_ps(c0, _mm512_mul_ps(_mm512_set1_ps(a0), bv));
            }
            let a1 = *p1;
            p1 = p1.add(astride.step);
            if a1 != 0.0 {
                c1 = _mm512_add_ps(c1, _mm512_mul_ps(_mm512_set1_ps(a1), bv));
            }
            let a2 = *p2;
            p2 = p2.add(astride.step);
            if a2 != 0.0 {
                c2 = _mm512_add_ps(c2, _mm512_mul_ps(_mm512_set1_ps(a2), bv));
            }
            let a3 = *p3;
            p3 = p3.add(astride.step);
            if a3 != 0.0 {
                c3 = _mm512_add_ps(c3, _mm512_mul_ps(_mm512_set1_ps(a3), bv));
            }
        }
        _mm512_storeu_ps(acc[0].as_mut_ptr(), c0);
        _mm512_storeu_ps(acc[1].as_mut_ptr(), c1);
        _mm512_storeu_ps(acc[2].as_mut_ptr(), c2);
        _mm512_storeu_ps(acc[3].as_mut_ptr(), c3);
    }

    /// One depth-step of one A row against four resident B vectors.
    ///
    /// Two codegen details keep the A-side bookkeeping off the two
    /// floating-point ports (which the multiply/add chains must saturate):
    ///
    /// * the zero-skip is an *integer* test on the raw bits (true for
    ///   every non-zero value including NaN — which the reference also
    ///   does not skip — false only for `±0.0`); a plain `a != 0.0`
    ///   compiles to `vucomiss` plus two branches on an FP port;
    /// * the broadcast is pinned via inline asm to the memory-operand
    ///   `vbroadcastss zmm, [mem]` form — a pure load-port micro-op —
    ///   because LLVM otherwise CSEs the float load with the integer one
    ///   and emits `vpbroadcastd zmm, r32`, which occupies the same port
    ///   as the second FP unit.
    macro_rules! row_step {
        ($p:expr, $c:expr, $bv:ident) => {{
            let p: *const f32 = $p;
            let bits = (p as *const u32).read();
            if bits & 0x7fff_ffff != 0 {
                let v: __m512;
                core::arch::asm!(
                    "vbroadcastss {v}, dword ptr [{p}]",
                    v = out(zmm_reg) v,
                    p = in(reg) p,
                    options(pure, readonly, nostack),
                );
                for q in 0..4 {
                    $c[q] = _mm512_add_ps($c[q], _mm512_mul_ps(v, $bv[q]));
                }
            }
        }};
    }

    /// Fills four adjacent `NR`-wide panels (`b + q * b2off`) in one pass —
    /// sixteen independent accumulator chains (a full 4x64 register tile),
    /// amortizing the scalar A-load/zero-check/broadcast over 64 lanes.
    /// This is the steady-state kernel on AVX-512 parts: 32 vector FP ops
    /// per depth step saturate both FP ports while the A-side bookkeeping
    /// rides the load and branch ports.
    ///
    /// # Safety
    ///
    /// Caller verified `avx512f`/`vl`/`dq`; pointer contracts as in
    /// [`super::mac4_scalar`], for all four panels. No FMA contraction.
    #[target_feature(enable = "avx512f", enable = "avx512vl", enable = "avx512dq")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn mac4x4_avx512(
        a: *const f32,
        astride: AStride,
        b: *const f32,
        b2off: usize,
        bstride: usize,
        k: usize,
        accs: &mut [[[f32; NR]; MR]; 4],
    ) {
        // Resume from the caller's accumulators (zeros on the first depth
        // block, parked partials afterwards).
        let mut c: [[__m512; 4]; MR] = [[_mm512_setzero_ps(); 4]; MR];
        for (r, cr) in c.iter_mut().enumerate() {
            for (q, crq) in cr.iter_mut().enumerate() {
                *crq = _mm512_loadu_ps(accs[q][r].as_ptr());
            }
        }
        let (mut p0, mut p1, mut p2, mut p3) = (
            a,
            a.add(astride.row),
            a.add(2 * astride.row),
            a.add(3 * astride.row),
        );
        let mut bp = b;
        let s = astride.step;
        // Two depth steps per trip (same per-element sequence, half the
        // loop overhead), with the B streams prefetched one K-batch ahead.
        let mut rem = k;
        while rem >= 2 {
            _mm_prefetch::<_MM_HINT_T0>(bp.add(16 * bstride) as *const i8);
            _mm_prefetch::<_MM_HINT_T0>(bp.add(b2off + 16 * bstride) as *const i8);
            _mm_prefetch::<_MM_HINT_T0>(bp.add(2 * b2off + 16 * bstride) as *const i8);
            _mm_prefetch::<_MM_HINT_T0>(bp.add(3 * b2off + 16 * bstride) as *const i8);
            let bv = [
                _mm512_loadu_ps(bp),
                _mm512_loadu_ps(bp.add(b2off)),
                _mm512_loadu_ps(bp.add(2 * b2off)),
                _mm512_loadu_ps(bp.add(3 * b2off)),
            ];
            row_step!(p0, c[0], bv);
            row_step!(p1, c[1], bv);
            row_step!(p2, c[2], bv);
            row_step!(p3, c[3], bv);
            let bw = [
                _mm512_loadu_ps(bp.add(bstride)),
                _mm512_loadu_ps(bp.add(bstride + b2off)),
                _mm512_loadu_ps(bp.add(bstride + 2 * b2off)),
                _mm512_loadu_ps(bp.add(bstride + 3 * b2off)),
            ];
            row_step!(p0.add(s), c[0], bw);
            row_step!(p1.add(s), c[1], bw);
            row_step!(p2.add(s), c[2], bw);
            row_step!(p3.add(s), c[3], bw);
            p0 = p0.add(2 * s);
            p1 = p1.add(2 * s);
            p2 = p2.add(2 * s);
            p3 = p3.add(2 * s);
            bp = bp.add(2 * bstride);
            rem -= 2;
        }
        if rem == 1 {
            let bv = [
                _mm512_loadu_ps(bp),
                _mm512_loadu_ps(bp.add(b2off)),
                _mm512_loadu_ps(bp.add(2 * b2off)),
                _mm512_loadu_ps(bp.add(3 * b2off)),
            ];
            row_step!(p0, c[0], bv);
            row_step!(p1, c[1], bv);
            row_step!(p2, c[2], bv);
            row_step!(p3, c[3], bv);
        }
        for r in 0..MR {
            for q in 0..4 {
                _mm512_storeu_ps(accs[q][r].as_mut_ptr(), c[r][q]);
            }
        }
    }

    /// Fills two adjacent `NR`-wide panels (`b` and `b + b2off`) in one
    /// pass — eight independent accumulator chains, amortizing the scalar
    /// A-load/zero-check/broadcast over twice the lanes. Panel-count
    /// remainder kernel behind [`mac4x4_avx512`].
    ///
    /// # Safety
    ///
    /// Caller verified `avx512f`/`vl`/`dq`; pointer contracts as in
    /// [`super::mac4_scalar`], for both panels. No FMA contraction.
    #[target_feature(enable = "avx512f", enable = "avx512vl", enable = "avx512dq")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn mac4x2_avx512(
        a: *const f32,
        astride: AStride,
        b: *const f32,
        b2off: usize,
        bstride: usize,
        k: usize,
        acc0: &mut [[f32; NR]; MR],
        acc1: &mut [[f32; NR]; MR],
    ) {
        let mut c00 = _mm512_loadu_ps(acc0[0].as_ptr());
        let mut c01 = _mm512_loadu_ps(acc1[0].as_ptr());
        let mut c10 = _mm512_loadu_ps(acc0[1].as_ptr());
        let mut c11 = _mm512_loadu_ps(acc1[1].as_ptr());
        let mut c20 = _mm512_loadu_ps(acc0[2].as_ptr());
        let mut c21 = _mm512_loadu_ps(acc1[2].as_ptr());
        let mut c30 = _mm512_loadu_ps(acc0[3].as_ptr());
        let mut c31 = _mm512_loadu_ps(acc1[3].as_ptr());
        let (mut p0, mut p1, mut p2, mut p3) = (
            a,
            a.add(astride.row),
            a.add(2 * astride.row),
            a.add(3 * astride.row),
        );
        let mut bp = b;
        for _ in 0..k {
            let bv0 = _mm512_loadu_ps(bp);
            let bv1 = _mm512_loadu_ps(bp.add(b2off));
            bp = bp.add(bstride);
            let a0 = *p0;
            p0 = p0.add(astride.step);
            if a0 != 0.0 {
                let v = _mm512_set1_ps(a0);
                c00 = _mm512_add_ps(c00, _mm512_mul_ps(v, bv0));
                c01 = _mm512_add_ps(c01, _mm512_mul_ps(v, bv1));
            }
            let a1 = *p1;
            p1 = p1.add(astride.step);
            if a1 != 0.0 {
                let v = _mm512_set1_ps(a1);
                c10 = _mm512_add_ps(c10, _mm512_mul_ps(v, bv0));
                c11 = _mm512_add_ps(c11, _mm512_mul_ps(v, bv1));
            }
            let a2 = *p2;
            p2 = p2.add(astride.step);
            if a2 != 0.0 {
                let v = _mm512_set1_ps(a2);
                c20 = _mm512_add_ps(c20, _mm512_mul_ps(v, bv0));
                c21 = _mm512_add_ps(c21, _mm512_mul_ps(v, bv1));
            }
            let a3 = *p3;
            p3 = p3.add(astride.step);
            if a3 != 0.0 {
                let v = _mm512_set1_ps(a3);
                c30 = _mm512_add_ps(c30, _mm512_mul_ps(v, bv0));
                c31 = _mm512_add_ps(c31, _mm512_mul_ps(v, bv1));
            }
        }
        _mm512_storeu_ps(acc0[0].as_mut_ptr(), c00);
        _mm512_storeu_ps(acc0[1].as_mut_ptr(), c10);
        _mm512_storeu_ps(acc0[2].as_mut_ptr(), c20);
        _mm512_storeu_ps(acc0[3].as_mut_ptr(), c30);
        _mm512_storeu_ps(acc1[0].as_mut_ptr(), c01);
        _mm512_storeu_ps(acc1[1].as_mut_ptr(), c11);
        _mm512_storeu_ps(acc1[2].as_mut_ptr(), c21);
        _mm512_storeu_ps(acc1[3].as_mut_ptr(), c31);
    }

    /// # Safety
    ///
    /// Caller verified `avx512f`/`vl`/`dq`; pointer contracts as in
    /// [`super::mac1_scalar`].
    #[target_feature(enable = "avx512f", enable = "avx512vl", enable = "avx512dq")]
    pub unsafe fn mac1_avx512(
        a: *const f32,
        astep: usize,
        b: *const f32,
        bstride: usize,
        k: usize,
        acc: &mut [f32; NR],
    ) {
        let mut c = _mm512_loadu_ps(acc.as_ptr());
        let mut p = a;
        let mut bp = b;
        for _ in 0..k {
            let aik = *p;
            p = p.add(astep);
            if aik != 0.0 {
                c = _mm512_add_ps(c, _mm512_mul_ps(_mm512_set1_ps(aik), _mm512_loadu_ps(bp)));
            }
            bp = bp.add(bstride);
        }
        _mm512_storeu_ps(acc.as_mut_ptr(), c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_util::Rng;

    fn operands(m: usize, k: usize, n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut gen = |len: usize| -> Vec<f32> {
            (0..len)
                .map(|_| {
                    // ~20% exact zeros to exercise the skip branch.
                    if rng.gen_f64() < 0.2 {
                        0.0
                    } else {
                        (rng.gen_f64() as f32) * 2.0 - 1.0
                    }
                })
                .collect()
        };
        (gen(m * k), gen(k * n))
    }

    fn assert_bits_eq(got: &[f32], want: &[f32], ctx: &str) {
        assert_eq!(got.len(), want.len(), "{ctx}: length");
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: element {i}: {g} vs {w}");
        }
    }

    #[test]
    fn variants_match_reference_on_ragged_shapes() {
        // Shapes chosen to hit every path: full tiles, row tails, ragged
        // panels, direct and packed B, sub-panel n.
        for &(m, k, n) in &[
            (4, 16, 16),
            (5, 7, 3),
            (11, 33, 50),
            (1, 40, 17),
            (8, 1, 16),
            (23, 19, 64),
            (6, 64, 31),
        ] {
            let (a, b) = operands(m, k, n, 0xBEEF ^ (m * 1_000_003 + k * 1009 + n) as u64);
            let want = reference(Layout::Nn, &a, &b, m, k, n, Epilogue::None);
            for v in GemmVariant::available() {
                let got = gemm_with(v, Layout::Nn, &a, &b, m, k, n, Epilogue::None);
                assert_bits_eq(&got, &want, &format!("{} {m}x{k}x{n}", v.name()));
            }
        }
    }

    #[test]
    fn worker_split_is_bit_identical() {
        let (m, k, n) = (37, 29, 33);
        let (a, b) = operands(m, k, n, 42);
        let seq = gemm_impl(
            GemmVariant::detect(),
            Layout::Nn,
            &a,
            &b,
            m,
            k,
            n,
            Epilogue::None,
            1,
        );
        for workers in [2, 3, 5] {
            let par = gemm_impl(
                GemmVariant::detect(),
                Layout::Nn,
                &a,
                &b,
                m,
                k,
                n,
                Epilogue::None,
                workers,
            );
            assert_bits_eq(&par, &seq, &format!("{workers} workers"));
        }
    }

    #[test]
    fn packed_and_direct_agree() {
        // n = 48 (panel-aligned, small): Direct. Force Packed by size: use
        // k*n >= 2^18.
        let (m, k, n) = (9, 400, 700);
        let (a, b) = operands(m, k, n, 7);
        let want = reference(Layout::Nn, &a, &b, m, k, n, Epilogue::None);
        for v in GemmVariant::available() {
            let got = gemm_with(v, Layout::Nn, &a, &b, m, k, n, Epilogue::None);
            assert_bits_eq(&got, &want, &format!("packed {}", v.name()));
        }
    }

    fn encoded_operand(k: usize, n: usize, seed: u64) -> (EncodedMatrix, Vec<f32>) {
        let (_, braw) = operands(1, k, n, seed);
        let bt = crate::Tensor::from_vec(braw, &[k, n]).unwrap();
        let em = EncodedMatrix::encode(&bt).unwrap();
        let decoded = em.decode().unwrap().into_vec();
        (em, decoded)
    }

    #[test]
    fn fused_matches_decode_then_gemm_and_reference() {
        // Shapes hit: full quad groups, partial groups, ragged last panel,
        // k % KC tails, k > KC (multi depth-block parking), row tails.
        for &(m, k, n) in &[
            (4, 16, 64),
            (5, 7, 3),
            (11, 150, 50),
            (1, 300, 17),
            (7, 130, 80),
            (6, 256, 64),
        ] {
            let (a, _) = operands(m, k, n, 0xFACE ^ (m * 31 + k * 7 + n) as u64);
            let (em, decoded) = encoded_operand(k, n, (m + k + n) as u64);
            let want = reference(Layout::Nn, &a, &decoded, m, k, n, Epilogue::None);
            for v in GemmVariant::available() {
                let fused = gemm_encoded_with(v, &a, &em, m, Epilogue::None).unwrap();
                let dense = gemm_with(v, Layout::Nn, &a, &decoded, m, k, n, Epilogue::None);
                assert_bits_eq(&fused, &want, &format!("fused/ref {} {m}x{k}x{n}", v.name()));
                assert_bits_eq(&fused, &dense, &format!("fused/dense {} {m}x{k}x{n}", v.name()));
            }
        }
    }

    #[test]
    fn fused_epilogues_match() {
        let (m, k, n) = (9, 140, 37);
        let (a, _) = operands(m, k, n, 99);
        let (em, decoded) = encoded_operand(k, n, 100);
        let bias: Vec<f32> = (0..n).map(|j| (j as f32) * 0.25 - 2.0).collect();
        for v in GemmVariant::available() {
            for (epi, name) in [
                (Epilogue::Bias(&bias), "bias"),
                (Epilogue::BiasRelu(&bias), "bias_relu"),
            ] {
                let want = reference(Layout::Nn, &a, &decoded, m, k, n, epi);
                let fused = gemm_encoded_with(v, &a, &em, m, epi).unwrap();
                assert_bits_eq(&fused, &want, &format!("{} {name}", v.name()));
            }
        }
    }

    #[test]
    fn fused_worker_split_is_bit_identical() {
        let (m, k, n) = (23, 200, 130);
        let (a, _) = operands(m, k, n, 5);
        let (em, _) = encoded_operand(k, n, 6);
        let seq = gemm_encoded_impl(GemmVariant::detect(), &a, &em, m, Epilogue::None, 1).unwrap();
        for workers in [2, 3, 5] {
            let par =
                gemm_encoded_impl(GemmVariant::detect(), &a, &em, m, Epilogue::None, workers)
                    .unwrap();
            assert_bits_eq(&par, &seq, &format!("fused {workers} workers"));
        }
    }

    #[test]
    fn fused_degenerate_dims() {
        let variant = GemmVariant::detect();
        // k = 0: accumulators stay zero, epilogue still applies.
        let bias = vec![1.5f32, -2.0, 3.0];
        let em = EncodedMatrix::encode(&crate::Tensor::zeros(&[0, 3])).unwrap();
        let out = gemm_encoded_impl(variant, &[], &em, 2, Epilogue::Bias(&bias), 1).unwrap();
        assert_eq!(out, vec![1.5, -2.0, 3.0, 1.5, -2.0, 3.0]);
        // m = 0 and n = 0: empty output, panels still validated.
        let em = EncodedMatrix::encode(&crate::Tensor::zeros(&[1, 1])).unwrap();
        assert!(gemm_encoded_impl(variant, &[], &em, 0, Epilogue::None, 1)
            .unwrap()
            .is_empty());
        let em = EncodedMatrix::encode(&crate::Tensor::zeros(&[1, 0])).unwrap();
        assert!(gemm_encoded_impl(variant, &[1.0], &em, 1, Epilogue::None, 1)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn degenerate_dims() {
        let variant = GemmVariant::detect();
        // k = 0: all accumulators stay zero, epilogue still applies.
        let bias = vec![1.5f32, -2.0, 3.0];
        let out = gemm_impl(
            variant,
            Layout::Nn,
            &[],
            &[],
            2,
            0,
            3,
            Epilogue::Bias(&bias),
            1,
        );
        assert_eq!(out, vec![1.5, -2.0, 3.0, 1.5, -2.0, 3.0]);
        let empty = gemm_impl(variant, Layout::Nn, &[], &[1.0], 0, 1, 1, Epilogue::None, 1);
        assert!(empty.is_empty());
    }
}
