//! Turbo GEMM backend: cache-blocked, SIMD-dispatched, row-parallel.
//!
//! Every accuracy experiment funnels through [`crate::ops::matmul`]; this
//! module is its engine. The design goal is throughput *without changing a
//! single output bit* relative to the original scalar kernel (retained as
//! [`crate::ops::matmul_reference`]), because the training tests pin exact
//! RNG-seeded expectations.
//!
//! # Bit-identity argument
//!
//! The reference kernel computes every output element as
//!
//! ```text
//! c[i][j] = fold over kk = 0..k (in order, skipping a[i][kk] == 0):
//!           c = c + a[i][kk] * b[kk][j]     // two roundings per step
//! ```
//!
//! The turbo kernels preserve exactly that recurrence per element:
//!
//! * **k-order unchanged** — each micro-kernel walks `kk` from 0 to `k`
//!   with one accumulator per output element;
//! * **separate multiply and add** — no FMA contraction, even on the
//!   AVX2+FMA tier, because a fused multiply-add rounds once where the
//!   reference rounds twice;
//! * **the `a == 0.0` skip is kept** per (row, kk), matching the reference
//!   even for non-finite `B` entries (`0 * inf` would otherwise inject
//!   NaNs the reference never sees);
//! * **vector lanes span output columns only** — different lanes are
//!   different output elements, so lane width never reorders an
//!   accumulation;
//! * **row-parallelism partitions output rows** across workers; each row's
//!   dot products are computed by exactly one worker with the same scalar
//!   schedule.
//!
//! The fused [`Epilogue`] applies `+ bias[j]` and then `max(x, 0.0)` after
//! the accumulator is complete — the same two rounded operations, in the
//! same order, as the separate `add_bias` / `relu` passes.
//!
//! `crates/tensor/tests/gemm_properties.rs` proves the identity against the
//! retained reference over random ragged shapes for every available
//! dispatch variant.
//!
//! # Blocking scheme
//!
//! `B` is processed in `NR`-wide column panels; rows of `A` are processed
//! `MR` at a time, giving an `MR x NR` register tile of accumulators that
//! is filled in one pass over `k` and stored once. Panel-aligned `B`
//! operands are read in place; ragged or transposed operands are packed
//! into zero-padded contiguous panels first (the packing for
//! [`Layout::Nt`] doubles as a blocked transpose, which is how
//! `matmul_nt`/`matmul_tn` avoid materializing `transpose` results).

use crate::ops::apply_epilogue;

/// Column-panel width of the register tile (f32 lanes).
pub const NR: usize = 16;
/// Row height of the register tile.
pub const MR: usize = 4;

/// Below this many multiply-accumulates the blocked machinery costs more
/// than it saves; [`gemm_auto`] routes such calls to the reference loops.
const TURBO_MIN_MACS: usize = 1024;
/// Minimum multiply-accumulates before row-parallel fan-out pays for the
/// thread spawns.
const PAR_MIN_MACS: usize = 1 << 21;

/// Runtime-dispatched kernel tiers, mirroring the engine-variant pattern of
/// the systolic simulator (`crates/sim/src/systolic.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmVariant {
    /// Portable Rust micro-kernel (autovectorized by the compiler).
    Scalar,
    /// 8-lane AVX2 micro-kernel (requires `avx2` + `fma`; FMA is part of
    /// the platform tier but deliberately unused in the accumulation — see
    /// the module docs).
    Avx2,
    /// 16-lane AVX-512 micro-kernel (requires `avx512f`/`vl`/`dq`).
    Avx512,
}

impl GemmVariant {
    /// Picks the fastest variant the running CPU supports.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f")
                && is_x86_feature_detected!("avx512vl")
                && is_x86_feature_detected!("avx512dq")
            {
                return GemmVariant::Avx512;
            }
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                return GemmVariant::Avx2;
            }
        }
        GemmVariant::Scalar
    }

    /// Every variant the running CPU can execute (always includes
    /// [`GemmVariant::Scalar`]), for differential tests and benchmarks.
    pub fn available() -> Vec<Self> {
        let mut v = vec![GemmVariant::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                v.push(GemmVariant::Avx2);
            }
            if is_x86_feature_detected!("avx512f")
                && is_x86_feature_detected!("avx512vl")
                && is_x86_feature_detected!("avx512dq")
            {
                v.push(GemmVariant::Avx512);
            }
        }
        v
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            GemmVariant::Scalar => "scalar",
            GemmVariant::Avx2 => "avx2",
            GemmVariant::Avx512 => "avx512",
        }
    }
}

/// Operand layout of the `A` and `B` arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// `A` is `m x k`, `B` is `k x n` (plain matmul).
    Nn,
    /// `A` is `m x k`, `B` is `n x k`; computes `A · Bᵀ` without
    /// materializing the transpose.
    Nt,
    /// `A` is `k x m`, `B` is `k x n`; computes `Aᵀ · B` without
    /// materializing the transpose.
    Tn,
}

/// Fused output transform applied once per element after accumulation.
#[derive(Debug, Clone, Copy)]
pub enum Epilogue<'a> {
    /// Store the raw accumulator.
    None,
    /// `c + bias[j]` (the dense-layer bias row).
    Bias(&'a [f32]),
    /// `max(c + bias[j], 0.0)` — bias then ReLU in one pass.
    BiasRelu(&'a [f32]),
}

/// How rows of `A` are addressed: element `(i, kk)` lives at
/// `a[i * row + kk * step]`. `Nn`/`Nt` use `(k, 1)`; `Tn` uses `(1, m)`.
#[derive(Clone, Copy)]
struct AStride {
    row: usize,
    step: usize,
}

/// Zero-padded `NR`-wide panels with the first panel aligned to a cache
/// line: `panels()[p * k * NR + kk * NR + l]` is panel `p`, depth `kk`,
/// lane `l`.
struct PackedB {
    buf: Vec<f32>,
    off: usize,
}

impl PackedB {
    /// Allocates a zeroed panel buffer of `len` elements whose payload
    /// starts on a 64-byte boundary, so every panel row is one full-width
    /// aligned vector load.
    fn zeroed(len: usize) -> Self {
        let buf = vec![0.0f32; len + 15];
        let off = buf.as_ptr().align_offset(64).min(buf.len() - len);
        Self { buf, off }
    }

    fn panels(&self) -> &[f32] {
        &self.buf[self.off..]
    }

    fn panels_mut(&mut self) -> &mut [f32] {
        let off = self.off;
        &mut self.buf[off..]
    }
}

/// The `B` operand as the micro-kernel sees it: either packed zero-padded
/// `NR`-wide panels, or the caller's row-major buffer read in place.
enum BPlan {
    Packed(PackedB),
    /// Untouched `k x n` row-major storage; full panels only, a ragged
    /// column tail is handled by scalar loops.
    Direct,
}

/// Entry point used by `crates/tensor/src/ops.rs`: picks the dispatch
/// variant, falls back to the reference loops for tiny problems, and fans
/// large ones out over rows.
pub(crate) fn gemm_auto(
    layout: Layout,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) -> Vec<f32> {
    if m * k * n < TURBO_MIN_MACS {
        return reference(layout, a, b, m, k, n, epi);
    }
    gemm_impl(GemmVariant::detect(), layout, a, b, m, k, n, epi, auto_workers(m, k, n))
}

/// Runs the blocked kernels under an explicit dispatch `variant` (no tiny-
/// size fallback), for differential tests and benchmarks. Output is
/// bit-identical across variants and to the reference kernel.
pub fn gemm_with(
    variant: GemmVariant,
    layout: Layout,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) -> Vec<f32> {
    gemm_impl(variant, layout, a, b, m, k, n, epi, auto_workers(m, k, n))
}

fn auto_workers(m: usize, k: usize, n: usize) -> usize {
    let t = spark_util::par::thread_count();
    if t <= 1 || m < 2 * MR || m * k * n < PAR_MIN_MACS {
        return 1;
    }
    t.min(m / MR)
}

pub(crate) fn gemm_impl(
    variant: GemmVariant,
    layout: Layout,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
    workers: usize,
) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k, "A operand length");
    debug_assert_eq!(b.len(), k * n, "B operand length");
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 {
        return out;
    }
    let astride = match layout {
        Layout::Nn | Layout::Nt => AStride { row: k, step: 1 },
        Layout::Tn => AStride { row: 1, step: m },
    };
    let plan = match layout {
        // The transposed pack is mandatory (it *is* the blocked transpose);
        // row-major B is packed once enough rows amortize the copy and
        // either a ragged tail would otherwise run scalar over real work,
        // or B outgrows the L1 (packed panel pairs stay L1-resident across
        // row tiles where in-place strided reads would stream from L2).
        Layout::Nt => BPlan::Packed(pack_b_transposed(b, k, n)),
        Layout::Nn | Layout::Tn => {
            if (m >= 2 * MR && (k * n >= 4096 || (n % NR != 0 && n > NR))) || k * n >= (1 << 18) {
                BPlan::Packed(pack_b_rowmajor(b, k, n))
            } else {
                BPlan::Direct
            }
        }
    };
    if workers <= 1 {
        run_rows(variant, a, astride, b, &plan, &mut out, 0, m, k, n, epi);
    } else {
        // Chunk boundaries stay MR-aligned so register tiles never straddle
        // a worker split.
        let rows_per = m.div_ceil(workers).div_ceil(MR) * MR;
        spark_util::par::par_chunks_mut(&mut out, rows_per * n, |ci, chunk| {
            let r0 = ci * rows_per;
            let r1 = r0 + chunk.len() / n;
            run_rows(variant, a, astride, b, &plan, chunk, r0, r1, k, n, epi);
        });
    }
    out
}

/// Packs row-major `B` (`k x n`) into zero-padded `NR`-wide panels.
fn pack_b_rowmajor(b: &[f32], k: usize, n: usize) -> PackedB {
    let panels = n.div_ceil(NR);
    let mut packed = PackedB::zeroed(panels * k * NR);
    let dst = packed.panels_mut();
    for p in 0..panels {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let base = p * k * NR;
        for kk in 0..k {
            let src = &b[kk * n + j0..kk * n + j0 + w];
            dst[base + kk * NR..base + kk * NR + w].copy_from_slice(src);
        }
    }
    packed
}

/// Packs transposed `B` (`n x k` row-major, logical `k x n`) into the same
/// panel format — a fused blocked transpose. Depth is walked in `TK`-sized
/// blocks so reads and writes both stay cache-resident.
fn pack_b_transposed(bt: &[f32], k: usize, n: usize) -> PackedB {
    const TK: usize = 256;
    let panels = n.div_ceil(NR);
    let mut packed = PackedB::zeroed(panels * k * NR);
    let dst = packed.panels_mut();
    for p in 0..panels {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let base = p * k * NR;
        for kb in (0..k).step_by(TK) {
            let ke = (kb + TK).min(k);
            for l in 0..w {
                let src = &bt[(j0 + l) * k..(j0 + l) * k + k];
                for kk in kb..ke {
                    dst[base + kk * NR + l] = src[kk];
                }
            }
        }
    }
    packed
}

/// Computes output rows `r0..r1` into `out_chunk` (whose first element is
/// row `r0`, column 0).
#[allow(clippy::too_many_arguments)]
fn run_rows(
    variant: GemmVariant,
    a: &[f32],
    astride: AStride,
    b_raw: &[f32],
    plan: &BPlan,
    out_chunk: &mut [f32],
    r0: usize,
    r1: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) {
    let (bbuf, bstride, panels): (&[f32], usize, usize) = match plan {
        BPlan::Packed(p) => (p.panels(), NR, n.div_ceil(NR)),
        BPlan::Direct => (b_raw, n, n / NR),
    };
    // Panel pitch: offset from one panel's depth-row to the next panel's
    // same depth-row (the AVX-512 kernel fills two adjacent panels per
    // pass to double its independent accumulator chains).
    let b2off = match plan {
        BPlan::Packed(_) => k * NR,
        BPlan::Direct => NR,
    };
    // Phase 1 (AVX-512): four-panel column blocks, depth-blocked so the
    // active 4 x KC x NR sub-panel set stays L1-resident across every row
    // tile. Partial accumulators are parked in the output buffer between
    // depth blocks — an exact f32 round-trip, so each element still sees
    // one accumulation chain in ascending-k order (the epilogue fires only
    // after the final block).
    let mut quad_panels = 0;
    #[cfg(target_arch = "x86_64")]
    if variant == GemmVariant::Avx512 {
        let full_quads = panels / 4;
        quad_panels = full_quads * 4;
        let kc = if k > 192 && r1 - r0 >= 2 * MR { 128 } else { k };
        for qi in 0..full_quads {
            let p = qi * 4;
            let j0 = p * NR;
            let pbase = match plan {
                BPlan::Packed(_) => p * k * NR,
                BPlan::Direct => j0,
            };
            let mut kb = 0;
            while kb < k {
                let ke = (kb + kc).min(k);
                let (first, last) = (kb == 0, ke == k);
                let mut i = r0;
                while i + MR <= r1 {
                    let mut accs = [[[0.0f32; NR]; MR]; 4];
                    if !first {
                        for (q, accq) in accs.iter_mut().enumerate() {
                            let jq = j0 + q * NR;
                            let wq = NR.min(n - jq);
                            for (r, accr) in accq.iter_mut().enumerate() {
                                accr[..wq]
                                    .copy_from_slice(&out_chunk[(i - r0 + r) * n + jq..][..wq]);
                            }
                        }
                    }
                    // SAFETY: `i + MR <= r1 <= m` bounds the A pointers for
                    // depths kb..ke; the quad spans four panels that all
                    // have `ke` full NR-wide depth rows (packed panels are
                    // zero-padded); ISA verified at dispatch time.
                    unsafe {
                        let abase = a.as_ptr().add(i * astride.row + kb * astride.step);
                        let bpanel = bbuf.as_ptr().add(pbase + kb * bstride);
                        x86::mac4x4_avx512(abase, astride, bpanel, b2off, bstride, ke - kb, &mut accs);
                    }
                    for (q, accq) in accs.iter().enumerate() {
                        let jq = j0 + q * NR;
                        let wq = NR.min(n - jq);
                        for r in 0..MR {
                            let orow = &mut out_chunk[(i - r0 + r) * n + jq..][..wq];
                            if last && !matches!(epi, Epilogue::None) {
                                for (l, o) in orow.iter_mut().enumerate() {
                                    *o = apply_epilogue(accq[r][l], jq + l, epi);
                                }
                            } else {
                                // Final value or parked partial — memcpy of
                                // a full lane row compiles to vector stores.
                                orow.copy_from_slice(&accq[r][..wq]);
                            }
                        }
                    }
                    i += MR;
                }
                kb = ke;
            }
        }
    }
    // Phase 2: remainder panels for full row tiles, every panel for the
    // row tail, and (in direct mode) the ragged column tail.
    let mut i = r0;
    while i < r1 {
        let rows = MR.min(r1 - i);
        let mut p = if rows == MR { quad_panels } else { 0 };
        while p < panels {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            #[cfg(target_arch = "x86_64")]
            if rows == MR && variant == GemmVariant::Avx512 && p + 1 < panels {
                let w2 = NR.min(n - (j0 + NR));
                let mut acc0 = [[0.0f32; NR]; MR];
                let mut acc1 = [[0.0f32; NR]; MR];
                // SAFETY: as below, for two adjacent full panels.
                unsafe {
                    let abase = a.as_ptr().add(i * astride.row);
                    let bpanel = match plan {
                        BPlan::Packed(_) => bbuf.as_ptr().add(p * k * NR),
                        BPlan::Direct => bbuf.as_ptr().add(j0),
                    };
                    x86::mac4x2_avx512(
                        abase, astride, bpanel, b2off, bstride, k, &mut acc0, &mut acc1,
                    );
                }
                for r in 0..rows {
                    let orow = &mut out_chunk[(i - r0 + r) * n + j0..][..w];
                    for (l, o) in orow.iter_mut().enumerate() {
                        *o = apply_epilogue(acc0[r][l], j0 + l, epi);
                    }
                    let orow = &mut out_chunk[(i - r0 + r) * n + j0 + NR..][..w2];
                    for (l, o) in orow.iter_mut().enumerate() {
                        *o = apply_epilogue(acc1[r][l], j0 + NR + l, epi);
                    }
                }
                p += 2;
                continue;
            }
            let mut acc = [[0.0f32; NR]; MR];
            // SAFETY: `i + rows <= m` bounds the A pointers for every
            // (row, kk); panel `p` has k full NR-wide rows in both packed
            // (padded) and direct (full-panel) form; the variant's ISA
            // requirements were verified at dispatch time.
            unsafe {
                let abase = a.as_ptr().add(i * astride.row);
                let bpanel = match plan {
                    BPlan::Packed(_) => bbuf.as_ptr().add(p * k * NR),
                    BPlan::Direct => bbuf.as_ptr().add(j0),
                };
                if rows == MR {
                    match variant {
                        GemmVariant::Scalar => {
                            mac4_scalar(abase, astride, bpanel, bstride, k, &mut acc)
                        }
                        #[cfg(target_arch = "x86_64")]
                        GemmVariant::Avx2 => {
                            x86::mac4_avx2(abase, astride, bpanel, bstride, k, &mut acc)
                        }
                        #[cfg(target_arch = "x86_64")]
                        GemmVariant::Avx512 => {
                            x86::mac4_avx512(abase, astride, bpanel, bstride, k, &mut acc)
                        }
                        #[cfg(not(target_arch = "x86_64"))]
                        _ => mac4_scalar(abase, astride, bpanel, bstride, k, &mut acc),
                    }
                } else {
                    for r in 0..rows {
                        let arow = abase.add(r * astride.row);
                        match variant {
                            GemmVariant::Scalar => {
                                mac1_scalar(arow, astride.step, bpanel, bstride, k, &mut acc[r])
                            }
                            #[cfg(target_arch = "x86_64")]
                            GemmVariant::Avx2 => {
                                x86::mac1_avx2(arow, astride.step, bpanel, bstride, k, &mut acc[r])
                            }
                            #[cfg(target_arch = "x86_64")]
                            GemmVariant::Avx512 => x86::mac1_avx512(
                                arow,
                                astride.step,
                                bpanel,
                                bstride,
                                k,
                                &mut acc[r],
                            ),
                            #[cfg(not(target_arch = "x86_64"))]
                            _ => mac1_scalar(arow, astride.step, bpanel, bstride, k, &mut acc[r]),
                        }
                    }
                }
            }
            for r in 0..rows {
                let orow = &mut out_chunk[(i - r0 + r) * n + j0..][..w];
                for (l, o) in orow.iter_mut().enumerate() {
                    *o = apply_epilogue(acc[r][l], j0 + l, epi);
                }
            }
            p += 1;
        }
        // Direct mode leaves a ragged column tail; finish it with the
        // reference-schedule scalar loop.
        if matches!(plan, BPlan::Direct) && !n.is_multiple_of(NR) {
            let j0 = panels * NR;
            for r in 0..rows {
                let gi = i + r;
                for j in j0..n {
                    let mut sum = 0.0f32;
                    for kk in 0..k {
                        let aik = a[gi * astride.row + kk * astride.step];
                        if aik == 0.0 {
                            continue;
                        }
                        sum += aik * b_raw[kk * n + j];
                    }
                    out_chunk[(gi - r0) * n + j] = apply_epilogue(sum, j, epi);
                }
            }
        }
        i += rows;
    }
}

/// Portable `MR x NR` micro-kernel. The per-lane loop autovectorizes; the
/// zero-skip branch sits outside it, exactly like the reference kernel's
/// hoisted check.
///
/// # Safety
///
/// `a` must be valid for reads at `r * astride.row + kk * astride.step`
/// for `r < MR`, `kk < k`; `b` for `kk * bstride + l` for `l < NR`.
unsafe fn mac4_scalar(
    a: *const f32,
    astride: AStride,
    b: *const f32,
    bstride: usize,
    k: usize,
    acc: &mut [[f32; NR]; MR],
) {
    // Two rows per pass: the pass's accumulators (2 x NR locals) fit the
    // baseline SSE register file, so LLVM keeps them out of memory across
    // the k loop; MR rows at once would spill every iteration.
    for (pair, base) in [(0usize, a), (2, a.add(2 * astride.row))] {
        let mut c0 = [0.0f32; NR];
        let mut c1 = [0.0f32; NR];
        let (mut p0, mut p1) = (base, base.add(astride.row));
        for kk in 0..k {
            let brow = std::slice::from_raw_parts(b.add(kk * bstride), NR);
            let a0 = *p0;
            p0 = p0.add(astride.step);
            if a0 != 0.0 {
                for (c, &bv) in c0.iter_mut().zip(brow) {
                    *c += a0 * bv;
                }
            }
            let a1 = *p1;
            p1 = p1.add(astride.step);
            if a1 != 0.0 {
                for (c, &bv) in c1.iter_mut().zip(brow) {
                    *c += a1 * bv;
                }
            }
        }
        acc[pair] = c0;
        acc[pair + 1] = c1;
    }
}

/// Portable single-row micro-kernel (row tail of [`mac4_scalar`]).
///
/// # Safety
///
/// `a` valid at `kk * astep` for `kk < k`; `b` as in [`mac4_scalar`].
unsafe fn mac1_scalar(
    a: *const f32,
    astep: usize,
    b: *const f32,
    bstride: usize,
    k: usize,
    acc: &mut [f32; NR],
) {
    let mut c = [0.0f32; NR];
    let mut p = a;
    let mut bp = b;
    for _ in 0..k {
        let aik = *p;
        p = p.add(astep);
        let brow = std::slice::from_raw_parts(bp, NR);
        bp = bp.add(bstride);
        if aik == 0.0 {
            continue;
        }
        for (cl, &bv) in c.iter_mut().zip(brow) {
            *cl += aik * bv;
        }
    }
    *acc = c;
}

/// Reference-schedule loops for all three layouts with the fused epilogue;
/// the [`Layout::Nn`] arm is byte-for-byte the seed `matmul` kernel. Tiny
/// problems route here, and the property suite uses it as the oracle.
pub(crate) fn reference(
    layout: Layout,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    match layout {
        // ikj loop order: streams B rows, vectorizes the inner j loop.
        Layout::Nn => {
            for i in 0..m {
                for kk in 0..k {
                    let aik = a[i * k + kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n..(kk + 1) * n];
                    let crow = &mut out[i * n..(i + 1) * n];
                    for (c, &bkj) in crow.iter_mut().zip(brow) {
                        *c += aik * bkj;
                    }
                }
            }
        }
        // Dot-product form: both operand rows stream contiguously.
        Layout::Nt => {
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                for j in 0..n {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut sum = 0.0f32;
                    for (&aik, &bjk) in arow.iter().zip(brow) {
                        if aik == 0.0 {
                            continue;
                        }
                        sum += aik * bjk;
                    }
                    out[i * n + j] = sum;
                }
            }
        }
        // ikj with A read down its columns.
        Layout::Tn => {
            for i in 0..m {
                for kk in 0..k {
                    let aik = a[kk * m + i];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n..(kk + 1) * n];
                    let crow = &mut out[i * n..(i + 1) * n];
                    for (c, &bkj) in crow.iter_mut().zip(brow) {
                        *c += aik * bkj;
                    }
                }
            }
        }
    }
    if !matches!(epi, Epilogue::None) {
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = apply_epilogue(out[i * n + j], j, epi);
            }
        }
    }
    out
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{AStride, MR, NR};
    use std::arch::x86_64::*;

    /// # Safety
    ///
    /// Caller verified `avx2`; pointer contracts as in
    /// [`super::mac4_scalar`]. Multiplies and adds stay separate (no FMA)
    /// to keep the reference's two-roundings-per-step semantics.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mac4_avx2(
        a: *const f32,
        astride: AStride,
        b: *const f32,
        bstride: usize,
        k: usize,
        acc: &mut [[f32; NR]; MR],
    ) {
        let mut c00 = _mm256_setzero_ps();
        let mut c01 = _mm256_setzero_ps();
        let mut c10 = _mm256_setzero_ps();
        let mut c11 = _mm256_setzero_ps();
        let mut c20 = _mm256_setzero_ps();
        let mut c21 = _mm256_setzero_ps();
        let mut c30 = _mm256_setzero_ps();
        let mut c31 = _mm256_setzero_ps();
        let (mut p0, mut p1, mut p2, mut p3) = (
            a,
            a.add(astride.row),
            a.add(2 * astride.row),
            a.add(3 * astride.row),
        );
        let mut bp = b;
        for _ in 0..k {
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            bp = bp.add(bstride);
            let a0 = *p0;
            p0 = p0.add(astride.step);
            if a0 != 0.0 {
                let v = _mm256_set1_ps(a0);
                c00 = _mm256_add_ps(c00, _mm256_mul_ps(v, b0));
                c01 = _mm256_add_ps(c01, _mm256_mul_ps(v, b1));
            }
            let a1 = *p1;
            p1 = p1.add(astride.step);
            if a1 != 0.0 {
                let v = _mm256_set1_ps(a1);
                c10 = _mm256_add_ps(c10, _mm256_mul_ps(v, b0));
                c11 = _mm256_add_ps(c11, _mm256_mul_ps(v, b1));
            }
            let a2 = *p2;
            p2 = p2.add(astride.step);
            if a2 != 0.0 {
                let v = _mm256_set1_ps(a2);
                c20 = _mm256_add_ps(c20, _mm256_mul_ps(v, b0));
                c21 = _mm256_add_ps(c21, _mm256_mul_ps(v, b1));
            }
            let a3 = *p3;
            p3 = p3.add(astride.step);
            if a3 != 0.0 {
                let v = _mm256_set1_ps(a3);
                c30 = _mm256_add_ps(c30, _mm256_mul_ps(v, b0));
                c31 = _mm256_add_ps(c31, _mm256_mul_ps(v, b1));
            }
        }
        _mm256_storeu_ps(acc[0].as_mut_ptr(), c00);
        _mm256_storeu_ps(acc[0].as_mut_ptr().add(8), c01);
        _mm256_storeu_ps(acc[1].as_mut_ptr(), c10);
        _mm256_storeu_ps(acc[1].as_mut_ptr().add(8), c11);
        _mm256_storeu_ps(acc[2].as_mut_ptr(), c20);
        _mm256_storeu_ps(acc[2].as_mut_ptr().add(8), c21);
        _mm256_storeu_ps(acc[3].as_mut_ptr(), c30);
        _mm256_storeu_ps(acc[3].as_mut_ptr().add(8), c31);
    }

    /// # Safety
    ///
    /// Caller verified `avx2`; pointer contracts as in
    /// [`super::mac1_scalar`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn mac1_avx2(
        a: *const f32,
        astep: usize,
        b: *const f32,
        bstride: usize,
        k: usize,
        acc: &mut [f32; NR],
    ) {
        let mut c0 = _mm256_setzero_ps();
        let mut c1 = _mm256_setzero_ps();
        let mut p = a;
        let mut bp = b;
        for _ in 0..k {
            let aik = *p;
            p = p.add(astep);
            if aik != 0.0 {
                let v = _mm256_set1_ps(aik);
                c0 = _mm256_add_ps(c0, _mm256_mul_ps(v, _mm256_loadu_ps(bp)));
                c1 = _mm256_add_ps(c1, _mm256_mul_ps(v, _mm256_loadu_ps(bp.add(8))));
            }
            bp = bp.add(bstride);
        }
        _mm256_storeu_ps(acc.as_mut_ptr(), c0);
        _mm256_storeu_ps(acc.as_mut_ptr().add(8), c1);
    }

    /// # Safety
    ///
    /// Caller verified `avx512f`/`vl`/`dq`; pointer contracts as in
    /// [`super::mac4_scalar`]. No FMA contraction (see module docs).
    #[target_feature(enable = "avx512f", enable = "avx512vl", enable = "avx512dq")]
    pub unsafe fn mac4_avx512(
        a: *const f32,
        astride: AStride,
        b: *const f32,
        bstride: usize,
        k: usize,
        acc: &mut [[f32; NR]; MR],
    ) {
        let mut c0 = _mm512_setzero_ps();
        let mut c1 = _mm512_setzero_ps();
        let mut c2 = _mm512_setzero_ps();
        let mut c3 = _mm512_setzero_ps();
        let (mut p0, mut p1, mut p2, mut p3) = (
            a,
            a.add(astride.row),
            a.add(2 * astride.row),
            a.add(3 * astride.row),
        );
        let mut bp = b;
        for _ in 0..k {
            let bv = _mm512_loadu_ps(bp);
            bp = bp.add(bstride);
            let a0 = *p0;
            p0 = p0.add(astride.step);
            if a0 != 0.0 {
                c0 = _mm512_add_ps(c0, _mm512_mul_ps(_mm512_set1_ps(a0), bv));
            }
            let a1 = *p1;
            p1 = p1.add(astride.step);
            if a1 != 0.0 {
                c1 = _mm512_add_ps(c1, _mm512_mul_ps(_mm512_set1_ps(a1), bv));
            }
            let a2 = *p2;
            p2 = p2.add(astride.step);
            if a2 != 0.0 {
                c2 = _mm512_add_ps(c2, _mm512_mul_ps(_mm512_set1_ps(a2), bv));
            }
            let a3 = *p3;
            p3 = p3.add(astride.step);
            if a3 != 0.0 {
                c3 = _mm512_add_ps(c3, _mm512_mul_ps(_mm512_set1_ps(a3), bv));
            }
        }
        _mm512_storeu_ps(acc[0].as_mut_ptr(), c0);
        _mm512_storeu_ps(acc[1].as_mut_ptr(), c1);
        _mm512_storeu_ps(acc[2].as_mut_ptr(), c2);
        _mm512_storeu_ps(acc[3].as_mut_ptr(), c3);
    }

    /// One depth-step of one A row against four resident B vectors.
    ///
    /// Two codegen details keep the A-side bookkeeping off the two
    /// floating-point ports (which the multiply/add chains must saturate):
    ///
    /// * the zero-skip is an *integer* test on the raw bits (true for
    ///   every non-zero value including NaN — which the reference also
    ///   does not skip — false only for `±0.0`); a plain `a != 0.0`
    ///   compiles to `vucomiss` plus two branches on an FP port;
    /// * the broadcast is pinned via inline asm to the memory-operand
    ///   `vbroadcastss zmm, [mem]` form — a pure load-port micro-op —
    ///   because LLVM otherwise CSEs the float load with the integer one
    ///   and emits `vpbroadcastd zmm, r32`, which occupies the same port
    ///   as the second FP unit.
    macro_rules! row_step {
        ($p:expr, $c:expr, $bv:ident) => {{
            let p: *const f32 = $p;
            let bits = (p as *const u32).read();
            if bits & 0x7fff_ffff != 0 {
                let v: __m512;
                core::arch::asm!(
                    "vbroadcastss {v}, dword ptr [{p}]",
                    v = out(zmm_reg) v,
                    p = in(reg) p,
                    options(pure, readonly, nostack),
                );
                for q in 0..4 {
                    $c[q] = _mm512_add_ps($c[q], _mm512_mul_ps(v, $bv[q]));
                }
            }
        }};
    }

    /// Fills four adjacent `NR`-wide panels (`b + q * b2off`) in one pass —
    /// sixteen independent accumulator chains (a full 4x64 register tile),
    /// amortizing the scalar A-load/zero-check/broadcast over 64 lanes.
    /// This is the steady-state kernel on AVX-512 parts: 32 vector FP ops
    /// per depth step saturate both FP ports while the A-side bookkeeping
    /// rides the load and branch ports.
    ///
    /// # Safety
    ///
    /// Caller verified `avx512f`/`vl`/`dq`; pointer contracts as in
    /// [`super::mac4_scalar`], for all four panels. No FMA contraction.
    #[target_feature(enable = "avx512f", enable = "avx512vl", enable = "avx512dq")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn mac4x4_avx512(
        a: *const f32,
        astride: AStride,
        b: *const f32,
        b2off: usize,
        bstride: usize,
        k: usize,
        accs: &mut [[[f32; NR]; MR]; 4],
    ) {
        // Resume from the caller's accumulators (zeros on the first depth
        // block, parked partials afterwards).
        let mut c: [[__m512; 4]; MR] = [[_mm512_setzero_ps(); 4]; MR];
        for (r, cr) in c.iter_mut().enumerate() {
            for (q, crq) in cr.iter_mut().enumerate() {
                *crq = _mm512_loadu_ps(accs[q][r].as_ptr());
            }
        }
        let (mut p0, mut p1, mut p2, mut p3) = (
            a,
            a.add(astride.row),
            a.add(2 * astride.row),
            a.add(3 * astride.row),
        );
        let mut bp = b;
        let s = astride.step;
        // Two depth steps per trip (same per-element sequence, half the
        // loop overhead), with the B streams prefetched one K-batch ahead.
        let mut rem = k;
        while rem >= 2 {
            _mm_prefetch::<_MM_HINT_T0>(bp.add(16 * bstride) as *const i8);
            _mm_prefetch::<_MM_HINT_T0>(bp.add(b2off + 16 * bstride) as *const i8);
            _mm_prefetch::<_MM_HINT_T0>(bp.add(2 * b2off + 16 * bstride) as *const i8);
            _mm_prefetch::<_MM_HINT_T0>(bp.add(3 * b2off + 16 * bstride) as *const i8);
            let bv = [
                _mm512_loadu_ps(bp),
                _mm512_loadu_ps(bp.add(b2off)),
                _mm512_loadu_ps(bp.add(2 * b2off)),
                _mm512_loadu_ps(bp.add(3 * b2off)),
            ];
            row_step!(p0, c[0], bv);
            row_step!(p1, c[1], bv);
            row_step!(p2, c[2], bv);
            row_step!(p3, c[3], bv);
            let bw = [
                _mm512_loadu_ps(bp.add(bstride)),
                _mm512_loadu_ps(bp.add(bstride + b2off)),
                _mm512_loadu_ps(bp.add(bstride + 2 * b2off)),
                _mm512_loadu_ps(bp.add(bstride + 3 * b2off)),
            ];
            row_step!(p0.add(s), c[0], bw);
            row_step!(p1.add(s), c[1], bw);
            row_step!(p2.add(s), c[2], bw);
            row_step!(p3.add(s), c[3], bw);
            p0 = p0.add(2 * s);
            p1 = p1.add(2 * s);
            p2 = p2.add(2 * s);
            p3 = p3.add(2 * s);
            bp = bp.add(2 * bstride);
            rem -= 2;
        }
        if rem == 1 {
            let bv = [
                _mm512_loadu_ps(bp),
                _mm512_loadu_ps(bp.add(b2off)),
                _mm512_loadu_ps(bp.add(2 * b2off)),
                _mm512_loadu_ps(bp.add(3 * b2off)),
            ];
            row_step!(p0, c[0], bv);
            row_step!(p1, c[1], bv);
            row_step!(p2, c[2], bv);
            row_step!(p3, c[3], bv);
        }
        for r in 0..MR {
            for q in 0..4 {
                _mm512_storeu_ps(accs[q][r].as_mut_ptr(), c[r][q]);
            }
        }
    }

    /// Fills two adjacent `NR`-wide panels (`b` and `b + b2off`) in one
    /// pass — eight independent accumulator chains, amortizing the scalar
    /// A-load/zero-check/broadcast over twice the lanes. Panel-count
    /// remainder kernel behind [`mac4x4_avx512`].
    ///
    /// # Safety
    ///
    /// Caller verified `avx512f`/`vl`/`dq`; pointer contracts as in
    /// [`super::mac4_scalar`], for both panels. No FMA contraction.
    #[target_feature(enable = "avx512f", enable = "avx512vl", enable = "avx512dq")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn mac4x2_avx512(
        a: *const f32,
        astride: AStride,
        b: *const f32,
        b2off: usize,
        bstride: usize,
        k: usize,
        acc0: &mut [[f32; NR]; MR],
        acc1: &mut [[f32; NR]; MR],
    ) {
        let mut c00 = _mm512_setzero_ps();
        let mut c01 = _mm512_setzero_ps();
        let mut c10 = _mm512_setzero_ps();
        let mut c11 = _mm512_setzero_ps();
        let mut c20 = _mm512_setzero_ps();
        let mut c21 = _mm512_setzero_ps();
        let mut c30 = _mm512_setzero_ps();
        let mut c31 = _mm512_setzero_ps();
        let (mut p0, mut p1, mut p2, mut p3) = (
            a,
            a.add(astride.row),
            a.add(2 * astride.row),
            a.add(3 * astride.row),
        );
        let mut bp = b;
        for _ in 0..k {
            let bv0 = _mm512_loadu_ps(bp);
            let bv1 = _mm512_loadu_ps(bp.add(b2off));
            bp = bp.add(bstride);
            let a0 = *p0;
            p0 = p0.add(astride.step);
            if a0 != 0.0 {
                let v = _mm512_set1_ps(a0);
                c00 = _mm512_add_ps(c00, _mm512_mul_ps(v, bv0));
                c01 = _mm512_add_ps(c01, _mm512_mul_ps(v, bv1));
            }
            let a1 = *p1;
            p1 = p1.add(astride.step);
            if a1 != 0.0 {
                let v = _mm512_set1_ps(a1);
                c10 = _mm512_add_ps(c10, _mm512_mul_ps(v, bv0));
                c11 = _mm512_add_ps(c11, _mm512_mul_ps(v, bv1));
            }
            let a2 = *p2;
            p2 = p2.add(astride.step);
            if a2 != 0.0 {
                let v = _mm512_set1_ps(a2);
                c20 = _mm512_add_ps(c20, _mm512_mul_ps(v, bv0));
                c21 = _mm512_add_ps(c21, _mm512_mul_ps(v, bv1));
            }
            let a3 = *p3;
            p3 = p3.add(astride.step);
            if a3 != 0.0 {
                let v = _mm512_set1_ps(a3);
                c30 = _mm512_add_ps(c30, _mm512_mul_ps(v, bv0));
                c31 = _mm512_add_ps(c31, _mm512_mul_ps(v, bv1));
            }
        }
        _mm512_storeu_ps(acc0[0].as_mut_ptr(), c00);
        _mm512_storeu_ps(acc0[1].as_mut_ptr(), c10);
        _mm512_storeu_ps(acc0[2].as_mut_ptr(), c20);
        _mm512_storeu_ps(acc0[3].as_mut_ptr(), c30);
        _mm512_storeu_ps(acc1[0].as_mut_ptr(), c01);
        _mm512_storeu_ps(acc1[1].as_mut_ptr(), c11);
        _mm512_storeu_ps(acc1[2].as_mut_ptr(), c21);
        _mm512_storeu_ps(acc1[3].as_mut_ptr(), c31);
    }

    /// # Safety
    ///
    /// Caller verified `avx512f`/`vl`/`dq`; pointer contracts as in
    /// [`super::mac1_scalar`].
    #[target_feature(enable = "avx512f", enable = "avx512vl", enable = "avx512dq")]
    pub unsafe fn mac1_avx512(
        a: *const f32,
        astep: usize,
        b: *const f32,
        bstride: usize,
        k: usize,
        acc: &mut [f32; NR],
    ) {
        let mut c = _mm512_setzero_ps();
        let mut p = a;
        let mut bp = b;
        for _ in 0..k {
            let aik = *p;
            p = p.add(astep);
            if aik != 0.0 {
                c = _mm512_add_ps(c, _mm512_mul_ps(_mm512_set1_ps(aik), _mm512_loadu_ps(bp)));
            }
            bp = bp.add(bstride);
        }
        _mm512_storeu_ps(acc.as_mut_ptr(), c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_util::Rng;

    fn operands(m: usize, k: usize, n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut gen = |len: usize| -> Vec<f32> {
            (0..len)
                .map(|_| {
                    // ~20% exact zeros to exercise the skip branch.
                    if rng.gen_f64() < 0.2 {
                        0.0
                    } else {
                        (rng.gen_f64() as f32) * 2.0 - 1.0
                    }
                })
                .collect()
        };
        (gen(m * k), gen(k * n))
    }

    fn assert_bits_eq(got: &[f32], want: &[f32], ctx: &str) {
        assert_eq!(got.len(), want.len(), "{ctx}: length");
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: element {i}: {g} vs {w}");
        }
    }

    #[test]
    fn variants_match_reference_on_ragged_shapes() {
        // Shapes chosen to hit every path: full tiles, row tails, ragged
        // panels, direct and packed B, sub-panel n.
        for &(m, k, n) in &[
            (4, 16, 16),
            (5, 7, 3),
            (11, 33, 50),
            (1, 40, 17),
            (8, 1, 16),
            (23, 19, 64),
            (6, 64, 31),
        ] {
            let (a, b) = operands(m, k, n, 0xBEEF ^ (m * 1_000_003 + k * 1009 + n) as u64);
            let want = reference(Layout::Nn, &a, &b, m, k, n, Epilogue::None);
            for v in GemmVariant::available() {
                let got = gemm_with(v, Layout::Nn, &a, &b, m, k, n, Epilogue::None);
                assert_bits_eq(&got, &want, &format!("{} {m}x{k}x{n}", v.name()));
            }
        }
    }

    #[test]
    fn worker_split_is_bit_identical() {
        let (m, k, n) = (37, 29, 33);
        let (a, b) = operands(m, k, n, 42);
        let seq = gemm_impl(
            GemmVariant::detect(),
            Layout::Nn,
            &a,
            &b,
            m,
            k,
            n,
            Epilogue::None,
            1,
        );
        for workers in [2, 3, 5] {
            let par = gemm_impl(
                GemmVariant::detect(),
                Layout::Nn,
                &a,
                &b,
                m,
                k,
                n,
                Epilogue::None,
                workers,
            );
            assert_bits_eq(&par, &seq, &format!("{workers} workers"));
        }
    }

    #[test]
    fn packed_and_direct_agree() {
        // n = 48 (panel-aligned, small): Direct. Force Packed by size: use
        // k*n >= 2^18.
        let (m, k, n) = (9, 400, 700);
        let (a, b) = operands(m, k, n, 7);
        let want = reference(Layout::Nn, &a, &b, m, k, n, Epilogue::None);
        for v in GemmVariant::available() {
            let got = gemm_with(v, Layout::Nn, &a, &b, m, k, n, Epilogue::None);
            assert_bits_eq(&got, &want, &format!("packed {}", v.name()));
        }
    }

    #[test]
    fn degenerate_dims() {
        let variant = GemmVariant::detect();
        // k = 0: all accumulators stay zero, epilogue still applies.
        let bias = vec![1.5f32, -2.0, 3.0];
        let out = gemm_impl(
            variant,
            Layout::Nn,
            &[],
            &[],
            2,
            0,
            3,
            Epilogue::Bias(&bias),
            1,
        );
        assert_eq!(out, vec![1.5, -2.0, 3.0, 1.5, -2.0, 3.0]);
        let empty = gemm_impl(variant, Layout::Nn, &[], &[1.0], 0, 1, 1, Epilogue::None, 1);
        assert!(empty.is_empty());
    }
}
