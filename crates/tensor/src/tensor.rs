//! Dense row-major tensor types.


use crate::{Shape, ShapeError};

/// A dense, row-major `f32` tensor.
///
/// All floating-point data in the reproduction flows through this type:
/// weights and activations before quantization, decoded values after.
///
/// ```
/// use spark_tensor::Tensor;
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(t.get(&[1, 2]), Some(6.0));
/// # Ok::<(), spark_tensor::ShapeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `data.len()` does not match the shape's
    /// element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, ShapeError> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(ShapeError::element_count(shape.len(), data.len()));
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.len()];
        Self { shape, data }
    }

    /// Creates a tensor filled with a constant.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.len()];
        Self { shape, data }
    }

    /// Creates an `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds a tensor by evaluating `f` at every linear index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.len()).map(&mut f).collect();
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension list, shorthand for `self.shape().dims()`.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index, or `None` out of bounds.
    pub fn get(&self, index: &[usize]) -> Option<f32> {
        self.shape.offset(index).map(|o| self.data[o])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the index is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), ShapeError> {
        match self.shape.offset(index) {
            Some(o) => {
                self.data[o] = value;
                Ok(())
            }
            None => Err(ShapeError::new(format!(
                "index {index:?} out of bounds for shape {}",
                self.shape
            ))),
        }
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self, ShapeError> {
        let new_shape = Shape::new(dims);
        self.shape.check_reshape(&new_shape)?;
        Ok(Self {
            shape: new_shape,
            data: self.data.clone(),
        })
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

/// A dense, row-major tensor of quantized `u8` code words.
///
/// This is the storage format every codec in the reproduction consumes and
/// produces: per-layer scaled, unsigned 8-bit values exactly as the paper
/// assumes ("unsigned values that have been scaled with the per-layer
/// granularity").
///
/// ```
/// use spark_tensor::QuantTensor;
/// let q = QuantTensor::from_vec(vec![0, 7, 8, 255], &[4])?;
/// assert_eq!(q.as_slice(), &[0, 7, 8, 255]);
/// # Ok::<(), spark_tensor::ShapeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantTensor {
    shape: Shape,
    data: Vec<u8>,
}

impl QuantTensor {
    /// Creates a quantized tensor from raw code words and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `data.len()` does not match the shape.
    pub fn from_vec(data: Vec<u8>, dims: &[usize]) -> Result<Self, ShapeError> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(ShapeError::element_count(shape.len(), data.len()));
        }
        Ok(Self { shape, data })
    }

    /// Creates a zero-filled quantized tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0; shape.len()];
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying code words.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Mutably borrow the underlying code words.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

impl Default for QuantTensor {
    fn default() -> Self {
        QuantTensor::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn eye_diagonal() {
        let t = Tensor::eye(3);
        assert_eq!(t.get(&[0, 0]), Some(1.0));
        assert_eq!(t.get(&[1, 1]), Some(1.0));
        assert_eq!(t.get(&[0, 1]), Some(0.0));
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 0], 5.5).unwrap();
        assert_eq!(t.get(&[1, 0]), Some(5.5));
        assert!(t.set(&[2, 0], 1.0).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        let r = t.reshape(&[2, 2]).unwrap();
        assert_eq!(r.get(&[1, 1]), Some(4.0));
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn map_applies_elementwise() {
        let t = Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap();
        let m = t.map(f32::abs);
        assert_eq!(m.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn from_fn_uses_linear_index() {
        let t = Tensor::from_fn(&[2, 2], |i| i as f32);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn quant_tensor_round_trip() {
        let q = QuantTensor::from_vec(vec![1, 2, 3], &[3]).unwrap();
        assert_eq!(q.clone().into_vec(), vec![1, 2, 3]);
        assert!(QuantTensor::from_vec(vec![1], &[2]).is_err());
    }

    #[test]
    fn default_tensors_are_empty() {
        assert!(Tensor::default().is_empty());
        assert!(QuantTensor::default().is_empty());
    }
}
