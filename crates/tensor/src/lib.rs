//! Minimal dense tensor library for the SPARK reproduction.
//!
//! This crate provides the numeric substrate every other crate builds on:
//! row-major dense tensors over `f32` (and raw byte tensors for quantized
//! data), shape arithmetic, matrix multiplication, `im2col` lowering for
//! convolutions, and the reduction / statistics helpers the quantizers need.
//!
//! The API is intentionally small: the SPARK paper's workloads decompose into
//! GEMMs, so [`Tensor`], [`ops::matmul`] and [`im2col`] carry almost all the
//! weight. The one deliberate coupling is [`encoded`]: weights can live in
//! memory as SPARK nibble streams ([`EncodedMatrix`]) and feed the GEMM
//! engine through a decode-fused panel packer, bit-identical to decoding
//! first. Nothing here depends on the simulator.
//!
//! # Example
//!
//! ```
//! use spark_tensor::{Tensor, ops};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = ops::matmul(&a, &b)?;
//! assert_eq!(c.as_slice(), a.as_slice());
//! # Ok::<(), spark_tensor::ShapeError>(())
//! ```

#![warn(missing_docs)]

mod error;
mod shape;
mod tensor;

pub mod encoded;
pub mod gemm;
pub mod im2col;
pub mod ops;
pub mod stats;

pub use encoded::{EncodedError, EncodedMatrix, PrecisionProfile};
pub use error::ShapeError;
pub use shape::Shape;
pub use tensor::{QuantTensor, Tensor};
