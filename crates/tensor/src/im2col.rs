//! `im2col` lowering: express a convolution as a GEMM.
//!
//! The SPARK architecture contains an "im2col/pack engine" in each PE page
//! that lowers convolutions onto the systolic array. This module is the
//! software equivalent: it turns an NCHW input into the patch matrix whose
//! product with a flattened filter bank computes the convolution.

use crate::{Tensor, ShapeError};

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel height/width (square kernels).
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every border.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Output spatial size for a given input height/width.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the kernel does not fit the padded input
    /// or the stride is zero.
    pub fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize), ShapeError> {
        if self.stride == 0 {
            return Err(ShapeError::new("stride must be nonzero"));
        }
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        if self.kernel > ph || self.kernel > pw {
            return Err(ShapeError::new(format!(
                "kernel {} larger than padded input {}x{}",
                self.kernel, ph, pw
            )));
        }
        Ok(((ph - self.kernel) / self.stride + 1, (pw - self.kernel) / self.stride + 1))
    }

    /// The GEMM dimensions `(m, k, n)` this convolution lowers to for a
    /// `1 x C x H x W` input: `m = out_h * out_w`, `k = C * kernel^2`,
    /// `n = out_channels`.
    ///
    /// # Errors
    ///
    /// Propagates [`ShapeError`] from [`Conv2dSpec::output_hw`].
    pub fn gemm_dims(&self, h: usize, w: usize) -> Result<(usize, usize, usize), ShapeError> {
        let (oh, ow) = self.output_hw(h, w)?;
        Ok((
            oh * ow,
            self.in_channels * self.kernel * self.kernel,
            self.out_channels,
        ))
    }
}

/// Lowers a `C x H x W` input into the im2col patch matrix of shape
/// `(out_h * out_w) x (C * kernel^2)`.
///
/// Multiplying the result by the `(C * kernel^2) x out_channels` flattened
/// filter matrix computes the convolution.
///
/// # Errors
///
/// Returns [`ShapeError`] when `input` is not rank-3 with
/// `dims[0] == spec.in_channels`, or the kernel does not fit.
///
/// ```
/// use spark_tensor::{Tensor, im2col::{im2col, Conv2dSpec}};
/// let input = Tensor::from_fn(&[1, 3, 3], |i| i as f32);
/// let spec = Conv2dSpec { in_channels: 1, out_channels: 1, kernel: 2, stride: 1, padding: 0 };
/// let patches = im2col(&input, &spec)?;
/// assert_eq!(patches.dims(), &[4, 4]);
/// // first patch is the top-left 2x2 window
/// assert_eq!(&patches.as_slice()[..4], &[0.0, 1.0, 3.0, 4.0]);
/// # Ok::<(), spark_tensor::ShapeError>(())
/// ```
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Result<Tensor, ShapeError> {
    let dims = input.dims();
    if dims.len() != 3 {
        return Err(ShapeError::new("im2col expects a C x H x W input"));
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    if c != spec.in_channels {
        return Err(ShapeError::new(format!(
            "input has {c} channels, spec expects {}",
            spec.in_channels
        )));
    }
    let (oh, ow) = spec.output_hw(h, w)?;
    let k = spec.kernel;
    let cols = c * k * k;
    let data = input.as_slice();
    let mut out = vec![0.0f32; oh * ow * cols];
    let pad = spec.padding as isize;
    for oy in 0..oh {
        for ox in 0..ow {
            let row = oy * ow + ox;
            let base = row * cols;
            for ch in 0..c {
                for ky in 0..k {
                    for kx in 0..k {
                        let iy = (oy * spec.stride + ky) as isize - pad;
                        let ix = (ox * spec.stride + kx) as isize - pad;
                        let col = ch * k * k + ky * k + kx;
                        if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                            out[base + col] =
                                data[ch * h * w + iy as usize * w + ix as usize];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[oh * ow, cols])
}

/// Scatters a patch-matrix gradient back to the input image — the adjoint
/// of [`im2col`]. `grad_patches` has shape `(out_h*out_w, C*k*k)`; the
/// result is the `C x H x W` input gradient.
///
/// # Errors
///
/// Returns [`ShapeError`] when `grad_patches` does not match the geometry.
pub fn col2im(
    grad_patches: &Tensor,
    spec: &Conv2dSpec,
    h: usize,
    w: usize,
) -> Result<Tensor, ShapeError> {
    let (oh, ow) = spec.output_hw(h, w)?;
    let k = spec.kernel;
    let c = spec.in_channels;
    let cols = c * k * k;
    let dims = grad_patches.dims();
    if dims.len() != 2 || dims[0] != oh * ow || dims[1] != cols {
        return Err(ShapeError::new(format!(
            "col2im expects {}x{} patches, got {:?}",
            oh * ow,
            cols,
            dims
        )));
    }
    let g = grad_patches.as_slice();
    let mut out = vec![0.0f32; c * h * w];
    let pad = spec.padding as isize;
    for oy in 0..oh {
        for ox in 0..ow {
            let row = oy * ow + ox;
            let base = row * cols;
            for ch in 0..c {
                for ky in 0..k {
                    for kx in 0..k {
                        let iy = (oy * spec.stride + ky) as isize - pad;
                        let ix = (ox * spec.stride + kx) as isize - pad;
                        if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                            let col = ch * k * k + ky * k + kx;
                            out[ch * h * w + iy as usize * w + ix as usize] +=
                                g[base + col];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn output_size_no_padding() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            stride: 1,
            padding: 0,
        };
        assert_eq!(spec.output_hw(5, 5).unwrap(), (3, 3));
    }

    #[test]
    fn output_size_with_padding_and_stride() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        assert_eq!(spec.output_hw(5, 5).unwrap(), (3, 3));
        assert_eq!(spec.output_hw(224, 224).unwrap(), (112, 112));
    }

    #[test]
    fn zero_stride_rejected() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            stride: 0,
            padding: 0,
        };
        assert!(spec.output_hw(5, 5).is_err());
    }

    #[test]
    fn kernel_too_big_rejected() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 7,
            stride: 1,
            padding: 0,
        };
        assert!(spec.output_hw(5, 5).is_err());
    }

    #[test]
    fn gemm_dims_match_convention() {
        let spec = Conv2dSpec {
            in_channels: 3,
            out_channels: 64,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        assert_eq!(spec.gemm_dims(224, 224).unwrap(), (224 * 224, 27, 64));
    }

    #[test]
    fn im2col_identity_kernel_matches_direct_conv() {
        // Convolve a 1x4x4 input with a 2x2 averaging kernel, once via
        // im2col+GEMM and once by hand; results must agree.
        let input = Tensor::from_fn(&[1, 4, 4], |i| i as f32);
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 2,
            stride: 1,
            padding: 0,
        };
        let patches = im2col(&input, &spec).unwrap();
        let filter = Tensor::full(&[4, 1], 0.25);
        let out = ops::matmul(&patches, &filter).unwrap();
        assert_eq!(out.dims(), &[9, 1]);
        // top-left window of values {0,1,4,5} averages to 2.5
        assert_eq!(out.as_slice()[0], 2.5);
        // bottom-right window {10,11,14,15} averages to 12.5
        assert_eq!(out.as_slice()[8], 12.5);
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let input = Tensor::full(&[1, 2, 2], 1.0);
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let patches = im2col(&input, &spec).unwrap();
        assert_eq!(patches.dims(), &[4, 9]);
        // corner patch: only the 2x2 interior overlaps, 4 ones + 5 zeros
        let first: f32 = patches.as_slice()[..9].iter().sum();
        assert_eq!(first, 4.0);
    }

    #[test]
    fn im2col_rejects_wrong_rank_and_channels() {
        let spec = Conv2dSpec {
            in_channels: 2,
            out_channels: 1,
            kernel: 1,
            stride: 1,
            padding: 0,
        };
        assert!(im2col(&Tensor::zeros(&[2, 2]), &spec).is_err());
        assert!(im2col(&Tensor::zeros(&[3, 2, 2]), &spec).is_err());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), g> == <x, col2im(g)> for all x, g — the defining
        // property of the adjoint, checked on deterministic pseudo-random
        // data.
        let spec = Conv2dSpec {
            in_channels: 2,
            out_channels: 1,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let (h, w) = (5, 6);
        let x = Tensor::from_fn(&[2, h, w], |i| ((i * 37) % 11) as f32 - 5.0);
        let patches = im2col(&x, &spec).unwrap();
        let g = Tensor::from_fn(patches.dims(), |i| ((i * 13) % 7) as f32 - 3.0);
        let lhs: f32 = patches
            .as_slice()
            .iter()
            .zip(g.as_slice())
            .map(|(&a, &b)| a * b)
            .sum();
        let back = col2im(&g, &spec, h, w).unwrap();
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(&a, &b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn col2im_counts_overlaps() {
        // Stride-1 3x3 kernel: interior pixels appear in 9 patches; an
        // all-ones gradient scatters their multiplicity back.
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let (h, w) = (5, 5);
        let patches_dims = [h * w, 9];
        let g = Tensor::full(&patches_dims, 1.0);
        let back = col2im(&g, &spec, h, w).unwrap();
        // centre pixel participates in 9 windows
        assert_eq!(back.get(&[0, 2, 2]), Some(9.0));
        // corner pixel participates in 4 windows (padding clips the rest)
        assert_eq!(back.get(&[0, 0, 0]), Some(4.0));
    }

    #[test]
    fn col2im_validates_shapes() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 2,
            stride: 1,
            padding: 0,
        };
        let bad = Tensor::zeros(&[3, 4]);
        assert!(col2im(&bad, &spec, 4, 4).is_err());
    }

    #[test]
    fn multi_channel_patch_layout() {
        // Channel blocks appear contiguously in each patch row.
        let input = Tensor::from_fn(&[2, 2, 2], |i| i as f32);
        let spec = Conv2dSpec {
            in_channels: 2,
            out_channels: 1,
            kernel: 2,
            stride: 1,
            padding: 0,
        };
        let patches = im2col(&input, &spec).unwrap();
        assert_eq!(patches.dims(), &[1, 8]);
        assert_eq!(
            patches.as_slice(),
            &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
        );
    }
}
