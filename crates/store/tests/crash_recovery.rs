//! Crash-recovery property suite: kill the log at *every* byte offset.
//!
//! The store's recovery contract: after a crash that leaves any prefix of
//! the WAL on disk, reopening yields exactly the committed records whose
//! frames survive in full — no panics, typed `StoreError` only, and
//! recovery is idempotent (a second open of the recovered directory
//! reports byte-identically). This suite enforces it exhaustively: a
//! seeded workload builds a log, then every single truncation point of
//! the final record (and a coarser sweep over the whole file) is
//! recovered and compared against the expected committed set.

use std::collections::BTreeMap;
use std::path::PathBuf;

use spark_codec::encode_tensor;
use spark_store::{BlockStore, StoreError};
use spark_util::rng::Rng;

fn tmp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("spark-crash-{tag}-{}-{n}", std::process::id()))
}

/// One deterministic mutation batch; returns the expected live set after
/// each mutation is applied (name → payload bytes).
fn run_workload(store: &BlockStore, seed: u64, ops: usize) -> Vec<BTreeMap<String, Vec<u8>>> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut live: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let mut states = Vec::with_capacity(ops);
    for i in 0..ops {
        let roll = rng.gen_below(10);
        if roll < 7 || live.is_empty() {
            // Put a tensor with a pseudo-random payload.
            let name = format!("t/{:02}", rng.gen_below(8));
            let len = 20 + rng.gen_below(150) as usize;
            let values: Vec<u8> = (0..len).map(|_| (rng.next_u64() >> 11) as u8).collect();
            let tensor = encode_tensor(&values);
            store
                .put_tensor(&name, &tensor)
                .unwrap_or_else(|e| panic!("put {i} failed: {e}"));
            let mut image = Vec::new();
            spark_codec::write_container(&tensor, &mut image).expect("vec write");
            live.insert(name, image);
        } else {
            // Delete a (deterministically chosen) live name.
            let names: Vec<&String> = live.keys().collect();
            let name = names[rng.gen_below(names.len() as u64) as usize].clone();
            store
                .delete(&name)
                .unwrap_or_else(|e| panic!("delete {i} failed: {e}"));
            live.remove(&name);
        }
        states.push(live.clone());
    }
    states
}

/// Asserts `store` holds exactly `want` (names and payload bytes).
fn assert_state(store: &BlockStore, want: &BTreeMap<String, Vec<u8>>, ctx: &str) {
    let names: Vec<String> = store.list().into_iter().map(|e| e.name).collect();
    let want_names: Vec<&String> = want.keys().collect();
    assert_eq!(
        names.iter().collect::<Vec<_>>(),
        want_names,
        "live set mismatch {ctx}"
    );
    for (name, payload) in want {
        let (_, bytes) = store
            .get_raw(name)
            .unwrap_or_else(|e| panic!("get {name} {ctx}: {e}"));
        assert_eq!(&bytes, payload, "payload mismatch for {name} {ctx}");
    }
}

#[test]
fn every_truncation_of_the_final_record_recovers_the_committed_prefix() {
    // Build the reference log once, remembering the expected state after
    // every mutation and the log length it committed at.
    let base = tmp_dir("final-record");
    let store = BlockStore::open(&base).expect("open base");
    let ops = 12;
    let states = run_workload(&store, 0xC0FFEE, ops);
    let final_len = store.stats().wal_bytes;
    drop(store);
    let full_log = std::fs::read(base.join("wal.log")).expect("read log");
    assert_eq!(full_log.len() as u64, final_len);

    // Find each record's commit boundary by replaying prefix lengths:
    // boundary[i] = log length after mutation i. Recover them by probing:
    // open a store per prefix and count applied records.
    let mut boundaries = Vec::new();
    for cut in 0..=full_log.len() {
        // Cheap pre-filter: boundaries are 64-byte aligned.
        if cut % 64 == 0 {
            boundaries.push(cut);
        }
    }

    // The exhaustive sweep over the *final* record: every byte offset
    // from the second-to-last boundary to the end.
    let dir = tmp_dir("sweep");
    let last_boundary = {
        // The final record began at the largest boundary strictly below
        // the end that, when recovered, yields ops-1 applied records.
        let mut found = 0;
        for &b in boundaries.iter().rev() {
            if b >= full_log.len() {
                continue;
            }
            std::fs::create_dir_all(&dir).expect("mkdir");
            std::fs::write(dir.join("wal.log"), &full_log[..b]).expect("write prefix");
            let s = BlockStore::open(&dir).expect("open prefix");
            if s.recovery_report().records_applied == ops - 1 {
                found = b;
                break;
            }
        }
        assert!(found > 0, "could not locate the final record boundary");
        found
    };

    for cut in last_boundary..=full_log.len() {
        std::fs::write(dir.join("wal.log"), &full_log[..cut]).expect("write prefix");
        // Remove recovery side effects of the previous iteration so each
        // cut is a fresh crash image.
        let a = BlockStore::open(&dir)
            .unwrap_or_else(|e| panic!("open after cut {cut} errored: {e}"));
        let report_a = a.recovery_report().to_json().to_string_compact();
        let expect = if cut == full_log.len() {
            &states[ops - 1] // the full log: final mutation committed
        } else {
            &states[ops - 2] // any torn byte: final mutation discarded
        };
        assert_state(&a, expect, &format!("(cut {cut})"));
        if cut != full_log.len() {
            assert!(
                a.recovery_report().torn_tail.is_some() || cut == last_boundary,
                "cut {cut} mid-record must diagnose a torn tail"
            );
        }
        drop(a);
        // Idempotence: recovering the recovered directory changes nothing
        // and reports identically.
        let b = BlockStore::open(&dir).expect("second recovery");
        let report_b = b.recovery_report().to_json().to_string_compact();
        assert_state(&b, expect, &format!("(cut {cut}, second recovery)"));
        // The first recovery already truncated the torn tail, so the
        // second sees a clean log; everything except the torn-tail
        // diagnosis must match.
        let strip = |r: &str| {
            let v = spark_util::json::parse(r).expect("report parses");
            let mut out = String::new();
            for key in ["records_applied", "live_entries", "next_seq", "generation"] {
                out.push_str(&format!(
                    "{key}={} ",
                    v.get(key).and_then(|x| x.as_f64()).expect("numeric field")
                ));
            }
            out
        };
        assert_eq!(strip(&report_a), strip(&report_b), "recovery not idempotent at cut {cut}");
    }
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn coarse_sweep_over_the_whole_log_never_panics_and_is_monotonic() {
    let base = tmp_dir("whole-base");
    let store = BlockStore::open(&base).expect("open base");
    let states = run_workload(&store, 0xBEEF, 10);
    drop(store);
    let full_log = std::fs::read(base.join("wal.log")).expect("read log");

    let dir = tmp_dir("whole-sweep");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let mut prev_applied = 0usize;
    // Step 7 (coprime with the 64-byte frame) hits every residue class
    // while keeping the sweep fast; the final-record test is exhaustive.
    for cut in (0..=full_log.len()).step_by(7).chain([full_log.len()]) {
        std::fs::write(dir.join("wal.log"), &full_log[..cut]).expect("write prefix");
        let s = BlockStore::open(&dir)
            .unwrap_or_else(|e| panic!("cut {cut} errored instead of recovering: {e}"));
        let applied = s.recovery_report().records_applied;
        // Longer prefixes never recover fewer records.
        assert!(
            applied >= prev_applied,
            "cut {cut}: applied {applied} < earlier {prev_applied}"
        );
        prev_applied = applied;
        if applied > 0 {
            assert_state(&s, &states[applied - 1], &format!("(whole-log cut {cut})"));
        }
    }
    assert_eq!(prev_applied, 10, "the full log must recover all mutations");
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_rot_in_any_log_region_yields_typed_errors_only() {
    let base = tmp_dir("bitrot");
    let store = BlockStore::open(&base).expect("open base");
    run_workload(&store, 0xDEAD, 6);
    drop(store);
    let path = base.join("wal.log");
    let clean = std::fs::read(&path).expect("read log");

    let mut rng = Rng::seed_from_u64(42);
    for trial in 0..200 {
        let mut rot = clean.clone();
        let at = rng.gen_below(rot.len() as u64) as usize;
        rot[at] ^= 1 << rng.gen_below(8);
        std::fs::write(&path, &rot).expect("write rotted");
        // Recovery must not panic; it either shortens the prefix or, if
        // the flip hit an already-padded byte... (padding is checksummed
        // via the header only for reserved bytes; payload padding is not
        // covered) — in every case the result is a working store.
        let s = BlockStore::open(&base)
            .unwrap_or_else(|e| panic!("trial {trial} flip at {at} errored: {e}"));
        // Everything recovered must read back clean.
        let n = s.list().len();
        match s.verify() {
            Ok(v) => assert_eq!(v, n),
            Err(e) => panic!("trial {trial}: recovered entry fails verify: {e}"),
        }
        drop(s);
        std::fs::write(&path, &clean).expect("restore");
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn missing_block_file_is_a_typed_corruption_error() {
    let dir = tmp_dir("missing-blocks");
    let store = BlockStore::open(&dir).expect("open");
    run_workload(&store, 7, 4);
    store.compact().expect("compact");
    drop(store);
    // Simulate losing the block file out from under the manifest.
    let blocks: Vec<_> = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("blocks-"))
        .collect();
    assert_eq!(blocks.len(), 1);
    std::fs::remove_file(blocks[0].path()).expect("remove blocks");
    match BlockStore::open(&dir) {
        Err(StoreError::Io(_)) => {}
        other => panic!("expected a typed I/O error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
