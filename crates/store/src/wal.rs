//! Append-only write-ahead log: fixed-frame records, accept-prefix
//! recovery.
//!
//! Every mutation (put tensor, put matrix, delete) becomes one WAL record
//! before it is acknowledged. A record is a fixed 64-byte header — magic,
//! version, monotonic sequence number, kind, name/payload lengths, an
//! FNV-1a checksum over the payload, and an FNV-1a checksum over the
//! header itself — followed by the name and the payload, each padded to a
//! 64-byte boundary so payloads start cache-line-aligned and can be
//! `pread` straight into aligned buffers.
//!
//! Recovery is **accept-prefix**: [`Wal::open`] scans from the start and
//! stops at the *first* record that is short, mis-framed, checksum-bad, or
//! out of sequence, truncating the file there. Everything before the stop
//! point was written in full (header checksum covers the frame, payload
//! checksum covers the data, sequence numbers forbid splices), so the
//! committed prefix is recovered exactly and the torn tail — the
//! signature of a crash mid-write — is discarded deterministically. Two
//! recoveries of the same bytes always yield the same state.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use spark_util::fnv::Fnv1a;

use crate::error::{StoreError, MAX_NAME_LEN};
use crate::sync_dir;

/// Record frame magic: "SWAL".
pub const WAL_MAGIC: [u8; 4] = *b"SWAL";
/// WAL frame version.
pub const WAL_VERSION: u32 = 1;
/// Fixed record header size — one cache line.
pub const RECORD_HEADER_LEN: usize = 64;
/// Alignment unit for name and payload sections.
pub const ALIGN: usize = 64;
/// The log's file name inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// What a WAL record does to the live set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Install/overwrite a container-v2 encoded tensor.
    PutTensor,
    /// Remove a name from the live set (payload is empty).
    Delete,
    /// Install/overwrite an `SPKM` encoded-matrix image.
    PutMatrix,
}

impl RecordKind {
    fn tag(self) -> u8 {
        match self {
            RecordKind::PutTensor => 1,
            RecordKind::Delete => 2,
            RecordKind::PutMatrix => 3,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(RecordKind::PutTensor),
            2 => Some(RecordKind::Delete),
            3 => Some(RecordKind::PutMatrix),
            _ => None,
        }
    }
}

/// Rounds `len` up to the next [`ALIGN`] boundary.
pub fn align_up(len: u64) -> u64 {
    len.div_ceil(ALIGN as u64) * ALIGN as u64
}

/// Total on-disk footprint of a record with the given name/payload sizes.
pub fn record_len(name_len: usize, payload_len: usize) -> u64 {
    RECORD_HEADER_LEN as u64 + align_up(name_len as u64) + align_up(payload_len as u64)
}

/// A record surfaced by the recovery scan: framing metadata plus where its
/// payload lives in the (truncated-to-valid) log file. Payload bytes are
/// *not* retained — readers `pread` them on demand.
#[derive(Debug, Clone)]
pub struct ScannedRecord {
    /// The record's sequence number.
    pub seq: u64,
    /// What the record does.
    pub kind: RecordKind,
    /// The tensor name it applies to.
    pub name: String,
    /// Byte offset of the payload within the log file (64-byte aligned).
    pub payload_off: u64,
    /// Payload length in bytes.
    pub payload_len: u64,
    /// FNV-1a checksum of the payload, from the verified header.
    pub payload_crc: u64,
}

/// Serializes one record frame (header + padded name + padded payload).
fn encode_record(seq: u64, kind: RecordKind, name: &str, payload: &[u8]) -> Vec<u8> {
    let total = record_len(name.len(), payload.len()) as usize;
    let mut buf = vec![0u8; total];
    buf[0..4].copy_from_slice(&WAL_MAGIC);
    buf[4..8].copy_from_slice(&WAL_VERSION.to_le_bytes());
    buf[8..16].copy_from_slice(&seq.to_le_bytes());
    buf[16] = kind.tag();
    // bytes 17..20 are zero padding
    buf[20..24].copy_from_slice(&(name.len() as u32).to_le_bytes());
    buf[24..32].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    buf[32..40].copy_from_slice(&spark_util::fnv::fnv1a(payload).to_le_bytes());
    let mut h = Fnv1a::new();
    h.update(&buf[0..40]);
    buf[40..48].copy_from_slice(&h.finish().to_le_bytes());
    // bytes 48..64 are zero reserved
    let name_end = RECORD_HEADER_LEN + name.len();
    buf[RECORD_HEADER_LEN..name_end].copy_from_slice(name.as_bytes());
    let payload_start = RECORD_HEADER_LEN + align_up(name.len() as u64) as usize;
    buf[payload_start..payload_start + payload.len()].copy_from_slice(payload);
    buf
}

/// Outcome of scanning a log image.
#[derive(Debug)]
pub struct WalScan {
    /// Records in the valid prefix, in append order.
    pub records: Vec<ScannedRecord>,
    /// Length of the valid prefix in bytes — where the next append goes.
    pub valid_len: u64,
    /// Why the scan stopped before the end of the file, if it did. This is
    /// the torn-tail diagnosis surfaced in the recovery report.
    pub torn: Option<String>,
}

/// Scans a full log image, accepting the longest valid prefix.
///
/// Never fails: hostile bytes shorten the accepted prefix instead. The
/// result is a pure function of the input bytes.
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut pos: u64 = 0;
    let len = bytes.len() as u64;
    let mut prev_seq: Option<u64> = None;
    let mut torn = None;

    loop {
        let remaining = len - pos;
        if remaining == 0 {
            break;
        }
        if remaining < RECORD_HEADER_LEN as u64 {
            torn = Some(format!(
                "short header at offset {pos}: {remaining} bytes left of {RECORD_HEADER_LEN}"
            ));
            break;
        }
        let h = &bytes[pos as usize..pos as usize + RECORD_HEADER_LEN];
        if h[0..4] != WAL_MAGIC {
            torn = Some(format!("bad record magic at offset {pos}"));
            break;
        }
        let version = u32::from_le_bytes([h[4], h[5], h[6], h[7]]);
        if version != WAL_VERSION {
            torn = Some(format!("record version {version} at offset {pos}"));
            break;
        }
        let mut declared = [0u8; 8];
        declared.copy_from_slice(&h[40..48]);
        let mut hasher = Fnv1a::new();
        hasher.update(&h[0..40]);
        if hasher.finish() != u64::from_le_bytes(declared) {
            torn = Some(format!("header checksum mismatch at offset {pos}"));
            break;
        }
        if h[17..20].iter().chain(h[48..64].iter()).any(|&b| b != 0) {
            torn = Some(format!("nonzero reserved header bytes at offset {pos}"));
            break;
        }
        let seq = u64::from_le_bytes(h[8..16].try_into().expect("8-byte slice"));
        let Some(kind) = RecordKind::from_tag(h[16]) else {
            torn = Some(format!("unknown record kind {} at offset {pos}", h[16]));
            break;
        };
        let name_len = u32::from_le_bytes([h[20], h[21], h[22], h[23]]) as usize;
        let payload_len = u64::from_le_bytes(h[24..32].try_into().expect("8-byte slice"));
        let payload_crc = u64::from_le_bytes(h[32..40].try_into().expect("8-byte slice"));
        if name_len == 0 || name_len > MAX_NAME_LEN {
            torn = Some(format!("implausible name length {name_len} at offset {pos}"));
            break;
        }
        let total = record_len(name_len, payload_len as usize);
        if total > remaining {
            torn = Some(format!(
                "torn record at offset {pos}: frame needs {total} bytes, file holds {remaining}"
            ));
            break;
        }
        if let Some(prev) = prev_seq {
            if seq != prev.wrapping_add(1) {
                torn = Some(format!(
                    "sequence break at offset {pos}: {seq} after {prev}"
                ));
                break;
            }
        }
        let name_start = pos as usize + RECORD_HEADER_LEN;
        let name_bytes = &bytes[name_start..name_start + name_len];
        let Ok(name) = std::str::from_utf8(name_bytes) else {
            torn = Some(format!("non-UTF-8 name at offset {pos}"));
            break;
        };
        if crate::error::validate_name(name).is_err() {
            torn = Some(format!("invalid name bytes at offset {pos}"));
            break;
        }
        let payload_off = pos + RECORD_HEADER_LEN as u64 + align_up(name_len as u64);
        let payload =
            &bytes[payload_off as usize..payload_off as usize + payload_len as usize];
        if spark_util::fnv::fnv1a(payload) != payload_crc {
            torn = Some(format!("payload checksum mismatch at offset {pos}"));
            break;
        }
        records.push(ScannedRecord {
            seq,
            kind,
            name: name.to_string(),
            payload_off,
            payload_len,
            payload_crc,
        });
        prev_seq = Some(seq);
        pos += total;
    }

    WalScan {
        records,
        valid_len: pos,
        torn,
    }
}

/// Where an append landed, for the caller's index.
#[derive(Debug, Clone, Copy)]
pub struct AppendInfo {
    /// Sequence number assigned to the record.
    pub seq: u64,
    /// Payload offset in the log file.
    pub payload_off: u64,
    /// Payload length.
    pub payload_len: u64,
    /// FNV-1a checksum of the payload.
    pub payload_crc: u64,
}

/// The write-ahead log: an open append handle plus the framing state
/// (tail offset, next sequence number).
///
/// `Wal` does **not** fsync on append — durability is the caller's group
/// commit via [`Wal::sync`].
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    tail: u64,
    next_seq: u64,
}

impl Wal {
    /// Opens (creating if absent) the log in `dir`, scans it, truncates
    /// any torn tail, and returns the handle plus the scan result.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] — corruption never fails an open, it shortens
    /// the accepted prefix (reported via [`WalScan::torn`]).
    pub fn open(dir: &Path) -> Result<(Self, WalScan), StoreError> {
        let path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let scan = scan(&bytes);
        if scan.valid_len < bytes.len() as u64 {
            // Drop the torn tail so the next append starts on a clean
            // frame boundary; group commit will fsync before anything
            // after this point is acknowledged.
            file.set_len(scan.valid_len)?;
        }
        let next_seq = scan.records.last().map_or(1, |r| r.seq + 1);
        Ok((
            Self {
                file,
                path,
                tail: scan.valid_len,
                next_seq,
            },
            scan,
        ))
    }

    /// Appends one record at the tail. Not durable until [`Wal::sync`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] from the underlying write.
    pub fn append(
        &mut self,
        kind: RecordKind,
        name: &str,
        payload: &[u8],
    ) -> Result<AppendInfo, StoreError> {
        let seq = self.next_seq;
        let frame = encode_record(seq, kind, name, payload);
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(&frame, self.tail)?;
        let info = AppendInfo {
            seq,
            payload_off: self.tail + RECORD_HEADER_LEN as u64 + align_up(name.len() as u64),
            payload_len: payload.len() as u64,
            payload_crc: spark_util::fnv::fnv1a(payload),
        };
        self.tail += frame.len() as u64;
        self.next_seq += 1;
        Ok(info)
    }

    /// Flushes appended records to stable storage (`fdatasync`).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn sync(&self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Raises the next sequence number to at least `min_next`. The store
    /// calls this on open with the manifest's replay floor + 1: after
    /// compaction rewrites the log empty, the file alone restarts
    /// numbering at 1, and a fresh append at or below the fence would be
    /// silently skipped by the next recovery.
    pub fn ensure_next_seq(&mut self, min_next: u64) {
        self.next_seq = self.next_seq.max(min_next);
    }

    /// Current tail offset (valid log length in bytes).
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Duplicates the append handle (`dup`) so group commit can
    /// `fdatasync` without holding the writer lock.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn file_clone(&self) -> Result<File, StoreError> {
        Ok(self.file.try_clone()?)
    }

    /// Opens an independent read-only handle on the log file for `pread`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn reader(&self) -> Result<File, StoreError> {
        Ok(File::open(&self.path)?)
    }

    /// Compaction's log-tail rewrite: keeps only records with
    /// `seq > floor`, writing them (re-framed, offsets rebased) to a temp
    /// file that atomically replaces the log. Returns the kept records
    /// with their offsets in the *new* file.
    ///
    /// Crash-safe: the swap is a single `rename`, so recovery sees either
    /// the old log (and a manifest floor that makes the duplicate prefix
    /// a no-op at replay) or the new one — never a blend.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn truncate_through(
        &mut self,
        floor: u64,
    ) -> Result<Vec<ScannedRecord>, StoreError> {
        let mut bytes = Vec::new();
        {
            use std::os::unix::fs::FileExt;
            bytes.resize(self.tail as usize, 0);
            self.file.read_exact_at(&mut bytes, 0)?;
        }
        let old = scan(&bytes);
        let tmp_path = self.path.with_extension("log.tmp");
        let mut tmp = File::create(&tmp_path)?;
        let mut kept = Vec::new();
        let mut new_tail: u64 = 0;
        for rec in old.records.iter().filter(|r| r.seq > floor) {
            let payload = &bytes
                [rec.payload_off as usize..(rec.payload_off + rec.payload_len) as usize];
            let frame = encode_record(rec.seq, rec.kind, &rec.name, payload);
            tmp.write_all(&frame)?;
            kept.push(ScannedRecord {
                payload_off: new_tail
                    + RECORD_HEADER_LEN as u64
                    + align_up(rec.name.len() as u64),
                ..rec.clone()
            });
            new_tail += frame.len() as u64;
        }
        tmp.sync_data()?;
        drop(tmp);
        std::fs::rename(&tmp_path, &self.path)?;
        sync_dir(self.path.parent().unwrap_or(Path::new(".")))?;
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.tail = new_tail;
        // next_seq is unchanged: kept records preserve their numbers.
        Ok(kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "spark-wal-{tag}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn record_framing_is_aligned_and_scannable() {
        let frame = encode_record(7, RecordKind::PutTensor, "w/a", &[1, 2, 3, 4, 5]);
        assert_eq!(frame.len() % ALIGN, 0);
        assert_eq!(frame.len(), record_len(3, 5) as usize);
        let s = scan(&frame);
        assert!(s.torn.is_none());
        assert_eq!(s.records.len(), 1);
        let r = &s.records[0];
        assert_eq!((r.seq, r.kind, r.name.as_str()), (7, RecordKind::PutTensor, "w/a"));
        assert_eq!(r.payload_off, 128); // header 64 + name padded to 64
        assert_eq!(r.payload_len, 5);
    }

    #[test]
    fn scan_accepts_longest_valid_prefix() {
        let mut log = encode_record(1, RecordKind::PutTensor, "a", b"xx");
        log.extend(encode_record(2, RecordKind::Delete, "a", b""));
        let full = scan(&log);
        assert_eq!(full.records.len(), 2);
        assert!(full.torn.is_none());
        assert_eq!(full.valid_len, log.len() as u64);

        // Every proper prefix recovers only the records it fully frames.
        for cut in 0..log.len() {
            let s = scan(&log[..cut]);
            let expect = usize::from(cut >= record_len(1, 2) as usize);
            assert_eq!(s.records.len(), expect, "cut at {cut}");
            if cut > 0 && expect == 0 {
                assert!(s.torn.is_some(), "cut at {cut} must diagnose a tear");
            }
        }
    }

    #[test]
    fn scan_stops_on_corruption_and_sequence_breaks() {
        let mut log = encode_record(1, RecordKind::PutTensor, "a", b"hello");
        log.extend(encode_record(2, RecordKind::PutTensor, "b", b"world"));
        let clean = scan(&log).records.len();
        assert_eq!(clean, 2);

        // Flip one payload byte of the second record: first survives.
        let mut rot = log.clone();
        let second_payload = record_len(1, 5) as usize + 128;
        rot[second_payload] ^= 0x40;
        let s = scan(&rot);
        assert_eq!(s.records.len(), 1);
        assert!(s.torn.unwrap().contains("payload checksum"));

        // Sequence splice: duplicate record 1 after itself.
        let first = encode_record(1, RecordKind::PutTensor, "a", b"hello");
        let mut spliced = first.clone();
        spliced.extend(first);
        let s = scan(&spliced);
        assert_eq!(s.records.len(), 1);
        assert!(s.torn.unwrap().contains("sequence break"));
    }

    #[test]
    fn wal_appends_survive_reopen() {
        let dir = tmp_dir("reopen");
        {
            let (mut wal, scan0) = Wal::open(&dir).unwrap();
            assert_eq!(scan0.records.len(), 0);
            let a = wal.append(RecordKind::PutTensor, "t/one", b"payload-1").unwrap();
            assert_eq!(a.seq, 1);
            let b = wal.append(RecordKind::PutMatrix, "m/two", b"payload-22").unwrap();
            assert_eq!(b.seq, 2);
            wal.sync().unwrap();
        }
        let (wal, s) = Wal::open(&dir).unwrap();
        assert_eq!(s.records.len(), 2);
        assert_eq!(wal.next_seq(), 3);
        assert_eq!(s.records[1].name, "m/two");
        assert_eq!(s.records[1].payload_len, 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_truncates_torn_tail_then_appends_cleanly() {
        let dir = tmp_dir("torn");
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append(RecordKind::PutTensor, "keep", b"safe").unwrap();
            wal.append(RecordKind::PutTensor, "torn", b"lost-on-crash").unwrap();
            wal.sync().unwrap();
        }
        // Crash model: the final record only half-reached the disk.
        let path = dir.join(WAL_FILE);
        let full = std::fs::read(&path).unwrap();
        let keep_len = record_len(4, 4);
        std::fs::write(&path, &full[..keep_len as usize + 70]).unwrap();

        let (mut wal, s) = Wal::open(&dir).unwrap();
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].name, "keep");
        assert!(s.torn.is_some());
        // The tail was physically truncated; appends resume at seq 2.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), keep_len);
        let a = wal.append(RecordKind::Delete, "keep", b"").unwrap();
        assert_eq!(a.seq, 2);
        wal.sync().unwrap();
        let (_, s2) = Wal::open(&dir).unwrap();
        assert_eq!(s2.records.len(), 2);
        assert!(s2.torn.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_through_rebases_the_tail() {
        let dir = tmp_dir("truncate");
        let (mut wal, _) = Wal::open(&dir).unwrap();
        wal.append(RecordKind::PutTensor, "old", b"aa").unwrap();
        wal.append(RecordKind::PutTensor, "mid", b"bb").unwrap();
        wal.append(RecordKind::PutTensor, "new", b"cc").unwrap();
        wal.sync().unwrap();
        let kept = wal.truncate_through(2).unwrap();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].name, "new");
        assert_eq!(kept[0].seq, 3);
        assert_eq!(kept[0].payload_off, 128); // now first in the file
        assert_eq!(wal.next_seq(), 4);
        // Reopen agrees with the in-memory rebase.
        drop(wal);
        let (wal2, s) = Wal::open(&dir).unwrap();
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].seq, 3);
        assert_eq!(wal2.next_seq(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
