//! # spark-store — persistent blockstore for SPARK-encoded tensors
//!
//! Encoded weights are the deployment artifact of the SPARK pipeline:
//! what a serving fleet ships to accelerator DRAM. This crate makes them
//! durable. A [`BlockStore`] is a directory holding container-v2 encoded
//! tensors and panel-major encoded weight matrices behind three small,
//! fully-checksummed on-disk structures:
//!
//! - **WAL** ([`wal`]) — every mutation is one fixed-frame record in an
//!   append-only log, FNV-1a-checksummed twice (header and payload),
//!   made durable by group-committed `fdatasync`. Recovery accepts the
//!   longest valid prefix and discards the torn tail deterministically.
//! - **Manifest** ([`manifest`]) — compaction folds the live set into an
//!   immutable `blocks-<gen>.dat` + `manifest-<gen>` snapshot and commits
//!   it with a single `rename` of the `CURRENT` pointer. The manifest's
//!   WAL sequence floor fences replay: records at or below it are
//!   already in the blocks.
//! - **Reads** — payloads are `pread` into 64-byte-aligned buffers and
//!   rehydrated through the existing zero-copy constructors
//!   ([`spark_codec::read_container`],
//!   [`spark_tensor::EncodedMatrix::from_raw_parts`]), so a stored model
//!   cold-loads without re-encoding and round-trips byte-identically.
//!
//! The recovery invariant, exercised exhaustively by the crash suite in
//! `tests/` and the `spark-fault` crash plane: after a crash at *any*
//! write boundary, reopening yields exactly the set of acknowledged
//! (group-committed) mutations — no panics, typed [`StoreError`] only,
//! and two recovery runs of the same directory produce byte-identical
//! reports.

#![warn(missing_docs)]

pub mod compact;
pub mod error;
pub mod manifest;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use compact::{CompactPoint, CompactStats};
pub use error::{validate_name, EntryKind, StoreError, MAX_NAME_LEN};
pub use snapshot::{snapshot, SnapshotReport};
pub use store::{BlockStore, EntryInfo, RecoveryReport, StoreStats};

use std::path::Path;

/// Fsyncs a directory so a just-renamed file inside it is durable — the
/// second half of the swap protocol every installer in this crate uses.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// A heap buffer aligned to 64 bytes — the staging area `pread` fills, so
/// payload bytes land cache-line-aligned exactly as the WAL laid them out
/// on disk (and as an `O_DIRECT`-style path would require).
#[derive(Debug)]
pub struct AlignedBuf {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: AlignedBuf exclusively owns its allocation; no interior
// mutability, no aliasing — moving it between threads is sound.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    /// Allocation alignment in bytes.
    pub const ALIGN: usize = 64;

    /// Allocates a zero-filled buffer of `len` bytes aligned to 64.
    pub fn new(len: usize) -> Self {
        if len == 0 {
            return Self { ptr: std::ptr::null_mut(), len: 0 };
        }
        let layout = std::alloc::Layout::from_size_align(len, Self::ALIGN)
            .expect("64-byte alignment is valid and len fits isize");
        // SAFETY: layout has nonzero size (len > 0 checked above).
        let ptr = unsafe { std::alloc::alloc_zeroed(layout) };
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        Self { ptr, len }
    }

    /// The buffer as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        if self.len == 0 {
            return &mut [];
        }
        // SAFETY: ptr is valid for len bytes, exclusively owned.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    /// The buffer as a shared slice.
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr is valid for len bytes.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if self.len != 0 {
            let layout = std::alloc::Layout::from_size_align(self.len, Self::ALIGN)
                .expect("layout validated at allocation");
            // SAFETY: ptr came from alloc_zeroed with this exact layout.
            unsafe { std::alloc::dealloc(self.ptr, layout) };
        }
    }
}

impl std::ops::Deref for AlignedBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_buf_is_aligned_and_usable() {
        for len in [1usize, 63, 64, 65, 4096] {
            let mut b = AlignedBuf::new(len);
            assert_eq!(b.len(), len);
            assert_eq!(b.as_slice().as_ptr() as usize % AlignedBuf::ALIGN, 0);
            assert!(b.as_slice().iter().all(|&x| x == 0));
            b.as_mut_slice()[len - 1] = 0xAB;
            assert_eq!(b[len - 1], 0xAB);
        }
        let empty = AlignedBuf::new(0);
        assert!(empty.is_empty());
        assert_eq!(empty.as_slice(), &[] as &[u8]);
    }
}
