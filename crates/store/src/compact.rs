//! Compaction: fold the live set into a new immutable generation and
//! truncate the WAL behind it.
//!
//! The steps, in crash-safety order (the `CURRENT` swap at step 4 is the
//! single commit point — everything before it is invisible to recovery,
//! everything after it is redundant cleanup):
//!
//! 1. Write `blocks-<gen+1>.dat`: every live payload, name-sorted,
//!    64-byte-aligned extents, fsync'd.
//! 2. Write `manifest-<gen+1>` with the WAL sequence floor set to the
//!    last folded record (swap-installed, checksummed).
//! 3. *(commit)* Swap `CURRENT` to `gen+1`.
//! 4. Rewrite `wal.log` keeping only records above the floor (none, since
//!    compaction holds the writer lock), and delete the old generation's
//!    files.
//!
//! A crash after step 1 or 2 leaves orphaned next-generation files that
//! [`BlockStore::open`] garbage-collects; a crash after step 3 leaves a
//! stale old generation and an un-truncated WAL whose duplicate prefix
//! the floor makes a no-op at replay. Recovery is byte-deterministic in
//! every window. [`BlockStore::compact_until`] stops after a chosen step
//! so the `spark-fault` crash plane can open each window on purpose.

use std::fs::File;
use std::io::Write;

use spark_util::json::Value;

use crate::error::StoreError;
use crate::manifest::{self, Manifest, ManifestEntry};
use crate::store::{BlockStore, IndexEntry, Loc};
use crate::wal::align_up;

/// How far [`BlockStore::compact_until`] runs before simulating a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactPoint {
    /// Stop after the new block file is written and fsync'd.
    AfterBlocks,
    /// Stop after the new manifest is installed.
    AfterManifest,
    /// Stop after the `CURRENT` swap — the new generation is committed
    /// on disk, but the WAL and old generation are not yet cleaned up.
    AfterCurrent,
    /// Run to completion (what [`BlockStore::compact`] does).
    Done,
}

/// Counters from a completed compaction.
#[derive(Debug, Clone, Copy)]
pub struct CompactStats {
    /// Generation before.
    pub from_gen: u64,
    /// Generation after.
    pub to_gen: u64,
    /// Live entries folded into the new block file.
    pub live_entries: usize,
    /// Bytes written to the new block file.
    pub blocks_bytes: u64,
    /// WAL bytes reclaimed by the tail rewrite.
    pub wal_bytes_dropped: u64,
}

impl CompactStats {
    /// The stats as a JSON value.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("from_gen", Value::Num(self.from_gen as f64)),
            ("to_gen", Value::Num(self.to_gen as f64)),
            ("live_entries", Value::Num(self.live_entries as f64)),
            ("blocks_bytes", Value::Num(self.blocks_bytes as f64)),
            ("wal_bytes_dropped", Value::Num(self.wal_bytes_dropped as f64)),
        ])
    }
}

impl BlockStore {
    /// Folds the live set into a new generation and truncates the WAL.
    /// Holds the writer lock for the duration — concurrent reads and
    /// writes queue behind it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::Corrupt`]; on error before the
    /// `CURRENT` swap the store is untouched (orphaned next-generation
    /// files are GC'd on the next open).
    pub fn compact(&self) -> Result<CompactStats, StoreError> {
        // Infallible: Done always produces stats.
        self.compact_until(CompactPoint::Done)
            .map(|s| s.expect("compact to Done always returns stats"))
    }

    /// Runs compaction up to `point`, then stops — *simulating a crash*
    /// at that window for the fault plane. Stopping anywhere short of
    /// [`CompactPoint::Done`] returns `None` and leaves the in-memory
    /// handle deliberately stale: drop it and re-open the directory, as
    /// a crashed process would.
    ///
    /// # Errors
    ///
    /// As [`BlockStore::compact`].
    pub fn compact_until(
        &self,
        point: CompactPoint,
    ) -> Result<Option<CompactStats>, StoreError> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let from_gen = st.gen;
        let to_gen = st.gen + 1;
        // Every record applied so far is folded into the snapshot; the
        // floor fences replay of the (soon to be rewritten) WAL prefix.
        let floor = st.wal.next_seq() - 1;

        // Step 1: the new block file. The index is a BTreeMap, so the
        // extents come out name-sorted and the file is a pure function
        // of the live set.
        let blocks_path = self.dir.join(manifest::blocks_file(to_gen));
        let mut blocks = File::create(&blocks_path)?;
        let mut entries = Vec::with_capacity(st.index.len());
        let mut new_index: Vec<(String, IndexEntry)> = Vec::with_capacity(st.index.len());
        let mut offset: u64 = 0;
        {
            let readers = self.readers.read().unwrap_or_else(|e| e.into_inner());
            use std::os::unix::fs::FileExt;
            for (name, entry) in &st.index {
                let mut payload = vec![0u8; entry.len as usize];
                let file = match entry.loc {
                    Loc::Wal => &readers.wal,
                    Loc::Block => readers.blocks.as_ref().ok_or_else(|| {
                        StoreError::Corrupt(format!(
                            "index places {name:?} in a block file, but no generation is live"
                        ))
                    })?,
                };
                file.read_exact_at(&mut payload, entry.offset)?;
                let found = spark_util::fnv::fnv1a(&payload);
                if found != entry.crc {
                    return Err(StoreError::Corrupt(format!(
                        "payload checksum mismatch for {name:?} during compaction"
                    )));
                }
                blocks.write_all(&payload)?;
                let padded = align_up(entry.len);
                if padded > entry.len {
                    blocks.write_all(&vec![0u8; (padded - entry.len) as usize])?;
                }
                entries.push(ManifestEntry {
                    name: name.clone(),
                    kind: entry.kind,
                    offset,
                    len: entry.len,
                    crc: entry.crc,
                });
                new_index.push((
                    name.clone(),
                    IndexEntry { kind: entry.kind, loc: Loc::Block, offset, len: entry.len, crc: entry.crc },
                ));
                offset += padded;
            }
        }
        blocks.sync_data()?;
        drop(blocks);
        let blocks_bytes = offset;
        if point == CompactPoint::AfterBlocks {
            return Ok(None);
        }

        // Step 2: the manifest for the new generation.
        manifest::write_manifest(
            &self.dir,
            &Manifest { gen: to_gen, wal_seq_floor: floor, entries },
        )?;
        if point == CompactPoint::AfterManifest {
            return Ok(None);
        }

        // Step 3: the commit point.
        manifest::write_current(&self.dir, to_gen)?;
        if point == CompactPoint::AfterCurrent {
            return Ok(None);
        }

        // Step 4: cleanup — rewrite the WAL tail (empty: the floor covers
        // every record) and retire the old generation.
        let wal_bytes_dropped = st.wal.tail();
        let kept = st.wal.truncate_through(floor)?;
        debug_assert!(kept.is_empty(), "writer lock held: no records above the floor");
        st.index = new_index.into_iter().collect();
        st.gen = to_gen;
        st.floor = floor;
        {
            let mut readers = self.readers.write().unwrap_or_else(|e| e.into_inner());
            readers.wal = st.wal.reader()?;
            readers.blocks = Some(File::open(&blocks_path)?);
        }
        if from_gen > 0 {
            std::fs::remove_file(self.dir.join(manifest::manifest_file(from_gen)))?;
            std::fs::remove_file(self.dir.join(manifest::blocks_file(from_gen)))?;
        }
        Ok(Some(CompactStats {
            from_gen,
            to_gen,
            live_entries: st.index.len(),
            blocks_bytes,
            wal_bytes_dropped,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_codec::encode_tensor;
    use spark_util::rng::Rng;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("spark-compact-{tag}-{}-{n}", std::process::id()))
    }

    fn fill(store: &BlockStore, seed: u64, count: usize) {
        let mut rng = Rng::seed_from_u64(seed);
        for i in 0..count {
            let len = 50 + rng.gen_below(200) as usize;
            let values: Vec<u8> = (0..len).map(|_| (rng.next_u64() >> 13) as u8).collect();
            store
                .put_tensor(&format!("t/{i:03}"), &encode_tensor(&values))
                .unwrap();
        }
    }

    #[test]
    fn compaction_preserves_content_and_shrinks_the_wal() {
        let dir = tmp_dir("basic");
        let store = BlockStore::open(&dir).unwrap();
        fill(&store, 11, 12);
        // Overwrites and deletes leave garbage for compaction to drop.
        store.put_tensor("t/000", &encode_tensor(&[1, 2, 3])).unwrap();
        store.delete("t/001").unwrap();
        let before: Vec<_> = store
            .list()
            .iter()
            .map(|e| (e.name.clone(), store.get_raw(&e.name).unwrap().1))
            .collect();

        let stats = store.compact().unwrap();
        assert_eq!(stats.from_gen, 0);
        assert_eq!(stats.to_gen, 1);
        assert_eq!(stats.live_entries, 11);
        assert!(stats.wal_bytes_dropped > 0);
        assert_eq!(store.stats().wal_bytes, 0);

        // Live handle still serves everything, byte-identical.
        for (name, payload) in &before {
            assert_eq!(&store.get_raw(name).unwrap().1, payload, "{name} after compact");
        }
        // And so does a fresh open (blocks + manifest only, empty WAL).
        drop(store);
        let store = BlockStore::open(&dir).unwrap();
        let rep = store.recovery_report();
        assert_eq!(rep.generation, 1);
        assert_eq!(rep.records_applied, 0);
        assert_eq!(rep.live_entries, 11);
        for (name, payload) in &before {
            assert_eq!(&store.get_raw(name).unwrap().1, payload, "{name} after reopen");
        }
        assert_eq!(store.verify().unwrap(), 11);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writes_after_compaction_land_in_the_new_wal() {
        let dir = tmp_dir("resume");
        let store = BlockStore::open(&dir).unwrap();
        fill(&store, 13, 4);
        store.compact().unwrap();
        store.put_tensor("late", &encode_tensor(&[9, 9, 9])).unwrap();
        store.delete("t/000").unwrap();
        drop(store);
        let store = BlockStore::open(&dir).unwrap();
        let rep = store.recovery_report();
        assert_eq!(rep.generation, 1);
        assert_eq!(rep.records_applied, 2);
        assert_eq!(rep.records_skipped, 0);
        assert_eq!(rep.live_entries, 4);
        assert_eq!(store.get_raw("late").unwrap().1.len() > 0, true);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn second_compaction_retires_the_first_generation() {
        let dir = tmp_dir("gen2");
        let store = BlockStore::open(&dir).unwrap();
        fill(&store, 17, 3);
        store.compact().unwrap();
        store.put_tensor("x", &encode_tensor(&[5, 6])).unwrap();
        let stats = store.compact().unwrap();
        assert_eq!(stats.from_gen, 1);
        assert_eq!(stats.to_gen, 2);
        assert!(!dir.join(manifest::blocks_file(1)).exists());
        assert!(!dir.join(manifest::manifest_file(1)).exists());
        drop(store);
        let store = BlockStore::open(&dir).unwrap();
        assert_eq!(store.recovery_report().generation, 2);
        assert_eq!(store.verify().unwrap(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_in_every_compaction_window_recovers_the_same_state() {
        for point in [
            CompactPoint::AfterBlocks,
            CompactPoint::AfterManifest,
            CompactPoint::AfterCurrent,
        ] {
            let dir = tmp_dir("window");
            let store = BlockStore::open(&dir).unwrap();
            fill(&store, 23, 6);
            store.delete("t/002").unwrap();
            let want: Vec<_> = store
                .list()
                .iter()
                .map(|e| (e.name.clone(), store.get_raw(&e.name).unwrap().1))
                .collect();
            assert!(store.compact_until(point).unwrap().is_none());
            drop(store);

            // Recovery after the simulated crash: same live set, and two
            // openings report byte-identically.
            let a = BlockStore::open(&dir).unwrap();
            let report_a = a.recovery_report().to_json().to_string_compact();
            for (name, payload) in &want {
                assert_eq!(
                    &a.get_raw(name).unwrap().1,
                    payload,
                    "{name} after crash at {point:?}"
                );
            }
            assert_eq!(a.list().len(), want.len(), "live set after crash at {point:?}");
            drop(a);
            let b = BlockStore::open(&dir).unwrap();
            let report_b = b.recovery_report().to_json().to_string_compact();
            // The first open already cleaned up (GC'd orphans), so the
            // reports differ in stale counts across runs *unless* we
            // compare a second and third open — both post-cleanup.
            drop(b);
            let c = BlockStore::open(&dir).unwrap();
            let report_c = c.recovery_report().to_json().to_string_compact();
            assert_eq!(report_b, report_c, "recovery not idempotent at {point:?}");
            // After the commit point the new generation must be live.
            let expect_gen = if point == CompactPoint::AfterCurrent { 1 } else { 0 };
            assert!(report_a.contains(&format!("\"generation\":{expect_gen}")));
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
