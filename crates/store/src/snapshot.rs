//! Snapshot shipping: clone a live store's committed state into a fresh
//! directory, cheaply, while the source keeps serving writes.
//!
//! SPARK's encoded containers are compact (that is the paper's point),
//! so replicating a model across serving backends is a file copy, not a
//! re-encode. This module implements `spark store snapshot <src> <dst>`:
//!
//! 1. **Pin** the generation by reading `CURRENT` — the one atomic
//!    commit point the store has.
//! 2. **Hardlink-or-copy** the pinned `manifest-<gen>` and
//!    `blocks-<gen>.dat`. Both are immutable once committed (compaction
//!    writes *new* files and GC only unlinks, which never disturbs a
//!    hardlink's other name), so a hardlink is a correct zero-copy clone
//!    and the copy fallback covers cross-device destinations.
//! 3. **Verify** the shipped manifest by parsing it back — every header
//!    and entry is checksummed, so a torn copy fails typed, not later.
//! 4. **Copy `wal.log`** — the source may be appending concurrently; a
//!    torn final frame is exactly the crash shape WAL recovery already
//!    truncates (accept-prefix), so the destination opens clean.
//! 5. **Re-check `CURRENT`.** If compaction committed a new generation
//!    while we copied, the WAL we captured may have been truncated under
//!    us (records folded into the new generation vanish from the log) —
//!    the copy set is discarded and the whole sequence retries against
//!    the new pin. If `CURRENT` still names the pinned generation, the
//!    WAL copy happened strictly *before* any truncation could have,
//!    so the pair (gen files, WAL prefix) is a consistent prefix of the
//!    source's history.
//! 6. **Install `CURRENT`** in the destination last — an interrupted
//!    snapshot leaves a directory with no `CURRENT`, which opens as a
//!    fresh store plus a recoverable WAL, never as a half-clone lying
//!    about its generation.

use std::path::Path;

use spark_util::json::Value;

use crate::error::StoreError;
use crate::manifest::{self, CURRENT_FILE};
use crate::wal::WAL_FILE;

/// How many times the pin → copy → re-check loop retries when a
/// concurrent compaction moves `CURRENT` mid-copy. Each retry lands on
/// a strictly newer generation, and compactions are rare relative to a
/// few file copies, so exhaustion means something is pathological.
const PIN_RETRIES: usize = 8;

/// What one snapshot shipped. Counts only — the report is the CLI's
/// JSON output and the fleet harness's provisioning receipt.
#[derive(Debug, Clone)]
pub struct SnapshotReport {
    /// Generation the snapshot pinned (0 = fresh store, WAL only).
    pub gen: u64,
    /// Entries in the verified shipped manifest (0 for gen 0).
    pub manifest_entries: usize,
    /// Bytes of WAL captured (prefix of the live log).
    pub wal_bytes: u64,
    /// Whether the generation files shipped as hardlinks (false = byte
    /// copies, e.g. a cross-device destination).
    pub hardlinked: bool,
    /// Pin retries taken because compaction moved `CURRENT` mid-copy.
    pub retries: usize,
}

impl SnapshotReport {
    /// Serializes the receipt for `spark store snapshot`'s output.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("gen", Value::Num(self.gen as f64)),
            ("manifest_entries", Value::Num(self.manifest_entries as f64)),
            ("wal_bytes", Value::Num(self.wal_bytes as f64)),
            ("hardlinked", Value::Bool(self.hardlinked)),
            ("retries", Value::Num(self.retries as f64)),
        ])
    }
}

/// Hardlink `src` to `dst`, falling back to a byte copy when the link
/// fails (cross-device, or a filesystem without hardlinks). Returns
/// whether the hardlink path succeeded.
fn link_or_copy(src: &Path, dst: &Path) -> std::io::Result<bool> {
    match std::fs::hard_link(src, dst) {
        Ok(()) => Ok(true),
        Err(_) => std::fs::copy(src, dst).map(|_| false),
    }
}

/// Removes a partial copy set from `dst` before a retry or after a
/// failed attempt; missing files are fine.
fn scrub(dst: &Path, gen: u64) {
    let _ = std::fs::remove_file(dst.join(manifest::manifest_file(gen)));
    let _ = std::fs::remove_file(dst.join(manifest::blocks_file(gen)));
    let _ = std::fs::remove_file(dst.join(WAL_FILE));
}

/// Ships a consistent snapshot of the store at `src` into `dst`.
///
/// The source may be *live* — concurrent appends and even a concurrent
/// compaction are tolerated (see the module docs for the protocol). The
/// destination must not already contain a store.
///
/// # Errors
///
/// - [`StoreError::Corrupt`] if `dst` already holds store files, if the
///   source has no `CURRENT` *and* no WAL (nothing to snapshot — almost
///   certainly a wrong path), or if the pin loop exhausts its retries;
/// - [`StoreError::Io`] for filesystem failures;
/// - any typed error from re-parsing the shipped manifest.
pub fn snapshot(src: &Path, dst: &Path) -> Result<SnapshotReport, StoreError> {
    if !src.is_dir() {
        return Err(StoreError::Corrupt(format!(
            "snapshot source {} is not a directory",
            src.display()
        )));
    }
    std::fs::create_dir_all(dst)?;
    for existing in [CURRENT_FILE, WAL_FILE] {
        if dst.join(existing).exists() {
            return Err(StoreError::Corrupt(format!(
                "snapshot destination {} already holds a store ({existing} exists)",
                dst.display()
            )));
        }
    }
    let mut retries = 0usize;
    loop {
        let gen = manifest::read_current(src)?.unwrap_or(0);
        let mut hardlinked = true;
        if gen > 0 {
            for name in [manifest::manifest_file(gen), manifest::blocks_file(gen)] {
                match link_or_copy(&src.join(&name), &dst.join(&name)) {
                    Ok(linked) => hardlinked &= linked,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                        // Compaction committed and GC'd the pinned
                        // generation between read_current and the copy:
                        // scrub and re-pin.
                        scrub(dst, gen);
                        retries += 1;
                        if retries > PIN_RETRIES {
                            return Err(StoreError::Corrupt(format!(
                                "snapshot could not pin a stable generation after {PIN_RETRIES} retries"
                            )));
                        }
                        continue;
                    }
                    Err(e) => {
                        scrub(dst, gen);
                        return Err(StoreError::Io(e));
                    }
                }
            }
            // Checksums make a torn or stale copy fail here, typed.
            if let Err(e) = manifest::read_manifest(dst, gen) {
                scrub(dst, gen);
                return Err(e);
            }
        }
        let wal_bytes = match std::fs::copy(src.join(WAL_FILE), dst.join(WAL_FILE)) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if gen == 0 {
                    scrub(dst, gen);
                    return Err(StoreError::Corrupt(format!(
                        "snapshot source {} has neither CURRENT nor {WAL_FILE} — not a store",
                        src.display()
                    )));
                }
                0
            }
            Err(e) => {
                scrub(dst, gen);
                return Err(StoreError::Io(e));
            }
        };
        // Re-check the pin: if compaction swapped CURRENT while we
        // copied, our WAL capture may post-date a truncation — discard
        // and go again on the new generation.
        if manifest::read_current(src)?.unwrap_or(0) != gen {
            scrub(dst, gen);
            retries += 1;
            if retries > PIN_RETRIES {
                return Err(StoreError::Corrupt(format!(
                    "snapshot could not pin a stable generation after {PIN_RETRIES} retries"
                )));
            }
            continue;
        }
        let manifest_entries = if gen > 0 {
            manifest::read_manifest(dst, gen)?.entries.len()
        } else {
            0
        };
        if gen > 0 {
            manifest::write_current(dst, gen)?;
        }
        // A gen-0 snapshot ships only the WAL; `hardlinked` describes
        // the generation files, so report false when there were none.
        let hardlinked = gen > 0 && hardlinked;
        return Ok(SnapshotReport { gen, manifest_entries, wal_bytes, hardlinked, retries });
    }
}

#[cfg(test)]
mod tests {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    use super::*;
    use crate::store::BlockStore;

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "spark-snapshot-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fill(store: &BlockStore, names: &[&str]) {
        for (i, name) in names.iter().enumerate() {
            let values: Vec<u8> = (0..64).map(|k| (k as u8).wrapping_mul(i as u8 + 1)).collect();
            store.put_tensor(name, &spark_codec::encode_tensor(&values)).unwrap();
        }
    }

    #[test]
    fn snapshot_of_quiescent_store_verifies_bit_identical() {
        let src_dir = tmp_dir("quiet-src");
        let dst_dir = tmp_dir("quiet-dst");
        let _ = std::fs::remove_dir_all(&dst_dir);
        {
            let store = BlockStore::open(&src_dir).unwrap();
            fill(&store, &["w/a", "w/b", "w/c"]);
            store.flush().unwrap();
        }
        let report = snapshot(&src_dir, &dst_dir).unwrap();
        assert_eq!(report.retries, 0);

        let src = BlockStore::open(&src_dir).unwrap();
        let dst = BlockStore::open(&dst_dir).unwrap();
        assert_eq!(src.verify().unwrap(), dst.verify().unwrap());
        let mut src_list = src.list();
        let mut dst_list = dst.list();
        src_list.sort_by(|a, b| a.name.cmp(&b.name));
        dst_list.sort_by(|a, b| a.name.cmp(&b.name));
        assert_eq!(src_list.len(), dst_list.len());
        for (a, b) in src_list.iter().zip(&dst_list) {
            assert_eq!(a.name, b.name);
            // Byte-identity of the stored payloads, the replica oracle's
            // foundation: identical raw streams on both ends.
            assert_eq!(src.get_raw(&a.name).unwrap(), dst.get_raw(&b.name).unwrap());
        }
    }

    #[test]
    fn snapshot_survives_a_concurrently_appending_source() {
        let src_dir = tmp_dir("busy-src");
        let store = std::sync::Arc::new(BlockStore::open(&src_dir).unwrap());
        fill(&store, &["base/a", "base/b"]);
        store.flush().unwrap();

        // Writer thread keeps appending while snapshots are taken.
        let writer_store = store.clone();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer_stop = stop.clone();
        let writer = std::thread::spawn(move || {
            let mut i = 0u64;
            while !writer_stop.load(Ordering::Relaxed) {
                let values: Vec<u8> = (0..32).map(|k| (k as u8).wrapping_add(i as u8)).collect();
                writer_store
                    .put_tensor(&format!("hot/{i:04}"), &spark_codec::encode_tensor(&values))
                    .unwrap();
                i += 1;
            }
        });

        for round in 0..4 {
            let dst_dir = tmp_dir(&format!("busy-dst-{round}"));
            let _ = std::fs::remove_dir_all(&dst_dir);
            let report = snapshot(&src_dir, &dst_dir).unwrap();
            // The destination must open clean at the pinned generation
            // with typed errors only — recovery absorbs any torn WAL
            // tail the live copy captured.
            let dst = BlockStore::open(&dst_dir).unwrap();
            assert_eq!(dst.recovery_report().generation, report.gen);
            dst.verify().unwrap();
            // Everything committed before the snapshot began must be
            // present; the concurrent hot/* tail may be partial.
            for name in ["base/a", "base/b"] {
                assert!(dst.get_raw(name).is_ok(), "{name} missing from snapshot");
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn snapshot_refuses_to_clobber_an_existing_store() {
        let src_dir = tmp_dir("clobber-src");
        {
            let store = BlockStore::open(&src_dir).unwrap();
            fill(&store, &["x"]);
        }
        let dst_dir = tmp_dir("clobber-dst");
        {
            let _existing = BlockStore::open(&dst_dir).unwrap();
        }
        match snapshot(&src_dir, &dst_dir) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("already holds"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_of_a_non_store_is_a_typed_error() {
        let src_dir = tmp_dir("empty-src");
        let dst_dir = tmp_dir("empty-dst");
        let _ = std::fs::remove_dir_all(&dst_dir);
        match snapshot(&src_dir, &dst_dir) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("not a store"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let missing = src_dir.join("never-existed");
        match snapshot(&missing, &dst_dir) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("not a directory"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_after_compaction_ships_the_new_generation() {
        let src_dir = tmp_dir("gen-src");
        {
            let store = BlockStore::open(&src_dir).unwrap();
            fill(&store, &["m/a", "m/b"]);
            store.compact().unwrap();
            fill(&store, &["m/c"]);
            store.flush().unwrap();
        }
        let dst_dir = tmp_dir("gen-dst");
        let _ = std::fs::remove_dir_all(&dst_dir);
        let report = snapshot(&src_dir, &dst_dir).unwrap();
        assert!(report.gen >= 1, "compacted store must pin gen >= 1, got {}", report.gen);
        assert!(report.manifest_entries >= 2);
        let dst = BlockStore::open(&dst_dir).unwrap();
        for name in ["m/a", "m/b", "m/c"] {
            assert!(dst.get_raw(name).is_ok(), "{name} missing");
        }
        let j = report.to_json().to_string_compact();
        assert!(j.contains("\"gen\""), "{j}");
    }
}
