//! The store's one error type.
//!
//! Everything the durable layer can refuse — I/O failure, corruption the
//! checksums caught, a name that does not exist, a payload of the wrong
//! kind — arrives as a typed [`StoreError`]. The store shares the
//! codebase-wide contract the fault planes enforce: hostile bytes on disk
//! produce errors, never panics, and the *same* hostile bytes always
//! produce the same error.

use std::io;

use spark_codec::ContainerError;
use spark_tensor::EncodedError;

/// What kind of payload a stored entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A container-v2 encoded tensor ([`spark_codec::EncodedTensor`] image).
    Tensor,
    /// A panel-major encoded weight matrix (`SPKM` image wrapping
    /// [`spark_tensor::EncodedMatrix`] raw parts).
    Matrix,
}

impl EntryKind {
    /// Stable name used in listings and JSON.
    pub fn name(self) -> &'static str {
        match self {
            EntryKind::Tensor => "tensor",
            EntryKind::Matrix => "matrix",
        }
    }

    /// The WAL/manifest wire tag.
    pub(crate) fn tag(self) -> u8 {
        match self {
            EntryKind::Tensor => 1,
            EntryKind::Matrix => 2,
        }
    }

    /// Inverse of [`EntryKind::tag`].
    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(EntryKind::Tensor),
            2 => Some(EntryKind::Matrix),
            _ => None,
        }
    }
}

/// Errors from the blockstore.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// On-disk bytes failed a structural or checksum validation.
    Corrupt(String),
    /// The named tensor is not in the live set.
    NotFound(String),
    /// The name violates the store's naming rules.
    InvalidName(String),
    /// The entry exists but holds the other payload kind.
    WrongKind {
        /// The requested name.
        name: String,
        /// What the caller asked for.
        expected: EntryKind,
        /// What the store holds.
        found: EntryKind,
    },
    /// A stored container image failed the codec's validation.
    Container(ContainerError),
    /// A stored matrix image failed the tensor layer's validation.
    Encoded(EncodedError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o: {e}"),
            StoreError::Corrupt(msg) => write!(f, "store corruption: {msg}"),
            StoreError::NotFound(name) => write!(f, "no stored tensor named {name:?}"),
            StoreError::InvalidName(msg) => write!(f, "invalid tensor name: {msg}"),
            StoreError::WrongKind { name, expected, found } => write!(
                f,
                "{name:?} holds a {} but a {} was requested",
                found.name(),
                expected.name()
            ),
            StoreError::Container(e) => write!(f, "stored container: {e}"),
            StoreError::Encoded(e) => write!(f, "stored matrix: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<ContainerError> for StoreError {
    fn from(e: ContainerError) -> Self {
        StoreError::Container(e)
    }
}

impl From<EncodedError> for StoreError {
    fn from(e: EncodedError) -> Self {
        StoreError::Encoded(e)
    }
}

/// Longest accepted tensor name, in bytes.
pub const MAX_NAME_LEN: usize = 256;

/// Validates a tensor name: 1..=[`MAX_NAME_LEN`] bytes of visible ASCII
/// (0x21..=0x7E — embeds cleanly in JSON, logs, and URL paths; `/` is
/// allowed so model weights can namespace as `__model/<model>/<layer>`).
///
/// # Errors
///
/// [`StoreError::InvalidName`] describing the violated rule.
pub fn validate_name(name: &str) -> Result<(), StoreError> {
    if name.is_empty() {
        return Err(StoreError::InvalidName("name must not be empty".into()));
    }
    if name.len() > MAX_NAME_LEN {
        return Err(StoreError::InvalidName(format!(
            "name longer than {MAX_NAME_LEN} bytes"
        )));
    }
    if !name.bytes().all(|b| (0x21..=0x7E).contains(&b)) {
        return Err(StoreError::InvalidName(
            "name must be visible ASCII (no spaces or control bytes)".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tags_round_trip() {
        for kind in [EntryKind::Tensor, EntryKind::Matrix] {
            assert_eq!(EntryKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(EntryKind::from_tag(0), None);
        assert_eq!(EntryKind::from_tag(99), None);
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("weights/layer-0").is_ok());
        assert!(validate_name("__model/infer/w0").is_ok());
        assert!(validate_name("a").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name("has space").is_err());
        assert!(validate_name("newline\n").is_err());
        assert!(validate_name(&"x".repeat(MAX_NAME_LEN + 1)).is_err());
        assert!(validate_name(&"x".repeat(MAX_NAME_LEN)).is_ok());
    }

    #[test]
    fn error_display_is_informative() {
        assert!(StoreError::NotFound("w0".into()).to_string().contains("w0"));
        assert!(StoreError::Corrupt("bad tail".into()).to_string().contains("bad tail"));
        let wk = StoreError::WrongKind {
            name: "m".into(),
            expected: EntryKind::Matrix,
            found: EntryKind::Tensor,
        };
        assert!(wk.to_string().contains("matrix"));
        assert!(wk.to_string().contains("tensor"));
    }
}
