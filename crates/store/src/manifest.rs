//! Versioned manifest and `CURRENT` pointer: the store's atomic commit
//! point.
//!
//! A manifest (`manifest-<gen>`) is an immutable snapshot of the live set
//! at one generation: tensor names mapped to extents in that generation's
//! block file, plus the WAL sequence floor — replay skips records at or
//! below it, because their effects are already folded into the blocks.
//! The `CURRENT` file holds the one live generation number.
//!
//! Both files are checksummed (trailing FNV-1a over everything before it)
//! and installed by the classic swap protocol: write `<file>.tmp`, fsync
//! it, `rename` over the destination, fsync the directory. A crash leaves
//! either the old file or the new one — the rename is the commit point,
//! and stale `.tmp` / off-generation files are garbage-collected on the
//! next open.

use std::fs::File;
use std::io::Write;
use std::path::Path;

use spark_util::fnv::fnv1a;

use crate::error::{validate_name, EntryKind, StoreError, MAX_NAME_LEN};
use crate::sync_dir;

/// Manifest file magic: "SMAN".
pub const MANIFEST_MAGIC: [u8; 4] = *b"SMAN";
/// `CURRENT` file magic: "SCUR".
pub const CURRENT_MAGIC: [u8; 4] = *b"SCUR";
/// Format version shared by both files.
pub const MANIFEST_VERSION: u32 = 1;
/// Name of the generation-pointer file.
pub const CURRENT_FILE: &str = "CURRENT";

/// Fixed prefix of a manifest: magic, version, gen, floor, entry count.
const MANIFEST_HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8;
/// Fixed per-entry prefix: name_len, kind, pad, offset, len, crc.
const ENTRY_FIXED_LEN: usize = 4 + 1 + 3 + 8 + 8 + 8;

/// One live extent in a generation's block file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Tensor name.
    pub name: String,
    /// Payload kind.
    pub kind: EntryKind,
    /// Byte offset of the payload in `blocks-<gen>.dat` (64-byte aligned).
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a checksum of the payload.
    pub crc: u64,
}

/// A decoded manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// The generation this snapshot belongs to.
    pub gen: u64,
    /// WAL records with `seq <= wal_seq_floor` are already folded in.
    pub wal_seq_floor: u64,
    /// Live extents, in the written (name-sorted) order.
    pub entries: Vec<ManifestEntry>,
}

/// File name of the manifest for `gen`.
pub fn manifest_file(gen: u64) -> String {
    format!("manifest-{gen:016x}")
}

/// File name of the block file for `gen`.
pub fn blocks_file(gen: u64) -> String {
    format!("blocks-{gen:016x}.dat")
}

/// Serializes `m` and installs it as `manifest-<gen>` via the swap
/// protocol.
///
/// # Errors
///
/// [`StoreError::Io`].
pub fn write_manifest(dir: &Path, m: &Manifest) -> Result<(), StoreError> {
    let mut buf = Vec::with_capacity(
        MANIFEST_HEADER_LEN + m.entries.iter().map(|e| ENTRY_FIXED_LEN + e.name.len()).sum::<usize>() + 8,
    );
    buf.extend_from_slice(&MANIFEST_MAGIC);
    buf.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    buf.extend_from_slice(&m.gen.to_le_bytes());
    buf.extend_from_slice(&m.wal_seq_floor.to_le_bytes());
    buf.extend_from_slice(&(m.entries.len() as u64).to_le_bytes());
    for e in &m.entries {
        buf.extend_from_slice(&(e.name.len() as u32).to_le_bytes());
        buf.push(e.kind.tag());
        buf.extend_from_slice(&[0u8; 3]);
        buf.extend_from_slice(&e.offset.to_le_bytes());
        buf.extend_from_slice(&e.len.to_le_bytes());
        buf.extend_from_slice(&e.crc.to_le_bytes());
        buf.extend_from_slice(e.name.as_bytes());
    }
    let crc = fnv1a(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    install(dir, &manifest_file(m.gen), &buf)
}

/// Reads and validates `manifest-<gen>`.
///
/// # Errors
///
/// [`StoreError::Io`] when the file is missing/unreadable,
/// [`StoreError::Corrupt`] when any structural or checksum validation
/// fails.
pub fn read_manifest(dir: &Path, gen: u64) -> Result<Manifest, StoreError> {
    let bytes = std::fs::read(dir.join(manifest_file(gen)))?;
    if bytes.len() < MANIFEST_HEADER_LEN + 8 {
        return Err(StoreError::Corrupt(format!(
            "manifest-{gen:016x} is {} bytes, shorter than any valid manifest",
            bytes.len()
        )));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let declared = u64::from_le_bytes(tail.try_into().expect("8-byte slice"));
    let found = fnv1a(body);
    if found != declared {
        return Err(StoreError::Corrupt(format!(
            "manifest-{gen:016x} checksum mismatch: trailer says {declared:#018x}, body hashes to {found:#018x}"
        )));
    }
    if body[0..4] != MANIFEST_MAGIC {
        return Err(StoreError::Corrupt(format!(
            "manifest-{gen:016x} has bad magic {:?}",
            &body[0..4]
        )));
    }
    let version = u32::from_le_bytes(body[4..8].try_into().expect("4-byte slice"));
    if version != MANIFEST_VERSION {
        return Err(StoreError::Corrupt(format!(
            "manifest-{gen:016x} has unsupported version {version}"
        )));
    }
    let file_gen = u64::from_le_bytes(body[8..16].try_into().expect("8-byte slice"));
    if file_gen != gen {
        return Err(StoreError::Corrupt(format!(
            "manifest-{gen:016x} claims generation {file_gen}"
        )));
    }
    let wal_seq_floor = u64::from_le_bytes(body[16..24].try_into().expect("8-byte slice"));
    let count = u64::from_le_bytes(body[24..32].try_into().expect("8-byte slice"));
    // Each entry is at least ENTRY_FIXED_LEN + 1 bytes; an implausible
    // count is rejected before any allocation sized from it.
    let remaining = body.len() - MANIFEST_HEADER_LEN;
    if count > (remaining / (ENTRY_FIXED_LEN + 1)) as u64 {
        return Err(StoreError::Corrupt(format!(
            "manifest-{gen:016x} claims {count} entries in {remaining} bytes"
        )));
    }
    let mut entries = Vec::with_capacity(count as usize);
    let mut pos = MANIFEST_HEADER_LEN;
    for i in 0..count {
        if body.len() - pos < ENTRY_FIXED_LEN {
            return Err(StoreError::Corrupt(format!(
                "manifest-{gen:016x} truncated inside entry {i}"
            )));
        }
        let f = &body[pos..pos + ENTRY_FIXED_LEN];
        let name_len = u32::from_le_bytes(f[0..4].try_into().expect("4-byte slice")) as usize;
        let kind = EntryKind::from_tag(f[4]).ok_or_else(|| {
            StoreError::Corrupt(format!(
                "manifest-{gen:016x} entry {i} has unknown kind tag {}",
                f[4]
            ))
        })?;
        if f[5..8].iter().any(|&b| b != 0) {
            return Err(StoreError::Corrupt(format!(
                "manifest-{gen:016x} entry {i} has nonzero pad bytes"
            )));
        }
        let offset = u64::from_le_bytes(f[8..16].try_into().expect("8-byte slice"));
        let len = u64::from_le_bytes(f[16..24].try_into().expect("8-byte slice"));
        let crc = u64::from_le_bytes(f[24..32].try_into().expect("8-byte slice"));
        pos += ENTRY_FIXED_LEN;
        if name_len == 0 || name_len > MAX_NAME_LEN || body.len() - pos < name_len {
            return Err(StoreError::Corrupt(format!(
                "manifest-{gen:016x} entry {i} has implausible name length {name_len}"
            )));
        }
        let name = std::str::from_utf8(&body[pos..pos + name_len])
            .map_err(|_| {
                StoreError::Corrupt(format!("manifest-{gen:016x} entry {i} has a non-UTF-8 name"))
            })?
            .to_string();
        validate_name(&name).map_err(|_| {
            StoreError::Corrupt(format!("manifest-{gen:016x} entry {i} has an invalid name"))
        })?;
        pos += name_len;
        entries.push(ManifestEntry { name, kind, offset, len, crc });
    }
    if pos != body.len() {
        return Err(StoreError::Corrupt(format!(
            "manifest-{gen:016x} has {} trailing bytes after entry {count}",
            body.len() - pos
        )));
    }
    Ok(Manifest { gen, wal_seq_floor, entries })
}

/// Installs `CURRENT` pointing at `gen` via the swap protocol.
///
/// # Errors
///
/// [`StoreError::Io`].
pub fn write_current(dir: &Path, gen: u64) -> Result<(), StoreError> {
    let mut buf = Vec::with_capacity(24);
    buf.extend_from_slice(&CURRENT_MAGIC);
    buf.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    buf.extend_from_slice(&gen.to_le_bytes());
    let crc = fnv1a(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    install(dir, CURRENT_FILE, &buf)
}

/// Reads `CURRENT`. `Ok(None)` when the file does not exist — a fresh
/// store at implicit generation 0 with an empty base snapshot.
///
/// # Errors
///
/// [`StoreError::Io`], or [`StoreError::Corrupt`] when the file exists
/// but fails validation.
pub fn read_current(dir: &Path) -> Result<Option<u64>, StoreError> {
    let bytes = match std::fs::read(dir.join(CURRENT_FILE)) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() != 24 {
        return Err(StoreError::Corrupt(format!(
            "CURRENT is {} bytes, expected 24",
            bytes.len()
        )));
    }
    let (body, tail) = bytes.split_at(16);
    let declared = u64::from_le_bytes(tail.try_into().expect("8-byte slice"));
    let found = fnv1a(body);
    if found != declared {
        return Err(StoreError::Corrupt(format!(
            "CURRENT checksum mismatch: trailer says {declared:#018x}, body hashes to {found:#018x}"
        )));
    }
    if body[0..4] != CURRENT_MAGIC {
        return Err(StoreError::Corrupt(format!("CURRENT has bad magic {:?}", &body[0..4])));
    }
    let version = u32::from_le_bytes(body[4..8].try_into().expect("4-byte slice"));
    if version != MANIFEST_VERSION {
        return Err(StoreError::Corrupt(format!(
            "CURRENT has unsupported version {version}"
        )));
    }
    Ok(Some(u64::from_le_bytes(body[8..16].try_into().expect("8-byte slice"))))
}

/// The swap protocol: `<name>.tmp` → fsync → rename → fsync dir.
fn install(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp_path = dir.join(format!("{name}.tmp"));
    let final_path = dir.join(name);
    let mut tmp = File::create(&tmp_path)?;
    tmp.write_all(bytes)?;
    tmp.sync_data()?;
    drop(tmp);
    std::fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "spark-manifest-{tag}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn sample() -> Manifest {
        Manifest {
            gen: 3,
            wal_seq_floor: 41,
            entries: vec![
                ManifestEntry {
                    name: "__model/infer/w0".into(),
                    kind: EntryKind::Matrix,
                    offset: 0,
                    len: 4096,
                    crc: 0xDEAD_BEEF_0000_0001,
                },
                ManifestEntry {
                    name: "act/x".into(),
                    kind: EntryKind::Tensor,
                    offset: 4096,
                    len: 300,
                    crc: 0xDEAD_BEEF_0000_0002,
                },
            ],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let dir = tmp_dir("roundtrip");
        let m = sample();
        write_manifest(&dir, &m).unwrap();
        let back = read_manifest(&dir, 3).unwrap();
        assert_eq!(back.gen, 3);
        assert_eq!(back.wal_seq_floor, 41);
        assert_eq!(back.entries, m.entries);
        // No .tmp leftover after a clean install.
        assert!(!dir.join("manifest-0000000000000003.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_single_byte_flip_is_caught() {
        let dir = tmp_dir("bitrot");
        write_manifest(&dir, &sample()).unwrap();
        let path = dir.join(manifest_file(3));
        let clean = std::fs::read(&path).unwrap();
        for i in 0..clean.len() {
            let mut rot = clean.clone();
            rot[i] ^= 0x01;
            std::fs::write(&path, &rot).unwrap();
            let r = read_manifest(&dir, 3);
            assert!(
                matches!(r, Err(StoreError::Corrupt(_))),
                "flip at byte {i} was not caught: {r:?}"
            );
        }
        std::fs::write(&path, &clean).unwrap();
        assert!(read_manifest(&dir, 3).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn current_round_trips_and_absence_is_gen_zero() {
        let dir = tmp_dir("current");
        assert!(read_current(&dir).unwrap().is_none());
        write_current(&dir, 7).unwrap();
        assert_eq!(read_current(&dir).unwrap(), Some(7));
        write_current(&dir, 8).unwrap();
        assert_eq!(read_current(&dir).unwrap(), Some(8));
        // Truncated CURRENT is corruption, not absence.
        std::fs::write(dir.join(CURRENT_FILE), b"SCUR").unwrap();
        assert!(matches!(read_current(&dir), Err(StoreError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_rejects_truncation_and_forged_counts() {
        let dir = tmp_dir("forged");
        write_manifest(&dir, &sample()).unwrap();
        let path = dir.join(manifest_file(3));
        let clean = std::fs::read(&path).unwrap();
        // Any truncation fails (checksum or framing).
        for cut in 0..clean.len() {
            std::fs::write(&path, &clean[..cut]).unwrap();
            assert!(read_manifest(&dir, 3).is_err(), "truncation at {cut} accepted");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
