//! The [`BlockStore`]: durable index over WAL + manifest + block file.
//!
//! Concurrency model, in lock order:
//!
//! 1. `state` (Mutex) — the WAL writer, the live index, and the current
//!    generation. Mutations hold it for the in-memory transition only;
//!    compaction holds it end-to-end (a store compacts far less often
//!    than it serves).
//! 2. `readers` (RwLock) — shared `pread` handles on the log and block
//!    files. Lookups acquire it *while still holding* `state`, then drop
//!    `state` and read — compaction swaps files only under the write
//!    half, so an extent resolved under the lock stays valid for the
//!    duration of the read.
//! 3. `dur` (Mutex + Condvar) — group commit. Appends record the highest
//!    written sequence; `commit(seq)` elects one thread to `fdatasync`
//!    (covering every sequence written so far) while later committers
//!    wait on the condvar, so N concurrent puts cost one flush, not N.

use std::collections::BTreeMap;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex, RwLock};

use spark_codec::EncodedTensor;
use spark_tensor::{EncodedMatrix, PrecisionProfile};
use spark_util::fnv::fnv1a;
use spark_util::json::Value;

use crate::error::{validate_name, EntryKind, StoreError};
use crate::manifest;
use crate::wal::{RecordKind, Wal};
use crate::AlignedBuf;

/// `SPKM` encoded-matrix image magic.
pub const MATRIX_MAGIC: [u8; 4] = *b"SPKM";
/// `SPKM` image version.
pub const MATRIX_VERSION: u32 = 1;
/// Fixed `SPKM` header size before the per-panel length table.
const MATRIX_HEADER_LEN: usize = 40;

/// Where a live payload currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Loc {
    /// In `wal.log`, not yet compacted.
    Wal,
    /// In the current generation's block file.
    Block,
}

/// One live index entry: everything needed to `pread` and verify a
/// payload without touching the WAL or manifest again.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IndexEntry {
    pub kind: EntryKind,
    pub loc: Loc,
    pub offset: u64,
    pub len: u64,
    pub crc: u64,
}

/// A listing row from [`BlockStore::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryInfo {
    /// Tensor name.
    pub name: String,
    /// Payload kind.
    pub kind: EntryKind,
    /// Payload size in bytes.
    pub len: u64,
}

/// Counters summarizing a store's current shape.
#[derive(Debug, Clone, Copy)]
pub struct StoreStats {
    /// Live (non-deleted) entries.
    pub entries: usize,
    /// Current generation (0 = never compacted).
    pub generation: u64,
    /// WAL sequence floor of the current manifest.
    pub wal_seq_floor: u64,
    /// Valid WAL length in bytes.
    pub wal_bytes: u64,
    /// Sequence number the next mutation will get.
    pub next_seq: u64,
}

/// What [`BlockStore::open`] found and did — the deterministic recovery
/// record the crash plane compares byte-for-byte across runs.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Generation the `CURRENT` pointer named (0 = fresh store).
    pub generation: u64,
    /// WAL sequence floor from the manifest.
    pub wal_seq_floor: u64,
    /// WAL records replayed into the index (`seq > floor`).
    pub records_applied: usize,
    /// WAL records skipped because the manifest already folds them in.
    pub records_skipped: usize,
    /// Diagnosis of a torn WAL tail, when one was truncated.
    pub torn_tail: Option<String>,
    /// Stale files (orphaned generations, `.tmp` leftovers) removed.
    pub stale_files_removed: usize,
    /// Live entries after recovery.
    pub live_entries: usize,
    /// Next sequence number.
    pub next_seq: u64,
}

impl RecoveryReport {
    /// The report as a JSON value — a pure function of the recovered
    /// directory contents, no wall-clock or paths.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("generation", Value::Num(self.generation as f64)),
            ("wal_seq_floor", Value::Num(self.wal_seq_floor as f64)),
            ("records_applied", Value::Num(self.records_applied as f64)),
            ("records_skipped", Value::Num(self.records_skipped as f64)),
            (
                "torn_tail",
                match &self.torn_tail {
                    Some(t) => Value::Str(t.clone()),
                    None => Value::Null,
                },
            ),
            ("stale_files_removed", Value::Num(self.stale_files_removed as f64)),
            ("live_entries", Value::Num(self.live_entries as f64)),
            ("next_seq", Value::Num(self.next_seq as f64)),
        ])
    }
}

pub(crate) struct State {
    pub wal: Wal,
    pub index: BTreeMap<String, IndexEntry>,
    pub gen: u64,
    pub floor: u64,
}

pub(crate) struct Readers {
    pub wal: File,
    pub blocks: Option<File>,
}

struct Durability {
    written: u64,
    durable: u64,
    syncing: bool,
}

/// A persistent store of SPARK-encoded tensors in one directory.
///
/// All methods take `&self`; the store is safe to share across threads
/// (serve wraps it in an `Arc`).
pub struct BlockStore {
    pub(crate) dir: PathBuf,
    pub(crate) state: Mutex<State>,
    pub(crate) readers: RwLock<Readers>,
    dur: Mutex<Durability>,
    dur_cv: Condvar,
    recovery: RecoveryReport,
}

impl std::fmt::Debug for BlockStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockStore").field("dir", &self.dir).finish()
    }
}

impl BlockStore {
    /// Opens (creating if absent) the store in `dir`, running full crash
    /// recovery: read `CURRENT` → load the manifest → GC stale
    /// generations and `.tmp` files → scan the WAL, truncating any torn
    /// tail → replay records above the manifest's floor.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, [`StoreError::Corrupt`]
    /// when `CURRENT`, the manifest, or the block file contradict each
    /// other. A torn WAL tail is *not* an error — it is the expected
    /// crash signature, truncated and reported.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        let gen = manifest::read_current(dir)?.unwrap_or(0);
        let (floor, base) = if gen == 0 {
            (0, Vec::new())
        } else {
            let m = manifest::read_manifest(dir, gen)?;
            (m.wal_seq_floor, m.entries)
        };
        let stale_files_removed = gc_stale(dir, gen)?;

        let mut index = BTreeMap::new();
        for e in base {
            index.insert(
                e.name,
                IndexEntry {
                    kind: e.kind,
                    loc: Loc::Block,
                    offset: e.offset,
                    len: e.len,
                    crc: e.crc,
                },
            );
        }
        let blocks = if gen == 0 {
            None
        } else {
            Some(File::open(dir.join(manifest::blocks_file(gen)))?)
        };

        let (mut wal, scan) = Wal::open(dir)?;
        // The log alone numbers from its own records (1 when rewritten
        // empty by compaction); the manifest floor fences replay, so new
        // appends must land strictly above it to survive the next open.
        wal.ensure_next_seq(floor + 1);
        let mut records_applied = 0;
        let mut records_skipped = 0;
        for rec in &scan.records {
            if rec.seq <= floor {
                records_skipped += 1;
                continue;
            }
            records_applied += 1;
            match rec.kind {
                RecordKind::Delete => {
                    index.remove(&rec.name);
                }
                RecordKind::PutTensor | RecordKind::PutMatrix => {
                    let kind = if rec.kind == RecordKind::PutTensor {
                        EntryKind::Tensor
                    } else {
                        EntryKind::Matrix
                    };
                    index.insert(
                        rec.name.clone(),
                        IndexEntry {
                            kind,
                            loc: Loc::Wal,
                            offset: rec.payload_off,
                            len: rec.payload_len,
                            crc: rec.payload_crc,
                        },
                    );
                }
            }
        }

        let recovery = RecoveryReport {
            generation: gen,
            wal_seq_floor: floor,
            records_applied,
            records_skipped,
            torn_tail: scan.torn.clone(),
            stale_files_removed,
            live_entries: index.len(),
            next_seq: wal.next_seq(),
        };
        let wal_reader = wal.reader()?;
        let durable = wal.next_seq() - 1;
        Ok(Self {
            dir: dir.to_path_buf(),
            state: Mutex::new(State { wal, index, gen, floor }),
            readers: RwLock::new(Readers { wal: wal_reader, blocks }),
            dur: Mutex::new(Durability { written: durable, durable, syncing: false }),
            dur_cv: Condvar::new(),
            recovery,
        })
    }

    /// What recovery found when this handle was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Stores (or overwrites) an encoded tensor under `name`. Durable
    /// when this returns.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidName`] or [`StoreError::Io`].
    pub fn put_tensor(&self, name: &str, tensor: &EncodedTensor) -> Result<(), StoreError> {
        let mut payload = Vec::new();
        // Infallible: writing into a Vec cannot fail.
        spark_codec::write_container(tensor, &mut payload)
            .map_err(|e| StoreError::Container(spark_codec::ContainerError::Io(e)))?;
        let seq = self.mutate(RecordKind::PutTensor, name, &payload)?;
        self.commit(seq)
    }

    /// Stores a tensor given its serialized container-v2 image, after
    /// validating it end to end — the ingest path for bytes that crossed
    /// a network or filesystem boundary. Returns the element count.
    ///
    /// # Errors
    ///
    /// [`StoreError::Container`] when the image fails validation, plus
    /// the [`BlockStore::put_tensor`] errors.
    pub fn put_container(&self, name: &str, image: &[u8]) -> Result<usize, StoreError> {
        let tensor = spark_codec::read_container(image)?;
        let seq = self.mutate(RecordKind::PutTensor, name, image)?;
        self.commit(seq)?;
        Ok(tensor.elements)
    }

    /// Stores (or overwrites) an encoded weight matrix under `name`.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidName`] or [`StoreError::Io`].
    pub fn put_matrix(&self, name: &str, matrix: &EncodedMatrix) -> Result<(), StoreError> {
        let payload = matrix_image(matrix);
        let seq = self.mutate(RecordKind::PutMatrix, name, &payload)?;
        self.commit(seq)
    }

    /// Removes `name` from the live set (a durable tombstone).
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] when the name is not live.
    pub fn delete(&self, name: &str) -> Result<(), StoreError> {
        validate_name(name)?;
        let seq;
        {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if !st.index.contains_key(name) {
                return Err(StoreError::NotFound(name.to_string()));
            }
            let info = st.wal.append(RecordKind::Delete, name, b"")?;
            st.index.remove(name);
            seq = info.seq;
            let mut d = self.dur.lock().unwrap_or_else(|e| e.into_inner());
            d.written = d.written.max(seq);
        }
        self.commit(seq)
    }

    /// The payload kind stored under `name`, if live.
    pub fn kind_of(&self, name: &str) -> Option<EntryKind> {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.index.get(name).map(|e| e.kind)
    }

    /// Reads the raw payload bytes of `name` (a container-v2 image or an
    /// `SPKM` image) after verifying its checksum.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`], [`StoreError::Io`], or
    /// [`StoreError::Corrupt`] on checksum mismatch.
    pub fn get_raw(&self, name: &str) -> Result<(EntryKind, Vec<u8>), StoreError> {
        let (entry, buf) = self.read_entry(name)?;
        Ok((entry.kind, buf.as_slice().to_vec()))
    }

    /// Loads the encoded tensor stored under `name`, running the full
    /// container validation (header cross-checks, checksum, decode).
    ///
    /// # Errors
    ///
    /// [`StoreError::WrongKind`] when `name` holds a matrix, plus the
    /// [`BlockStore::get_raw`] and container errors.
    pub fn get_tensor(&self, name: &str) -> Result<EncodedTensor, StoreError> {
        let (entry, buf) = self.read_entry(name)?;
        if entry.kind != EntryKind::Tensor {
            return Err(StoreError::WrongKind {
                name: name.to_string(),
                expected: EntryKind::Tensor,
                found: entry.kind,
            });
        }
        Ok(spark_codec::read_container(buf.as_slice())?)
    }

    /// Loads the encoded matrix stored under `name` — the cold-start
    /// path: the panel containers are adopted as-is via
    /// [`EncodedMatrix::from_raw_parts`], no re-encode.
    ///
    /// # Errors
    ///
    /// [`StoreError::WrongKind`] when `name` holds a tensor, plus the
    /// [`BlockStore::get_raw`] and image-parse errors.
    pub fn get_matrix(&self, name: &str) -> Result<EncodedMatrix, StoreError> {
        let (entry, buf) = self.read_entry(name)?;
        if entry.kind != EntryKind::Matrix {
            return Err(StoreError::WrongKind {
                name: name.to_string(),
                expected: EntryKind::Matrix,
                found: entry.kind,
            });
        }
        parse_matrix_image(buf.as_slice())
    }

    /// Lists live entries in name order.
    pub fn list(&self) -> Vec<EntryInfo> {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.index
            .iter()
            .map(|(name, e)| EntryInfo { name: name.clone(), kind: e.kind, len: e.len })
            .collect()
    }

    /// Current shape counters.
    pub fn stats(&self) -> StoreStats {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        StoreStats {
            entries: st.index.len(),
            generation: st.gen,
            wal_seq_floor: st.floor,
            wal_bytes: st.wal.tail(),
            next_seq: st.wal.next_seq(),
        }
    }

    /// Forces an `fdatasync` covering every mutation so far.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn flush(&self) -> Result<(), StoreError> {
        let seq = {
            let d = self.dur.lock().unwrap_or_else(|e| e.into_inner());
            d.written
        };
        self.commit(seq)
    }

    /// Re-reads and fully re-validates every live payload: checksum plus
    /// a complete parse (container validation for tensors, image parse +
    /// structural checks for matrices). Returns the number verified.
    ///
    /// # Errors
    ///
    /// The first entry that fails, as a typed error naming it.
    pub fn verify(&self) -> Result<usize, StoreError> {
        let names: Vec<String> = self.list().into_iter().map(|e| e.name).collect();
        for name in &names {
            match self.kind_of(name) {
                Some(EntryKind::Tensor) => {
                    self.get_tensor(name)?;
                }
                Some(EntryKind::Matrix) => {
                    self.get_matrix(name)?;
                }
                // Deleted between list() and here — fine, skip.
                None => {}
            }
        }
        Ok(names.len())
    }

    /// WAL-append one mutation and apply it to the index. Not yet
    /// durable — callers follow with [`BlockStore::commit`].
    fn mutate(&self, kind: RecordKind, name: &str, payload: &[u8]) -> Result<u64, StoreError> {
        validate_name(name)?;
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let info = st.wal.append(kind, name, payload)?;
        let entry_kind = match kind {
            RecordKind::PutTensor => EntryKind::Tensor,
            RecordKind::PutMatrix => EntryKind::Matrix,
            // Deletes go through `delete` which never calls mutate.
            RecordKind::Delete => EntryKind::Tensor,
        };
        st.index.insert(
            name.to_string(),
            IndexEntry {
                kind: entry_kind,
                loc: Loc::Wal,
                offset: info.payload_off,
                len: info.payload_len,
                crc: info.payload_crc,
            },
        );
        let mut d = self.dur.lock().unwrap_or_else(|e| e.into_inner());
        d.written = d.written.max(info.seq);
        Ok(info.seq)
    }

    /// Group commit: returns once `seq` is durable. One thread performs
    /// the `fdatasync` (covering everything written), the rest wait.
    fn commit(&self, seq: u64) -> Result<(), StoreError> {
        loop {
            let mut d = self.dur.lock().unwrap_or_else(|e| e.into_inner());
            if d.durable >= seq {
                return Ok(());
            }
            if d.syncing {
                let _unused = self
                    .dur_cv
                    .wait(d)
                    .unwrap_or_else(|e| e.into_inner());
                continue;
            }
            d.syncing = true;
            let target = d.written;
            drop(d);
            // Clone the append handle under the state lock (cheap dup);
            // sync without it so appends keep flowing during the flush.
            let file = {
                let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                st.wal.file_clone()
            };
            let res = file.and_then(|f| f.sync_data().map_err(StoreError::Io));
            let mut d = self.dur.lock().unwrap_or_else(|e| e.into_inner());
            d.syncing = false;
            if res.is_ok() {
                d.durable = d.durable.max(target);
            }
            self.dur_cv.notify_all();
            res?;
        }
    }

    /// Resolves `name` and `pread`s its payload into an aligned buffer,
    /// verifying the extent checksum.
    fn read_entry(&self, name: &str) -> Result<(IndexEntry, AlignedBuf), StoreError> {
        validate_name(name)?;
        // Acquire the reader guard *before* releasing the index lock:
        // compaction swaps files only under the writer half, so the
        // extent cannot dangle while we hold the read guard.
        let (entry, readers) = {
            let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            let entry = *st
                .index
                .get(name)
                .ok_or_else(|| StoreError::NotFound(name.to_string()))?;
            let readers = self.readers.read().unwrap_or_else(|e| e.into_inner());
            (entry, readers)
        };
        let mut buf = AlignedBuf::new(entry.len as usize);
        {
            use std::os::unix::fs::FileExt;
            let file = match entry.loc {
                Loc::Wal => &readers.wal,
                Loc::Block => readers.blocks.as_ref().ok_or_else(|| {
                    StoreError::Corrupt(format!(
                        "index places {name:?} in a block file, but no generation is live"
                    ))
                })?,
            };
            file.read_exact_at(buf.as_mut_slice(), entry.offset)?;
        }
        let found = fnv1a(buf.as_slice());
        if found != entry.crc {
            return Err(StoreError::Corrupt(format!(
                "payload checksum mismatch for {name:?}: index says {:#018x}, bytes hash to {found:#018x}",
                entry.crc
            )));
        }
        Ok((entry, buf))
    }
}

/// Cleans up files a crash mid-compaction can leave behind: `.tmp`
/// installs that never renamed, and manifest/block files of any
/// generation other than the live one. Returns how many were removed.
fn gc_stale(dir: &Path, live_gen: u64) -> Result<usize, StoreError> {
    let mut removed = 0;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = if name.ends_with(".tmp") {
            true
        } else if let Some(hex) = name.strip_prefix("manifest-") {
            u64::from_str_radix(hex, 16).is_ok_and(|g| g != live_gen)
        } else if let Some(hex) =
            name.strip_prefix("blocks-").and_then(|n| n.strip_suffix(".dat"))
        {
            u64::from_str_radix(hex, 16).is_ok_and(|g| g != live_gen)
        } else {
            false
        };
        if stale {
            std::fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// Serializes an [`EncodedMatrix`] into the `SPKM` image: a 40-byte
/// header (magic, version, dims, precision profile, panel count), a
/// per-panel length table, then the concatenated container images and
/// sign planes. Integrity comes from the WAL/manifest extent checksum
/// over the whole image plus each panel's own container checksum.
pub fn matrix_image(m: &EncodedMatrix) -> Vec<u8> {
    let panels = m.panels();
    let body: usize = (0..panels)
        .map(|p| m.panel_container(p).len() + m.panel_signs(p).len())
        .sum();
    let mut buf = Vec::with_capacity(MATRIX_HEADER_LEN + 16 * panels + body);
    buf.extend_from_slice(&MATRIX_MAGIC);
    buf.extend_from_slice(&MATRIX_VERSION.to_le_bytes());
    buf.extend_from_slice(&(m.k() as u64).to_le_bytes());
    buf.extend_from_slice(&(m.n() as u64).to_le_bytes());
    buf.extend_from_slice(&m.profile().scale.to_le_bytes());
    buf.push(m.profile().bits);
    buf.extend_from_slice(&[0u8; 3]);
    buf.extend_from_slice(&(panels as u32).to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]);
    for p in 0..panels {
        buf.extend_from_slice(&(m.panel_container(p).len() as u64).to_le_bytes());
        buf.extend_from_slice(&(m.panel_signs(p).len() as u64).to_le_bytes());
    }
    for p in 0..panels {
        buf.extend_from_slice(m.panel_container(p));
        buf.extend_from_slice(m.panel_signs(p));
    }
    buf
}

/// Parses an `SPKM` image back into an [`EncodedMatrix`] via
/// [`EncodedMatrix::from_raw_parts`]. Every field is cross-checked
/// before any allocation is sized from it.
///
/// # Errors
///
/// [`StoreError::Corrupt`] on structural violations,
/// [`StoreError::Encoded`] when the raw parts fail the matrix's own
/// shape invariants.
pub fn parse_matrix_image(bytes: &[u8]) -> Result<EncodedMatrix, StoreError> {
    if bytes.len() < MATRIX_HEADER_LEN {
        return Err(StoreError::Corrupt(format!(
            "SPKM image is {} bytes, shorter than the {MATRIX_HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if bytes[0..4] != MATRIX_MAGIC {
        return Err(StoreError::Corrupt(format!(
            "bad SPKM magic {:?}",
            &bytes[0..4]
        )));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice"));
    if version != MATRIX_VERSION {
        return Err(StoreError::Corrupt(format!("unsupported SPKM version {version}")));
    }
    let k = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let n = u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice"));
    let scale = f32::from_le_bytes(bytes[24..28].try_into().expect("4-byte slice"));
    let bits = bytes[28];
    if bytes[29..32].iter().any(|&b| b != 0) || bytes[36..40].iter().any(|&b| b != 0) {
        return Err(StoreError::Corrupt("nonzero SPKM pad bytes".into()));
    }
    let panel_count =
        u32::from_le_bytes(bytes[32..36].try_into().expect("4-byte slice")) as usize;
    if !scale.is_finite() || scale <= 0.0 {
        return Err(StoreError::Corrupt(format!(
            "SPKM precision scale {scale} is not a positive finite value"
        )));
    }
    if bits == 0 || bits > 16 {
        return Err(StoreError::Corrupt(format!("SPKM bit-width {bits} out of range")));
    }
    // Dims must describe an allocatable matrix before usize conversion.
    if k > u32::MAX as u64 || n > u32::MAX as u64 {
        return Err(StoreError::Corrupt(format!("implausible SPKM dims {k}x{n}")));
    }
    let (k, n) = (k as usize, n as usize);
    let table_end = MATRIX_HEADER_LEN
        .checked_add(16usize.checked_mul(panel_count).unwrap_or(usize::MAX))
        .unwrap_or(usize::MAX);
    if table_end > bytes.len() {
        return Err(StoreError::Corrupt(format!(
            "SPKM length table for {panel_count} panels overruns the {}-byte image",
            bytes.len()
        )));
    }
    let mut lens = Vec::with_capacity(panel_count);
    for p in 0..panel_count {
        let at = MATRIX_HEADER_LEN + 16 * p;
        let c = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte slice"));
        let s = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().expect("8-byte slice"));
        if c > bytes.len() as u64 || s > bytes.len() as u64 {
            return Err(StoreError::Corrupt(format!(
                "SPKM panel {p} declares lengths beyond the image"
            )));
        }
        lens.push((c as usize, s as usize));
    }
    let mut pos = table_end;
    let mut panels = Vec::with_capacity(panel_count);
    let mut signs = Vec::with_capacity(panel_count);
    for (p, &(c, s)) in lens.iter().enumerate() {
        let need = c.checked_add(s).unwrap_or(usize::MAX);
        if bytes.len() - pos < need {
            return Err(StoreError::Corrupt(format!(
                "SPKM payload truncated inside panel {p}"
            )));
        }
        panels.push(bytes[pos..pos + c].to_vec());
        pos += c;
        signs.push(bytes[pos..pos + s].to_vec());
        pos += s;
    }
    if pos != bytes.len() {
        return Err(StoreError::Corrupt(format!(
            "SPKM image has {} trailing bytes",
            bytes.len() - pos
        )));
    }
    let profile = PrecisionProfile { scale, bits };
    Ok(EncodedMatrix::from_raw_parts(k, n, profile, panels, signs)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_tensor::Tensor;
    use spark_util::rng::Rng;

    fn tmp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "spark-store-{tag}-{}-{n}",
            std::process::id()
        ));
        dir
    }

    fn sample_tensor(seed: u64, len: usize) -> EncodedTensor {
        let mut rng = Rng::seed_from_u64(seed);
        let values: Vec<u8> = (0..len).map(|_| (rng.next_u64() >> 16) as u8).collect();
        spark_codec::encode_tensor(&values)
    }

    fn sample_matrix(seed: u64, k: usize, n: usize) -> EncodedMatrix {
        let mut rng = Rng::seed_from_u64(seed);
        let data: Vec<f32> = (0..k * n).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();
        let t = Tensor::from_vec(data, &[k, n]).unwrap();
        EncodedMatrix::encode(&t).unwrap()
    }

    #[test]
    fn put_get_delete_round_trip() {
        let dir = tmp_dir("crud");
        let store = BlockStore::open(&dir).unwrap();
        let t = sample_tensor(1, 300);
        store.put_tensor("act/x", &t).unwrap();
        let back = store.get_tensor("act/x").unwrap();
        assert_eq!(back.stream.as_bytes(), t.stream.as_bytes());
        assert_eq!(back.elements, t.elements);

        let m = sample_matrix(2, 48, 20);
        store.put_matrix("w/fc1", &m).unwrap();
        let mb = store.get_matrix("w/fc1").unwrap();
        assert_eq!(mb.decode().unwrap().as_slice(), m.decode().unwrap().as_slice());

        assert_eq!(store.list().len(), 2);
        assert_eq!(store.kind_of("act/x"), Some(EntryKind::Tensor));
        assert_eq!(store.kind_of("w/fc1"), Some(EntryKind::Matrix));
        assert!(matches!(
            store.get_matrix("act/x"),
            Err(StoreError::WrongKind { .. })
        ));
        assert_eq!(store.verify().unwrap(), 2);

        store.delete("act/x").unwrap();
        assert!(matches!(store.get_tensor("act/x"), Err(StoreError::NotFound(_))));
        assert!(matches!(store.delete("act/x"), Err(StoreError::NotFound(_))));
        assert_eq!(store.list().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn puts_after_a_compacted_reopen_survive_the_next_recovery() {
        // Regression: compaction rewrites the WAL empty, so a reopened
        // log restarts numbering at 1 — below the manifest's replay
        // floor. A fresh put must still land *above* the fence, or the
        // next recovery silently drops an acknowledged write.
        let dir = tmp_dir("postcompact");
        {
            let store = BlockStore::open(&dir).unwrap();
            store.put_tensor("a", &sample_tensor(40, 100)).unwrap();
            store.put_tensor("b", &sample_tensor(41, 150)).unwrap();
            store.compact().unwrap();
        }
        {
            let store = BlockStore::open(&dir).unwrap();
            assert!(store.recovery_report().wal_seq_floor > 0);
            store.put_tensor("c", &sample_tensor(42, 120)).unwrap();
        }
        let store = BlockStore::open(&dir).unwrap();
        let rep = store.recovery_report();
        assert_eq!(rep.records_applied, 1, "the post-compaction put must replay");
        assert_eq!(rep.records_skipped, 0);
        assert_eq!(rep.live_entries, 3);
        let names: Vec<String> = store.list().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(store.verify().unwrap(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn state_survives_reopen() {
        let dir = tmp_dir("reopen");
        {
            let store = BlockStore::open(&dir).unwrap();
            store.put_tensor("a", &sample_tensor(3, 100)).unwrap();
            store.put_tensor("b", &sample_tensor(4, 200)).unwrap();
            store.delete("a").unwrap();
            store.put_matrix("m", &sample_matrix(5, 32, 16)).unwrap();
        }
        let store = BlockStore::open(&dir).unwrap();
        let rep = store.recovery_report();
        assert_eq!(rep.records_applied, 4);
        assert_eq!(rep.records_skipped, 0);
        assert_eq!(rep.live_entries, 2);
        assert!(rep.torn_tail.is_none());
        let names: Vec<String> = store.list().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["b", "m"]);
        assert_eq!(
            store.get_tensor("b").unwrap().stream.as_bytes(),
            sample_tensor(4, 200).stream.as_bytes()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overwrite_takes_the_latest_payload() {
        let dir = tmp_dir("overwrite");
        let store = BlockStore::open(&dir).unwrap();
        store.put_tensor("t", &sample_tensor(6, 50)).unwrap();
        store.put_tensor("t", &sample_tensor(7, 80)).unwrap();
        assert_eq!(
            store.get_tensor("t").unwrap().stream.as_bytes(),
            sample_tensor(7, 80).stream.as_bytes()
        );
        drop(store);
        let store = BlockStore::open(&dir).unwrap();
        assert_eq!(
            store.get_tensor("t").unwrap().stream.as_bytes(),
            sample_tensor(7, 80).stream.as_bytes()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn put_container_validates_before_accepting() {
        let dir = tmp_dir("ingest");
        let store = BlockStore::open(&dir).unwrap();
        let t = sample_tensor(8, 120);
        let mut image = Vec::new();
        spark_codec::write_container(&t, &mut image).unwrap();
        assert_eq!(store.put_container("ok", &image).unwrap(), 120);

        let mut rot = image.clone();
        let last = rot.len() - 1;
        rot[last] ^= 0x01;
        assert!(matches!(
            store.put_container("bad", &rot),
            Err(StoreError::Container(_))
        ));
        assert_eq!(store.kind_of("bad"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn matrix_image_round_trips_and_rejects_mutations() {
        let m = sample_matrix(9, 70, 33); // ragged last panel
        let image = matrix_image(&m);
        let back = parse_matrix_image(&image).unwrap();
        assert_eq!(back.k(), 70);
        assert_eq!(back.n(), 33);
        assert_eq!(back.profile(), m.profile());
        assert_eq!(back.decode().unwrap().as_slice(), m.decode().unwrap().as_slice());
        // Every truncation of the image is rejected with a typed error.
        for cut in 0..image.len().min(200) {
            assert!(parse_matrix_image(&image[..cut]).is_err(), "cut {cut} accepted");
        }
        // Header-field mutations are rejected.
        for (at, flip) in [(0usize, 0xFFu8), (4, 0x01), (28, 0xFF), (32, 0xFF)] {
            let mut rot = image.clone();
            rot[at] ^= flip;
            assert!(parse_matrix_image(&rot).is_err(), "mutation at {at} accepted");
        }
        std::hint::black_box(back);
    }

    #[test]
    fn concurrent_puts_group_commit_without_loss() {
        let dir = tmp_dir("group");
        let store = std::sync::Arc::new(BlockStore::open(&dir).unwrap());
        let mut handles = Vec::new();
        for thread in 0..4u64 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..8u64 {
                    let name = format!("t/{thread}-{i}");
                    store.put_tensor(&name, &sample_tensor(thread * 100 + i, 64)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.list().len(), 32);
        drop(store);
        let store = BlockStore::open(&dir).unwrap();
        assert_eq!(store.list().len(), 32);
        assert_eq!(store.verify().unwrap(), 32);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_report_json_is_deterministic() {
        let dir = tmp_dir("report");
        {
            let store = BlockStore::open(&dir).unwrap();
            store.put_tensor("x", &sample_tensor(10, 40)).unwrap();
        }
        let a = BlockStore::open(&dir).unwrap().recovery_report().to_json().to_string_compact();
        let b = BlockStore::open(&dir).unwrap().recovery_report().to_json().to_string_compact();
        assert_eq!(a, b);
        assert!(a.contains("\"records_applied\":1"));
        assert!(a.contains("\"torn_tail\":null"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
