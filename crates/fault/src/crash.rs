//! Crash plane: power-cut adversary against the persistent blockstore.
//!
//! [`spark_store::BlockStore`] claims crash-deterministic recovery: after
//! a crash leaving any byte prefix of the WAL on disk — or a crash inside
//! any window of the compaction protocol — reopening yields exactly the
//! committed mutations, with typed errors only, and two recovery runs of
//! the same directory report identically. This plane attacks all of it:
//!
//! - **Truncation sweep** — a seeded workload builds a log; the log is
//!   cut at a spread of byte offsets and recovered. Recovery must never
//!   panic, never refuse a pure truncation, apply a monotonically
//!   non-decreasing record count as the prefix grows, and match the
//!   expected committed state exactly at every cut.
//! - **Bit rot** — single-bit flips anywhere in the log; recovery must
//!   come back typed-and-working and every surviving entry must pass its
//!   payload checksum ([`BlockStore::verify`]).
//! - **Compaction windows** — the store is crashed at each
//!   [`CompactPoint`] failpoint (after writing blocks, after the
//!   manifest, after the `CURRENT` swap); reopening must converge on the
//!   same live set in every window, twice.
//!
//! Everything derives from the caller's seed; the report carries counts
//! only (no paths, no wall-clock), so two sweeps with the same inputs
//! serialize byte-identically.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use spark_codec::encode_tensor;
use spark_store::{BlockStore, CompactPoint};
use spark_util::json::Value;
use spark_util::Rng;

/// Aggregated outcome of one crash sweep against the blockstore.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CrashSweepReport {
    /// WAL truncation points recovered.
    pub cuts: u64,
    /// Unwinds caught escaping recovery anywhere in the plane. Must be 0.
    pub panics: u64,
    /// Truncation cuts that failed to open. Must be 0: a pure prefix is
    /// always recoverable.
    pub open_failures: u64,
    /// Cuts whose recovered live set differed from the committed prefix.
    /// Must be 0.
    pub state_mismatches: u64,
    /// Cuts where a longer prefix recovered fewer records. Must be 0.
    pub non_monotonic: u64,
    /// Cuts where a second recovery of the same directory reported
    /// differently. Must be 0.
    pub replay_mismatches: u64,
    /// Cuts that diagnosed (and discarded) a torn tail.
    pub torn_tails: u64,
    /// Single-bit corruption trials.
    pub bitrot_trials: u64,
    /// Bit-rot recoveries that failed to open or whose surviving entries
    /// failed checksum verification. Must be 0.
    pub bitrot_failures: u64,
    /// Compaction failpoint windows crashed into and recovered.
    pub compaction_windows: u64,
    /// Windows whose recovered state diverged from the committed live
    /// set, or differed between two recovery runs. Must be 0.
    pub compaction_mismatches: u64,
}

impl CrashSweepReport {
    /// The report as deterministic JSON (counts only).
    pub fn to_json(&self) -> Value {
        Value::object([
            ("cuts", Value::Num(self.cuts as f64)),
            ("panics", Value::Num(self.panics as f64)),
            ("open_failures", Value::Num(self.open_failures as f64)),
            ("state_mismatches", Value::Num(self.state_mismatches as f64)),
            ("non_monotonic", Value::Num(self.non_monotonic as f64)),
            ("replay_mismatches", Value::Num(self.replay_mismatches as f64)),
            ("torn_tails", Value::Num(self.torn_tails as f64)),
            ("bitrot_trials", Value::Num(self.bitrot_trials as f64)),
            ("bitrot_failures", Value::Num(self.bitrot_failures as f64)),
            ("compaction_windows", Value::Num(self.compaction_windows as f64)),
            ("compaction_mismatches", Value::Num(self.compaction_mismatches as f64)),
        ])
    }

    /// True when recovery never panicked, never refused a prefix, matched
    /// the committed state at every cut, and converged identically across
    /// reruns — in every window.
    pub fn contract_holds(&self) -> bool {
        self.panics == 0
            && self.open_failures == 0
            && self.state_mismatches == 0
            && self.non_monotonic == 0
            && self.replay_mismatches == 0
            && self.bitrot_failures == 0
            && self.compaction_mismatches == 0
    }
}

/// Scratch directory for one sub-experiment, namespaced by pid + seed so
/// parallel CI shards never collide.
fn scratch(seed: u64, tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("spark-fault-crash-{}-{seed}-{tag}", std::process::id()))
}

/// One deterministic put/delete workload; returns the expected live set
/// (name → container image) after each mutation.
fn run_workload(
    store: &BlockStore,
    seed: u64,
    ops: usize,
) -> Result<Vec<BTreeMap<String, Vec<u8>>>, String> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut live: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let mut states = Vec::with_capacity(ops);
    for i in 0..ops {
        let roll = rng.gen_below(10);
        if roll < 7 || live.is_empty() {
            let name = format!("t/{:02}", rng.gen_below(8));
            let len = 16 + rng.gen_below(120) as usize;
            let values: Vec<u8> = (0..len).map(|_| (rng.next_u64() >> 11) as u8).collect();
            let tensor = encode_tensor(&values);
            store.put_tensor(&name, &tensor).map_err(|e| format!("workload put {i}: {e}"))?;
            let mut image = Vec::new();
            spark_codec::write_container(&tensor, &mut image)
                .map_err(|e| format!("image serialize: {e}"))?;
            live.insert(name, image);
        } else {
            let names: Vec<&String> = live.keys().collect();
            let name = names[rng.gen_below(names.len() as u64) as usize].clone();
            store.delete(&name).map_err(|e| format!("workload delete {i}: {e}"))?;
            live.remove(&name);
        }
        states.push(live.clone());
    }
    Ok(states)
}

/// True when `store` holds exactly `want` (names and payload bytes).
fn state_matches(store: &BlockStore, want: &BTreeMap<String, Vec<u8>>) -> bool {
    let names: Vec<String> = store.list().into_iter().map(|e| e.name).collect();
    if names.len() != want.len() || !names.iter().eq(want.keys()) {
        return false;
    }
    want.iter().all(|(name, payload)| {
        matches!(store.get_raw(name), Ok((_, bytes)) if &bytes == payload)
    })
}

/// The path-free numeric core of a recovery report, for comparing two
/// recovery runs of the same directory.
fn report_fingerprint(store: &BlockStore) -> String {
    let r = store.recovery_report();
    format!(
        "gen={} applied={} live={} next={}",
        r.generation, r.records_applied, r.live_entries, r.next_seq
    )
}

/// Runs the full crash plane: truncation sweep over ~`cuts` offsets,
/// seeded bit-rot trials, and all three compaction failpoint windows.
///
/// # Errors
///
/// Infrastructure failures only (scratch directory I/O, a workload append
/// on the *clean* store failing) — contract violations are counters in
/// the report, never errors.
pub fn sweep_store_crash(seed: u64, cuts: usize) -> Result<CrashSweepReport, String> {
    let mut report = CrashSweepReport::default();

    // Reference log: a seeded workload, fully committed, then read back.
    let base = scratch(seed, "base");
    let _ = std::fs::remove_dir_all(&base);
    let states = {
        let store = BlockStore::open(&base).map_err(|e| format!("open base store: {e}"))?;
        run_workload(&store, seed, 16)?
    };
    let full_log =
        std::fs::read(base.join("wal.log")).map_err(|e| format!("read reference log: {e}"))?;

    // Truncation sweep: an evenly-spread set of byte cuts, always
    // including the exact end (the uncrashed image).
    let sweep = scratch(seed, "sweep");
    let _ = std::fs::remove_dir_all(&sweep);
    std::fs::create_dir_all(&sweep).map_err(|e| format!("mkdir sweep: {e}"))?;
    let step = (full_log.len() / cuts.max(1)).max(1);
    let mut prev_applied = 0usize;
    for cut in (0..=full_log.len()).step_by(step).chain([full_log.len()]) {
        report.cuts += 1;
        std::fs::write(sweep.join("wal.log"), &full_log[..cut])
            .map_err(|e| format!("write crash image: {e}"))?;
        let opened = catch_unwind(AssertUnwindSafe(|| BlockStore::open(&sweep)));
        let store = match opened {
            Err(_) => {
                report.panics += 1;
                continue;
            }
            Ok(Err(_)) => {
                report.open_failures += 1;
                continue;
            }
            Ok(Ok(s)) => s,
        };
        let r = store.recovery_report();
        if r.torn_tail.is_some() {
            report.torn_tails += 1;
        }
        let applied = r.records_applied;
        if applied < prev_applied {
            report.non_monotonic += 1;
        }
        prev_applied = applied;
        let matches = match applied {
            0 => store.list().is_empty(),
            n => states.get(n - 1).is_some_and(|want| state_matches(&store, want)),
        };
        if !matches {
            report.state_mismatches += 1;
        }
        // Recovery idempotence: reopening the recovered directory must
        // change nothing and fingerprint identically.
        let first = report_fingerprint(&store);
        drop(store);
        match BlockStore::open(&sweep) {
            Ok(second) => {
                if report_fingerprint(&second) != first {
                    report.replay_mismatches += 1;
                }
            }
            Err(_) => report.open_failures += 1,
        }
    }

    // Bit rot: one flipped bit anywhere in the log. Recovery must come
    // back working and every surviving entry must verify.
    let mut rng = Rng::seed_from_u64(seed ^ 0xB17_207);
    let trials = (cuts / 2).max(8);
    for _ in 0..trials {
        report.bitrot_trials += 1;
        let mut rot = full_log.clone();
        let at = rng.gen_below(rot.len() as u64) as usize;
        rot[at] ^= 1 << rng.gen_below(8);
        std::fs::write(sweep.join("wal.log"), &rot)
            .map_err(|e| format!("write rotted image: {e}"))?;
        match catch_unwind(AssertUnwindSafe(|| BlockStore::open(&sweep))) {
            Err(_) => report.panics += 1,
            Ok(Err(_)) => report.bitrot_failures += 1,
            Ok(Ok(s)) => {
                if s.verify().is_err() {
                    report.bitrot_failures += 1;
                }
            }
        }
    }

    // Compaction windows: crash at each failpoint, then recover twice.
    for (i, point) in
        [CompactPoint::AfterBlocks, CompactPoint::AfterManifest, CompactPoint::AfterCurrent]
            .into_iter()
            .enumerate()
    {
        report.compaction_windows += 1;
        let dir = scratch(seed, &format!("compact-{i}"));
        let _ = std::fs::remove_dir_all(&dir);
        let want = {
            let store = BlockStore::open(&dir).map_err(|e| format!("open compact store: {e}"))?;
            let states = run_workload(&store, seed.wrapping_add(i as u64 + 1), 10)?;
            let crashed = catch_unwind(AssertUnwindSafe(|| store.compact_until(point)));
            if matches!(crashed, Err(_)) {
                report.panics += 1;
            }
            states.into_iter().next_back().unwrap_or_default()
        };
        let first = match catch_unwind(AssertUnwindSafe(|| BlockStore::open(&dir))) {
            Err(_) => {
                report.panics += 1;
                continue;
            }
            Ok(Err(_)) => {
                report.compaction_mismatches += 1;
                continue;
            }
            Ok(Ok(s)) => s,
        };
        if !state_matches(&first, &want) {
            report.compaction_mismatches += 1;
        }
        let fp = report_fingerprint(&first);
        drop(first);
        match BlockStore::open(&dir) {
            Ok(second) => {
                if report_fingerprint(&second) != fp || !state_matches(&second, &want) {
                    report.compaction_mismatches += 1;
                }
            }
            Err(_) => report.compaction_mismatches += 1,
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    let _ = std::fs::remove_dir_all(&base);
    let _ = std::fs::remove_dir_all(&sweep);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_plane_contract_holds_and_is_deterministic() {
        let a = sweep_store_crash(11, 40).unwrap();
        assert!(a.contract_holds(), "{}", a.to_json().to_string_compact());
        assert!(a.cuts > 0 && a.torn_tails > 0, "sweep must hit mid-record cuts");
        assert_eq!(a.compaction_windows, 3);
        let b = sweep_store_crash(11, 40).unwrap();
        assert_eq!(
            a.to_json().to_string_compact(),
            b.to_json().to_string_compact(),
            "crash report must be a pure function of the seed"
        );
    }
}
