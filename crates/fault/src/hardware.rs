//! Deterministic PE-datapath fault injectors for the functional array,
//! plus a systolic timing-plane sweep.
//!
//! Both injectors implement [`MacFaultHook`] and decide each MAC purely
//! from `(seed, site)` via a stateless [`splitmix64`] hash — no shared
//! RNG stream — so the injected fault pattern is identical no matter how
//! the GEMM is tiled or fanned out across threads (the hook contract in
//! `spark_sim::fault`). That makes fault-rate sweeps reproducible to the
//! bit, which the chaos report depends on.
//!
//! The timing plane ([`systolic_kind_flip`]) attacks the *scheduler*
//! instead of the datapath: operand precision tags flip from INT4 to
//! INT8 at faulted sites, and the cycle-accurate simulator must absorb
//! the now-slower MACs without hanging or panicking — cycles grow
//! monotonically with the upgrade, never wedge.

use spark_sim::{FunctionalArray, MacFaultHook, OperandKind, SignMag, SystolicSim};
use spark_util::json::Value;
use spark_util::rng::splitmix64;
use spark_util::Rng;

/// Hash-based per-site fault decision shared by the injectors: true for
/// roughly `rate` of all sites, deterministically in `(seed, site)`.
fn site_faulted(seed: u64, site: u64, threshold: u32) -> bool {
    let mut s = seed ^ site.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (splitmix64(&mut s) >> 32) < u64::from(threshold)
}

/// Converts a fault probability into a 32-bit hash threshold.
fn threshold(rate: f64) -> u32 {
    let clamped = rate.clamp(0.0, 1.0);
    // Saturating conversion keeps rate = 1.0 meaningful.
    (clamped * f64::from(u32::MAX)).round().min(f64::from(u32::MAX)) as u32
}

/// Stuck-at fault: at faulted sites, one bit of the weight magnitude is
/// forced high (stuck-at-1) or low (stuck-at-0), modelling a defective
/// weight-register cell in the PE.
#[derive(Debug, Clone, Copy)]
pub struct StuckAtFault {
    /// Fault-pattern seed.
    pub seed: u64,
    /// Hash threshold derived from the fault rate.
    thresh: u32,
    /// Magnitude bit forced (0..8).
    pub bit: u8,
    /// True forces the bit to 1, false to 0.
    pub stuck_high: bool,
}

impl StuckAtFault {
    /// A stuck-at fault hitting roughly `rate` of all MAC sites.
    pub fn new(seed: u64, rate: f64, bit: u8, stuck_high: bool) -> Self {
        Self { seed, thresh: threshold(rate), bit: bit % 8, stuck_high }
    }
}

impl MacFaultHook for StuckAtFault {
    fn perturb(&self, site: u64, w: SignMag, a: SignMag) -> (SignMag, SignMag) {
        if !site_faulted(self.seed, site, self.thresh) {
            return (w, a);
        }
        let mask = 1u8 << self.bit;
        let magnitude = if self.stuck_high { w.magnitude | mask } else { w.magnitude & !mask };
        (SignMag { magnitude, ..w }, a)
    }
}

/// Transient (soft-error) fault: at faulted sites, one seed-determined
/// bit of the activation magnitude is flipped for that MAC only.
#[derive(Debug, Clone, Copy)]
pub struct TransientFault {
    /// Fault-pattern seed.
    pub seed: u64,
    /// Hash threshold derived from the fault rate.
    thresh: u32,
}

impl TransientFault {
    /// A transient fault hitting roughly `rate` of all MAC sites.
    pub fn new(seed: u64, rate: f64) -> Self {
        Self { seed, thresh: threshold(rate) }
    }
}

impl MacFaultHook for TransientFault {
    fn perturb(&self, site: u64, w: SignMag, a: SignMag) -> (SignMag, SignMag) {
        if !site_faulted(self.seed, site, self.thresh) {
            return (w, a);
        }
        // Which bit flips is itself site-determined (second hash word).
        let mut s = self.seed ^ site ^ 0xdead_beef_cafe_f00d;
        let bit = (splitmix64(&mut s) % 8) as u8;
        (w, SignMag { magnitude: a.magnitude ^ (1 << bit), ..a })
    }
}

/// Deterministic random GEMM operands in the sign-magnitude INT8 range.
fn random_operands(rng: &mut Rng, count: usize) -> Vec<SignMag> {
    (0..count)
        .map(|_| SignMag {
            magnitude: (rng.gen_below(256)) as u8,
            negative: rng.gen_bool(),
        })
        .collect()
}

/// Mean absolute output error of a faulted GEMM, normalized by the mean
/// absolute clean output (0.0 = bit-identical).
fn relative_error(clean: &[i64], faulty: &[i64]) -> f64 {
    let denom: f64 = clean.iter().map(|&c| c.abs() as f64).sum::<f64>().max(1.0);
    let num: f64 = clean.iter().zip(faulty).map(|(&c, &f)| (c - f).abs() as f64).sum();
    num / denom
}

/// Sweeps transient-fault rates over a fixed GEMM and reports the output
/// degradation per rate, deterministically in `seed`.
pub fn accuracy_sweep(seed: u64, rates: &[f64]) -> Value {
    const M: usize = 24;
    const K: usize = 48;
    const N: usize = 24;
    let mut rng = Rng::seed_from_u64(seed ^ 0xacc0_5eed);
    let a = random_operands(&mut rng, M * K);
    let w = random_operands(&mut rng, K * N);
    let array = FunctionalArray::new(16, 16);
    let (clean, _) = array.gemm(&a, &w, M, K, N);

    let points: Vec<Value> = rates
        .iter()
        .map(|&rate| {
            let hook = TransientFault::new(seed, rate);
            let (faulty, _) = array.gemm_with_hook(&hook, &a, &w, M, K, N);
            let perturbed =
                clean.iter().zip(&faulty).filter(|(c, f)| c != f).count();
            Value::object([
                ("rate", Value::Num(rate)),
                ("outputs_perturbed", Value::Num(perturbed as f64)),
                ("outputs_total", Value::Num(clean.len() as f64)),
                ("relative_error", Value::Num(relative_error(&clean, &faulty))),
            ])
        })
        .collect();
    Value::object([
        ("gemm", Value::Str(format!("{M}x{K}x{N}"))),
        ("fault_model", Value::Str("transient single-bit activation flip".into())),
        ("points", Value::Array(points)),
    ])
}

/// Timing-plane sweep: runs a systolic tile with precision tags upgraded
/// INT4 → INT8 at hash-faulted sites and reports the cycle inflation.
/// The simulator must complete every corrupted schedule (no hang, no
/// panic) with cycles monotonically above the clean run.
pub fn systolic_kind_flip(seed: u64, rate: f64) -> Value {
    const ROWS: usize = 16;
    const COLS: usize = 16;
    const WAVES: usize = 64;
    let mut rng = Rng::seed_from_u64(seed ^ 0x5157_011c);
    let mut kinds = |n: usize| -> Vec<OperandKind> {
        (0..n)
            .map(|_| if rng.gen_bool() { OperandKind::Int4 } else { OperandKind::Int8 })
            .collect()
    };
    let weights: Vec<Vec<OperandKind>> = (0..ROWS).map(|_| kinds(COLS)).collect();
    let activations: Vec<Vec<OperandKind>> = (0..WAVES).map(|_| kinds(ROWS)).collect();

    let thresh = threshold(rate);
    let flip = |base: &[Vec<OperandKind>], plane: u64| -> Vec<Vec<OperandKind>> {
        base.iter()
            .enumerate()
            .map(|(r, row)| {
                row.iter()
                    .enumerate()
                    .map(|(c, &k)| {
                        let site = plane << 32 | (r * row.len() + c) as u64;
                        if site_faulted(seed, site, thresh) { OperandKind::Int8 } else { k }
                    })
                    .collect()
            })
            .collect()
    };

    let sim = SystolicSim::new(ROWS, COLS);
    let clean = sim.run_tile(&weights, &activations);
    let faulted = sim.run_tile(&flip(&weights, 1), &flip(&activations, 2));
    Value::object([
        ("rate", Value::Num(rate)),
        ("clean_cycles", Value::Num(clean.cycles as f64)),
        ("faulted_cycles", Value::Num(faulted.cycles as f64)),
        (
            "cycle_inflation",
            Value::Num(faulted.cycles as f64 / (clean.cycles as f64).max(1.0)),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: usize = 8;
    const K: usize = 16;
    const N: usize = 8;

    fn fixed_gemm() -> (Vec<SignMag>, Vec<SignMag>) {
        let mut rng = Rng::seed_from_u64(5);
        (random_operands(&mut rng, M * K), random_operands(&mut rng, K * N))
    }

    #[test]
    fn zero_rate_hooks_are_bit_identical_to_clean() {
        let (a, w) = fixed_gemm();
        let array = FunctionalArray::new(4, 4);
        let (clean, clean_stats) = array.gemm(&a, &w, M, K, N);
        for hook in [
            &TransientFault::new(1, 0.0) as &dyn MacFaultHook,
            &StuckAtFault::new(1, 0.0, 3, true),
        ] {
            let (out, stats) = array.gemm_with_hook(&DynHook(hook), &a, &w, M, K, N);
            assert_eq!(out, clean);
            assert_eq!(stats.macs, clean_stats.macs);
        }
    }

    /// Adapter: the sweep tests iterate over hooks dynamically.
    struct DynHook<'a>(&'a dyn MacFaultHook);
    impl MacFaultHook for DynHook<'_> {
        fn perturb(&self, site: u64, w: SignMag, a: SignMag) -> (SignMag, SignMag) {
            self.0.perturb(site, w, a)
        }
    }

    #[test]
    fn fault_pattern_is_invariant_under_tiling() {
        // Same (seed, rate), different physical tile shapes: the site
        // hashing contract means identical outputs.
        let (a, w) = fixed_gemm();
        let hook = TransientFault::new(77, 0.05);
        let reference = FunctionalArray::new(16, 16).gemm_with_hook(&hook, &a, &w, M, K, N).0;
        for (r, c) in [(2, 2), (3, 5), (16, 4), (1, 16)] {
            let out = FunctionalArray::new(r, c).gemm_with_hook(&hook, &a, &w, M, K, N).0;
            assert_eq!(out, reference, "tile {r}x{c} changed the fault pattern");
        }
    }

    #[test]
    fn stuck_at_zero_on_a_zero_bit_is_harmless_and_high_is_not() {
        let a = vec![SignMag::positive(4); 4];
        let w = vec![SignMag::positive(2); 4]; // bit 0 clear in every weight
        let array = FunctionalArray::new(4, 4);
        let (clean, _) = array.gemm(&a, &w, 2, 2, 2);
        let benign = StuckAtFault::new(3, 1.0, 0, false); // stuck-at-0 on a 0 bit
        assert_eq!(array.gemm_with_hook(&benign, &a, &w, 2, 2, 2).0, clean);
        let harmful = StuckAtFault::new(3, 1.0, 0, true); // forces bit 0 high
        assert_ne!(array.gemm_with_hook(&harmful, &a, &w, 2, 2, 2).0, clean);
    }

    #[test]
    fn accuracy_sweep_is_deterministic_and_monotone_at_the_ends() {
        let rates = [0.0, 0.001, 0.01, 0.1];
        let a = accuracy_sweep(11, &rates);
        let b = accuracy_sweep(11, &rates);
        assert_eq!(a.to_string_compact(), b.to_string_compact());
        let points = a.get("points").and_then(Value::as_array).unwrap();
        let err = |i: usize| {
            points[i].get("relative_error").and_then(Value::as_f64).unwrap()
        };
        assert_eq!(err(0), 0.0, "zero rate must be bit-identical");
        assert!(err(3) > 0.0, "10% fault rate must corrupt outputs");
    }

    #[test]
    fn systolic_kind_flips_only_slow_the_array_down() {
        let clean = systolic_kind_flip(13, 0.0);
        assert_eq!(
            clean.get("clean_cycles").and_then(Value::as_f64),
            clean.get("faulted_cycles").and_then(Value::as_f64),
            "zero rate flips nothing"
        );
        for rate in [0.05, 0.25, 1.0] {
            let v = systolic_kind_flip(13, rate);
            let c = v.get("clean_cycles").and_then(Value::as_f64).unwrap();
            let f = v.get("faulted_cycles").and_then(Value::as_f64).unwrap();
            assert!(f >= c, "INT4→INT8 upgrades cannot speed up the tile ({rate}): {v:?}");
        }
    }
}
