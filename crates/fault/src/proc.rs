//! Process-kill chaos: real `spark serve` child processes behind a real
//! [`Router`], with `kill -9` in the loop.
//!
//! Every other plane in this crate attacks *in-process* state — bits,
//! panics, failpoints. This one attacks the process boundary itself: it
//! provisions N backend stores from one [`spark_store::snapshot`],
//! spawns N real `spark serve --store` children, fronts them with the
//! fleet router, runs the open-loop load harness through the router,
//! SIGKILLs a backend mid-run, restarts it, and checks the whole
//! robustness story end to end:
//!
//! - **Availability** — the router keeps answering while the victim is
//!   down (retries absorb the kill window).
//! - **Correctness** — a differential oracle fires one fixed `/v1/infer`
//!   body throughout; because every replica cold-loads bit-identical
//!   weights from the same snapshot, *every* 200 body must be
//!   byte-identical, kill or no kill. A single differing body is a
//!   wrong answer served to a client — the one unforgivable outcome.
//! - **Healing** — the restarted victim must be re-admitted through the
//!   router's half-open probes, not by operator intervention.
//!
//! [`router_kill_bench`] reports the raw numbers (`BENCH_router.json`);
//! [`proc_chaos`] is the `spark chaos` plane — the same drill reduced to
//! counts-and-booleans so two runs are byte-identical. When the `spark`
//! binary is not locatable (unit tests without a built CLI), the plane
//! reports `skipped` deterministically instead of failing.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use spark_serve::http;
use spark_serve::load::{run_load, LoadConfig, LoadReport};
use spark_serve::{Router, RouterConfig};
use spark_util::json::Value;
use spark_util::proc::{spark_bin, ChildProc};
use spark_util::Rng;

/// Scratch directory for one drill; torn down by the caller.
fn scratch(seed: u64, tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "spark-proc-{tag}-{seed}-{}",
        std::process::id()
    ))
}

/// Reserves a loopback port by binding ephemeral and dropping the
/// listener. The tiny reuse window between drop and the child's bind is
/// acceptable on a CI box; a collision surfaces as a failed healthz
/// wait, not silent corruption.
fn pick_port() -> Result<u16, String> {
    let l = std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| format!("pick_port: {e}"))?;
    let port = l.local_addr().map_err(|e| format!("pick_port: {e}"))?.port();
    Ok(port)
}

fn spawn_backend(bin: &PathBuf, addr: &str, store: &Path, label: &str) -> Result<ChildProc, String> {
    let args: Vec<String> = [
        "serve",
        "--addr",
        addr,
        "--workers",
        "2",
        "--shards",
        "1",
        "--shard-workers",
        "2",
        "--store",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain([store.display().to_string()])
    .collect();
    ChildProc::spawn(bin, &args, label)
}

/// Polls `GET /healthz` until 200 or the deadline.
fn await_ready(addr: &str, deadline: Duration) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if let Ok(resp) = http::client_call(addr, "GET", "/healthz", "", &[], b"") {
            if resp.status == 200 {
                return true;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

/// Builds the seed store every replica is snapshot-provisioned from.
fn build_seed_store(dir: &Path, seed: u64) -> Result<(), String> {
    let store = spark_store::BlockStore::open(dir).map_err(|e| format!("seed store: {e}"))?;
    let mut rng = Rng::seed_from_u64(seed);
    for i in 0..4 {
        let len = 64 + (rng.gen_below(64) as usize);
        let values: Vec<u8> = (0..len).map(|_| (rng.next_u64() >> 17) as u8).collect();
        store
            .put_tensor(&format!("load-{i:04}"), &spark_codec::encode_tensor(&values))
            .map_err(|e| format!("seed store put: {e}"))?;
    }
    store.flush().map_err(|e| format!("seed store flush: {e}"))?;
    Ok(())
}

/// The one fixed `/v1/infer` body the differential oracle fires.
fn oracle_body(seed: u64) -> Vec<u8> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x0AC1_E000);
    let values: Vec<String> = (0..spark_serve::api::INFER_INPUTS)
        .map(|_| format!("{}", (rng.gen_f64() * 2.0 - 1.0) as f32))
        .collect();
    format!("{{\"values\": [{}]}}", values.join(", ")).into_bytes()
}

/// What one kill drill measured.
struct DrillOutcome {
    backends: usize,
    load: LoadReport,
    oracle_probes: u64,
    oracle_ok: u64,
    wrong_bodies: u64,
    restarted: bool,
    readmitted: bool,
    router_retries: f64,
    router_budget_denied: f64,
    router_panics: f64,
    backend_panics: f64,
}

fn scrape_num(doc: &Value, section: &str, key: &str) -> f64 {
    doc.get(section)
        .and_then(|s| s.get(key))
        .and_then(Value::as_f64)
        .unwrap_or(-1.0)
}

/// Runs one full kill drill: provision `backends` replicas from one
/// snapshot, route load through them, SIGKILL one mid-run, restart it,
/// and wait for re-admission.
fn kill_drill(
    seed: u64,
    backends_n: usize,
    load_cfg: &LoadConfig,
    restart_after: Duration,
    readmit_wait: Duration,
) -> Result<DrillOutcome, String> {
    let bin = spark_bin().ok_or("spark binary not found (set SPARK_BIN or build the CLI)")?;
    let root = scratch(seed, "drill");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).map_err(|e| format!("scratch: {e}"))?;
    let result = kill_drill_inner(seed, backends_n, load_cfg, restart_after, readmit_wait, &bin, &root);
    let _ = std::fs::remove_dir_all(&root);
    result
}

#[allow(clippy::too_many_lines)]
fn kill_drill_inner(
    seed: u64,
    backends_n: usize,
    load_cfg: &LoadConfig,
    restart_after: Duration,
    readmit_wait: Duration,
    bin: &PathBuf,
    root: &Path,
) -> Result<DrillOutcome, String> {
    // Provision: one seed store, N snapshot replicas.
    let src = root.join("seed-store");
    build_seed_store(&src, seed)?;
    let mut replica_dirs = Vec::new();
    for i in 0..backends_n {
        let dst = root.join(format!("replica-{i}"));
        spark_store::snapshot(&src, &dst).map_err(|e| format!("snapshot replica {i}: {e}"))?;
        replica_dirs.push(dst);
    }

    // Spawn the fleet and wait for every backend to answer.
    let mut addrs = Vec::new();
    let mut children: Vec<ChildProc> = Vec::new();
    for (i, dir) in replica_dirs.iter().enumerate() {
        let addr = format!("127.0.0.1:{}", pick_port()?);
        children.push(spawn_backend(bin, &addr, dir, &format!("backend-{i}"))?);
        addrs.push(addr);
    }
    for addr in &addrs {
        if !await_ready(addr, Duration::from_secs(15)) {
            return Err(format!("backend {addr} never became ready"));
        }
    }

    let router = Router::start(RouterConfig {
        backends: addrs.clone(),
        probe_interval: Duration::from_millis(50),
        breaker_failures: 2,
        breaker_cooldown: Duration::from_millis(250),
        retry_budget_rps: 200.0,
        retry_budget_burst: 100.0,
        seed,
        ..RouterConfig::default()
    })
    .map_err(|e| format!("router start: {e}"))?;
    let router_addr = router.addr().to_string();

    // Differential oracle: one fixed infer body, fired continuously;
    // every 200 body must match the first byte-for-byte.
    let stop = Arc::new(AtomicBool::new(false));
    let probes = Arc::new(AtomicU64::new(0));
    let oks = Arc::new(AtomicU64::new(0));
    let wrong = Arc::new(AtomicU64::new(0));
    let golden: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    let oracle = {
        let (stop, probes, oks, wrong, golden) = (
            Arc::clone(&stop),
            Arc::clone(&probes),
            Arc::clone(&oks),
            Arc::clone(&wrong),
            Arc::clone(&golden),
        );
        let addr = router_addr.clone();
        let body = oracle_body(seed);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                probes.fetch_add(1, Ordering::Relaxed);
                if let Ok(resp) =
                    http::client_call(&addr, "POST", "/v1/infer", "application/json", &[], &body)
                {
                    if resp.status == 200 {
                        oks.fetch_add(1, Ordering::Relaxed);
                        let mut g = golden.lock().unwrap_or_else(|e| e.into_inner());
                        match g.as_ref() {
                            None => *g = Some(resp.body),
                            Some(first) if *first != resp.body => {
                                wrong.fetch_add(1, Ordering::Relaxed);
                            }
                            Some(_) => {}
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        })
    };

    // Killer: SIGKILL one backend a third of the way in, restart it
    // after `restart_after` on the same port and store.
    let victim = (seed as usize) % backends_n;
    let kill_at = load_cfg.duration / 3;
    let victim_addr = addrs[victim].clone();
    let victim_dir = replica_dirs[victim].clone();
    let killer_bin = bin.clone();
    let killer: std::thread::JoinHandle<Result<(bool, Option<ChildProc>), String>> = {
        let mut victim_child = children.remove(victim);
        std::thread::spawn(move || {
            std::thread::sleep(kill_at);
            victim_child.kill_hard()?;
            std::thread::sleep(restart_after);
            let revived = spawn_backend(
                &killer_bin,
                &victim_addr,
                &victim_dir,
                &format!("backend-{victim}-revived"),
            )?;
            let ready = await_ready(&victim_addr, Duration::from_secs(15));
            Ok((ready, Some(revived)))
        })
    };

    // The measured load runs while the kill and restart happen.
    let load = run_load(&router_addr, load_cfg).map_err(|e| format!("load: {e}"))?;

    let (restarted, revived_child) = killer
        .join()
        .map_err(|_| "killer thread panicked".to_string())??;
    if let Some(c) = revived_child {
        children.push(c);
    }

    // Re-admission: the router's half-open probes must return the
    // revived victim to Closed with a readmission tick.
    let mut readmitted = false;
    let t0 = Instant::now();
    while restarted && t0.elapsed() < readmit_wait {
        if let Ok(resp) = http::client_call(&router_addr, "GET", "/metrics", "", &[], b"") {
            if let Ok(doc) = std::str::from_utf8(&resp.body)
                .map_err(|e| e.to_string())
                .and_then(|t| spark_util::json::parse(t).map_err(|e| e.to_string()))
            {
                let entry = doc.get("backends").and_then(|b| b.get(&addrs[victim]));
                let state = entry
                    .and_then(|e| e.get("state"))
                    .and_then(|s| s.as_str())
                    .unwrap_or("");
                let readmissions = entry
                    .and_then(|e| e.get("readmissions"))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0);
                if state == "closed" && readmissions >= 1.0 {
                    readmitted = true;
                    break;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    stop.store(true, Ordering::Relaxed);
    oracle.join().map_err(|_| "oracle thread panicked".to_string())?;

    // Scrape router counters, then sum backend-side panic counters.
    let router_doc = http::client_call(&router_addr, "GET", "/metrics", "", &[], b"")
        .ok()
        .and_then(|r| std::str::from_utf8(&r.body).ok().map(String::from))
        .and_then(|t| spark_util::json::parse(&t).ok())
        .unwrap_or(Value::Null);
    let mut backend_panics = 0.0;
    for addr in &addrs {
        if let Ok(resp) = http::client_call(addr, "GET", "/metrics", "", &[], b"") {
            if let Ok(doc) = std::str::from_utf8(&resp.body)
                .map_err(|e| e.to_string())
                .and_then(|t| spark_util::json::parse(t).map_err(|e| e.to_string()))
            {
                backend_panics += scrape_num(&doc, "resilience", "panics_total").max(0.0);
            }
        }
    }

    router.shutdown();
    router.join();
    for mut c in children {
        let _ = c.kill_hard();
    }

    Ok(DrillOutcome {
        backends: backends_n,
        load,
        oracle_probes: probes.load(Ordering::Relaxed),
        oracle_ok: oks.load(Ordering::Relaxed),
        wrong_bodies: wrong.load(Ordering::Relaxed),
        restarted,
        readmitted,
        router_retries: scrape_num(&router_doc, "router", "retries"),
        router_budget_denied: scrape_num(&router_doc, "router", "retry_budget_denied"),
        router_panics: scrape_num(&router_doc, "router", "panics_total"),
        backend_panics,
    })
}

/// Availability over the drill: the share of scheduled requests that
/// received a *successful* HTTP answer. Sheds and transport failures
/// both count against it — the client doesn't care why it failed.
fn availability(load: &LoadReport) -> f64 {
    if load.offered == 0 {
        return 0.0;
    }
    load.ok as f64 / load.offered as f64
}

/// The full-size kill drill behind `BENCH_router.json`: 3 snapshot-
/// provisioned backends, open-loop load through the router, SIGKILL one
/// backend mid-run, restart it, and require re-admission. Reports raw
/// numbers (availability, wrong bodies, panics, retry accounting) for
/// the CI awk gates.
///
/// # Errors
///
/// Missing `spark` binary, provisioning failures, or a backend that
/// never becomes ready.
pub fn router_kill_bench(seed: u64) -> Result<Value, String> {
    let load_cfg = LoadConfig {
        seed,
        offered_rps: 150.0,
        duration: Duration::from_secs(4),
        tenants: 8,
        tenant_skew: 1.0,
        payloads: 4,
        injectors: 4,
        ..LoadConfig::default()
    };
    let d = kill_drill(
        seed,
        3,
        &load_cfg,
        Duration::from_millis(800),
        Duration::from_secs(10),
    )?;
    Ok(Value::object([
        ("seed", Value::Num(seed as f64)),
        ("backends", Value::Num(d.backends as f64)),
        ("offered", Value::Num(d.load.offered as f64)),
        ("ok", Value::Num(d.load.ok as f64)),
        ("availability", Value::Num(availability(&d.load))),
        ("shed_503", Value::Num(d.load.shed_503 as f64)),
        (
            "transport",
            Value::object([
                ("connect", Value::Num(d.load.transport_connect as f64)),
                ("timeout", Value::Num(d.load.transport_timeout as f64)),
                ("short_body", Value::Num(d.load.transport_short as f64)),
                ("other", Value::Num(d.load.transport_other as f64)),
            ]),
        ),
        (
            "oracle",
            Value::object([
                ("probes", Value::Num(d.oracle_probes as f64)),
                ("ok_200", Value::Num(d.oracle_ok as f64)),
            ]),
        ),
        ("wrong_bodies", Value::Num(d.wrong_bodies as f64)),
        ("victim_restarted", Value::Bool(d.restarted)),
        ("victim_readmitted", Value::Bool(d.readmitted)),
        ("router_retries", Value::Num(d.router_retries)),
        ("retry_budget_denied", Value::Num(d.router_budget_denied)),
        (
            "panics_total",
            Value::Num(d.router_panics.max(0.0) + d.backend_panics),
        ),
    ]))
}

/// The `spark chaos` router plane: the same drill scaled down and
/// reduced to booleans-vs-threshold and must-be-zero counts, so two
/// runs with the same seed produce byte-identical JSON. Wall-clock
/// quantities (how many requests landed in the kill window) never
/// appear — only whether the contract held.
///
/// When the `spark` binary cannot be located the plane reports
/// `{"skipped": true}` — deterministically — instead of failing the
/// whole chaos report.
///
/// # Errors
///
/// Infrastructure failures (scratch dir, spawn) once a binary *was*
/// found; contract violations are reported as false/nonzero fields, not
/// errors.
pub fn proc_chaos(seed: u64) -> Result<Value, String> {
    if spark_bin().is_none() {
        return Ok(Value::object([
            ("skipped", Value::Bool(true)),
            ("reason", Value::Str("spark binary unavailable".into())),
        ]));
    }
    let load_cfg = LoadConfig {
        seed,
        offered_rps: 120.0,
        duration: Duration::from_millis(2500),
        tenants: 4,
        tenant_skew: 1.0,
        payloads: 4,
        injectors: 4,
        ..LoadConfig::default()
    };
    let d = kill_drill(
        seed,
        2,
        &load_cfg,
        Duration::from_millis(600),
        Duration::from_secs(8),
    )?;
    let avail = availability(&d.load);
    Ok(Value::object([
        ("skipped", Value::Bool(false)),
        ("backends", Value::Num(d.backends as f64)),
        ("kill_issued", Value::Bool(true)),
        ("victim_restarted", Value::Bool(d.restarted)),
        ("victim_readmitted", Value::Bool(d.readmitted)),
        ("availability_ok", Value::Bool(avail >= 0.99)),
        ("wrong_bodies", Value::Num(d.wrong_bodies as f64)),
        ("oracle_saw_success", Value::Bool(d.oracle_ok > 0)),
        (
            "router_panics",
            Value::Num(d.router_panics.max(0.0)),
        ),
        ("backend_panics", Value::Num(d.backend_panics)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_chaos_without_a_binary_reports_skipped_deterministically() {
        // Under `cargo test` the CLI binary may or may not be built; both
        // sides of that coin must be byte-stable across two runs.
        let a = proc_chaos(11).unwrap().to_string_compact();
        let b = proc_chaos(11).unwrap().to_string_compact();
        assert_eq!(a, b);
        assert!(a.contains("\"skipped\""), "{a}");
    }

    #[test]
    fn oracle_body_is_a_pure_function_of_the_seed() {
        assert_eq!(oracle_body(3), oracle_body(3));
        assert_ne!(oracle_body(3), oracle_body(4));
        let text = String::from_utf8(oracle_body(3)).unwrap();
        let v = spark_util::json::parse(&text).unwrap();
        let n = v.get("values").and_then(|a| a.as_array().map(|arr| arr.len())).unwrap();
        assert_eq!(n, spark_serve::api::INFER_INPUTS);
    }
}
