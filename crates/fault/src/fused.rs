//! Corruption sweep against the decode-fused GEMM plane.
//!
//! The fused engine ([`spark_tensor::gemm`]) streams SPARK containers
//! straight into the B-panel packer of the blocked GEMM — weights are
//! untrusted bytes by the time they reach the hot loop. This sweep pins
//! the same contract the codec container plane has:
//!
//! - **No panics** — a mutated panel container must surface as a typed
//!   [`EncodedError`], never an unwind out of the packer or kernels.
//! - **No silent math** — every corrupted operand must be rejected
//!   *before* any decoded value reaches an accumulator, both on the
//!   bulk [`EncodedMatrix::decode`] path and on the fused
//!   [`matmul_encoded`](spark_tensor::ops::matmul_encoded) path. The
//!   per-panel FNV checksum is re-verified on every GEMM call, so
//!   `decode_ok` and `gemm_ok` must both be zero.
//!
//! Determinism: all shapes, values, and corruption sites derive from the
//! caller's seed; two sweeps with the same `(seed, trials)` serialize to
//! byte-identical JSON.

use std::panic::{catch_unwind, AssertUnwindSafe};

use spark_tensor::{ops, EncodedError, EncodedMatrix, Tensor};
use spark_util::json::Value;
use spark_util::Rng;

use crate::mutate;

/// Typed-error tallies for one corrupted-operand surface.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct FusedErrorCounts {
    container: u64,
    stream: u64,
    other: u64,
}

impl FusedErrorCounts {
    fn count(&mut self, e: &EncodedError) {
        match e {
            EncodedError::Container(_) => self.container += 1,
            EncodedError::Decode(_) => self.stream += 1,
            _ => self.other += 1,
        }
    }

    fn total(&self) -> u64 {
        self.container + self.stream + self.other
    }

    fn to_json(&self) -> Value {
        Value::object([
            ("container", Value::Num(self.container as f64)),
            ("stream", Value::Num(self.stream as f64)),
            ("other", Value::Num(self.other as f64)),
        ])
    }
}

/// Aggregated outcome of one fused-GEMM corruption sweep.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FusedSweepReport {
    /// Encoded operands corrupted and pushed through both paths.
    pub trials: u64,
    /// Unwinds caught escaping the decode or GEMM calls. Must be zero.
    pub panics: u64,
    /// Corrupted operands whose bulk `decode()` succeeded. Must be zero:
    /// every mutation breaks the per-panel checksum or length accounting.
    pub decode_ok: u64,
    /// Corrupted operands whose fused GEMM returned values. Must be zero.
    pub gemm_ok: u64,
    /// Typed errors from the bulk decode path.
    decode_errors: FusedErrorCounts,
    /// Typed errors from the fused GEMM path.
    gemm_errors: FusedErrorCounts,
}

impl FusedSweepReport {
    /// The report as deterministic JSON (counts only, no wall-clock).
    pub fn to_json(&self) -> Value {
        Value::object([
            ("trials", Value::Num(self.trials as f64)),
            ("panics", Value::Num(self.panics as f64)),
            ("decode_ok", Value::Num(self.decode_ok as f64)),
            ("gemm_ok", Value::Num(self.gemm_ok as f64)),
            ("decode_typed_errors", self.decode_errors.to_json()),
            ("gemm_typed_errors", self.gemm_errors.to_json()),
        ])
    }

    /// True when every corrupted operand was rejected with a typed error
    /// on both paths and nothing unwound.
    pub fn contract_holds(&self) -> bool {
        self.panics == 0
            && self.decode_ok == 0
            && self.gemm_ok == 0
            && self.decode_errors.total() == self.trials
            && self.gemm_errors.total() == self.trials
    }
}

/// Builds a random encoded operand and corrupts one of its panel
/// containers (bit flip or truncation), returning the rebuilt matrix.
fn corrupted_operand(rng: &mut Rng) -> (usize, EncodedMatrix) {
    let k = rng.gen_range(1..96);
    let n = rng.gen_range(1..48);
    let b = Tensor::from_fn(&[k, n], |_| rng.gen_range_f32(-2.0, 2.0));
    let em = EncodedMatrix::encode(&b).unwrap_or_else(|e| panic!("clean encode failed: {e}"));
    let mut panels: Vec<Vec<u8>> =
        (0..em.panels()).map(|p| em.panel_container(p).to_vec()).collect();
    let signs: Vec<Vec<u8>> = (0..em.panels()).map(|p| em.panel_signs(p).to_vec()).collect();
    let victim = rng.gen_range(0..panels.len());
    let (mutated, _) = if rng.gen_bool() {
        mutate::flip_container_bit(&panels[victim], rng)
    } else {
        mutate::truncate_container(&panels[victim], rng)
    };
    panels[victim] = mutated;
    let rebuilt = EncodedMatrix::from_raw_parts(k, n, em.profile(), panels, signs)
        .unwrap_or_else(|e| panic!("structural rebuild failed: {e}"));
    (k, rebuilt)
}

/// Runs the fused-GEMM corruption sweep over `trials` encoded operands.
///
/// Each trial encodes a fresh random weight matrix, mutates one panel
/// container, then pushes the operand through both consumption paths —
/// bulk [`EncodedMatrix::decode`] and the fused
/// [`ops::matmul_encoded`] — under `catch_unwind`.
pub fn sweep_fused(seed: u64, trials: usize) -> FusedSweepReport {
    let mut rng = Rng::seed_from_u64(seed ^ 0xf05e_dbea_7f10_0d5e);
    let mut report = FusedSweepReport { trials: trials as u64, ..FusedSweepReport::default() };

    for _ in 0..trials {
        let (k, em) = corrupted_operand(&mut rng);
        let m = rng.gen_range(1..8);
        let a = Tensor::from_fn(&[m, k], |_| rng.gen_range_f32(-1.0, 1.0));

        match catch_unwind(AssertUnwindSafe(|| em.decode())) {
            Err(_) => report.panics += 1,
            Ok(Ok(_)) => report.decode_ok += 1,
            Ok(Err(e)) => report.decode_errors.count(&e),
        }
        match catch_unwind(AssertUnwindSafe(|| ops::matmul_encoded(&a, &em))) {
            Err(_) => report.panics += 1,
            Ok(Ok(_)) => report.gemm_ok += 1,
            Ok(Err(e)) => report.gemm_errors.count(&e),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_sweep_is_deterministic() {
        let a = sweep_fused(5, 300);
        let b = sweep_fused(5, 300);
        assert_eq!(a, b);
        assert_eq!(a.to_json().to_string_compact(), b.to_json().to_string_compact());
        // No cross-seed inequality check: when the contract holds, the
        // count-only report is the same for every seed — all corruptions
        // rejected, zero panics — which is exactly the point.
    }

    #[test]
    fn every_corruption_is_rejected_typed_on_both_paths() {
        let r = sweep_fused(11, 600);
        assert!(r.contract_holds(), "fused corruption contract violated: {r:?}");
        // Both error families must actually occur: bit flips land in the
        // container checks, truncations in container/IO accounting.
        assert!(r.gemm_errors.container > 0, "{r:?}");
        assert!(r.decode_errors.container > 0, "{r:?}");
    }

    #[test]
    fn clean_operands_still_work_under_the_same_harness() {
        // Sanity for the harness itself: an uncorrupted operand passes
        // both paths, so the zero-ok counts above measure the corruption,
        // not a broken fixture.
        let b = Tensor::from_fn(&[20, 17], |i| (i as f32 * 0.31).sin());
        let em = EncodedMatrix::encode(&b).unwrap();
        assert!(em.decode().is_ok());
        let a = Tensor::from_fn(&[3, 20], |i| (i as f32 * 0.17).cos());
        assert!(ops::matmul_encoded(&a, &em).is_ok());
    }
}
