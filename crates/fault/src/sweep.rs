//! The seeded codec-corruption sweep.
//!
//! Thousands of freshly encoded streams are corrupted by the [`mutate`]
//! operators and pushed back through the decoders, with every decode
//! wrapped in `catch_unwind`. The sweep pins the codec's robustness
//! contract:
//!
//! - **No panics, ever** — a corrupted stream maps to `Ok` or to a typed
//!   [`DecodeError`] / [`ContainerError`], never an unwind.
//! - **The container is a trust boundary** — every corrupted container
//!   read fails loudly (the FNV checksum, length accounting, and padding
//!   checks leave no silent path), so `container.ok` must be zero.
//! - **The raw stream is honest about its limits** — a bare
//!   [`NibbleStream`] has no checksum, so some bit flips decode cleanly;
//!   the sweep *quantifies* that instead of hiding it, reporting how many
//!   silent decodes stay within the paper's CM error bound
//!   ([`MAX_ENCODING_ERROR`] = 16 magnitude steps) and how many
//!   desynchronize the stream (value or length divergence beyond it).
//!
//! Determinism: everything derives from the caller's seed via
//! [`spark_util::Rng`]; two sweeps with the same `(seed, streams)` produce
//! byte-identical reports.
//!
//! [`mutate`]: crate::mutate

use std::panic::{catch_unwind, AssertUnwindSafe};

use spark_codec::{
    decode_bulk_with, decode_general, decode_stream, decode_stream_reference, encode_general,
    encode_tensor, read_container, write_container, ContainerError, DecodeError, DecodeVariant,
    SparkFormat, MAX_ENCODING_ERROR,
};
use spark_util::json::Value;
use spark_util::Rng;

use crate::mutate;

/// Typed-error tallies shared by the nibble and beat planes.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct ErrorCounts {
    truncated_long_code: u64,
    invalid_nibble: u64,
    invalid_beat: u64,
}

impl ErrorCounts {
    fn count(&mut self, e: &DecodeError) {
        match e {
            DecodeError::TruncatedLongCode => self.truncated_long_code += 1,
            DecodeError::InvalidNibble(_) => self.invalid_nibble += 1,
            DecodeError::InvalidBeat { .. } => self.invalid_beat += 1,
        }
    }

    fn total(&self) -> u64 {
        self.truncated_long_code + self.invalid_nibble + self.invalid_beat
    }

    fn to_json(&self) -> Value {
        Value::object([
            ("truncated_long_code", Value::Num(self.truncated_long_code as f64)),
            ("invalid_nibble", Value::Num(self.invalid_nibble as f64)),
            ("invalid_beat", Value::Num(self.invalid_beat as f64)),
        ])
    }
}

/// Aggregated outcome of one corruption sweep. Field semantics are
/// documented on the JSON report ([`SweepReport::to_json`]).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct SweepReport {
    /// Streams corrupted and re-decoded.
    pub streams: u64,
    /// Decodes that unwound — the sweep's hard invariant is that this
    /// stays zero.
    pub panics: u64,
    /// Nibble plane: decodes that returned a typed error.
    nibble_errors: ErrorCounts,
    /// Nibble plane: silent decodes with the original element count whose
    /// max per-value error stayed within the CM bound.
    pub ok_within_cm_bound: u64,
    /// Nibble plane: silent decodes with the original element count but at
    /// least one value off by more than the CM bound.
    pub ok_beyond_cm_bound: u64,
    /// Nibble plane: silent decodes whose element count changed
    /// (desynchronized stream) — detectable only with the container's
    /// length accounting.
    pub ok_length_changed: u64,
    /// Largest per-value magnitude error seen across all silent decodes.
    pub max_value_error: u64,
    /// Nibble plane: corrupted streams where any bulk dispatch variant
    /// disagreed with the reference FSM (different values *or* a
    /// different typed error). Must be zero: corruption may change what a
    /// stream decodes to, but never which decoder you asked.
    pub bulk_divergence: u64,
    /// Beat plane (generalized formats): typed errors.
    beat_errors: ErrorCounts,
    /// Beat plane: silent decodes (any shape).
    pub beat_silent: u64,
    /// Container plane: reads that failed loudly, by variant.
    pub container_bad_magic: u64,
    /// Container reads rejecting an unsupported version.
    pub container_bad_version: u64,
    /// Container reads failing length/count/padding accounting.
    pub container_corrupt: u64,
    /// Container reads failing the payload checksum.
    pub container_checksum: u64,
    /// Container reads failing inside the embedded stream decode.
    pub container_stream_error: u64,
    /// Container reads failing on I/O (truncation mid-header).
    pub container_io: u64,
    /// Container reads that *succeeded* on corrupted bytes. Must be zero:
    /// the container is the trust boundary.
    pub container_ok: u64,
}

impl SweepReport {
    /// The report as deterministic JSON (counts only, no wall-clock).
    pub fn to_json(&self) -> Value {
        Value::object([
            ("streams", Value::Num(self.streams as f64)),
            ("panics", Value::Num(self.panics as f64)),
            (
                "nibble_plane",
                Value::object([
                    ("typed_errors", self.nibble_errors.to_json()),
                    ("ok_within_cm_bound", Value::Num(self.ok_within_cm_bound as f64)),
                    ("ok_beyond_cm_bound", Value::Num(self.ok_beyond_cm_bound as f64)),
                    ("ok_length_changed", Value::Num(self.ok_length_changed as f64)),
                    ("max_value_error", Value::Num(self.max_value_error as f64)),
                    ("bulk_divergence", Value::Num(self.bulk_divergence as f64)),
                    ("cm_bound", Value::Num(f64::from(MAX_ENCODING_ERROR))),
                ]),
            ),
            (
                "beat_plane",
                Value::object([
                    ("typed_errors", self.beat_errors.to_json()),
                    ("silent", Value::Num(self.beat_silent as f64)),
                ]),
            ),
            (
                "container_plane",
                Value::object([
                    ("bad_magic", Value::Num(self.container_bad_magic as f64)),
                    ("bad_version", Value::Num(self.container_bad_version as f64)),
                    ("corrupt", Value::Num(self.container_corrupt as f64)),
                    ("checksum_mismatch", Value::Num(self.container_checksum as f64)),
                    ("stream_error", Value::Num(self.container_stream_error as f64)),
                    ("io", Value::Num(self.container_io as f64)),
                    ("ok", Value::Num(self.container_ok as f64)),
                ]),
            ),
        ])
    }

    /// Total typed nibble-plane errors (convenience for assertions).
    pub fn nibble_error_total(&self) -> u64 {
        self.nibble_errors.total()
    }

    /// Total container-plane rejections (everything except `ok`).
    pub fn container_rejections(&self) -> u64 {
        self.container_bad_magic
            + self.container_bad_version
            + self.container_corrupt
            + self.container_checksum
            + self.container_stream_error
            + self.container_io
    }
}

/// Generalized formats cycled through by the beat plane.
const BEAT_FORMATS: [(u8, u8); 3] = [(6, 3), (8, 4), (12, 6)];

/// Runs the corruption sweep over `streams` freshly encoded tensors.
///
/// Each iteration encodes a random tensor, then corrupts and re-decodes
/// it on all three surfaces: the packed nibble stream, a generalized beat
/// stream, and the serialized container.
pub fn sweep_codec(seed: u64, streams: usize) -> SweepReport {
    let mut rng = Rng::seed_from_u64(seed ^ 0x5eed_c0de_c0de_5eed);
    let mut report = SweepReport { streams: streams as u64, ..SweepReport::default() };

    for _ in 0..streams {
        let len = rng.gen_range(1..64);
        let values: Vec<u8> = (0..len).map(|_| (rng.gen_below(256)) as u8).collect();
        let encoded = encode_tensor(&values);
        // The clean round trip is the error baseline: the encoder itself
        // may spend up to the CM bound on long codes, and the sweep
        // measures *corruption-induced* error on top of that.
        let clean = match decode_stream(&encoded.stream) {
            Ok(v) => v,
            Err(e) => panic!("clean stream failed to decode: {e}"),
        };

        // --- Nibble plane ---------------------------------------------
        let (corrupted, _) = if rng.gen_bool() {
            mutate::flip_nibble_bit(&encoded.stream, &mut rng)
        } else {
            mutate::truncate_nibbles(&encoded.stream, &mut rng)
        };
        match catch_unwind(AssertUnwindSafe(|| decode_stream(&corrupted))) {
            Err(_) => report.panics += 1,
            Ok(Err(e)) => report.nibble_errors.count(&e),
            Ok(Ok(decoded)) => {
                if decoded.len() != clean.len() {
                    report.ok_length_changed += 1;
                } else {
                    let worst = decoded
                        .iter()
                        .zip(&clean)
                        .map(|(d, c)| u64::from(d.abs_diff(*c)))
                        .max()
                        .unwrap_or(0);
                    report.max_value_error = report.max_value_error.max(worst);
                    if worst <= u64::from(MAX_ENCODING_ERROR) {
                        report.ok_within_cm_bound += 1;
                    } else {
                        report.ok_beyond_cm_bound += 1;
                    }
                }
            }
        }

        // Bulk-vs-FSM differential on the *corrupted* stream: every
        // dispatch variant must agree with the reference FSM exactly —
        // the same values or the same typed error — and never unwind.
        // Corruption changes what a stream means, never which decode
        // engine observed it.
        match catch_unwind(AssertUnwindSafe(|| decode_stream_reference(&corrupted))) {
            Err(_) => report.panics += 1,
            Ok(want) => {
                for variant in DecodeVariant::all() {
                    match catch_unwind(AssertUnwindSafe(|| decode_bulk_with(variant, &corrupted)))
                    {
                        Err(_) => report.panics += 1,
                        Ok(got) => {
                            if got != want {
                                report.bulk_divergence += 1;
                            }
                        }
                    }
                }
            }
        }

        // --- Beat plane (generalized formats) -------------------------
        let (base, short) = BEAT_FORMATS[rng.gen_range(0..BEAT_FORMATS.len())];
        let fmt = SparkFormat::new(base, short).unwrap_or_else(|e| panic!("format: {e}"));
        let wide: Vec<u16> = values.iter().map(|&v| u16::from(v) % (fmt.max_value() + 1)).collect();
        let beat_stream = encode_general(&fmt, &wide);
        match rng.gen_below(3) {
            0 | 1 => {
                // Corruption inside the packed representation.
                let (corrupted_beats, _) = if rng.gen_bool() {
                    mutate::xor_beat(&beat_stream, &mut rng)
                } else {
                    mutate::truncate_beats(&beat_stream, &mut rng)
                };
                match catch_unwind(AssertUnwindSafe(|| decode_general(&fmt, &corrupted_beats))) {
                    Err(_) => report.panics += 1,
                    Ok(Err(e)) => report.beat_errors.count(&e),
                    Ok(Ok(_)) => report.beat_silent += 1,
                }
            }
            _ => {
                // Corruption at the unpacker boundary: a raw beat wider
                // than the format allows is handed straight to the
                // decoder (the packed stream cannot represent this; a
                // buggy or corrupted unpacker can).
                let mut beats: Vec<u16> = beat_stream.iter().collect();
                let idx = rng.gen_range(0..beats.len());
                beats[idx] |= 1 << short;
                let run = || -> Result<(), DecodeError> {
                    let mut dec = spark_codec::GeneralDecoder::new(fmt);
                    for &b in &beats {
                        dec.push_beat(b)?;
                    }
                    dec.finish().map(|_| ())
                };
                match catch_unwind(AssertUnwindSafe(run)) {
                    Err(_) => report.panics += 1,
                    Ok(Err(e)) => report.beat_errors.count(&e),
                    Ok(Ok(())) => report.beat_silent += 1,
                }
            }
        }

        // --- Container plane ------------------------------------------
        let mut bytes = Vec::new();
        if let Err(e) = write_container(&encoded, &mut bytes) {
            panic!("in-memory container write failed: {e}");
        }
        let (corrupted_bytes, _) = if rng.gen_bool() {
            mutate::flip_container_bit(&bytes, &mut rng)
        } else {
            mutate::truncate_container(&bytes, &mut rng)
        };
        match catch_unwind(AssertUnwindSafe(|| read_container(&corrupted_bytes[..]))) {
            Err(_) => report.panics += 1,
            Ok(Ok(_)) => report.container_ok += 1,
            Ok(Err(e)) => match e {
                ContainerError::Io(_) => report.container_io += 1,
                ContainerError::BadMagic(_) => report.container_bad_magic += 1,
                ContainerError::BadVersion(_) => report.container_bad_version += 1,
                ContainerError::Corrupt(_) => report.container_corrupt += 1,
                ContainerError::ChecksumMismatch { .. } => report.container_checksum += 1,
                ContainerError::Stream(_) => report.container_stream_error += 1,
            },
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_panic_free() {
        let a = sweep_codec(42, 1500);
        let b = sweep_codec(42, 1500);
        assert_eq!(a, b);
        assert_eq!(
            a.to_json().to_string_compact(),
            b.to_json().to_string_compact(),
            "reports must serialize byte-identically"
        );
        assert_eq!(a.panics, 0, "corrupted decode must never unwind");
        assert_ne!(a, sweep_codec(43, 1500), "different seeds explore different corruptions");
    }

    #[test]
    fn container_is_a_trust_boundary() {
        let r = sweep_codec(7, 2000);
        assert_eq!(r.container_ok, 0, "corrupted container read succeeded: {r:?}");
        assert_eq!(r.container_rejections(), r.streams);
        // The checksum is the workhorse: payload flips land there.
        assert!(r.container_checksum > 0, "{r:?}");
        assert!(r.container_corrupt + r.container_io > 0, "truncations must fail too: {r:?}");
    }

    #[test]
    fn nibble_plane_accounts_for_every_stream() {
        let r = sweep_codec(9, 2000);
        let accounted = r.nibble_error_total()
            + r.ok_within_cm_bound
            + r.ok_beyond_cm_bound
            + r.ok_length_changed;
        assert_eq!(accounted, r.streams);
        // Single-bit flips in short codes decode silently (no checksum in
        // a bare stream); the sweep must observe and quantify that.
        assert!(r.ok_within_cm_bound + r.ok_beyond_cm_bound > 0, "{r:?}");
        assert!(r.nibble_error_total() > 0, "{r:?}");
    }

    #[test]
    fn bulk_engine_never_diverges_from_fsm_on_corruption() {
        let r = sweep_codec(33, 2000);
        assert_eq!(r.panics, 0, "{r:?}");
        assert_eq!(
            r.bulk_divergence, 0,
            "a bulk variant disagreed with the FSM on a corrupted stream: {r:?}"
        );
        // The field is wired into the JSON report the chaos CLI prints.
        let json = r.to_json().to_string_compact();
        assert!(json.contains("\"bulk_divergence\":0"), "{json}");
    }

    #[test]
    fn beat_plane_sees_invalid_beats() {
        let r = sweep_codec(21, 2000);
        assert_eq!(
            r.beat_errors.total() + r.beat_silent,
            r.streams,
            "every beat-plane decode classified: {r:?}"
        );
        assert!(r.beat_errors.invalid_beat > 0, "out-of-range beats must surface: {r:?}");
    }
}
