//! Scripted adversarial scenario against a live loopback server.
//!
//! Unlike the codec sweep (pure computation), this plane drives a real
//! `spark-serve` instance over TCP through its failure modes in a fixed
//! order: handler panic, hard worker death, slowloris drip-feed, raw
//! garbage. The *sequence* is scripted rather than randomized so the
//! resulting report is deterministic — every field is a status code or a
//! monotonic metric with exactly one correct value, never a timing.
//!
//! The scenario proves the PR's serving resilience contract end to end:
//! panics become 500s (`panics_total` ticks, pool intact), dead workers
//! are respawned (`workers_respawned` ticks, capacity restored),
//! drip-feeders are shed with 408 at the configured deadline, and
//! `/healthz` downgrades to `"degraded"` instead of lying about scars.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use spark_serve::http::{client_request, client_request_with_headers};
use spark_serve::shard::HashRing;
use spark_serve::{ServeConfig, Server};
use spark_util::json::{parse, Value};

/// Per-request deadline used by the scenario server: short enough that
/// the slowloris step resolves quickly, long enough that healthy
/// loopback requests never trip it.
const CHAOS_DEADLINE: Duration = Duration::from_millis(250);

/// Upper bound on waiting for the supervisor's respawn tick.
const RESPAWN_WAIT: Duration = Duration::from_secs(10);

fn metric(addr: &str, name: &str) -> Result<f64, String> {
    let (status, body) = client_request(addr, "GET", "/metrics", "", b"")?;
    if status != 200 {
        return Err(format!("GET /metrics: status {status}"));
    }
    parse(std::str::from_utf8(&body).map_err(|e| e.to_string())?)
        .map_err(|e| format!("metrics JSON: {e}"))?
        .get("resilience")
        .and_then(|v| v.get(name))
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("metrics missing resilience.{name}"))
}

fn healthz(addr: &str) -> Result<String, String> {
    let (status, body) = client_request(addr, "GET", "/healthz", "", b"")?;
    if status != 200 {
        return Err(format!("GET /healthz: status {status}"));
    }
    Ok(parse(std::str::from_utf8(&body).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?
        .get("status")
        .and_then(Value::as_str)
        .unwrap_or("missing")
        .to_string())
}

/// One drip-feeding connection: a valid header prefix, then silence past
/// the server's request deadline. Returns the status line's code.
fn slowloris(addr: &str) -> Result<u16, String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.write_all(b"POST /v1/encode HTTP/1.1\r\nContent-Le")
        .map_err(|e| format!("send: {e}"))?;
    // Outlive the deadline without ever closing our side.
    std::thread::sleep(CHAOS_DEADLINE + Duration::from_millis(150));
    s.set_read_timeout(Some(Duration::from_secs(5))).map_err(|e| e.to_string())?;
    let mut reply = Vec::new();
    let _ = s.read_to_end(&mut reply);
    let text = String::from_utf8_lossy(&reply);
    text.split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| format!("no status line in slowloris reply {text:?}"))
}

/// Runs the scripted chaos scenario against a fresh loopback server and
/// returns the deterministic report.
///
/// # Errors
///
/// A description of the first step that did not match the resilience
/// contract (which also means the report would not be reproducible).
pub fn serve_chaos() -> Result<Value, String> {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        batch_window: Duration::from_millis(1),
        max_batch: 8,
        request_deadline: CHAOS_DEADLINE,
        chaos_endpoints: true,
        ..ServeConfig::default()
    })
    .map_err(|e| format!("start: {e}"))?;
    let addr = server.addr().to_string();

    let initial_health = healthz(&addr)?;

    // 1. Injected handler panic → 500, worker survives.
    let (panic_status, _) = client_request(&addr, "POST", "/__chaos/panic", "", b"")?;
    let after_panic = client_request(
        &addr,
        "POST",
        "/v1/analyze",
        "application/json",
        b"{\"values\": [0.5, -0.25, 0.125]}",
    )?
    .0;

    // 2. Hard worker death → supervisor respawns, capacity restored.
    let (exit_status, _) = client_request(&addr, "POST", "/__chaos/exit-worker", "", b"")?;
    let respawn_deadline = Instant::now() + RESPAWN_WAIT;
    loop {
        if metric(&addr, "workers_respawned")? >= 1.0 {
            break;
        }
        if Instant::now() >= respawn_deadline {
            return Err("supervisor never respawned the killed worker".into());
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let after_respawn = client_request(
        &addr,
        "POST",
        "/v1/encode",
        "application/json",
        b"{\"values\": [0.1, 0.2, 0.3, 0.4]}",
    )?
    .0;

    // 3. Slowloris → shed with 408 at the deadline.
    let slowloris_status = slowloris(&addr)?;

    // 4. Raw garbage and an instant disconnect → shrugged off.
    drop(TcpStream::connect(&addr).map_err(|e| format!("connect: {e}"))?);
    {
        let mut s = TcpStream::connect(&addr).map_err(|e| format!("connect: {e}"))?;
        let _ = s.write_all(&[0x00, 0xFF, 0x13, 0x37, 0x00, 0x7F]);
    }
    let final_health = healthz(&addr)?;

    let panics_total = metric(&addr, "panics_total")?;
    let workers_respawned = metric(&addr, "workers_respawned")?;
    let deadline_408 = metric(&addr, "deadline_408")?;

    server.shutdown();
    server.join();

    let report = Value::object([
        ("initial_health", Value::Str(initial_health.clone())),
        ("panic_status", Value::Num(f64::from(panic_status))),
        ("request_after_panic", Value::Num(f64::from(after_panic))),
        ("exit_worker_status", Value::Num(f64::from(exit_status))),
        ("request_after_respawn", Value::Num(f64::from(after_respawn))),
        ("slowloris_status", Value::Num(f64::from(slowloris_status))),
        ("final_health", Value::Str(final_health.clone())),
        ("panics_total", Value::Num(panics_total)),
        ("workers_respawned", Value::Num(workers_respawned)),
        ("deadline_408", Value::Num(deadline_408)),
    ]);

    // The contract check doubles as the determinism check: every field
    // has exactly one passing value.
    let expect = [
        ("initial_health", initial_health == "ok"),
        ("panic_status", panic_status == 500),
        ("request_after_panic", after_panic == 200),
        ("exit_worker_status", exit_status == 200),
        ("request_after_respawn", after_respawn == 200),
        ("slowloris_status", slowloris_status == 408),
        ("final_health", final_health == "degraded"),
        ("panics_total", panics_total == 1.0),
        ("workers_respawned", workers_respawned == 1.0),
        ("deadline_408", deadline_408 == 1.0),
    ];
    for (field, ok) in expect {
        if !ok {
            return Err(format!(
                "chaos contract violated at {field}: {}",
                report.to_string_compact()
            ));
        }
    }
    Ok(report)
}

/// Reads a per-shard counter out of the `/metrics` snapshot.
fn shard_metric(addr: &str, shard: usize, name: &str) -> Result<f64, String> {
    let (status, body) = client_request(addr, "GET", "/metrics", "", b"")?;
    if status != 200 {
        return Err(format!("GET /metrics: status {status}"));
    }
    let snapshot = parse(std::str::from_utf8(&body).map_err(|e| e.to_string())?)
        .map_err(|e| format!("metrics JSON: {e}"))?;
    let shards = snapshot
        .get("shards")
        .and_then(Value::as_array)
        .ok_or("metrics missing shards array")?;
    shards
        .iter()
        .find(|s| s.get("shard").and_then(Value::as_f64) == Some(shard as f64))
        .and_then(|s| s.get(name))
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("metrics missing shards[{shard}].{name}"))
}

/// First tenant id of the form `ct-<n>` that the ring maps to `shard`.
fn probe_tenant(ring: &HashRing, shard: usize) -> Result<String, String> {
    (0..10_000)
        .map(|n| format!("ct-{n}"))
        .find(|t| ring.shard_for(t) == shard)
        .ok_or_else(|| format!("no probe tenant found for shard {shard}"))
}

fn tenant_request(addr: &str, tenant: &str) -> Result<u16, String> {
    Ok(client_request_with_headers(
        addr,
        "POST",
        "/v1/analyze",
        "application/json",
        &[("X-Spark-Tenant", tenant)],
        b"{\"values\": [0.5, -0.25, 0.125, 0.75]}",
    )?
    .0)
}

/// Scripted shard-loss scenario: kill every worker of one shard while
/// the other shard keeps taking traffic, then watch the supervisor
/// restore the dead pool.
///
/// Like [`serve_chaos`], every report field is a status code, an exact
/// counter, or an invariant bool — never a timing — so two runs are
/// byte-identical.
///
/// # Errors
///
/// A description of the first step that violated the isolation or
/// respawn contract.
pub fn shard_chaos() -> Result<Value, String> {
    const SHARDS: usize = 2;
    const WORKERS_PER_SHARD: usize = 2;
    /// Requests the surviving shard serves while its neighbor is dead.
    const SURVIVOR_REQUESTS: usize = 8;
    /// The "bounded tail" bar for the surviving shard during the outage:
    /// generous against scheduler noise, damning if the dead shard's
    /// work were leaking over.
    const SURVIVOR_LATENCY_BOUND: Duration = Duration::from_secs(2);

    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        shards: SHARDS,
        shard_workers: WORKERS_PER_SHARD,
        queue_depth: 32,
        shard_queue: 16,
        batch_window: Duration::from_millis(1),
        max_batch: 8,
        chaos_endpoints: true,
        ..ServeConfig::default()
    })
    .map_err(|e| format!("start: {e}"))?;
    let addr = server.addr().to_string();

    // The server derives shard placement from the same ring construction,
    // so probing a standalone ring tells us which tenant lands where.
    let ring = HashRing::new(SHARDS);
    let victim_tenant = probe_tenant(&ring, 0)?;
    let survivor_tenant = probe_tenant(&ring, 1)?;

    let initial_health = healthz(&addr)?;
    let victim_before = tenant_request(&addr, &victim_tenant)?;
    let survivor_before = tenant_request(&addr, &survivor_tenant)?;

    // Kill the whole victim pool: each exit-worker request answers 200
    // and then takes its worker down, so two requests empty the pool.
    let mut kill_statuses = Vec::new();
    for _ in 0..WORKERS_PER_SHARD {
        let (status, _) = client_request_with_headers(
            &addr,
            "POST",
            "/__chaos/exit-worker",
            "",
            &[("X-Spark-Tenant", victim_tenant.as_str())],
            b"",
        )?;
        kill_statuses.push(status);
    }

    // The surviving shard must not notice: every request lands 200 and
    // stays far under the latency bound.
    let mut survivor_ok = 0usize;
    let mut survivor_bounded = true;
    for _ in 0..SURVIVOR_REQUESTS {
        let t0 = Instant::now();
        if tenant_request(&addr, &survivor_tenant)? == 200 {
            survivor_ok += 1;
        }
        survivor_bounded &= t0.elapsed() < SURVIVOR_LATENCY_BOUND;
    }

    // A victim-tenant request queues until the supervisor refills the
    // pool — delayed, never lost.
    let victim_during = tenant_request(&addr, &victim_tenant)?;

    let respawn_deadline = Instant::now() + RESPAWN_WAIT;
    loop {
        if shard_metric(&addr, 0, "workers_respawned")? >= WORKERS_PER_SHARD as f64 {
            break;
        }
        if Instant::now() >= respawn_deadline {
            return Err("supervisor never refilled the dead shard pool".into());
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let victim_after = tenant_request(&addr, &victim_tenant)?;
    let final_health = healthz(&addr)?;

    let panics_total = metric(&addr, "panics_total")?;
    let victim_respawned = shard_metric(&addr, 0, "workers_respawned")?;
    let survivor_respawned = shard_metric(&addr, 1, "workers_respawned")?;

    server.shutdown();
    server.join();

    let report = Value::object([
        ("initial_health", Value::Str(initial_health.clone())),
        ("victim_tenant", Value::Str(victim_tenant)),
        ("survivor_tenant", Value::Str(survivor_tenant)),
        ("victim_before", Value::Num(f64::from(victim_before))),
        ("survivor_before", Value::Num(f64::from(survivor_before))),
        (
            "kill_statuses",
            Value::Array(kill_statuses.iter().map(|&s| Value::Num(f64::from(s))).collect()),
        ),
        ("survivor_ok_during_outage", Value::Num(survivor_ok as f64)),
        ("survivor_latency_bounded", Value::Bool(survivor_bounded)),
        ("victim_during_outage", Value::Num(f64::from(victim_during))),
        ("victim_after_respawn", Value::Num(f64::from(victim_after))),
        ("final_health", Value::Str(final_health.clone())),
        ("panics_total", Value::Num(panics_total)),
        ("victim_workers_respawned", Value::Num(victim_respawned)),
        ("survivor_workers_respawned", Value::Num(survivor_respawned)),
    ]);

    let expect = [
        ("initial_health", initial_health == "ok"),
        ("victim_before", victim_before == 200),
        ("survivor_before", survivor_before == 200),
        ("kill_statuses", kill_statuses.iter().all(|&s| s == 200)),
        ("survivor_ok_during_outage", survivor_ok == SURVIVOR_REQUESTS),
        ("survivor_latency_bounded", survivor_bounded),
        ("victim_during_outage", victim_during == 200),
        ("victim_after_respawn", victim_after == 200),
        ("final_health", final_health == "degraded"),
        ("panics_total", panics_total == 0.0),
        ("victim_workers_respawned", victim_respawned == WORKERS_PER_SHARD as f64),
        ("survivor_workers_respawned", survivor_respawned == 0.0),
    ];
    for (field, ok) in expect {
        if !ok {
            return Err(format!(
                "shard chaos contract violated at {field}: {}",
                report.to_string_compact()
            ));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_scenario_meets_the_contract_reproducibly() {
        let a = serve_chaos().unwrap();
        let b = serve_chaos().unwrap();
        assert_eq!(a.to_string_compact(), b.to_string_compact());
    }

    #[test]
    fn shard_loss_is_isolated_and_healed_reproducibly() {
        let a = shard_chaos().unwrap();
        let b = shard_chaos().unwrap();
        assert_eq!(a.to_string_compact(), b.to_string_compact());
    }
}
