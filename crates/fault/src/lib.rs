//! # spark-fault — seeded, deterministic fault injection for the SPARK
//! stack
//!
//! Robustness claims are only as good as the adversary that tested them.
//! This crate is that adversary, in three planes that mirror the
//! codebase's trust boundaries:
//!
//! - **Codec plane** ([`mutate`], [`sweep`]) — bit flips, nibble/beat
//!   corruption, and truncation against the variable-length streams and
//!   the serialized container. The sweep proves every corruption lands in
//!   a typed [`DecodeError`](spark_codec::DecodeError) /
//!   [`ContainerError`](spark_codec::ContainerError) or a *quantified*
//!   silent decode — never a panic — and measures silent-decode value
//!   error against the paper's CM bound (±16 magnitude steps).
//! - **Fused-GEMM plane** ([`fused`]) — mutated panel containers fed to
//!   the decode-fused GEMM engine, proving the per-call checksum
//!   re-verification rejects every corrupted weight operand with a typed
//!   [`EncodedError`](spark_tensor::EncodedError) before any value
//!   reaches an accumulator — and never panics out of the hot loop.
//! - **Hardware plane** ([`hardware`]) — stuck-at and transient faults in
//!   the PE MAC datapath via the zero-cost
//!   [`MacFaultHook`](spark_sim::MacFaultHook), plus precision-tag flips
//!   in the cycle-accurate systolic schedule. Fault patterns are pure
//!   functions of `(seed, site)`, so sweeps reproduce bit-for-bit across
//!   tilings and thread counts.
//! - **Serve plane** ([`chaos`]) — a scripted adversary (handler panic,
//!   hard worker death, slowloris, garbage bytes) against a live loopback
//!   `spark-serve` instance, asserting the panic-isolation / respawn /
//!   deadline-shedding contract.
//! - **Process plane** ([`proc`]) — a `kill -9` adversary against real
//!   `spark serve` child processes behind the fleet router: snapshot
//!   provisioning, mid-run SIGKILL under open-loop load, a byte-identity
//!   differential oracle on `/v1/infer`, and half-open re-admission.
//! - **Crash plane** ([`crash`]) — a power-cut adversary against the
//!   [`spark-store`](spark_store) blockstore: the WAL truncated at a
//!   sweep of byte offsets, single-bit rot under the checksums, and
//!   crashes inside every compaction failpoint window — proving recovery
//!   never panics, lands exactly on the committed prefix, and reports
//!   identically across reruns.
//!
//! [`run_chaos`] stitches all planes into the single deterministic JSON
//! report behind `spark chaos`; CI runs it twice and diffs the bytes.

#![warn(missing_docs)]

pub mod chaos;
pub mod crash;
pub mod fused;
pub mod hardware;
pub mod mutate;
pub mod proc;
pub mod sweep;

pub use chaos::{serve_chaos, shard_chaos};
pub use crash::{sweep_store_crash, CrashSweepReport};
pub use proc::{proc_chaos, router_kill_bench};
pub use fused::{sweep_fused, FusedSweepReport};
pub use hardware::{accuracy_sweep, systolic_kind_flip, StuckAtFault, TransientFault};
pub use mutate::Corruption;
pub use sweep::{sweep_codec, SweepReport};

use spark_util::json::Value;

/// Fault rates swept by the hardware plane of the combined report.
const REPORT_RATES: [f64; 4] = [0.0, 0.0001, 0.001, 0.01];

/// Runs all three fault planes and returns one combined report.
///
/// The report is a pure function of `(seed, streams)`: counts, status
/// codes, and exactly-reproducible floating-point error figures — no
/// wall-clock anywhere. `spark chaos` prints it; CI diffs two runs.
///
/// # Errors
///
/// A description of the first serve-plane step that violated the
/// resilience contract (the computational planes cannot fail — their
/// invariant violations are reported as nonzero counters instead).
pub fn run_chaos(seed: u64, streams: usize) -> Result<Value, String> {
    let codec = sweep_codec(seed, streams);
    // The fused-GEMM plane corrupts whole encoded operands (several
    // containers each), so it runs a tenth of the codec plane's volume.
    let fused = sweep_fused(seed, (streams / 10).max(50));
    if !fused.contract_holds() {
        return Err(format!(
            "fused GEMM accepted corrupted weights or panicked: {}",
            fused.to_json().to_string_compact()
        ));
    }
    let hardware = Value::object([
        ("accuracy", accuracy_sweep(seed, &REPORT_RATES)),
        ("systolic_timing", systolic_kind_flip(seed, 0.05)),
    ]);
    // The crash plane rebuilds a store per failpoint, so it sweeps a
    // fraction of the codec plane's volume.
    let store = sweep_store_crash(seed, (streams / 10).max(20))?;
    if !store.contract_holds() {
        return Err(format!(
            "blockstore recovery violated the crash contract: {}",
            store.to_json().to_string_compact()
        ));
    }
    let serve = serve_chaos()?;
    let serve_shards = shard_chaos()?;
    let router = proc::proc_chaos(seed)?;
    Ok(Value::object([
        ("seed", Value::Num(seed as f64)),
        ("streams", Value::Num(streams as f64)),
        ("codec", codec.to_json()),
        ("fused_gemm", fused.to_json()),
        ("hardware", hardware),
        ("store", store.to_json()),
        ("serve", serve),
        ("serve_shards", serve_shards),
        ("router", router),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_report_is_byte_identical_across_runs() {
        let a = run_chaos(3, 400).unwrap().to_string_compact();
        let b = run_chaos(3, 400).unwrap().to_string_compact();
        assert_eq!(a, b);
        // And it actually carries all three planes.
        for key in [
            "\"codec\"",
            "\"fused_gemm\"",
            "\"hardware\"",
            "\"store\"",
            "\"serve\"",
            "\"serve_shards\"",
            "\"router\"",
            "\"panics\"",
        ]
        {
            assert!(a.contains(key), "report missing {key}: {a}");
        }
    }
}
