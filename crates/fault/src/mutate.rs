//! Seeded corruption operators for the codec's three byte-level surfaces:
//! packed [`NibbleStream`]s, generalized [`BeatStream`]s, and serialized
//! container bytes.
//!
//! Every operator draws its target and payload from the caller's
//! [`Rng`], mutates a *copy*, and reports what it did as a [`Corruption`]
//! so sweep reports can attribute outcomes to operator classes. Operators
//! are guaranteed to actually change the input (no identity "flips"), so
//! a decode that still succeeds is a real statement about the format, not
//! a no-op corruption.

use spark_codec::{BeatStream, NibbleStream};
use spark_util::Rng;

/// What a corruption operator did, for report attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// One bit of one 4-bit beat inverted.
    NibbleBitFlip {
        /// Index of the corrupted nibble.
        index: usize,
        /// Bit position within the nibble (0..4).
        bit: u8,
    },
    /// The stream cut to a strict prefix.
    Truncation {
        /// Nibbles (or beats / bytes) kept.
        keep: usize,
    },
    /// One beat of a generalized stream XORed with a nonzero mask (which
    /// may push it past the format's beat width).
    BeatXor {
        /// Index of the corrupted beat.
        index: usize,
        /// The XOR mask applied (nonzero).
        mask: u16,
    },
    /// One bit of one serialized container byte inverted.
    ByteBitFlip {
        /// Byte offset into the serialized container.
        index: usize,
        /// Bit position within the byte (0..8).
        bit: u8,
    },
}

/// Rebuilds a nibble stream from an iterator of 4-bit values.
pub fn stream_from_nibbles(nibbles: impl IntoIterator<Item = u8>) -> NibbleStream {
    let mut s = NibbleStream::new();
    for n in nibbles {
        s.push(n & 0x0F);
    }
    s
}

/// Flips one random bit of one random nibble. Always changes the stream.
///
/// # Panics
///
/// Panics on an empty stream (nothing to corrupt).
pub fn flip_nibble_bit(stream: &NibbleStream, rng: &mut Rng) -> (NibbleStream, Corruption) {
    assert!(!stream.is_empty(), "cannot corrupt an empty stream");
    let index = rng.gen_range(0..stream.len());
    let bit = (rng.gen_below(4)) as u8;
    let out = stream_from_nibbles(
        stream.iter().enumerate().map(|(i, n)| if i == index { n ^ (1 << bit) } else { n }),
    );
    (out, Corruption::NibbleBitFlip { index, bit })
}

/// Cuts the stream to a random strict prefix (possibly empty).
///
/// # Panics
///
/// Panics on an empty stream.
pub fn truncate_nibbles(stream: &NibbleStream, rng: &mut Rng) -> (NibbleStream, Corruption) {
    assert!(!stream.is_empty(), "cannot truncate an empty stream");
    let keep = rng.gen_range(0..stream.len());
    (stream_from_nibbles(stream.iter().take(keep)), Corruption::Truncation { keep })
}

/// XORs one random beat with a random nonzero in-range mask. The packed
/// [`BeatStream`] cannot even represent a beat wider than its width
/// (`push` masks), so this operator models in-band corruption; wider
/// beats — the [`InvalidBeat`] case — only arise at the raw decoder
/// boundary, which the sweep injects separately.
///
/// [`InvalidBeat`]: spark_codec::DecodeError::InvalidBeat
///
/// # Panics
///
/// Panics on an empty stream.
pub fn xor_beat(stream: &BeatStream, rng: &mut Rng) -> (BeatStream, Corruption) {
    assert!(stream.len() > 0, "cannot corrupt an empty beat stream");
    let index = rng.gen_range(0..stream.len());
    let bits = u64::from(stream.beat_bits());
    let mask = (rng.gen_below((1 << bits) - 1) + 1) as u16;
    let mut out = BeatStream::new(stream.beat_bits());
    for i in 0..stream.len() {
        let beat = stream.get(i).unwrap_or(0);
        out.push(if i == index { beat ^ mask } else { beat });
    }
    (out, Corruption::BeatXor { index, mask })
}

/// Cuts a beat stream to a random strict prefix.
///
/// # Panics
///
/// Panics on an empty stream.
pub fn truncate_beats(stream: &BeatStream, rng: &mut Rng) -> (BeatStream, Corruption) {
    assert!(stream.len() > 0, "cannot truncate an empty beat stream");
    let keep = rng.gen_range(0..stream.len());
    let mut out = BeatStream::new(stream.beat_bits());
    for i in 0..keep {
        out.push(stream.get(i).unwrap_or(0));
    }
    (out, Corruption::Truncation { keep })
}

/// Flips one random bit anywhere in a serialized container.
///
/// # Panics
///
/// Panics on an empty byte buffer.
pub fn flip_container_bit(bytes: &[u8], rng: &mut Rng) -> (Vec<u8>, Corruption) {
    assert!(!bytes.is_empty(), "cannot corrupt an empty container");
    let index = rng.gen_range(0..bytes.len());
    let bit = (rng.gen_below(8)) as u8;
    let mut out = bytes.to_vec();
    out[index] ^= 1 << bit;
    (out, Corruption::ByteBitFlip { index, bit })
}

/// Cuts a serialized container to a random strict prefix.
///
/// # Panics
///
/// Panics on an empty byte buffer.
pub fn truncate_container(bytes: &[u8], rng: &mut Rng) -> (Vec<u8>, Corruption) {
    assert!(!bytes.is_empty(), "cannot truncate an empty container");
    let keep = rng.gen_range(0..bytes.len());
    (bytes[..keep].to_vec(), Corruption::Truncation { keep })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_codec::{encode_general, encode_tensor, SparkFormat};

    #[test]
    fn nibble_operators_always_change_the_stream() {
        let mut rng = Rng::seed_from_u64(11);
        let base = encode_tensor(&[1, 2, 200, 3, 150, 9]).stream;
        for _ in 0..200 {
            let (flipped, _) = flip_nibble_bit(&base, &mut rng);
            assert_ne!(flipped, base);
            let (cut, c) = truncate_nibbles(&base, &mut rng);
            assert!(cut.len() < base.len(), "{c:?}");
        }
    }

    #[test]
    fn beat_operators_always_change_the_stream() {
        let fmt = SparkFormat::new(12, 6).unwrap();
        let values: Vec<u16> = (0..32).map(|i| i * 53 % (fmt.max_value() + 1)).collect();
        let base = encode_general(&fmt, &values);
        let mut rng = Rng::seed_from_u64(12);
        for _ in 0..200 {
            let (xored, c) = xor_beat(&base, &mut rng);
            let Corruption::BeatXor { index, mask } = c else { panic!("wrong kind {c:?}") };
            assert!(mask != 0);
            assert_eq!(xored.get(index).unwrap(), base.get(index).unwrap() ^ mask);
            let (cut, _) = truncate_beats(&base, &mut rng);
            assert!(cut.len() < base.len());
        }
    }

    #[test]
    fn container_operators_are_reproducible_under_the_same_seed() {
        let mut container = Vec::new();
        spark_codec::write_container(&encode_tensor(&[7, 200, 3]), &mut container).unwrap();
        let run = |seed| {
            let mut rng = Rng::seed_from_u64(seed);
            let mut outs = Vec::new();
            for _ in 0..50 {
                outs.push(flip_container_bit(&container, &mut rng));
                outs.push(truncate_container(&container, &mut rng));
            }
            outs
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }
}
