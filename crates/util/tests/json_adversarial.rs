//! Adversarial inputs for `spark_util::json::parse` — the byte streams a
//! network-facing server will see. The contract under test: the parser
//! returns `Err` on anything malformed and **never panics, aborts, or
//! hangs** (deep nesting in particular must not blow the thread stack).

use spark_util::json::{parse, Value, MAX_PARSE_DEPTH};
use spark_util::prop::{check_with, Config};

#[test]
fn truncated_documents_error() {
    let full = r#"{"values": [1.5, -2.25, 3e-2], "name": "tensor", "ok": true}"#;
    // Every proper prefix of a valid document must be a clean parse error.
    for cut in 0..full.len() {
        let prefix = &full[..cut];
        assert!(parse(prefix).is_err(), "prefix {prefix:?} parsed");
    }
    assert!(parse(full).is_ok());
}

#[test]
fn truncated_escapes_and_strings_error() {
    for bad in [
        "\"abc",          // unterminated
        "\"abc\\",        // cut inside escape introducer
        "\"abc\\u",       // cut before hex digits
        "\"abc\\u00",     // cut inside hex digits
        "\"abc\\q\"",     // unknown escape
        "\"\\uZZZZ\"",    // non-hex escape payload
        "{\"k\\",         // truncated escape in a key
    ] {
        assert!(parse(bad).is_err(), "{bad:?} parsed");
    }
}

#[test]
fn deep_nesting_errors_instead_of_overflowing_the_stack() {
    // Way past any legitimate document; without the depth cap this
    // overflows the parser's recursion and aborts the process.
    for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
        let depth = 100_000;
        let mut doc = open.repeat(depth);
        doc.push('1');
        doc.push_str(&close.repeat(depth));
        let err = parse(&doc).expect_err("deep nesting must error");
        assert!(err.message.contains("deep"), "unexpected error: {err}");
    }
}

#[test]
fn nesting_at_the_limit_still_parses() {
    let depth = MAX_PARSE_DEPTH;
    let mut ok = "[".repeat(depth - 1);
    ok.push('0');
    ok.push_str(&"]".repeat(depth - 1));
    assert!(parse(&ok).is_ok(), "depth {} should parse", depth - 1);

    let mut too_deep = "[".repeat(depth + 1);
    too_deep.push('0');
    too_deep.push_str(&"]".repeat(depth + 1));
    assert!(parse(&too_deep).is_err());
}

#[test]
fn huge_numbers_error_rather_than_becoming_infinite() {
    for bad in ["1e999", "-1e999", "1e308999", "123456789e999999999"] {
        let err = parse(bad).expect_err(bad);
        assert!(err.message.contains("range"), "{bad}: {err}");
    }
    // The largest finite doubles still round-trip.
    for ok in ["1e308", "-1.7976931348623157e308", "4.9e-324", "1e-999"] {
        let v = parse(ok).unwrap();
        assert!(v.as_f64().unwrap().is_finite(), "{ok}");
    }
}

#[test]
fn surrogate_escapes_do_not_panic() {
    // Lone surrogates are not valid scalar values; the parser maps them to
    // U+FFFD rather than calling the (panicking) char conversion.
    for s in ["\"\\ud800\"", "\"\\udfff\"", "\"\\ud800\\ud800\""] {
        match parse(s) {
            Ok(Value::Str(text)) => assert!(text.contains('\u{fffd}')),
            Ok(other) => panic!("{s}: unexpected {other:?}"),
            Err(_) => {} // rejecting is equally acceptable
        }
    }
}

#[test]
fn garbage_and_control_bytes_error() {
    for bad in [
        "",
        "   ",
        "nul",
        "nulll",
        "truefalse",
        "+1",
        ".5",
        "--1",
        "1..2",
        "1ee5",
        "[,]",
        "[1,,2]",
        "{,}",
        "{\"a\":}",
        "{\"a\":1,}",
        "{1: 2}",
        "[1}",
        "{\"a\": 1]",
        "\u{0}",
        "[\u{1}]",
    ] {
        assert!(parse(bad).is_err(), "{bad:?} parsed");
    }
}

#[test]
fn random_byte_soup_never_panics() {
    // Fuzz-lite: arbitrary documents of JSON-ish punctuation and printable
    // bytes through the property harness. Success or failure are both
    // fine; panics are not (the harness converts panics into failures).
    check_with(
        &Config::with_cases(500),
        "json byte soup never panics",
        |rng| {
            let len = rng.gen_range(0..64);
            (0..len)
                .map(|_| (rng.gen_below(96) as u8 + 32) as char)
                .collect::<String>()
        },
        |doc| {
            let _ = parse(doc);
            Ok(())
        },
    );
}

#[test]
fn random_mutations_of_valid_documents_never_panic() {
    let base = r#"{"values": [1.5, -2.25, 3e-2, 0, 1e10], "meta": {"name": "t\u00e9nsor", "tags": ["a", "b"]}}"#;
    check_with(
        &Config::with_cases(500),
        "json mutation never panics",
        |rng| {
            let mut doc: Vec<u8> = base.bytes().collect();
            for _ in 0..1 + rng.gen_below(4) {
                let i = rng.gen_range(0..doc.len());
                match rng.gen_below(3) {
                    0 => doc[i] = rng.gen_below(128) as u8,
                    1 => {
                        doc.remove(i);
                    }
                    _ => doc.insert(i, rng.gen_below(128) as u8),
                }
            }
            doc
        },
        |doc| {
            if let Ok(text) = std::str::from_utf8(doc) {
                let _ = parse(text);
            }
            Ok(())
        },
    );
}

#[test]
fn round_trip_survives_hostile_strings() {
    // Serialize-then-parse stays lossless for strings full of escapes and
    // multi-byte characters — what metric labels and model names may hold.
    for s in [
        "quote\" slash\\ newline\n tab\t null\u{0} bell\u{7}",
        "π ≈ 3.14159; 中文; 🚀; \u{fffd}",
        "\\u0000 literal backslash-u",
    ] {
        let v = Value::Str(s.to_string());
        let text = v.to_string_compact();
        assert_eq!(parse(&text).unwrap(), v, "{s:?}");
    }
}
