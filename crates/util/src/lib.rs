//! # spark-util — zero-dependency substrate for the SPARK workspace
//!
//! The reproduction builds hermetically: no crates.io access, `cargo build
//! --offline` from a clean checkout. Everything the workspace used to pull
//! from external crates lives here instead:
//!
//! - [`rng`] — seedable SplitMix64 / xoshiro256++ PRNG with shuffling
//!   (replaces `rand`);
//! - [`dist`] — Normal / StandardNormal / Gamma / Exp / Zipf samplers
//!   (replaces `rand_distr`);
//! - [`fnv`] — the workspace's one FNV-1a 64 implementation (container
//!   checksums, tenant placement, schedule digests, store framing);
//! - [`par`] — scoped-thread [`par::par_map`], two-way [`par::join`], and
//!   a bounded MPMC [`par::channel`] for coarse data-parallel sweeps and
//!   the serving job queue (replaces `rayon` / `crossbeam-channel`);
//! - [`hist`] — a lock-free log-bucketed [`hist::Histogram`] for request
//!   latency and batch-size metrics (replaces `hdrhistogram`);
//! - [`json`] — a minimal JSON [`json::Value`] with serializer, parser and
//!   the [`json::ToJson`] trait (replaces `serde` + `serde_json`);
//! - [`proc`] — child-process spawn/kill/reap helpers with drop-time
//!   reaping, for the multi-process chaos and fleet harnesses;
//! - [`prop`] — seeded property-test runner with shrinking and seed
//!   reporting (replaces `proptest`);
//! - [`bench`] — adaptive micro-bench timer (replaces `criterion`).
//!
//! Keeping this layer small and fully tested is the point: every invariant
//! the paper specifies is pinned by tests that must run anywhere, with no
//! network and no version drift.

#![warn(missing_docs)]

pub mod bench;
pub mod dist;
pub mod fnv;
pub mod hist;
pub mod json;
pub mod par;
pub mod proc;
pub mod prop;
pub mod rng;

pub use dist::{Exp, Gamma, Normal, StandardNormal, Zipf};
pub use fnv::{fnv1a, Fnv1a};
pub use hist::Histogram;
pub use json::{ToJson, Value};
pub use par::{channel, join, par_map};
pub use rng::Rng;
