//! Continuous sampling distributions over [`Rng`], replacing `rand_distr`.
//!
//! Only what the reproduction actually draws from is implemented: the
//! standard normal (weight init, dataset noise), a scaled/shifted normal,
//! and the gamma distribution (Student-t tails in
//! `spark-data::dist`). All samplers are deterministic functions of the
//! generator stream.

use crate::rng::Rng;

/// The standard normal distribution `N(0, 1)`.
///
/// Sampling uses the Box–Muller transform: two uniforms per variate, no
/// state carried between calls, so draws stay reproducible regardless of
/// interleaving with other samplers on the same generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StandardNormal;

impl StandardNormal {
    /// Draws one standard-normal variate.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        // u1 in (0, 1]: avoids ln(0) without biasing the tail.
        let u1 = 1.0 - rng.gen_f64();
        let u2 = rng.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Draws one standard-normal variate as `f32`.
    pub fn sample_f32(&self, rng: &mut Rng) -> f32 {
        self.sample(rng) as f32
    }
}

/// A normal distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns `Err` when `std` is negative or non-finite.
    pub fn new(mean: f64, std: f64) -> Result<Self, DistError> {
        if !(std.is_finite() && mean.is_finite()) || std < 0.0 {
            return Err(DistError::InvalidParameter("normal std must be finite and >= 0"));
        }
        Ok(Self { mean, std })
    }

    /// Draws one variate.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        self.mean + self.std * StandardNormal.sample(rng)
    }

    /// Draws one variate as `f32`.
    pub fn sample_f32(&self, rng: &mut Rng) -> f32 {
        self.sample(rng) as f32
    }
}

/// A gamma distribution with shape `k` and scale `θ` (mean `kθ`, variance
/// `kθ²`), sampled with the Marsaglia–Tsang squeeze method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns `Err` unless both `shape` and `scale` are finite and
    /// strictly positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, DistError> {
        if !(shape.is_finite() && scale.is_finite()) || shape <= 0.0 || scale <= 0.0 {
            return Err(DistError::InvalidParameter("gamma shape and scale must be > 0"));
        }
        Ok(Self { shape, scale })
    }

    /// Draws one variate.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        if self.shape < 1.0 {
            // Boost: Gamma(k) = Gamma(k + 1) · U^(1/k).
            let boosted = Gamma { shape: self.shape + 1.0, scale: self.scale };
            let u = 1.0 - rng.gen_f64();
            return boosted.sample(rng) * u.powf(1.0 / self.shape);
        }
        // Marsaglia & Tsang (2000), "A simple method for generating gamma
        // variables": d = k − 1/3, c = 1/√(9d); accept x when
        // ln u < x²/2 + d − dv + d ln v with v = (1 + cx)³.
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = StandardNormal.sample(rng);
            let t = 1.0 + c * x;
            if t <= 0.0 {
                continue;
            }
            let v = t * t * t;
            let u = 1.0 - rng.gen_f64();
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v * self.scale;
            }
        }
    }

    /// Draws one variate as `f32`.
    pub fn sample_f32(&self, rng: &mut Rng) -> f32 {
        self.sample(rng) as f32
    }
}

/// Error for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistError {
    /// A parameter was out of the distribution's domain.
    InvalidParameter(&'static str),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for DistError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Rng::seed_from_u64(100);
        let xs: Vec<f64> = (0..200_000).map(|_| StandardNormal.sample(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = Rng::seed_from_u64(101);
        let d = Normal::new(3.0, 2.0).unwrap();
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn normal_tail_mass_is_gaussian() {
        // ~4.55% of standard-normal mass lies beyond |2σ|.
        let mut rng = Rng::seed_from_u64(102);
        let n = 200_000;
        let beyond = (0..n)
            .filter(|_| StandardNormal.sample(&mut rng).abs() > 2.0)
            .count();
        let frac = beyond as f64 / n as f64;
        assert!((0.04..0.051).contains(&frac), "2-sigma tail {frac}");
    }

    #[test]
    fn gamma_moments_match_k_theta() {
        // Mean kθ and variance kθ² for a shape both above and below 1.
        for (k, theta) in [(2.5, 2.0), (7.0, 0.5), (0.5, 1.5)] {
            let mut rng = Rng::seed_from_u64(103);
            let d = Gamma::new(k, theta).unwrap();
            let xs: Vec<f64> = (0..300_000).map(|_| d.sample(&mut rng)).collect();
            let (mean, var) = moments(&xs);
            assert!(
                (mean - k * theta).abs() < 0.05 * k * theta,
                "k={k} θ={theta}: mean {mean}"
            );
            assert!(
                (var - k * theta * theta).abs() < 0.1 * k * theta * theta,
                "k={k} θ={theta}: var {var}"
            );
        }
    }

    #[test]
    fn gamma_always_positive() {
        let mut rng = Rng::seed_from_u64(104);
        let d = Gamma::new(0.3, 1.0).unwrap();
        for _ in 0..20_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(f64::INFINITY, 1.0).is_err());
    }
}
