//! Sampling distributions over [`Rng`], replacing `rand_distr`.
//!
//! Only what the reproduction actually draws from is implemented: the
//! standard normal (weight init, dataset noise), a scaled/shifted normal,
//! the gamma distribution (Student-t tails in `spark-data::dist`), the
//! exponential (Poisson-process inter-arrival times in the open-loop load
//! harness), and the Zipf distribution (skewed tenant and payload
//! popularity). All samplers are deterministic functions of the generator
//! stream.

use crate::rng::Rng;

/// The standard normal distribution `N(0, 1)`.
///
/// Sampling uses the Box–Muller transform: two uniforms per variate, no
/// state carried between calls, so draws stay reproducible regardless of
/// interleaving with other samplers on the same generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StandardNormal;

impl StandardNormal {
    /// Draws one standard-normal variate.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        // u1 in (0, 1]: avoids ln(0) without biasing the tail.
        let u1 = 1.0 - rng.gen_f64();
        let u2 = rng.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Draws one standard-normal variate as `f32`.
    pub fn sample_f32(&self, rng: &mut Rng) -> f32 {
        self.sample(rng) as f32
    }
}

/// A normal distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns `Err` when `std` is negative or non-finite.
    pub fn new(mean: f64, std: f64) -> Result<Self, DistError> {
        if !(std.is_finite() && mean.is_finite()) || std < 0.0 {
            return Err(DistError::InvalidParameter("normal std must be finite and >= 0"));
        }
        Ok(Self { mean, std })
    }

    /// Draws one variate.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        self.mean + self.std * StandardNormal.sample(rng)
    }

    /// Draws one variate as `f32`.
    pub fn sample_f32(&self, rng: &mut Rng) -> f32 {
        self.sample(rng) as f32
    }
}

/// A gamma distribution with shape `k` and scale `θ` (mean `kθ`, variance
/// `kθ²`), sampled with the Marsaglia–Tsang squeeze method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns `Err` unless both `shape` and `scale` are finite and
    /// strictly positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, DistError> {
        if !(shape.is_finite() && scale.is_finite()) || shape <= 0.0 || scale <= 0.0 {
            return Err(DistError::InvalidParameter("gamma shape and scale must be > 0"));
        }
        Ok(Self { shape, scale })
    }

    /// Draws one variate.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        if self.shape < 1.0 {
            // Boost: Gamma(k) = Gamma(k + 1) · U^(1/k).
            let boosted = Gamma { shape: self.shape + 1.0, scale: self.scale };
            let u = 1.0 - rng.gen_f64();
            return boosted.sample(rng) * u.powf(1.0 / self.shape);
        }
        // Marsaglia & Tsang (2000), "A simple method for generating gamma
        // variables": d = k − 1/3, c = 1/√(9d); accept x when
        // ln u < x²/2 + d − dv + d ln v with v = (1 + cx)³.
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = StandardNormal.sample(rng);
            let t = 1.0 + c * x;
            if t <= 0.0 {
                continue;
            }
            let v = t * t * t;
            let u = 1.0 - rng.gen_f64();
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v * self.scale;
            }
        }
    }

    /// Draws one variate as `f32`.
    pub fn sample_f32(&self, rng: &mut Rng) -> f32 {
        self.sample(rng) as f32
    }
}

/// The exponential distribution `Exp(rate)` (mean `1/rate`).
///
/// This is the inter-arrival time of a Poisson process with intensity
/// `rate`: summing consecutive draws yields a seeded, deterministic
/// open-loop arrival schedule, which is exactly how the load harness
/// uses it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    rate: f64,
}

impl Exp {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns `Err` unless `rate` is finite and strictly positive.
    pub fn new(rate: f64) -> Result<Self, DistError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(DistError::InvalidParameter("exp rate must be finite and > 0"));
        }
        Ok(Self { rate })
    }

    /// Draws one variate via inversion: `-ln(1 - U) / rate`, always
    /// finite and non-negative (`1 - U` is in `(0, 1]`).
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        let u = 1.0 - rng.gen_f64();
        -u.ln() / self.rate
    }
}

/// The Zipf distribution over ranks `1..=n`: `P(k) ∝ 1 / k^s`.
///
/// Rank 1 is the most popular item. Sampling inverts the precomputed
/// cumulative distribution with a binary search — one uniform per draw,
/// so interleaving with other samplers on the same generator stays
/// reproducible. Construction is `O(n)` and sampling `O(log n)`; the
/// load harness builds one table per (tenant population, skew) pair and
/// draws millions of ranks from it.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    /// `cdf[k]` = P(rank ≤ k + 1); the last entry is exactly 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates the distribution over `1..=n` with exponent `s`.
    ///
    /// `s == 0` degenerates to the uniform distribution, which is valid
    /// and occasionally useful for un-skewed control runs.
    ///
    /// # Errors
    ///
    /// Returns `Err` when `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Result<Self, DistError> {
        if n == 0 {
            return Err(DistError::InvalidParameter("zipf n must be >= 1"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(DistError::InvalidParameter("zipf exponent must be finite and >= 0"));
        }
        let mut cdf: Vec<f64> = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guarantee the search always terminates inside the table even
        // under accumulated rounding.
        cdf[n - 1] = 1.0;
        Ok(Self { cdf })
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Probability of rank `k` (1-based); 0.0 outside `1..=n`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 || k > self.cdf.len() {
            return 0.0;
        }
        let hi = self.cdf[k - 1];
        let lo = if k >= 2 { self.cdf[k - 2] } else { 0.0 };
        hi - lo
    }

    /// Draws one rank in `1..=n` (rank 1 most likely).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.gen_f64();
        // First index whose cumulative mass strictly exceeds u.
        let mut lo = 0usize;
        let mut hi = self.cdf.len() - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.cdf[mid] > u {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo + 1
    }

    /// Draws one 0-based index in `0..n` — convenience for array lookups.
    pub fn sample_index(&self, rng: &mut Rng) -> usize {
        self.sample(rng) - 1
    }
}

/// Error for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistError {
    /// A parameter was out of the distribution's domain.
    InvalidParameter(&'static str),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for DistError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Rng::seed_from_u64(100);
        let xs: Vec<f64> = (0..200_000).map(|_| StandardNormal.sample(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = Rng::seed_from_u64(101);
        let d = Normal::new(3.0, 2.0).unwrap();
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn normal_tail_mass_is_gaussian() {
        // ~4.55% of standard-normal mass lies beyond |2σ|.
        let mut rng = Rng::seed_from_u64(102);
        let n = 200_000;
        let beyond = (0..n)
            .filter(|_| StandardNormal.sample(&mut rng).abs() > 2.0)
            .count();
        let frac = beyond as f64 / n as f64;
        assert!((0.04..0.051).contains(&frac), "2-sigma tail {frac}");
    }

    #[test]
    fn gamma_moments_match_k_theta() {
        // Mean kθ and variance kθ² for a shape both above and below 1.
        for (k, theta) in [(2.5, 2.0), (7.0, 0.5), (0.5, 1.5)] {
            let mut rng = Rng::seed_from_u64(103);
            let d = Gamma::new(k, theta).unwrap();
            let xs: Vec<f64> = (0..300_000).map(|_| d.sample(&mut rng)).collect();
            let (mean, var) = moments(&xs);
            assert!(
                (mean - k * theta).abs() < 0.05 * k * theta,
                "k={k} θ={theta}: mean {mean}"
            );
            assert!(
                (var - k * theta * theta).abs() < 0.1 * k * theta * theta,
                "k={k} θ={theta}: var {var}"
            );
        }
    }

    #[test]
    fn gamma_always_positive() {
        let mut rng = Rng::seed_from_u64(104);
        let d = Gamma::new(0.3, 1.0).unwrap();
        for _ in 0..20_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(f64::INFINITY, 1.0).is_err());
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(8, -0.5).is_err());
        assert!(Zipf::new(8, f64::INFINITY).is_err());
    }

    /// Pearson chi-square statistic over observed vs expected counts.
    fn chi_square(observed: &[u64], expected: &[f64]) -> f64 {
        observed
            .iter()
            .zip(expected)
            .map(|(&o, &e)| {
                let d = o as f64 - e;
                d * d / e
            })
            .sum()
    }

    /// Approximate upper critical value of the chi-square distribution
    /// with `df` degrees of freedom at `z` standard deviations past the
    /// mean (Wilson–Hilferty cube-root transform). With z = 4 the false
    /// positive rate is ~3e-5 per check — stable for a seeded test.
    fn chi_square_critical(df: usize, z: f64) -> f64 {
        let df = df as f64;
        let a = 2.0 / (9.0 * df);
        df * (1.0 - a + z * a.sqrt()).powi(3)
    }

    #[test]
    fn exp_is_deterministic_per_seed() {
        let d = Exp::new(3.0).unwrap();
        let draw = |seed| {
            let mut rng = Rng::seed_from_u64(seed);
            (0..64).map(|_| d.sample(&mut rng)).collect::<Vec<f64>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn exp_moments_and_positivity() {
        let mut rng = Rng::seed_from_u64(105);
        let d = Exp::new(4.0).unwrap();
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x >= 0.0 && x.is_finite()));
        let (mean, var) = moments(&xs);
        assert!((mean - 0.25).abs() < 0.005, "mean {mean}");
        assert!((var - 0.0625).abs() < 0.003, "var {var}");
    }

    #[test]
    fn exp_chi_square_goodness_of_fit() {
        // Bin draws at the exact quantiles of Exp(rate): every bin then
        // expects n/k samples, and the chi-square statistic must sit
        // inside the df = k-1 distribution's body.
        let rate = 2.0;
        let d = Exp::new(rate).unwrap();
        let mut rng = Rng::seed_from_u64(106);
        let bins = 32usize;
        let n = 100_000usize;
        // Bin edges: F^-1(i/k) = -ln(1 - i/k)/rate.
        let edges: Vec<f64> =
            (1..bins).map(|i| -(1.0 - i as f64 / bins as f64).ln() / rate).collect();
        let mut observed = vec![0u64; bins];
        for _ in 0..n {
            let x = d.sample(&mut rng);
            let bin = edges.partition_point(|&e| e <= x);
            observed[bin] += 1;
        }
        let expected = vec![n as f64 / bins as f64; bins];
        let stat = chi_square(&observed, &expected);
        let critical = chi_square_critical(bins - 1, 4.0);
        assert!(stat < critical, "chi-square {stat} >= {critical}");
    }

    #[test]
    fn zipf_is_deterministic_per_seed() {
        let d = Zipf::new(1000, 1.1).unwrap();
        let draw = |seed| {
            let mut rng = Rng::seed_from_u64(seed);
            (0..256).map(|_| d.sample(&mut rng)).collect::<Vec<usize>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_ranks_in_range() {
        for (n, s) in [(1usize, 1.0f64), (2, 0.0), (16, 0.8), (1000, 1.2)] {
            let d = Zipf::new(n, s).unwrap();
            let total: f64 = (1..=n).map(|k| d.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} s={s}: pmf sums to {total}");
            let mut rng = Rng::seed_from_u64(107);
            for _ in 0..1000 {
                let k = d.sample(&mut rng);
                assert!((1..=n).contains(&k));
            }
        }
    }

    #[test]
    fn zipf_chi_square_goodness_of_fit() {
        // Direct multinomial test against the exact pmf over a small rank
        // space, for both a skewed and a uniform (s = 0) table.
        for s in [1.0f64, 0.0] {
            let n_ranks = 16usize;
            let d = Zipf::new(n_ranks, s).unwrap();
            let mut rng = Rng::seed_from_u64(108);
            let draws = 200_000usize;
            let mut observed = vec![0u64; n_ranks];
            for _ in 0..draws {
                observed[d.sample(&mut rng) - 1] += 1;
            }
            let expected: Vec<f64> =
                (1..=n_ranks).map(|k| d.pmf(k) * draws as f64).collect();
            let stat = chi_square(&observed, &expected);
            let critical = chi_square_critical(n_ranks - 1, 4.0);
            assert!(stat < critical, "s={s}: chi-square {stat} >= {critical}");
        }
    }

    #[test]
    fn zipf_rank_one_dominates_under_skew() {
        let d = Zipf::new(100, 1.0).unwrap();
        assert!(d.pmf(1) > d.pmf(2) && d.pmf(2) > d.pmf(10));
        // Harmonic weighting: rank 1 carries 1/H(100) ≈ 19.3% of the mass.
        assert!((d.pmf(1) - 0.1928).abs() < 0.001, "pmf(1) = {}", d.pmf(1));
    }

    #[test]
    fn zipf_single_rank_is_degenerate() {
        let d = Zipf::new(1, 2.0).unwrap();
        let mut rng = Rng::seed_from_u64(109);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 1);
            assert_eq!(d.sample_index(&mut rng), 0);
        }
        assert_eq!(d.pmf(1), 1.0);
        assert_eq!(d.pmf(2), 0.0);
    }

    #[test]
    fn samplers_shrink_under_the_property_harness() {
        // Reuse the seeded property-test harness: every generated
        // (seed, n, s) triple must keep ranks in range and preserve
        // determinism. Exercises the same machinery as the codec suites.
        crate::prop::check(
            "zipf ranks stay in range for any parameters",
            |rng| {
                let n = rng.gen_range(1..2000);
                let s = f64::from(rng.next_u32() % 300) / 100.0;
                let seed = rng.next_u64();
                (n, s, seed)
            },
            |&(n, s, seed)| {
                let d = Zipf::new(n, s).map_err(|e| e.to_string())?;
                let mut a = Rng::seed_from_u64(seed);
                let mut b = Rng::seed_from_u64(seed);
                for _ in 0..64 {
                    let ka = d.sample(&mut a);
                    if !(1..=n).contains(&ka) {
                        return Err(format!("rank {ka} outside 1..={n}"));
                    }
                    if ka != d.sample(&mut b) {
                        return Err("same seed diverged".into());
                    }
                }
                Ok(())
            },
        );
    }
}
