//! Child-process spawn/kill/reap helpers for multi-process harnesses.
//!
//! The router chaos plane and the fleet CI stage drive *real* `spark`
//! child processes: spawn N backends, `kill -9` one mid-run, restart it,
//! and always reap — a leaked child outlives the test run and poisons
//! the next one's ports. This module wraps `std::process` with the three
//! guarantees those harnesses need:
//!
//! - **No zombies**: [`ChildProc`] reaps on [`Drop`] (kill + wait), so a
//!   panicking test still collects its children.
//! - **Hard kill**: [`ChildProc::kill_hard`] is SIGKILL semantics
//!   (`std::process::Child::kill` sends SIGKILL on Unix) — the process
//!   gets no chance to flush, exactly the crash model the store's WAL
//!   recovery is specified against.
//! - **Deadline waits**: [`ChildProc::wait_deadline`] polls with a
//!   bounded wall-clock budget instead of blocking forever on a hung
//!   child.
//!
//! [`spark_bin`] locates the workspace's own `spark` binary for tests
//! and chaos planes that re-exec it: `SPARK_BIN` env override first,
//! then a sibling of the current executable (how cargo lays out
//! integration tests), else `None` — callers degrade to a deterministic
//! "skipped" report rather than failing.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A spawned child process that is always reaped: on drop it is killed
/// and waited, so no harness path (including panics) leaks a zombie.
#[derive(Debug)]
pub struct ChildProc {
    child: Child,
    /// Human-readable role tag for error messages ("backend-0").
    label: String,
}

impl ChildProc {
    /// Spawns `bin` with `args`, stdio nulled (harness children must not
    /// interleave their output with the test's own).
    ///
    /// # Errors
    ///
    /// Spawn failure (missing binary, exec permission) as a string.
    pub fn spawn(bin: &PathBuf, args: &[String], label: &str) -> Result<Self, String> {
        let child = Command::new(bin)
            .args(args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("{label}: spawn {}: {e}", bin.display()))?;
        Ok(Self { child, label: label.to_string() })
    }

    /// OS process id, for logging and external kills.
    pub fn id(&self) -> u32 {
        self.child.id()
    }

    /// The role tag this child was spawned with.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// SIGKILL the child (no shutdown grace — the crash model) and reap
    /// it. Idempotent: killing an already-dead child is not an error.
    ///
    /// # Errors
    ///
    /// OS-level kill/wait failures other than "already exited".
    pub fn kill_hard(&mut self) -> Result<(), String> {
        match self.child.kill() {
            Ok(()) => {}
            // InvalidInput is what std returns for "already exited".
            Err(e) if e.kind() == std::io::ErrorKind::InvalidInput => {}
            Err(e) => return Err(format!("{}: kill: {e}", self.label)),
        }
        self.child
            .wait()
            .map(|_| ())
            .map_err(|e| format!("{}: reap after kill: {e}", self.label))
    }

    /// Returns `Some(exit_success)` if the child has exited, `None` if
    /// it is still running.
    ///
    /// # Errors
    ///
    /// OS-level wait failures as a string.
    pub fn try_wait(&mut self) -> Result<Option<bool>, String> {
        self.child
            .try_wait()
            .map(|s| s.map(|st| st.success()))
            .map_err(|e| format!("{}: try_wait: {e}", self.label))
    }

    /// Polls until the child exits or `deadline` elapses. Returns
    /// `Ok(true)` on exit-success, `Ok(false)` on nonzero exit, and an
    /// error if the deadline passes with the child still running (the
    /// child is left running — callers decide whether to kill).
    ///
    /// # Errors
    ///
    /// Deadline exhaustion or OS-level wait failures.
    pub fn wait_deadline(&mut self, deadline: Duration) -> Result<bool, String> {
        let t0 = Instant::now();
        loop {
            if let Some(success) = self.try_wait()? {
                return Ok(success);
            }
            if t0.elapsed() >= deadline {
                return Err(format!(
                    "{}: still running after {:.1}s deadline",
                    self.label,
                    deadline.as_secs_f64()
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl Drop for ChildProc {
    fn drop(&mut self) {
        // Best-effort reap; a second kill of a dead child is a no-op.
        let _ = self.kill_hard();
    }
}

/// Locates the workspace `spark` binary for harnesses that re-exec it:
/// the `SPARK_BIN` env override wins, else a binary named `spark` next
/// to (or one directory above — cargo puts test executables under
/// `target/<profile>/deps/`) the current executable. Returns `None`
/// when neither exists so callers can emit a deterministic "skipped"
/// result instead of erroring.
pub fn spark_bin() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("SPARK_BIN") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Some(p);
        }
        return None;
    }
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?.to_path_buf();
    for _ in 0..2 {
        let candidate = dir.join("spark");
        if candidate.is_file() {
            return Some(candidate);
        }
        dir = dir.parent()?.to_path_buf();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shell() -> PathBuf {
        PathBuf::from("/bin/sh")
    }

    #[test]
    fn spawn_wait_collects_exit_status() {
        let mut ok = ChildProc::spawn(&shell(), &["-c".into(), "exit 0".into()], "ok").unwrap();
        assert!(ok.wait_deadline(Duration::from_secs(5)).unwrap());
        let mut bad = ChildProc::spawn(&shell(), &["-c".into(), "exit 3".into()], "bad").unwrap();
        assert!(!bad.wait_deadline(Duration::from_secs(5)).unwrap());
    }

    #[test]
    fn kill_hard_reaps_a_running_child_and_is_idempotent() {
        let mut sleeper =
            ChildProc::spawn(&shell(), &["-c".into(), "sleep 30".into()], "sleeper").unwrap();
        assert_eq!(sleeper.try_wait().unwrap(), None, "child must still be running");
        sleeper.kill_hard().unwrap();
        // Reaped: a follow-up wait sees the exit immediately.
        assert_eq!(sleeper.try_wait().unwrap(), Some(false));
        // Second kill of a dead child is a no-op, not an error.
        sleeper.kill_hard().unwrap();
    }

    #[test]
    fn wait_deadline_errors_instead_of_hanging() {
        let mut sleeper =
            ChildProc::spawn(&shell(), &["-c".into(), "sleep 30".into()], "hung").unwrap();
        let err = sleeper.wait_deadline(Duration::from_millis(50)).unwrap_err();
        assert!(err.contains("hung"), "{err}");
        assert!(err.contains("deadline"), "{err}");
        // Drop reaps it — verified indirectly by the process table not
        // accumulating sleepers across test runs.
    }

    #[test]
    fn spark_bin_honors_explicit_override_checks() {
        // Can't mutate the env safely under the parallel test runner, so
        // exercise the non-env fallback path only: whatever it returns
        // must be an existing file named spark.
        if let Some(p) = spark_bin() {
            assert!(p.is_file());
            assert_eq!(p.file_name().and_then(|n| n.to_str()), Some("spark"));
        }
    }
}
