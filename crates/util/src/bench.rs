//! Micro-benchmark timing, replacing `criterion` for the `spark-bench`
//! benches.
//!
//! Each benchmark is a closure timed over an adaptively chosen iteration
//! count: warm up briefly, estimate the per-iteration cost, then run enough
//! iterations to fill the measurement window and report mean/best time and
//! optional element throughput. Set `SPARK_BENCH_QUICK=1` to shrink the
//! windows (used by CI smoke runs).

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark's measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchResult {
    /// Mean wall time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Best (minimum) batch mean observed, in nanoseconds.
    pub best_ns: f64,
    /// Total iterations measured.
    pub iters: u64,
}

impl BenchResult {
    /// Elements per second at `elems` elements processed per iteration.
    pub fn throughput(&self, elems: u64) -> f64 {
        elems as f64 / (self.mean_ns * 1e-9)
    }
}

fn windows() -> (Duration, Duration) {
    if std::env::var_os("SPARK_BENCH_QUICK").is_some() {
        (Duration::from_millis(10), Duration::from_millis(50))
    } else {
        (Duration::from_millis(150), Duration::from_millis(500))
    }
}

/// Times `f`, prints a criterion-style line, and returns the measurements.
pub fn bench(name: &str, f: impl FnMut()) -> BenchResult {
    bench_impl(name, None, f)
}

/// Like [`bench`], additionally reporting throughput for `elems` elements
/// processed per iteration.
pub fn bench_throughput(name: &str, elems: u64, f: impl FnMut()) -> BenchResult {
    bench_impl(name, Some(elems), f)
}

fn bench_impl(name: &str, elems: Option<u64>, mut f: impl FnMut()) -> BenchResult {
    let (warmup_window, measure_window) = windows();

    // Warmup + cost estimate: run until the warmup window elapses.
    let mut warm_iters = 0u64;
    let warm_start = Instant::now();
    loop {
        f();
        warm_iters += 1;
        if warm_start.elapsed() >= warmup_window {
            break;
        }
    }
    let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

    // Measure in ~10 batches sized to fill the window.
    let batches = 10u64;
    let batch_iters = ((measure_window.as_nanos() as f64 / est_ns / batches as f64).ceil() as u64).max(1);
    let mut total = Duration::ZERO;
    let mut best_ns = f64::INFINITY;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..batch_iters {
            f();
        }
        let elapsed = start.elapsed();
        total += elapsed;
        best_ns = best_ns.min(elapsed.as_nanos() as f64 / batch_iters as f64);
    }
    let iters = batches * batch_iters;
    let result = BenchResult {
        mean_ns: total.as_nanos() as f64 / iters as f64,
        best_ns,
        iters,
    };

    match elems {
        Some(n) => println!(
            "{name:<44} {:>12}/iter (best {:>12})  {:>14}",
            format_ns(result.mean_ns),
            format_ns(result.best_ns),
            format_throughput(result.throughput(n)),
        ),
        None => println!(
            "{name:<44} {:>12}/iter (best {:>12})",
            format_ns(result.mean_ns),
            format_ns(result.best_ns),
        ),
    }
    result
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn format_throughput(eps: f64) -> String {
    if eps >= 1e9 {
        format!("{:.2} Gelem/s", eps / 1e9)
    } else if eps >= 1e6 {
        format!("{:.2} Melem/s", eps / 1e6)
    } else if eps >= 1e3 {
        format!("{:.2} Kelem/s", eps / 1e3)
    } else {
        format!("{eps:.1} elem/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_cheap_closure() {
        std::env::set_var("SPARK_BENCH_QUICK", "1");
        let mut acc = 0u64;
        let r = bench("util/self_test", || {
            acc = black_box(acc.wrapping_add(1));
        });
        assert!(r.iters > 0);
        assert!(r.mean_ns > 0.0);
        assert!(r.best_ns <= r.mean_ns * 1.5 + 1.0);
    }

    #[test]
    fn throughput_scales_with_elems() {
        std::env::set_var("SPARK_BENCH_QUICK", "1");
        let r = bench_throughput("util/throughput_test", 1000, || {
            black_box((0..100u32).sum::<u32>());
        });
        assert!((r.throughput(2000) / r.throughput(1000) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn formatting_units() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert_eq!(format_ns(12_340.0), "12.34 µs");
        assert_eq!(format_ns(12_340_000.0), "12.34 ms");
        assert!(format_throughput(2.5e9).contains("Gelem"));
        assert!(format_throughput(2.5e6).contains("Melem"));
    }
}
