//! FNV-1a 64-bit hashing — the workspace's one non-cryptographic
//! integrity/placement hash.
//!
//! Three subsystems grew independent copies of the same loop before this
//! module existed: the container-v2 payload checksum, the consistent-hash
//! ring's tenant hash, and the load harness's schedule digest. They now
//! all call [`fnv1a`] (or feed the streaming [`Fnv1a`] hasher), so the
//! constants live in exactly one place and a golden-vector test pins the
//! function itself. The store's WAL and manifest checksums build on the
//! streaming form.
//!
//! FNV-1a is *not* cryptographic: it detects accidental corruption (bit
//! rot, truncation, mis-spliced files) and spreads keys for placement.
//! Nothing in the workspace uses it against an adversary who can choose
//! collisions.

/// FNV-1a 64-bit offset basis.
pub const OFFSET_BASIS: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
pub const PRIME: u64 = 0x0000_0100_0000_01B3;

/// One-shot FNV-1a 64 over a byte slice.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// Streaming FNV-1a 64 hasher. Feeding bytes in any chunking yields the
/// same digest as one [`fnv1a`] call over the concatenation — pinned by
/// `chunking_is_transparent`.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self { state: OFFSET_BASIS }
    }

    /// Absorbs a chunk of bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        self.state = h;
    }

    /// Absorbs a single `u64` in little-endian byte order — the framing
    /// convention every on-disk structure in the workspace uses.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The digest of everything absorbed so far. Non-destructive: more
    /// `update` calls may follow.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn official_test_vectors() {
        // Reference digests from the FNV spec / draft-eastlake-fnv:
        // fnv1a-64 of "", "a", "foobar".
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_F739_67E8);
    }

    #[test]
    fn chunking_is_transparent() {
        let data: Vec<u8> = (0u16..500).map(|i| (i.wrapping_mul(251) >> 3) as u8).collect();
        let whole = fnv1a(&data);
        for split in [0, 1, 7, 250, 499, 500] {
            let mut h = Fnv1a::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), whole, "split at {split}");
        }
        // Byte-at-a-time too.
        let mut h = Fnv1a::new();
        for &b in &data {
            h.update(&[b]);
        }
        assert_eq!(h.finish(), whole);
    }

    #[test]
    fn update_u64_matches_le_bytes() {
        let mut a = Fnv1a::new();
        a.update_u64(0x0123_4567_89AB_CDEF);
        let mut b = Fnv1a::new();
        b.update(&0x0123_4567_89AB_CDEFu64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(fnv1a(&[1, 2]), fnv1a(&[2, 1]));
        assert_ne!(fnv1a(&[0]), fnv1a(&[]));
    }
}
