//! Minimal JSON document model, serializer, and parser, replacing
//! `serde`/`serde_json` for the experiment result dumps.
//!
//! The experiment harness only ever *writes* trees of numbers, strings,
//! arrays and objects (and the tests read them back to prove the output
//! stays parseable), so a small concrete [`Value`] plus a [`ToJson`] trait
//! covers the whole need without derive machinery. Object member order is
//! preserved as inserted, which keeps dumps stable across runs.

use std::fmt::Write as _;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also what non-finite floats serialize to, as in serde_json).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object with insertion-ordered members.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(members: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Object(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number payload, if this is a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation, matching the layout the old
    /// `serde_json::to_string_pretty` dumps used.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => write_number(out, *x),
            Value::Str(s) => write_string(out, s),
            Value::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Value::Object(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (k, v) = &members[i];
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

/// Writes a number the way serde_json does: integers without a fraction,
/// everything else in Rust's shortest round-trippable form, and non-finite
/// values as `null` (JSON has no representation for them).
fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a JSON [`Value`] — the replacement for the ~99 `serde`
/// derives the workspace used to carry. Structs implement it with
/// [`crate::to_json_struct!`]; enums and special cases write it by hand.
pub trait ToJson {
    /// Converts `self` into a JSON tree.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

macro_rules! to_json_number {
    ($($ty:ty),*) => {
        $(impl ToJson for $ty {
            fn to_json(&self) -> Value {
                Value::Num(*self as f64)
            }
        })*
    };
}

to_json_number!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (*self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Implements [`ToJson`] for a struct by listing its fields:
///
/// ```
/// use spark_util::{json::ToJson, to_json_struct};
/// struct Point { x: f64, y: f64 }
/// to_json_struct!(Point { x, y });
/// let v = Point { x: 1.0, y: 2.0 }.to_json();
/// assert_eq!(v.get("x").and_then(|v| v.as_f64()), Some(1.0));
/// ```
#[macro_export]
macro_rules! to_json_struct {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Value {
                $crate::json::Value::object([
                    $((stringify!($field), $crate::json::ToJson::to_json(&self.$field)),)*
                ])
            }
        }
    };
}

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document.
///
/// ```
/// use spark_util::json::{parse, Value};
/// let v = parse(r#"{"a": [1, 2.5], "b": "x"}"#).unwrap();
/// assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
/// ```
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Maximum container nesting [`parse`] accepts. The parser recurses once
/// per level, so without this cap adversarial input like `"[[[[…"` would
/// exhaust the thread stack (an abort, not an `Err`) — unacceptable for a
/// parser that fronts a network server. 128 matches serde_json's default.
pub const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{token}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Value::Null),
            Some(b't') => self.eat("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.enter()?;
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.enter()?;
        self.pos += 1; // {
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected `\"`"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not produced by our serializer;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated string")),
                Some(_) => unreachable!("loop invariant"),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        match text.parse::<f64>() {
            // `"1e999".parse::<f64>()` yields infinity rather than an
            // error; JSON has no non-finite numbers, so reject instead of
            // silently materializing a value the serializer would turn
            // into `null`.
            Ok(x) if x.is_finite() => Ok(Value::Num(x)),
            Ok(_) => Err(self.err("number out of range")),
            Err(_) => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-7", "2.5", "\"hi\"", "[]", "{}"] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_string_compact(), text, "{text}");
        }
    }

    #[test]
    fn float_values_round_trip_exactly() {
        for x in [0.1, -1.0 / 3.0, 1e-12, 6.02e23, f64::MAX, 5.0_f64] {
            let v = Value::Num(x);
            let back = parse(&v.to_string_compact()).unwrap();
            assert_eq!(back.as_f64(), Some(x), "{x}");
        }
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Value::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn nested_pretty_round_trip() {
        let v = Value::object([
            ("name", Value::Str("fig11".into())),
            (
                "rows",
                Value::Array(vec![
                    Value::object([("model", Value::Str("resnet18".into())), ("x", Value::Num(1.25))]),
                    Value::Null,
                ]),
            ),
            ("ok", Value::Bool(true)),
        ]);
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"rows\": [\n"));
        assert_eq!(parse(&pretty).unwrap(), v);
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}π";
        let v = Value::Str(nasty.into());
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn object_order_preserved() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        match &v {
            Value::Object(members) => {
                assert_eq!(members[0].0, "z");
                assert_eq!(members[1].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1.2.3", "\"x", "[1] extra"] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn to_json_primitives_and_containers() {
        assert_eq!(3usize.to_json(), Value::Num(3.0));
        assert_eq!((-2i32).to_json(), Value::Num(-2.0));
        assert_eq!("s".to_json(), Value::Str("s".into()));
        assert_eq!(None::<u8>.to_json(), Value::Null);
        let pairs = vec![("a".to_string(), 1.0f64), ("b".to_string(), 2.0)];
        let v = pairs.to_json();
        assert_eq!(
            v,
            Value::Array(vec![
                Value::Array(vec![Value::Str("a".into()), Value::Num(1.0)]),
                Value::Array(vec![Value::Str("b".into()), Value::Num(2.0)]),
            ])
        );
    }

    struct Demo {
        name: String,
        xs: Vec<u32>,
    }
    crate::to_json_struct!(Demo { name, xs });

    #[test]
    fn struct_macro_emits_object() {
        let d = Demo { name: "d".into(), xs: vec![1, 2] };
        let v = d.to_json();
        assert_eq!(v.get("name").unwrap().as_str(), Some("d"));
        assert_eq!(v.get("xs").unwrap().as_array().unwrap().len(), 2);
        let text = v.to_string_pretty();
        assert_eq!(parse(&text).unwrap(), v);
    }
}
