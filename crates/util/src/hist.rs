//! Lock-free log-bucketed histogram for latency and size distributions.
//!
//! The serving subsystem records one value per request from many worker
//! threads at once, so every operation here is a relaxed atomic on a fixed
//! bucket table — no locks, no allocation after construction. Values below
//! [`EXACT_LIMIT`] get one bucket each (exact counts for small batch sizes
//! and queue depths); larger values share eight linear sub-buckets per
//! power of two, bounding the relative quantile error at 1/8.

use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this are recorded exactly (one bucket per value).
pub const EXACT_LIMIT: u64 = 64;

/// Eight sub-buckets per octave above [`EXACT_LIMIT`].
const SUBS: usize = 8;

/// Octaves covered above the exact range: exponents 6..=63.
const OCTAVES: usize = 58;

const BUCKETS: usize = EXACT_LIMIT as usize + OCTAVES * SUBS;

/// A concurrent histogram of `u64` samples (typically microseconds or
/// batch sizes).
///
/// ```
/// use spark_util::hist::Histogram;
/// let h = Histogram::new();
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 100);
/// assert_eq!(h.max(), 100);
/// let p50 = h.quantile(0.5);
/// assert!((45..=57).contains(&p50), "p50 = {p50}");
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Smallest sample; `u64::MAX` while empty so `fetch_min` works
    /// without a sentinel branch on the hot path.
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < EXACT_LIMIT {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as usize; // >= 6
    let sub = ((v >> (exp - 3)) & 7) as usize;
    EXACT_LIMIT as usize + (exp - 6) * SUBS + sub
}

/// Smallest value that lands in bucket `i`.
fn bucket_lower(i: usize) -> u64 {
    if i < EXACT_LIMIT as usize {
        return i as u64;
    }
    let rel = i - EXACT_LIMIT as usize;
    let exp = rel / SUBS + 6;
    let sub = (rel % SUBS) as u64;
    (8 + sub) << (exp - 3)
}

/// Largest value that lands in bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i < EXACT_LIMIT as usize {
        return i as u64;
    }
    if i + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_lower(i + 1) - 1
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the table through a Vec.
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> =
            buckets.into_boxed_slice().try_into().expect("fixed size");
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Records one sample. Safe to call from any number of threads.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on overflow, like the recording itself).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Smallest sample recorded (0 when empty).
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX && self.count() == 0 {
            0
        } else {
            v
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum() as f64 / n as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`) by the nearest-rank method:
    /// the value at rank `⌈q·n⌉` of the sorted samples, reported as the
    /// upper edge of that rank's bucket — a conservative (never
    /// understated) estimate with ≤ 1/8 relative error. Clamped into
    /// `[min, max]` so a single sample answers every quantile exactly.
    /// `q ≤ 0` returns the minimum; an empty histogram returns 0 for
    /// every `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        // ⌈q·n⌉ computed with a one-ulp-scale epsilon so that exact
        // boundaries survive binary rounding: 0.999 × 1000 must target
        // rank 999, not drift to 999.0000000000001 and ceil to 1000.
        let exact = q.clamp(0.0, 1.0) * n as f64;
        let target = ((exact - 1e-9 * exact.max(1.0)).ceil() as u64).clamp(1, n);
        // Load the extrema once; a record() racing between the max and
        // min updates could transiently invert them, so order defensively
        // rather than clamp (which would panic on lo > hi).
        let hi = self.max();
        let lo = self.min().min(hi);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.buckets[i].load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper(i).clamp(lo, hi);
            }
        }
        hi
    }

    /// Non-empty buckets as `(lower_edge, count)` pairs, for dumps.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        (0..BUCKETS)
            .filter_map(|i| {
                let c = self.buckets[i].load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_lower(i), c))
            })
            .collect()
    }

    /// Summary as a JSON object: `count`, `mean`, `min`, `p50`, `p90`,
    /// `p99`, `p999`, `max` — the schema `/metrics` and the load-harness
    /// reports serve.
    pub fn to_json(&self) -> crate::json::Value {
        crate::json::Value::object([
            ("count", crate::json::Value::Num(self.count() as f64)),
            ("mean", crate::json::Value::Num(self.mean())),
            ("min", crate::json::Value::Num(self.min() as f64)),
            ("p50", crate::json::Value::Num(self.quantile(0.5) as f64)),
            ("p90", crate::json::Value::Num(self.quantile(0.9) as f64)),
            ("p99", crate::json::Value::Num(self.quantile(0.99) as f64)),
            ("p999", crate::json::Value::Num(self.quantile(0.999) as f64)),
            ("max", crate::json::Value::Num(self.max() as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        // Every value maps to a bucket whose [lower, upper] range holds it,
        // and bucket edges are contiguous.
        for v in 0..4096u64 {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "v = {v}");
        }
        for v in [u64::MAX, u64::MAX / 2, 1 << 40, (1 << 40) + 12345] {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "v = {v}");
        }
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_upper(i) + 1, bucket_lower(i + 1), "bucket {i}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(5);
        }
        h.record(60);
        assert_eq!(h.count(), 11);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 60);
        assert_eq!(h.max(), 60);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            assert!(got >= exact * 0.99, "q{q}: {got} < {exact}");
            assert!(got <= exact * 1.15, "q{q}: {got} > {exact}");
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 0, "q = {q}");
        }
    }

    #[test]
    fn single_sample_answers_every_quantile_exactly() {
        // Including a large value whose bucket is 1/8-wide: the clamp to
        // [min, max] must collapse the bucket back to the sample.
        for v in [0u64, 1, 63, 64, 100, 12_345, 1 << 40] {
            let h = Histogram::new();
            h.record(v);
            for q in [0.0, 0.25, 0.5, 0.99, 0.999, 1.0] {
                assert_eq!(h.quantile(q), v, "v = {v}, q = {q}");
            }
            assert_eq!(h.min(), v);
            assert_eq!(h.max(), v);
        }
    }

    #[test]
    fn exact_boundary_ranks_do_not_overshoot() {
        // 1000 samples: p999 must land on rank 999's value, not drift one
        // rank up through floating-point (0.999 × 1000 ≈ 999.0000000001).
        let h = Histogram::new();
        for _ in 0..999 {
            h.record(10);
        }
        h.record(50);
        assert_eq!(h.quantile(0.999), 10, "rank 999 of 1000 is the low value");
        assert_eq!(h.quantile(1.0), 50);
        // Exact halves behave as nearest-rank: rank ⌈0.5·2⌉ = 1.
        let h2 = Histogram::new();
        h2.record(1);
        h2.record(9);
        assert_eq!(h2.quantile(0.5), 1);
        assert_eq!(h2.quantile(0.51), 9);
    }

    #[test]
    fn quantile_zero_is_the_minimum() {
        let h = Histogram::new();
        for v in [500u64, 20, 3000] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 20);
        assert_eq!(h.quantile(-1.0), 20, "q below range clamps to min");
        assert_eq!(h.min(), 20);
    }

    #[test]
    fn percentile_round_trip_against_sorted_reference() {
        // Deterministic pseudo-random samples spanning the exact range,
        // the log-bucketed range, and several octaves. Every reported
        // quantile must sit in [reference, reference × 9/8] — never
        // understated, bounded relative overshoot — where reference is
        // the nearest-rank value from the sorted samples.
        let mut state = 0x5EED_1234u64;
        let mut samples: Vec<u64> = (0..10_000)
            .map(|_| {
                state = crate::rng::splitmix64(&mut state);
                state % 2_000_000
            })
            .collect();
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        samples.sort_unstable();
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let reference = samples[rank - 1];
            let got = h.quantile(q);
            assert!(got >= reference, "q{q}: {got} understates reference {reference}");
            // Bucket width above EXACT_LIMIT is lower/8, so the upper
            // edge overshoots the sample by at most a factor of 9/8.
            let bound = reference + reference / 8 + 1;
            assert!(got <= bound, "q{q}: {got} > bound {bound} (reference {reference})");
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.sum(), (0..4000u64).sum::<u64>());
    }

    #[test]
    fn json_summary_parses_and_has_fields() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let j = h.to_json();
        let text = j.to_string_compact();
        let back = crate::json::parse(&text).unwrap();
        assert_eq!(back.get("count").unwrap().as_f64(), Some(4.0));
        assert!(back.get("p99").unwrap().as_f64().unwrap() >= 100.0);
    }
}
