//! Lock-free log-bucketed histogram for latency and size distributions.
//!
//! The serving subsystem records one value per request from many worker
//! threads at once, so every operation here is a relaxed atomic on a fixed
//! bucket table — no locks, no allocation after construction. Values below
//! [`EXACT_LIMIT`] get one bucket each (exact counts for small batch sizes
//! and queue depths); larger values share eight linear sub-buckets per
//! power of two, bounding the relative quantile error at 1/8.

use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this are recorded exactly (one bucket per value).
pub const EXACT_LIMIT: u64 = 64;

/// Eight sub-buckets per octave above [`EXACT_LIMIT`].
const SUBS: usize = 8;

/// Octaves covered above the exact range: exponents 6..=63.
const OCTAVES: usize = 58;

const BUCKETS: usize = EXACT_LIMIT as usize + OCTAVES * SUBS;

/// A concurrent histogram of `u64` samples (typically microseconds or
/// batch sizes).
///
/// ```
/// use spark_util::hist::Histogram;
/// let h = Histogram::new();
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 100);
/// assert_eq!(h.max(), 100);
/// let p50 = h.quantile(0.5);
/// assert!((45..=57).contains(&p50), "p50 = {p50}");
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < EXACT_LIMIT {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as usize; // >= 6
    let sub = ((v >> (exp - 3)) & 7) as usize;
    EXACT_LIMIT as usize + (exp - 6) * SUBS + sub
}

/// Smallest value that lands in bucket `i`.
fn bucket_lower(i: usize) -> u64 {
    if i < EXACT_LIMIT as usize {
        return i as u64;
    }
    let rel = i - EXACT_LIMIT as usize;
    let exp = rel / SUBS + 6;
    let sub = (rel % SUBS) as u64;
    (8 + sub) << (exp - 3)
}

/// Largest value that lands in bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i < EXACT_LIMIT as usize {
        return i as u64;
    }
    if i + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_lower(i + 1) - 1
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the table through a Vec.
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> =
            buckets.into_boxed_slice().try_into().expect("fixed size");
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Safe to call from any number of threads.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on overflow, like the recording itself).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum() as f64 / n as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`), reported as the upper edge of the
    /// bucket where the cumulative count crosses `q * count` — a
    /// conservative (never understated) latency estimate with ≤ 1/8
    /// relative error. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.buckets[i].load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// Non-empty buckets as `(lower_edge, count)` pairs, for dumps.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        (0..BUCKETS)
            .filter_map(|i| {
                let c = self.buckets[i].load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_lower(i), c))
            })
            .collect()
    }

    /// Summary as a JSON object: `count`, `mean`, `p50`, `p90`, `p99`,
    /// `max` — the schema `/metrics` serves.
    pub fn to_json(&self) -> crate::json::Value {
        crate::json::Value::object([
            ("count", crate::json::Value::Num(self.count() as f64)),
            ("mean", crate::json::Value::Num(self.mean())),
            ("p50", crate::json::Value::Num(self.quantile(0.5) as f64)),
            ("p90", crate::json::Value::Num(self.quantile(0.9) as f64)),
            ("p99", crate::json::Value::Num(self.quantile(0.99) as f64)),
            ("max", crate::json::Value::Num(self.max() as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        // Every value maps to a bucket whose [lower, upper] range holds it,
        // and bucket edges are contiguous.
        for v in 0..4096u64 {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "v = {v}");
        }
        for v in [u64::MAX, u64::MAX / 2, 1 << 40, (1 << 40) + 12345] {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "v = {v}");
        }
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_upper(i) + 1, bucket_lower(i + 1), "bucket {i}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(5);
        }
        h.record(60);
        assert_eq!(h.count(), 11);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 60);
        assert_eq!(h.max(), 60);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            assert!(got >= exact * 0.99, "q{q}: {got} < {exact}");
            assert!(got <= exact * 1.15, "q{q}: {got} > {exact}");
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.sum(), (0..4000u64).sum::<u64>());
    }

    #[test]
    fn json_summary_parses_and_has_fields() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let j = h.to_json();
        let text = j.to_string_compact();
        let back = crate::json::parse(&text).unwrap();
        assert_eq!(back.get("count").unwrap().as_f64(), Some(4.0));
        assert!(back.get("p99").unwrap().as_f64().unwrap() >= 100.0);
    }
}
