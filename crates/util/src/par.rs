//! Scoped-thread data parallelism, replacing `rayon::par_iter` for the
//! embarrassingly parallel sweeps in `spark-bench`.
//!
//! The experiment fan-outs are a handful of coarse work items (one model or
//! one design point each), so a static contiguous-chunk split over
//! `std::thread::scope` captures all the available speedup without a work
//! stealing runtime. Results come back in input order.

use std::num::NonZeroUsize;

/// Number of worker threads [`par_map`] will use: the machine's available
/// parallelism, overridable (e.g. for deterministic timing runs) with the
/// `SPARK_THREADS` environment variable.
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var("SPARK_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to [`thread_count`] scoped threads,
/// preserving input order in the output.
///
/// Items are split into contiguous chunks, one per worker; each worker maps
/// its chunk independently. `f` must be `Sync` (shared by reference across
/// workers) and the item/result types must cross thread boundaries.
///
/// ```
/// use spark_util::par::par_map;
/// let squares = par_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = thread_count().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut results: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(|| part.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            results.push(h.join().expect("par_map worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Runs `f` over contiguous mutable chunks of `data` — each `chunk_len`
/// elements, the last possibly shorter — spawning one scoped thread per
/// chunk when more than one chunk exists. The callback receives the chunk
/// index alongside the chunk, so workers can recover their global offset
/// (`index * chunk_len`).
///
/// The caller sizes the chunks: pass `data.len().div_ceil(workers)` to get
/// one chunk per worker. A single chunk (or an empty slice) runs inline on
/// the calling thread with no spawn.
///
/// This is the mutable-output counterpart of [`par_map`], used by the
/// tensor backend to fan a GEMM out over disjoint row blocks of the output
/// buffer.
///
/// ```
/// use spark_util::par::par_chunks_mut;
/// let mut v = vec![0u32; 10];
/// par_chunks_mut(&mut v, 4, |ci, chunk| {
///     for (off, x) in chunk.iter_mut().enumerate() {
///         *x = (ci * 4 + off) as u32;
///     }
/// });
/// assert_eq!(v, (0..10).collect::<Vec<u32>>());
/// ```
///
/// # Panics
///
/// Panics when `chunk_len` is zero.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "par_chunks_mut chunk_len must be positive");
    if data.is_empty() {
        return;
    }
    if data.len() <= chunk_len {
        f(0, data);
        return;
    }
    let f = &f;
    std::thread::scope(|scope| {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            scope.spawn(move || f(ci, chunk));
        }
    });
}

/// Runs two independent closures on scoped threads and returns both
/// results — the two-way fork-join the simulator uses to overlap its
/// short/long differencing runs.
///
/// Falls back to sequential execution when [`thread_count`] is 1 (e.g.
/// `SPARK_THREADS=1` for deterministic timing runs).
///
/// ```
/// use spark_util::par::join;
/// let (a, b) = join(|| 2 + 2, || "done");
/// assert_eq!((a, b), (4, "done"));
/// ```
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    if thread_count() < 2 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out = par_map(&input, |&x| x * 2);
        assert_eq!(out, input.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u8> = vec![];
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uses_shared_state_immutably() {
        let table: Vec<u64> = (0..64).map(|i| i * i).collect();
        let out = par_map(&(0..64).collect::<Vec<usize>>(), |&i| table[i]);
        assert_eq!(out[5], 25);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn par_chunks_mut_covers_every_element() {
        let mut v = vec![0usize; 103];
        par_chunks_mut(&mut v, 10, |ci, chunk| {
            for (off, x) in chunk.iter_mut().enumerate() {
                *x = ci * 10 + off + 1;
            }
        });
        assert_eq!(v, (1..=103).collect::<Vec<usize>>());
    }

    #[test]
    fn par_chunks_mut_single_chunk_and_empty() {
        let mut v = vec![1u8, 2, 3];
        par_chunks_mut(&mut v, 8, |ci, chunk| {
            assert_eq!(ci, 0);
            chunk.iter_mut().for_each(|x| *x += 1);
        });
        assert_eq!(v, vec![2, 3, 4]);
        let mut none: Vec<u8> = vec![];
        par_chunks_mut(&mut none, 4, |_, _| panic!("no chunks expected"));
    }

    #[test]
    fn join_returns_both_results() {
        let data: Vec<u64> = (1..=100).collect();
        let (sum, max) = join(
            || data.iter().sum::<u64>(),
            || data.iter().copied().max().unwrap_or(0),
        );
        assert_eq!(sum, 5050);
        assert_eq!(max, 100);
    }
}
