//! Scoped-thread data parallelism, replacing `rayon::par_iter` for the
//! embarrassingly parallel sweeps in `spark-bench`.
//!
//! The experiment fan-outs are a handful of coarse work items (one model or
//! one design point each), so a static contiguous-chunk split over
//! `std::thread::scope` captures all the available speedup without a work
//! stealing runtime. Results come back in input order.

use std::num::NonZeroUsize;

/// Number of worker threads [`par_map`] will use: the machine's available
/// parallelism, overridable (e.g. for deterministic timing runs) with the
/// `SPARK_THREADS` environment variable.
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var("SPARK_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to [`thread_count`] scoped threads,
/// preserving input order in the output.
///
/// Items are split into contiguous chunks, one per worker; each worker maps
/// its chunk independently. `f` must be `Sync` (shared by reference across
/// workers) and the item/result types must cross thread boundaries.
///
/// ```
/// use spark_util::par::par_map;
/// let squares = par_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = thread_count().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut results: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(|| part.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            results.push(h.join().expect("par_map worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Runs two independent closures on scoped threads and returns both
/// results — the two-way fork-join the simulator uses to overlap its
/// short/long differencing runs.
///
/// Falls back to sequential execution when [`thread_count`] is 1 (e.g.
/// `SPARK_THREADS=1` for deterministic timing runs).
///
/// ```
/// use spark_util::par::join;
/// let (a, b) = join(|| 2 + 2, || "done");
/// assert_eq!((a, b), (4, "done"));
/// ```
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    if thread_count() < 2 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out = par_map(&input, |&x| x * 2);
        assert_eq!(out, input.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u8> = vec![];
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uses_shared_state_immutably() {
        let table: Vec<u64> = (0..64).map(|i| i * i).collect();
        let out = par_map(&(0..64).collect::<Vec<usize>>(), |&i| table[i]);
        assert_eq!(out[5], 25);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn join_returns_both_results() {
        let data: Vec<u64> = (1..=100).collect();
        let (sum, max) = join(
            || data.iter().sum::<u64>(),
            || data.iter().copied().max().unwrap_or(0),
        );
        assert_eq!(sum, 5050);
        assert_eq!(max, 100);
    }
}
