//! Scoped-thread data parallelism, replacing `rayon::par_iter` for the
//! embarrassingly parallel sweeps in `spark-bench`, plus a bounded MPMC
//! [`channel`] for the long-running serving subsystem.
//!
//! The experiment fan-outs are a handful of coarse work items (one model or
//! one design point each), so a static contiguous-chunk split over
//! `std::thread::scope` captures all the available speedup without a work
//! stealing runtime. Results come back in input order.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Number of worker threads [`par_map`] will use: the machine's available
/// parallelism, overridable (e.g. for deterministic timing runs) with the
/// `SPARK_THREADS` environment variable.
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var("SPARK_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to [`thread_count`] scoped threads,
/// preserving input order in the output.
///
/// Items are split into contiguous chunks, one per worker; each worker maps
/// its chunk independently. `f` must be `Sync` (shared by reference across
/// workers) and the item/result types must cross thread boundaries.
///
/// ```
/// use spark_util::par::par_map;
/// let squares = par_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = thread_count().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut results: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(|| part.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            results.push(h.join().expect("par_map worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Runs `f` over contiguous mutable chunks of `data` — each `chunk_len`
/// elements, the last possibly shorter — spawning one scoped thread per
/// chunk when more than one chunk exists. The callback receives the chunk
/// index alongside the chunk, so workers can recover their global offset
/// (`index * chunk_len`).
///
/// The caller sizes the chunks: pass `data.len().div_ceil(workers)` to get
/// one chunk per worker. A single chunk (or an empty slice) runs inline on
/// the calling thread with no spawn.
///
/// This is the mutable-output counterpart of [`par_map`], used by the
/// tensor backend to fan a GEMM out over disjoint row blocks of the output
/// buffer.
///
/// ```
/// use spark_util::par::par_chunks_mut;
/// let mut v = vec![0u32; 10];
/// par_chunks_mut(&mut v, 4, |ci, chunk| {
///     for (off, x) in chunk.iter_mut().enumerate() {
///         *x = (ci * 4 + off) as u32;
///     }
/// });
/// assert_eq!(v, (0..10).collect::<Vec<u32>>());
/// ```
///
/// # Panics
///
/// Panics when `chunk_len` is zero.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "par_chunks_mut chunk_len must be positive");
    if data.is_empty() {
        return;
    }
    if data.len() <= chunk_len {
        f(0, data);
        return;
    }
    let f = &f;
    std::thread::scope(|scope| {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            scope.spawn(move || f(ci, chunk));
        }
    });
}

/// Runs two independent closures on scoped threads and returns both
/// results — the two-way fork-join the simulator uses to overlap its
/// short/long differencing runs.
///
/// Falls back to sequential execution when [`thread_count`] is 1 (e.g.
/// `SPARK_THREADS=1` for deterministic timing runs).
///
/// ```
/// use spark_util::par::join;
/// let (a, b) = join(|| 2 + 2, || "done");
/// assert_eq!((a, b), (4, "done"));
/// ```
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    if thread_count() < 2 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join worker panicked"))
    })
}

/// Creates a bounded multi-producer multi-consumer channel of capacity
/// `capacity` — the backpressured job queue of the serving subsystem
/// (replaces `crossbeam-channel`).
///
/// Both halves are cloneable. [`Sender::send`] blocks while the queue is
/// full; [`Sender::try_send`] returns the value back instead, which is how
/// the server turns a full queue into an immediate 503 rather than an
/// unbounded backlog. [`Receiver::recv`] blocks until a value arrives or
/// every sender is gone.
///
/// ```
/// use spark_util::par::channel;
/// let (tx, rx) = channel(2);
/// tx.send(1).unwrap();
/// tx.send(2).unwrap();
/// assert!(tx.try_send(3).is_err()); // full
/// assert_eq!(rx.recv(), Some(1));
/// drop(tx);
/// assert_eq!(rx.recv(), Some(2));
/// assert_eq!(rx.recv(), None); // disconnected and drained
/// ```
///
/// # Panics
///
/// Panics when `capacity` is zero (a zero-capacity rendezvous channel is
/// not supported).
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "channel capacity must be positive");
    let shared = Arc::new(Shared {
        state: Mutex::new(ChanState {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

struct ChanState<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<ChanState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, ChanState<T>> {
        // A worker panicking mid-queue-op would poison the mutex; the queue
        // itself is always left consistent, so keep going.
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Error returned by [`Sender::try_send`], giving the value back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue held `capacity` values (backpressure).
    Full(T),
    /// Every receiver is gone; the value can never be delivered.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No value arrived within the timeout.
    Timeout,
    /// Every sender is gone and the queue is drained.
    Disconnected,
}

/// The sending half of a bounded [`channel`].
pub struct Sender<T>(Arc<Shared<T>>);

/// The receiving half of a bounded [`channel`].
pub struct Receiver<T>(Arc<Shared<T>>);

impl<T> Sender<T> {
    /// Blocks until there is room, then enqueues `value`. Returns the value
    /// back when every receiver is gone.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when the channel is disconnected.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut s = self.0.lock();
        loop {
            if s.receivers == 0 {
                return Err(value);
            }
            if s.queue.len() < s.capacity {
                s.queue.push_back(value);
                drop(s);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            s = match self.0.not_full.wait(s) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Enqueues `value` without blocking.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] when the queue is at capacity,
    /// [`TrySendError::Disconnected`] when every receiver is gone — both
    /// return the value to the caller.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut s = self.0.lock();
        if s.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if s.queue.len() >= s.capacity {
            return Err(TrySendError::Full(value));
        }
        s.queue.push_back(value);
        drop(s);
        self.0.not_empty.notify_one();
        Ok(())
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.0.lock().queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value arrives; `None` once every sender is gone and
    /// the queue is drained (so a plain `while let Some(v) = rx.recv()`
    /// drains gracefully on shutdown).
    pub fn recv(&self) -> Option<T> {
        let mut s = self.0.lock();
        loop {
            if let Some(v) = s.queue.pop_front() {
                drop(s);
                self.0.not_full.notify_one();
                return Some(v);
            }
            if s.senders == 0 {
                return None;
            }
            s = match self.0.not_empty.wait(s) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Dequeues without blocking; `None` when the queue is momentarily
    /// empty (regardless of sender liveness).
    pub fn try_recv(&self) -> Option<T> {
        let mut s = self.0.lock();
        let v = s.queue.pop_front();
        if v.is_some() {
            drop(s);
            self.0.not_full.notify_one();
        }
        v
    }

    /// Blocks up to `timeout` for a value — the micro-batcher's collection
    /// window.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when the window elapses empty,
    /// [`RecvTimeoutError::Disconnected`] when every sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut s = self.0.lock();
        loop {
            if let Some(v) = s.queue.pop_front() {
                drop(s);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if s.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            s = match self.0.not_empty.wait_timeout(s, deadline - now) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.0.lock().queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.lock().senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.lock().receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.0.lock();
        s.senders -= 1;
        let last = s.senders == 0;
        drop(s);
        if last {
            // Wake blocked receivers so they observe the disconnect.
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut s = self.0.lock();
        s.receivers -= 1;
        let last = s.receivers == 0;
        drop(s);
        if last {
            // Wake blocked senders so they observe the disconnect.
            self.0.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out = par_map(&input, |&x| x * 2);
        assert_eq!(out, input.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u8> = vec![];
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uses_shared_state_immutably() {
        let table: Vec<u64> = (0..64).map(|i| i * i).collect();
        let out = par_map(&(0..64).collect::<Vec<usize>>(), |&i| table[i]);
        assert_eq!(out[5], 25);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn par_chunks_mut_covers_every_element() {
        let mut v = vec![0usize; 103];
        par_chunks_mut(&mut v, 10, |ci, chunk| {
            for (off, x) in chunk.iter_mut().enumerate() {
                *x = ci * 10 + off + 1;
            }
        });
        assert_eq!(v, (1..=103).collect::<Vec<usize>>());
    }

    #[test]
    fn par_chunks_mut_single_chunk_and_empty() {
        let mut v = vec![1u8, 2, 3];
        par_chunks_mut(&mut v, 8, |ci, chunk| {
            assert_eq!(ci, 0);
            chunk.iter_mut().for_each(|x| *x += 1);
        });
        assert_eq!(v, vec![2, 3, 4]);
        let mut none: Vec<u8> = vec![];
        par_chunks_mut(&mut none, 4, |_, _| panic!("no chunks expected"));
    }

    #[test]
    fn join_returns_both_results() {
        let data: Vec<u64> = (1..=100).collect();
        let (sum, max) = join(
            || data.iter().sum::<u64>(),
            || data.iter().copied().max().unwrap_or(0),
        );
        assert_eq!(sum, 5050);
        assert_eq!(max, 100);
    }

    #[test]
    fn channel_fifo_within_capacity() {
        let (tx, rx) = channel(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(tx.len(), 4);
        assert!(matches!(tx.try_send(9), Err(TrySendError::Full(9))));
        for i in 0..4 {
            assert_eq!(rx.recv(), Some(i));
        }
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn channel_disconnect_semantics() {
        let (tx, rx) = channel::<u32>(2);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(7)); // drains before reporting closed
        assert_eq!(rx.recv(), None);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );

        let (tx, rx) = channel::<u32>(2);
        drop(rx);
        assert_eq!(tx.send(1), Err(1));
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn channel_recv_timeout_times_out_when_empty() {
        let (tx, rx) = channel::<u8>(1);
        let t0 = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(15));
        drop(tx);
    }

    #[test]
    fn channel_blocking_send_unblocks_on_recv() {
        let (tx, rx) = channel(1);
        tx.send(0u32).unwrap();
        std::thread::scope(|scope| {
            let tx2 = tx.clone();
            let h = scope.spawn(move || tx2.send(1).is_ok());
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Some(0));
            assert!(h.join().unwrap());
            assert_eq!(rx.recv(), Some(1));
        });
    }

    #[test]
    fn channel_mpmc_delivers_every_value_once() {
        let (tx, rx) = channel::<usize>(8);
        let produced: usize = 4 * 250;
        let consumed = std::sync::atomic::AtomicUsize::new(0);
        let sum = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for p in 0..4 {
                let tx = tx.clone();
                scope.spawn(move || {
                    for i in 0..250 {
                        tx.send(p * 250 + i).unwrap();
                    }
                });
            }
            drop(tx);
            for _ in 0..3 {
                let rx = rx.clone();
                let consumed = &consumed;
                let sum = &sum;
                scope.spawn(move || {
                    while let Some(v) = rx.recv() {
                        consumed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        sum.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
            drop(rx);
        });
        assert_eq!(consumed.into_inner(), produced);
        assert_eq!(sum.into_inner(), (0..produced).sum::<usize>());
    }
}
