//! In-tree property-based testing, replacing `proptest`.
//!
//! A property is an ordinary function from a generated input to
//! `Result<(), String>`. [`check`] drives it: generate `cases` inputs from a
//! seeded [`Rng`], and on the first failure greedily shrink the input via
//! [`Shrink`] to a minimal counterexample, then panic with the shrunk input,
//! the error, and the seed that reproduces the run.
//!
//! ```
//! use spark_util::prop::{check, Config};
//!
//! check("addition commutes", |rng| (rng.next_u32(), rng.next_u32()), |&(a, b)| {
//!     if a.wrapping_add(b) == b.wrapping_add(a) {
//!         Ok(())
//!     } else {
//!         Err(format!("{a} + {b} differs"))
//!     }
//! });
//! ```
//!
//! Environment overrides:
//!
//! - `SPARK_PROP_SEED` — base seed (failure messages tell you what to set);
//! - `SPARK_PROP_CASES` — number of cases per property.

use crate::rng::{splitmix64, Rng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Inputs generated per property.
    pub cases: u32,
    /// Base seed; each property derives its own stream from this and its
    /// name, so properties stay independent.
    pub seed: u64,
    /// Cap on accepted shrink steps (each step tries many candidates).
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        let seed = std::env::var("SPARK_PROP_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x5EED_5EED_5EED_5EED);
        let cases = std::env::var("SPARK_PROP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Self { cases, seed, max_shrink_steps: 2048 }
    }
}

impl Config {
    /// Default config with a different case count (for expensive
    /// properties, like proptest's `with_cases`).
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }
}

/// Types that can propose strictly simpler versions of themselves.
///
/// `shrink` returns candidate replacements, most aggressive first; the
/// runner keeps any candidate that still fails the property and repeats.
/// The default (no candidates) is valid for types with no useful notion of
/// "smaller".
pub trait Shrink: Sized {
    /// Candidate simplifications of `self`, most aggressive first.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! shrink_unsigned {
    ($($ty:ty),*) => {
        $(impl Shrink for $ty {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self != 0 {
                    out.push(0);
                    if *self > 1 {
                        out.push(self / 2);
                    }
                    out.push(self - 1);
                }
                out
            }
        })*
    };
}

shrink_unsigned!(u8, u16, u32, u64, usize);

macro_rules! shrink_signed {
    ($($ty:ty),*) => {
        $(impl Shrink for $ty {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self != 0 {
                    out.push(0);
                    if self.abs() > 1 {
                        out.push(self / 2);
                    }
                    if *self < 0 {
                        out.push(-self);
                    }
                    out.push(self - self.signum());
                }
                out
            }
        })*
    };
}

shrink_signed!(i8, i16, i32, i64, isize);

macro_rules! shrink_float {
    ($($ty:ty),*) => {
        $(impl Shrink for $ty {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self != 0.0 && self.is_finite() {
                    out.push(0.0);
                    out.push(self / 2.0);
                    if *self < 0.0 {
                        out.push(-self);
                    }
                    out.push(self.trunc());
                }
                out.retain(|c| c != self);
                out
            }
        })*
    };
}

shrink_float!(f32, f64);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self { vec![false] } else { Vec::new() }
    }
}

impl Shrink for char {}

impl Shrink for String {
    fn shrink(&self) -> Vec<Self> {
        let chars: Vec<char> = self.chars().collect();
        let mut out = Vec::new();
        if !chars.is_empty() {
            out.push(String::new());
            out.push(chars[..chars.len() / 2].iter().collect());
            out.push(chars[1..].iter().collect());
            out.push(chars[..chars.len() - 1].iter().collect());
        }
        out.retain(|c| c != self);
        out
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n > 0 {
            out.push(Vec::new());
            // Drop the back or front half, then single elements.
            if n > 1 {
                out.push(self[..n / 2].to_vec());
                out.push(self[n / 2..].to_vec());
            }
            for i in 0..n.min(16) {
                let mut v = self.clone();
                v.remove(i);
                out.push(v);
            }
            // Shrink individual elements (first few positions).
            for i in 0..n.min(8) {
                for cand in self[i].shrink() {
                    let mut v = self.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
        }
        out
    }
}

macro_rules! shrink_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(for cand in self.$idx.shrink() {
                    let mut t = self.clone();
                    t.$idx = cand;
                    out.push(t);
                })+
                out
            }
        })*
    };
}

shrink_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Derives the per-property seed [`check`] uses, from the base seed and the
/// property name (so failure messages can tell users exactly what to set).
pub fn derive_seed(base: u64, name: &str) -> u64 {
    let mut h = base;
    for b in name.bytes() {
        h = splitmix64(&mut h) ^ u64::from(b);
    }
    splitmix64(&mut h)
}

/// Runs `prop` against `cases` inputs drawn by `gen` with the default
/// [`Config`]; see the module docs for the failure protocol.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when any case fails, after
/// shrinking to a minimal input; the message includes the reproducing seed.
pub fn check<T, G, P>(name: &str, gen: G, prop: P)
where
    T: Clone + std::fmt::Debug + Shrink,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    check_with(&Config::default(), name, gen, prop);
}

/// [`check`] with an explicit configuration.
///
/// # Panics
///
/// Same contract as [`check`].
pub fn check_with<T, G, P>(config: &Config, name: &str, gen: G, prop: P)
where
    T: Clone + std::fmt::Debug + Shrink,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let seed = derive_seed(config.seed, name);
    let mut rng = Rng::seed_from_u64(seed);
    for case in 0..config.cases {
        let input = gen(&mut rng);
        if let Err(error) = run_case(&prop, &input) {
            let (minimal, minimal_error, steps) =
                shrink_failure(&prop, input.clone(), error, config.max_shrink_steps);
            panic!(
                "property `{name}` failed on case {case_no}/{cases}\n\
                 \x20 minimal input ({steps} shrink steps): {minimal:?}\n\
                 \x20 error: {minimal_error}\n\
                 \x20 original input: {input:?}\n\
                 \x20 reproduce with: SPARK_PROP_SEED={base} cargo test",
                case_no = case + 1,
                cases = config.cases,
                base = config.seed,
            );
        }
    }
}

/// Runs one case, converting panics inside the property into `Err` so they
/// shrink and report like ordinary failures.
fn run_case<T, P>(prop: &P, input: &T) -> Result<(), String>
where
    P: Fn(&T) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| prop(input))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            Err(format!("panicked: {msg}"))
        }
    }
}

fn shrink_failure<T, P>(prop: &P, start: T, start_error: String, max_steps: u32) -> (T, String, u32)
where
    T: Clone + std::fmt::Debug + Shrink,
    P: Fn(&T) -> Result<(), String>,
{
    let mut current = start;
    let mut error = start_error;
    let mut steps = 0;
    'outer: while steps < max_steps {
        for candidate in current.shrink() {
            if let Err(e) = run_case(prop, &candidate) {
                current = candidate;
                error = e;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, error, steps)
}

/// Returns an error unless `cond` holds — property-style `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Returns an error unless the two expressions are equal — property-style
/// `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}\n  left: {l:?}\n right: {r:?}",
                format!($($fmt)+),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        check("u64 halving", |rng| rng.next_u64(), |&x| {
            prop_assert!(x / 2 <= x, "{x}");
            Ok(())
        });
    }

    #[test]
    fn failure_shrinks_to_minimal_and_reports_seed() {
        // Property: all u32 < 1000. Minimal counterexample is exactly 1000.
        let result = catch_unwind(|| {
            check_with(
                &Config { cases: 512, seed: 99, max_shrink_steps: 4096 },
                "all u32 below 1000",
                |rng| rng.next_u32(),
                |&x| {
                    prop_assert!(x < 1000, "{x} >= 1000");
                    Ok(())
                },
            );
        });
        let msg = match result {
            Err(payload) => payload.downcast_ref::<String>().expect("string panic").clone(),
            Ok(()) => panic!("property unexpectedly passed"),
        };
        assert!(msg.contains("minimal input"), "{msg}");
        assert!(msg.contains("1000"), "{msg}");
        assert!(msg.contains("SPARK_PROP_SEED=99"), "{msg}");
    }

    #[test]
    fn vec_failures_shrink_small() {
        // Property: no vec contains a value >= 200. Minimal failure: [200].
        let result = catch_unwind(|| {
            check_with(
                &Config { cases: 256, seed: 7, max_shrink_steps: 4096 },
                "no element >= 200",
                |rng| {
                    let n = rng.gen_range(0..64);
                    (0..n).map(|_| rng.next_u32() as u8).collect::<Vec<u8>>()
                },
                |v| {
                    prop_assert!(v.iter().all(|&x| x < 200), "{v:?}");
                    Ok(())
                },
            );
        });
        let msg = match result {
            Err(payload) => payload.downcast_ref::<String>().expect("string panic").clone(),
            Ok(()) => panic!("property unexpectedly passed"),
        };
        assert!(msg.contains("minimal input"), "{msg}");
        // Shrinking must reach the one-element vector [200].
        assert!(msg.contains("[200]"), "{msg}");
    }

    #[test]
    fn panics_are_caught_and_shrunk() {
        let result = catch_unwind(|| {
            check_with(
                &Config { cases: 64, seed: 3, max_shrink_steps: 512 },
                "division by anything",
                |rng| rng.next_u32() % 8,
                |&x| {
                    let _ = 100 / x; // panics when x == 0
                    Ok(())
                },
            );
        });
        let msg = match result {
            Err(payload) => payload.downcast_ref::<String>().expect("string panic").clone(),
            Ok(()) => panic!("property unexpectedly passed"),
        };
        assert!(msg.contains("panicked"), "{msg}");
        assert!(msg.contains("minimal input"), "{msg}");
    }

    #[test]
    fn same_seed_same_inputs() {
        let collect = |seed: u64| {
            let mut rng = Rng::seed_from_u64(derive_seed(seed, "p"));
            (0..32).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(collect(1), collect(1));
        assert_ne!(collect(1), collect(2));
    }

    #[test]
    fn shrink_primitives_move_toward_zero() {
        assert!(100u32.shrink().contains(&0));
        assert!(100u32.shrink().contains(&50));
        assert!((-8i16).shrink().contains(&0));
        assert!(0u8.shrink().is_empty());
        assert!((0.0f64).shrink().is_empty());
        assert!(true.shrink().contains(&false));
    }
}
