//! Seedable pseudo-random number generation.
//!
//! The workspace builds with zero external crates, so `rand` is replaced by
//! this module: a SplitMix64 seed expander feeding a xoshiro256++ generator
//! (Blackman & Vigna, 2019). Both are tiny, fast, and pass BigCrush-scale
//! batteries — more than adequate for synthetic datasets, weight init, and
//! property-test input generation.
//!
//! Determinism is a contract: the same seed always yields the same stream,
//! on every platform, forever. The accuracy experiments and the
//! reproducibility tests (`tests/determinism.rs`) rely on it.

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used to expand a single `u64` seed into the 256-bit xoshiro state and as
/// a standalone mixer for deriving per-test seeds from names.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256++ pseudo-random number generator.
///
/// ```
/// use spark_util::rng::Rng;
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose 256-bit state is expanded from `seed` with
    /// SplitMix64 (the seeding procedure the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next raw 64-bit output (xoshiro256++ scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    #[inline]
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Fair coin flip.
    #[inline]
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift with
    /// rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics when `bound == 0`.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below bound must be positive");
        // Rejection threshold for the widening-multiply method.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        range.start + self.gen_below((range.end - range.start) as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.gen_f64()
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn gen_range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.gen_f32()
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_below((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Splits off an independent generator (seeded from this stream), useful
    /// for handing deterministic sub-streams to parallel workers.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0 from the public-domain splitmix64.c
        // reference implementation. These pin the algorithm so refactors
        // can't silently change every downstream experiment.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        let mut c = Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.gen_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_below_unbiased_small_bound() {
        let mut r = Rng::seed_from_u64(2);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[r.gen_below(5) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn gen_range_endpoints() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(3..7);
            assert!((3..7).contains(&x));
        }
        assert_eq!(r.gen_range(5..6), 5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        let _ = Rng::seed_from_u64(0).gen_range(4..4);
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut r1 = Rng::seed_from_u64(9);
        let mut r2 = Rng::seed_from_u64(9);
        let mut a: Vec<usize> = (0..100).collect();
        let mut b: Vec<usize> = (0..100).collect();
        r1.shuffle(&mut a);
        r2.shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(a, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut r = Rng::seed_from_u64(11);
        let mut f1 = r.fork();
        let mut f2 = r.fork();
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut r = Rng::seed_from_u64(12);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
