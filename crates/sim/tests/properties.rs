//! Property-based tests for the simulator: throughput bounds of the
//! cycle-accurate array and exactness of the functional MAC grid, on the
//! in-tree `spark_util::prop` harness.

use spark_sim::cost::expected_mac_cycles;
use spark_sim::pe::SignMag;
use spark_sim::{FunctionalArray, Mpe, OperandKind, SystolicSim};
use spark_util::prop::{check_with, Config};
use spark_util::{prop_assert, prop_assert_eq};

/// The cycle-accurate array's completion time is bounded below by the
/// busiest PE's own work and above by full serialization.
#[test]
fn systolic_cycles_bounded() {
    check_with(
        &Config::with_cases(32),
        "systolic_cycles_bounded",
        |rng| {
            (
                rng.gen_range(1..5),
                rng.gen_range(1..5),
                rng.gen_range(1..12),
                rng.next_u64(),
            )
        },
        |&(rows, cols, waves, seed)| {
            if rows == 0 || cols == 0 || waves == 0 {
                return Ok(()); // shrunk outside the tile domain
            }
            let sim = SystolicSim::new(rows, cols);
            let mut state = seed | 1;
            let mut next_kind = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state >> 33 & 1 == 0 {
                    OperandKind::Int4
                } else {
                    OperandKind::Int8
                }
            };
            let weights: Vec<Vec<OperandKind>> =
                (0..rows).map(|_| (0..cols).map(|_| next_kind()).collect()).collect();
            let acts: Vec<Vec<OperandKind>> =
                (0..waves).map(|_| (0..rows).map(|_| next_kind()).collect()).collect();
            let r = sim.run_tile(&weights, &acts);
            // Lower bound: the busiest single PE's total cost.
            let mut busiest = 0u64;
            for (k, wrow) in weights.iter().enumerate() {
                for w in wrow {
                    let cost: u64 = acts
                        .iter()
                        .map(|wave| u64::from(spark_sim::mac_cycles(wave[k], *w)))
                        .sum();
                    busiest = busiest.max(cost);
                }
            }
            prop_assert!(r.cycles >= busiest, "cycles {} < busiest PE {}", r.cycles, busiest);
            // Upper bound: complete serialization of all MACs plus skew.
            prop_assert!(
                r.cycles <= r.busy_cycles + (rows + cols) as u64,
                "cycles {} vs busy {}",
                r.cycles,
                r.busy_cycles
            );
            Ok(())
        },
    );
}

/// The flat-buffer engine is bit-identical to the retained nested-`Vec`
/// reference engine on randomized tiles: same cycles, macs and busy_cycles
/// for every shape, wave count and short-operand density — and the new
/// stall counters exactly partition the MAC count.
#[test]
fn flat_engine_bit_identical_to_reference() {
    check_with(
        &Config::with_cases(64),
        "flat_engine_bit_identical_to_reference",
        |rng| {
            (
                rng.gen_range(1..9),
                rng.gen_range(1..9),
                rng.gen_range(1..24),
                rng.gen_range_f64(0.0, 1.0),
                rng.next_u64(),
            )
        },
        |&(rows, cols, waves, p_short, seed)| {
            if rows == 0 || cols == 0 || waves == 0 {
                return Ok(()); // shrunk outside the tile domain
            }
            let p_short = p_short.clamp(0.0, 1.0);
            let sim = SystolicSim::new(rows, cols);
            let mut rng = spark_util::Rng::seed_from_u64(seed);
            let next_kind = |rng: &mut spark_util::Rng| {
                if rng.gen_f64() < p_short {
                    OperandKind::Int4
                } else {
                    OperandKind::Int8
                }
            };
            let weights: Vec<Vec<OperandKind>> = (0..rows)
                .map(|_| (0..cols).map(|_| next_kind(&mut rng)).collect())
                .collect();
            let acts: Vec<Vec<OperandKind>> = (0..waves)
                .map(|_| (0..rows).map(|_| next_kind(&mut rng)).collect())
                .collect();
            let flat = sim.run_tile(&weights, &acts);
            let reference = sim.run_tile_reference(&weights, &acts);
            prop_assert_eq!(flat.cycles, reference.cycles);
            prop_assert_eq!(flat.macs, reference.macs);
            prop_assert_eq!(flat.busy_cycles, reference.busy_cycles);
            prop_assert_eq!(flat.stalls.total(), flat.macs);
            Ok(())
        },
    );
}

/// The functional MAC grid equals the integer reference for arbitrary
/// sign-magnitude operand matrices and tile shapes.
#[test]
fn functional_gemm_exact() {
    check_with(
        &Config::with_cases(32),
        "functional_gemm_exact",
        |rng| {
            (
                rng.gen_range(1..5),
                rng.gen_range(1..6),
                rng.gen_range(1..5),
                rng.gen_range(1..4),
                rng.gen_range(1..4),
                rng.next_u32(),
            )
        },
        |&(m, k, n, tile_r, tile_c, seed)| {
            if [m, k, n, tile_r, tile_c].contains(&0) {
                return Ok(()); // shrunk outside the tile domain
            }
            let val = |i: usize, salt: u32| -> SignMag {
                let x = (i as u32).wrapping_mul(seed | 1).wrapping_add(salt);
                SignMag::from_i16(((x >> 8) % 511) as i16 - 255)
            };
            let a: Vec<SignMag> = (0..m * k).map(|i| val(i, 17)).collect();
            let w: Vec<SignMag> = (0..k * n).map(|i| val(i, 91)).collect();
            let array = FunctionalArray::new(tile_r, tile_c);
            let (out, stats) = array.gemm(&a, &w, m, k, n);
            for i in 0..m {
                for j in 0..n {
                    let expect: i64 = (0..k)
                        .map(|kk| {
                            i64::from(a[i * k + kk].to_i16())
                                * i64::from(w[kk * n + j].to_i16())
                        })
                        .sum();
                    prop_assert_eq!(out[i * n + j], expect);
                }
            }
            prop_assert_eq!(stats.macs, (m * k * n) as u64);
            Ok(())
        },
    );
}

/// A single MPE's nibble schedule computes exact products for any signed
/// operand pair, in exactly the cost-model cycles.
#[test]
fn mpe_exact_and_costed() {
    check_with(
        &Config::with_cases(256),
        "mpe_exact_and_costed",
        |rng| {
            (
                rng.gen_range(0..511) as i16 - 255,
                rng.gen_range(0..511) as i16 - 255,
            )
        },
        |&(wv, av)| {
            let w = SignMag::from_i16(wv);
            let a = SignMag::from_i16(av);
            let mut pe = Mpe::new();
            let cycles = pe.mac(w, a);
            prop_assert_eq!(pe.accumulator(), i64::from(wv) * i64::from(av));
            prop_assert_eq!(cycles, spark_sim::mac_cycles(a.kind(), w.kind()));
            Ok(())
        },
    );
}

/// Expected MAC cycles is monotone: more short codes never cost more.
#[test]
fn expected_cycles_monotone() {
    check_with(
        &Config::with_cases(256),
        "expected_cycles_monotone",
        |rng| {
            (
                rng.gen_range_f64(0.0, 1.0),
                rng.gen_range_f64(0.0, 1.0),
                rng.gen_range_f64(0.0, 0.3),
            )
        },
        |&(pa, pw, d)| {
            let (pa, pw, d) = (pa.clamp(0.0, 1.0), pw.clamp(0.0, 1.0), d.clamp(0.0, 0.3));
            let base = expected_mac_cycles(pa, pw);
            let better = expected_mac_cycles((pa + d).min(1.0), pw);
            prop_assert!(better <= base + 1e-12, "{better} > {base}");
            Ok(())
        },
    );
}
