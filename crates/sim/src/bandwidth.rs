//! Codec bandwidth analysis (Section V-A).
//!
//! The paper verifies that at 200 MHz the border decoders and output
//! encoders sustain ~50 GB/s, above the PE pages' ~25 GB/s peak demand, so
//! encoding/decoding never blocks the array. This module reproduces that
//! accounting for any configuration: decoder supply from the `m + n`
//! border decoders consuming one 4-bit beat per cycle each, array demand
//! from the operand rate the PE grid consumes at its effective speed.


use crate::arch::Accelerator;
use crate::cost::expected_mac_cycles;
use crate::perf::PrecisionProfile;

/// Result of the codec-bandwidth check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthReport {
    /// Number of border decoders (`rows + cols`).
    pub decoders: usize,
    /// Number of output encoders.
    pub encoders: usize,
    /// Sustained decode bandwidth in GB/s.
    pub decode_gbps: f64,
    /// Peak operand demand of the PE array in GB/s.
    pub demand_gbps: f64,
    /// Output-side encode bandwidth in GB/s.
    pub encode_gbps: f64,
    /// Output production rate in GB/s.
    pub output_gbps: f64,
}

impl BandwidthReport {
    /// True when the codecs never throttle the array (the paper's
    /// "non-blocking processing" condition).
    pub fn non_blocking(&self) -> bool {
        self.decode_gbps >= self.demand_gbps && self.encode_gbps >= self.output_gbps
    }

    /// Decode-side headroom factor (supply / demand).
    pub fn decode_headroom(&self) -> f64 {
        if self.demand_gbps == 0.0 {
            return f64::INFINITY;
        }
        self.decode_gbps / self.demand_gbps
    }
}

/// Analyses the codec bandwidth for a SPARK-style accelerator.
///
/// - Each border decoder consumes one 4-bit beat per cycle; with the
///   measured average of `avg_bits/4` beats per value, `rows + cols`
///   decoders supply `(rows+cols) * freq / (avg_bits/4)` values/s.
/// - The array consumes one activation value per row and holds weights
///   stationary, so the steady-state operand demand is `rows` activation
///   values per wave, at `freq / E[c]` waves/s; weight reloads add
///   `rows * cols` values per tile pass, amortized over `m` waves
///   (conservatively folded in at 10%).
/// - The output side produces `cols` values per wave, re-encoded by the
///   encoders at one value per cycle each.
pub fn analyze(
    acc: &Accelerator,
    profile: &PrecisionProfile,
    frequency_mhz: f64,
    encoders: usize,
) -> BandwidthReport {
    let rows = acc.array_rows as f64;
    let cols = acc.array_cols as f64;
    let freq = frequency_mhz * 1e6;
    let decoders = acc.array_rows + acc.array_cols;

    // Bytes per decoded value on the wire.
    let bytes_a = profile.spark_bits_a / 8.0;
    let bytes_w = profile.spark_bits_w / 8.0;
    let beats_per_value = profile.spark_bits_a / 4.0;

    // Supply: values/s across all decoders, expressed in GB/s of stream.
    let decode_values_per_s = decoders as f64 * freq / beats_per_value;
    let decode_gbps = decode_values_per_s * bytes_a / 1e9;

    // Demand: activations enter at `rows` values per wave; waves complete
    // at freq / E[c]; weight traffic adds ~10% amortized.
    let e_c = expected_mac_cycles(profile.short_frac_a, profile.short_frac_w);
    let waves_per_s = freq / e_c;
    let demand_gbps = (rows * waves_per_s * bytes_a) * 1.1 / 1e9;
    let _ = bytes_w;

    // Output side.
    let encode_values_per_s = encoders as f64 * freq;
    let encode_gbps = encode_values_per_s * bytes_a / 1e9;
    let output_gbps = cols * waves_per_s * bytes_a / 1e9;

    BandwidthReport {
        decoders,
        encoders,
        decode_gbps,
        demand_gbps,
        encode_gbps,
        output_gbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::AcceleratorKind;

    #[test]
    fn paper_configuration_is_non_blocking() {
        // 64x64 array, 128 decoders, 64 encoders at 200 MHz — the paper's
        // Section V-A setup; must be non-blocking with headroom ~2x.
        let acc = Accelerator::new(AcceleratorKind::Spark);
        let profile = PrecisionProfile::from_short_fractions(0.8, 0.8);
        let r = analyze(&acc, &profile, 200.0, 64);
        assert_eq!(r.decoders, 128);
        assert!(r.non_blocking(), "{r:?}");
        assert!(r.decode_headroom() > 1.5, "headroom {}", r.decode_headroom());
        // The magnitudes land in the paper's tens-of-GB/s regime.
        assert!((1.0..100.0).contains(&r.decode_gbps), "{}", r.decode_gbps);
    }

    #[test]
    fn all_int8_traffic_still_covered() {
        // Worst case: no short codes at all. E[c] = 4 slows the array by
        // 4x, which itself relaxes the demand; decoders still keep up.
        let acc = Accelerator::new(AcceleratorKind::Spark);
        let profile = PrecisionProfile::from_short_fractions(0.0, 0.0);
        let r = analyze(&acc, &profile, 200.0, 64);
        assert!(r.non_blocking(), "{r:?}");
    }

    #[test]
    fn all_int4_is_the_tightest_case() {
        // Full-speed array (E[c] = 1) maximizes demand; headroom shrinks
        // but stays >= 1 thanks to the 1-beat short codes.
        let acc = Accelerator::new(AcceleratorKind::Spark);
        let profile = PrecisionProfile::from_short_fractions(1.0, 1.0);
        let r = analyze(&acc, &profile, 200.0, 64);
        assert!(r.non_blocking(), "{r:?}");
        let relaxed = analyze(
            &acc,
            &PrecisionProfile::from_short_fractions(0.5, 0.5),
            200.0,
            64,
        );
        assert!(r.decode_headroom() < relaxed.decode_headroom());
    }

    #[test]
    fn too_few_decoders_block() {
        // A hypothetical config with a single-digit decoder count fails the
        // check — the m+n placement is load-bearing.
        let mut acc = Accelerator::new(AcceleratorKind::Spark);
        acc.array_rows = 64;
        acc.array_cols = 64;
        let profile = PrecisionProfile::from_short_fractions(1.0, 1.0);
        let mut r = analyze(&acc, &profile, 200.0, 64);
        // Simulate fewer decoders by scaling supply.
        r.decode_gbps /= 32.0;
        assert!(!r.non_blocking());
    }

    #[test]
    fn headroom_infinite_for_idle_array() {
        let r = BandwidthReport {
            decoders: 128,
            encoders: 64,
            decode_gbps: 10.0,
            demand_gbps: 0.0,
            encode_gbps: 10.0,
            output_gbps: 0.0,
        };
        assert_eq!(r.decode_headroom(), f64::INFINITY);
    }
}
